// Fuzz harness: the control-plane wire decoder (net/wire.h, net/messages.h).
//
// Contract under test: FrameDecoder and every decode_*() throw WireError on
// any malformed input — bad magic, version skew, truncated frames, overlong
// or overflowing varints, absurd counts — never a different exception,
// never an allocation driven by an unvalidated length, never a crash. Any
// payload a decoder does accept must re-encode byte-identically (the
// distributed service's bit-exact determinism rides on this).
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "lorasched/net/messages.h"
#include "lorasched/net/wire.h"

namespace {

using namespace lorasched::net;

/// Feeds the stream decoder in two chunks split at `pivot` to exercise the
/// partial-frame buffering paths, collecting whatever frames survive.
std::vector<Frame> decode_stream(const std::uint8_t* data, std::size_t size,
                                 std::size_t pivot) {
  FrameDecoder decoder;
  std::vector<Frame> frames;
  decoder.feed(data, pivot);
  Frame frame;
  while (decoder.next(frame)) frames.push_back(frame);
  decoder.feed(data + pivot, size - pivot);
  while (decoder.next(frame)) frames.push_back(frame);
  return frames;
}

void roundtrip_payload(const Frame& frame) {
  // A payload the typed decoder accepts must re-encode byte-identically.
  // Every exception past the WireError catch is a codec bug: crash.
  std::vector<std::uint8_t> again;
  try {
    switch (frame.type) {
      case MsgType::kHello:
        again = encode(decode_hello(frame.payload));
        break;
      case MsgType::kHelloAck:
        again = encode(decode_hello_ack(frame.payload));
        break;
      case MsgType::kAssignShard:
        again = encode(decode_assign_shard(frame.payload));
        break;
      case MsgType::kAssignAck:
        again = encode(decode_assign_ack(frame.payload));
        break;
      case MsgType::kBlockCells:
        again = encode(decode_block_cells(frame.payload));
        break;
      case MsgType::kBlockAck:
        again = encode(decode_block_ack(frame.payload));
        break;
      case MsgType::kBeginRound:
        again = encode(decode_begin_round(frame.payload));
        break;
      case MsgType::kOffer:
        again = encode(decode_offer(frame.payload));
        break;
      case MsgType::kRoundResults:
        again = encode(decode_round_results(frame.payload));
        break;
      case MsgType::kPublishRequest:
        again = encode(decode_publish_request(frame.payload));
        break;
      case MsgType::kPublishReply:
        again = encode(decode_publish_reply(frame.payload));
        break;
      case MsgType::kStateRequest:
        again = encode(decode_state_request(frame.payload));
        break;
      case MsgType::kStateReply:
        again = encode(decode_state_reply(frame.payload));
        break;
      case MsgType::kRestoreState:
        again = encode(decode_restore_state(frame.payload));
        break;
      case MsgType::kRestoreAck:
        again = encode(decode_restore_ack(frame.payload));
        break;
      case MsgType::kError:
        again = encode(decode_error(frame.payload));
        break;
      case MsgType::kMetricsSnapshot:
        again = encode(decode_metrics_snapshot(frame.payload));
        break;
      case MsgType::kBidSubmit:
        again = encode(decode_bid_submit(frame.payload));
        break;
      case MsgType::kBidDecision:
        again = encode(decode_bid_decision(frame.payload));
        break;
      case MsgType::kBidStreamEnd:
        again = encode(decode_bid_stream_end(frame.payload));
        break;
      default:
        return;  // Ping/Pong/Shutdown carry no typed payload
    }
  } catch (const WireError&) {
    return;  // the documented failure mode for a malformed payload
  }
  if (again != frame.payload) {
    std::fprintf(stderr, "wire payload round-trip not byte-stable\n");
    std::abort();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  std::vector<Frame> frames;
  const std::size_t pivot = size == 0 ? 0 : size / 3;
  try {
    frames = decode_stream(data, size, pivot);
  } catch (const WireError&) {
    return 0;  // framing rejected (bad magic / version / length): fine
  }
  for (const Frame& frame : frames) {
    roundtrip_payload(frame);
    // A frame the decoder produced must survive re-framing bit-exactly.
    const std::vector<std::uint8_t> bytes =
        encode_frame(frame.type, frame.payload);
    FrameDecoder again;
    again.feed(bytes.data(), bytes.size());
    Frame reread;
    if (!again.next(reread) || reread.type != frame.type ||
        reread.payload != frame.payload) {
      std::fprintf(stderr, "frame re-encode round-trip failed\n");
      std::abort();
    }
  }
  return 0;
}
