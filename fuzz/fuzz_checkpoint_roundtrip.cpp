// Fuzz harness: checkpoint deserialization and write/read round trip.
//
// Contract under test (io/serialize.h): read_checkpoint throws
// std::invalid_argument on any malformed or truncated stream — never a
// different exception, never an unbounded allocation, never a crash. Any
// checkpoint it does accept must be stable under write -> read -> write:
// the second serialization is byte-identical to the first (the property the
// service's bit-identical resume relies on).
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

#include "lorasched/io/serialize.h"
#include "lorasched/service/checkpoint.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  std::istringstream in(std::string(reinterpret_cast<const char*>(data), size));
  lorasched::service::Checkpoint checkpoint;
  try {
    checkpoint = lorasched::io::read_checkpoint(in);
  } catch (const std::invalid_argument&) {
    return 0;  // the documented failure mode for malformed input
  }

  // From here on every exception is a serializer bug: our own writer's
  // output must always be readable. Let anything thrown escape and crash.
  std::ostringstream first;
  lorasched::io::write_checkpoint(first, checkpoint);
  std::istringstream back(first.str());
  const lorasched::service::Checkpoint reread =
      lorasched::io::read_checkpoint(back);
  std::ostringstream second;
  lorasched::io::write_checkpoint(second, reread);
  if (first.str() != second.str()) {
    std::fprintf(stderr, "checkpoint round-trip not byte-stable\n");
    std::abort();
  }
  return 0;
}
