// Fuzz harness: differential test of Algorithm 2's DP against the audit
// layer's brute-force oracle (audit/oracle.h, invariant (c)).
//
// Builds a tiny randomized instance (1-3 nodes, horizon 2-5 — always below
// the enumeration cap, so the oracle never skips), runs ScheduleDp::find,
// and asks audit::check_dp_schedule to certify feasibility agreement and
// cost optimality. The check implementations are compiled in every build
// configuration, so this harness bites with or without -DLORASCHED_AUDIT.
// A disagreement raises audit::InvariantViolation, which escapes and
// crashes the harness — the fuzzer's finding.
#include <cstdint>
#include <utility>
#include <vector>

#include "lorasched/audit/audit.h"
#include "lorasched/audit/oracle.h"
#include "lorasched/cluster/cluster.h"
#include "lorasched/cluster/energy.h"
#include "lorasched/cluster/gpu_profile.h"
#include "lorasched/core/duals.h"
#include "lorasched/core/schedule.h"
#include "lorasched/core/schedule_dp.h"
#include "lorasched/types.h"
#include "lorasched/workload/task.h"

namespace {

/// Deterministic byte decoder: reads zeros once the input is exhausted, so
/// every input maps to a well-defined instance.
class ByteSource {
 public:
  ByteSource(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t u8() { return pos_ < size_ ? data_[pos_++] : 0; }
  /// Uniform-ish value in [lo, hi] from one byte.
  int range(int lo, int hi) { return lo + u8() % (hi - lo + 1); }
  /// Value in [0, 1] from one byte.
  double unit() { return static_cast<double>(u8()) / 255.0; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  namespace ls = lorasched;
  ByteSource src(data, size);

  ls::audit::Auditor& auditor = ls::audit::Auditor::instance();
  auditor.config().fail_fast = true;

  const int nodes = src.range(1, 3);
  const ls::Slot horizon = src.range(2, 5);

  std::vector<ls::GpuProfile> profiles;
  profiles.reserve(static_cast<std::size_t>(nodes));
  for (int k = 0; k < nodes; ++k) {
    // Two profile classes so the fuzzer exercises the DP's
    // class-representative reduction on mixed fleets.
    const bool fast = src.u8() % 2 == 0;
    ls::GpuProfile p;
    p.name = fast ? "fuzz-fast" : "fuzz-slow";
    p.compute_per_slot = fast ? 40.0 : 24.0;
    p.mem_gb = fast ? 80.0 : 48.0;
    p.power_kw = fast ? 0.4 : 0.3;
    p.hourly_cost = fast ? 1.5 : 0.8;
    profiles.push_back(std::move(p));
  }
  const ls::Cluster cluster(std::move(profiles), 10.0);
  const ls::EnergyModel energy;

  ls::DualState duals(nodes, horizon);
  for (ls::NodeId k = 0; k < nodes; ++k) {
    for (ls::Slot t = 0; t < horizon; ++t) {
      duals.set_lambda(k, t, 2.0 * src.unit());
      duals.set_phi(k, t, 0.1 * src.unit());
    }
  }

  ls::Task task;
  task.id = 1;
  task.arrival = 0;
  task.deadline = src.range(0, horizon - 1);  // may precede start: edge case
  task.epochs = 1;
  task.compute_share = 0.05 + 0.95 * src.unit();
  task.mem_gb = 30.0 * src.unit();
  task.dataset_samples = 120.0 * src.unit();  // 0 work is a valid edge case
  task.work = task.dataset_samples;
  task.bid = 1.0 + 10.0 * src.unit();
  task.true_value = task.bid;

  ls::ScheduleDpConfig config;
  config.granularity = static_cast<double>(src.range(1, 4));
  const ls::Slot start = src.range(0, horizon - 1);

  const ls::ScheduleDp dp(cluster, energy, config);
  const ls::Schedule found = dp.find(task, start, duals);
  // An audit build already ran the differential inside find(); calling it
  // explicitly makes the harness equally sharp in default builds.
  ls::audit::check_dp_schedule(task, start, duals, cluster, energy, config,
                               nullptr, nullptr, found);
  return 0;
}
