// Standalone driver for toolchains without libFuzzer (the local GCC build).
//
// Usage:
//   <harness> [--smoke N] [file...]
//
// Replays every file argument through LLVMFuzzerTestOneInput, and with
// --smoke additionally feeds N pseudo-random buffers from a fixed seed so
// the ctest smoke runs are deterministic. Crashes and uncaught exceptions
// terminate the process, exactly as they would under libFuzzer.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <random>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

void run_smoke(int runs) {
  std::mt19937_64 rng(0x10a5c4ed5eedULL);
  std::uniform_int_distribution<std::size_t> length(0, 512);
  for (int i = 0; i < runs; ++i) {
    std::vector<std::uint8_t> buffer(length(rng));
    for (std::uint8_t& byte : buffer) {
      byte = static_cast<std::uint8_t>(rng());
    }
    LLVMFuzzerTestOneInput(buffer.data(), buffer.size());
  }
  std::printf("smoke: %d pseudo-random inputs, no crashes\n", runs);
}

int replay_file(const char* path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open corpus file: %s\n", path);
    return 2;
  }
  const std::vector<std::uint8_t> buffer(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(buffer.data(), buffer.size());
  std::printf("replayed %s (%zu bytes)\n", path, buffer.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      const int runs = i + 1 < argc ? std::atoi(argv[++i]) : 256;
      run_smoke(runs > 0 ? runs : 256);
    } else {
      const int status = replay_file(argv[i]);
      if (status != 0) return status;
    }
  }
  return 0;
}
