// Fuzz harness: the streaming bid-line parser (io::parse_bid_line).
//
// Contract under test (io/serialize.h): any malformed line throws
// std::invalid_argument — never a different exception type, never a crash —
// and any line that parses must survive a format/parse round trip with
// every field intact (format_bid_line prints doubles at 17 significant
// digits, which round-trips IEEE doubles exactly).
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "lorasched/io/serialize.h"
#include "lorasched/workload/task.h"

namespace {

bool same(double a, double b) {
  return a == b || (std::isnan(a) && std::isnan(b));
}

bool equivalent(const lorasched::Task& a, const lorasched::Task& b) {
  return a.id == b.id && a.arrival == b.arrival && a.deadline == b.deadline &&
         same(a.dataset_samples, b.dataset_samples) && a.epochs == b.epochs &&
         same(a.work, b.work) && same(a.mem_gb, b.mem_gb) &&
         same(a.compute_share, b.compute_share) &&
         a.needs_prep == b.needs_prep && a.model == b.model &&
         same(a.bid, b.bid) && same(a.true_value, b.true_value);
}

void check_line(const std::string& line) {
  lorasched::Task task;
  try {
    task = lorasched::io::parse_bid_line(line);
  } catch (const std::invalid_argument&) {
    return;  // the documented failure mode for malformed lines
  }
  const std::string reformatted = lorasched::io::format_bid_line(task);
  // A reformatted bid is well-formed by construction; parse failure or a
  // field mismatch here is a serializer bug.
  const lorasched::Task again = lorasched::io::parse_bid_line(reformatted);
  if (!equivalent(task, again)) {
    std::fprintf(stderr, "bid line round-trip mismatch: %s\n",
                 reformatted.c_str());
    std::abort();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) {
      check_line(text.substr(pos));
      break;
    }
    check_line(text.substr(pos, nl - pos));
    pos = nl + 1;
  }
  return 0;
}
