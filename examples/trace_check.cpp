// trace_check — CI validator for lorasched_serve's observability outputs.
//
// Reads the three artifacts a traced serve run emits and cross-checks them
// against each other:
//  * --trace JSONL: every line must parse back through parse_decision_line
//    (the exact schema the tests pin down), every record must carry the
//    Alg. 2 candidate list, and admitted records must charge the eq. (14)
//    payment total.
//  * --metrics Prometheus exposition: must parse, and its counters must
//    agree with the decision log — records == service_bids_decided_total,
//    admitted records == service_bids_admitted_total.
//  * --chrome trace-event JSON: must parse with a non-empty traceEvents
//    array (a timeline Perfetto can load).
//
// A second mode validates the cluster leader's federated /metrics payload
// (DESIGN.md §12): --federated strictly parses the exposition — label
// syntax and escaping, one HELP/TYPE comment per metric name and before
// its samples, finite sample values — and asserts that every
// lorasched_dp_price_cache_* series carries an agent label (at least one
// such series must exist; --expect-agent additionally requires a series
// from that specific agent). When --federated is given the other flags are
// ignored.
//
// Exits 0 when everything is consistent, 1 with a diagnostic otherwise.
//
//   ./trace_check --trace d.jsonl --metrics m.prom --chrome d.jsonl.chrome.json
//   ./trace_check --federated leader_metrics.prom --expect-agent 127.0.0.1:7701
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>

#include "lorasched/obs/json.h"
#include "lorasched/obs/trace.h"
#include "lorasched/util/cli.h"

using namespace lorasched;

namespace {

/// Parses a Prometheus text exposition into {metric name -> value},
/// ignoring HELP/TYPE comments and labeled series (histogram buckets).
std::map<std::string, double> parse_exposition(std::istream& in) {
  std::map<std::string, double> values;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line.front() == '#') continue;
    const auto space = line.find(' ');
    if (space == std::string::npos) {
      throw std::runtime_error("exposition line " + std::to_string(lineno) +
                               ": no value");
    }
    const std::string name = line.substr(0, space);
    std::size_t parsed = 0;
    const double value = std::stod(line.substr(space + 1), &parsed);
    if (name.empty()) {
      throw std::runtime_error("exposition line " + std::to_string(lineno) +
                               ": empty metric name");
    }
    // Labeled series (foo_bucket{le="..."}) keep their label string in the
    // key — the cross-check below only reads unlabeled counters.
    values[name] = value;
  }
  return values;
}

[[noreturn]] void fail(const std::string& what) {
  std::cerr << "trace_check: FAIL: " << what << "\n";
  std::exit(1);
}

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       c == '_' || c == ':';
    if (!(alpha || (i > 0 && c >= '0' && c <= '9'))) return false;
  }
  return true;
}

/// Parses `{k="v",...}` starting at `pos` (the '{'); returns the label map
/// and advances `pos` past the closing '}'. Values must use the exposition
/// escapes (\\, \", \n) — a raw newline can't appear in a getline'd line,
/// but an unescaped '"' or a dangling backslash is a malformed series.
std::map<std::string, std::string> parse_labels(const std::string& line,
                                                std::size_t& pos,
                                                int lineno) {
  const auto bad = [&](const std::string& what) -> std::runtime_error {
    return std::runtime_error("exposition line " + std::to_string(lineno) +
                              ": " + what);
  };
  std::map<std::string, std::string> labels;
  ++pos;  // consume '{'
  while (pos < line.size() && line[pos] != '}') {
    const auto eq = line.find('=', pos);
    if (eq == std::string::npos) throw bad("label without '='");
    const std::string key = line.substr(pos, eq - pos);
    if (!valid_metric_name(key)) throw bad("bad label name '" + key + "'");
    pos = eq + 1;
    if (pos >= line.size() || line[pos] != '"') {
      throw bad("label value not quoted");
    }
    ++pos;
    std::string value;
    while (pos < line.size() && line[pos] != '"') {
      if (line[pos] == '\\') {
        if (pos + 1 >= line.size()) throw bad("dangling backslash in label");
        const char next = line[pos + 1];
        if (next != '\\' && next != '"' && next != 'n') {
          throw bad("unknown escape in label value");
        }
        value += next == 'n' ? '\n' : next;
        pos += 2;
      } else {
        value += line[pos++];
      }
    }
    if (pos >= line.size()) throw bad("unterminated label value");
    ++pos;  // closing '"'
    if (labels.count(key) != 0) throw bad("duplicate label '" + key + "'");
    labels[key] = value;
    if (pos < line.size() && line[pos] == ',') ++pos;
  }
  if (pos >= line.size()) throw bad("unterminated label set");
  ++pos;  // consume '}'
  return labels;
}

/// Strict federated-exposition validation (the leader's /metrics payload).
/// Dies with a diagnostic on any syntax or ordering violation; on success
/// reports how many agent-labeled lorasched_dp_price_cache_* series were
/// seen and checks --expect-agent when given.
void check_federated(std::istream& in, const std::string& expect_agent) {
  std::string line;
  int lineno = 0;
  std::map<std::string, std::string> types;      // name -> TYPE kind
  std::map<std::string, std::uint64_t> samples;  // name -> sample count
  std::set<std::string> dp_cache_agents;
  std::uint64_t series = 0;
  std::uint64_t dp_cache_series = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    const auto die = [&](const std::string& what) {
      fail("exposition line " + std::to_string(lineno) + ": " + what);
    };
    if (line.front() == '#') {
      std::istringstream comment(line);
      std::string hash, kind, name;
      comment >> hash >> kind >> name;
      if (kind != "HELP" && kind != "TYPE") die("unknown comment '" + line + "'");
      if (!valid_metric_name(name)) die("bad metric name in " + kind);
      if (kind == "TYPE") {
        std::string type;
        comment >> type;
        if (type != "counter" && type != "gauge" && type != "histogram") {
          die("unknown TYPE '" + type + "'");
        }
        if (!types.emplace(name, type).second) {
          die("duplicate TYPE for " + name);
        }
        if (samples.count(name) != 0) die("TYPE for " + name + " after samples");
      }
      continue;
    }
    std::size_t pos = line.find_first_of("{ ");
    if (pos == std::string::npos) die("no value");
    const std::string name = line.substr(0, pos);
    if (!valid_metric_name(name)) die("bad metric name '" + name + "'");
    std::map<std::string, std::string> labels;
    if (line[pos] == '{') {
      try {
        labels = parse_labels(line, pos, lineno);
      } catch (const std::exception& e) {
        fail(e.what());
      }
    }
    if (pos >= line.size() || line[pos] != ' ') die("no space before value");
    std::size_t parsed = 0;
    double value = 0.0;
    try {
      value = std::stod(line.substr(pos + 1), &parsed);
    } catch (const std::exception&) {
      die("unparsable sample value");
    }
    if (!std::isfinite(value)) die("non-finite sample value");
    ++series;
    samples[name] += 1;
    // Histogram sub-series (_bucket/_sum/_count) belong to the base name.
    std::string base = name;
    for (const std::string suffix : {"_bucket", "_sum", "_count"}) {
      if (base.size() > suffix.size() &&
          base.compare(base.size() - suffix.size(), suffix.size(), suffix) ==
              0 &&
          types.count(base) == 0 &&
          types.count(base.substr(0, base.size() - suffix.size())) != 0) {
        base = base.substr(0, base.size() - suffix.size());
      }
    }
    if (types.count(base) == 0) die("sample for " + name + " without TYPE");
    if (base.rfind("lorasched_dp_price_cache_", 0) == 0) {
      const auto agent = labels.find("agent");
      if (agent == labels.end()) {
        die("federated series " + name + " carries no agent label");
      }
      dp_cache_agents.insert(agent->second);
      ++dp_cache_series;
    }
  }
  if (series == 0) fail("federated exposition is empty");
  if (dp_cache_series == 0) {
    fail("no lorasched_dp_price_cache_* series in the federated exposition");
  }
  if (!expect_agent.empty() && dp_cache_agents.count(expect_agent) == 0) {
    fail("no dp price-cache series from agent '" + expect_agent + "'");
  }
  std::cout << "trace_check: OK — " << series << " federated series, "
            << dp_cache_series << " dp price-cache series from "
            << dp_cache_agents.size() << " agent(s)\n";
}

}  // namespace

int main(int argc, char** argv) try {
  const util::Cli cli(argc, argv);
  cli.allow_only({"trace", "metrics", "chrome", "federated", "expect-agent"});

  // --- Federated exposition mode (cluster leader /metrics) -----------------
  if (cli.has("federated")) {
    std::ifstream federated_in(cli.get("federated", ""));
    if (!federated_in) fail("cannot open --federated file");
    check_federated(federated_in, cli.get("expect-agent", ""));
    return 0;
  }

  // --- Decision JSONL ------------------------------------------------------
  std::ifstream trace_in(cli.get("trace", ""));
  if (!trace_in) fail("cannot open --trace file");
  std::uint64_t records = 0;
  std::uint64_t admitted = 0;
  std::string line;
  int lineno = 0;
  while (std::getline(trace_in, line)) {
    ++lineno;
    if (line.empty()) continue;
    obs::DecisionTraceRecord record;
    try {
      record = obs::parse_decision_line(line);
    } catch (const std::exception& e) {
      fail("trace line " + std::to_string(lineno) + ": " + e.what());
    }
    if (record.candidates.empty()) {
      fail("trace line " + std::to_string(lineno) +
           ": no Alg. 2 candidates recorded");
    }
    if (record.admitted) {
      if (record.chosen < 0 ||
          record.chosen >= static_cast<std::int32_t>(record.candidates.size())) {
        fail("trace line " + std::to_string(lineno) +
             ": admitted without a chosen candidate");
      }
      if (record.duals.empty()) {
        fail("trace line " + std::to_string(lineno) +
             ": admitted without sampled duals");
      }
      const obs::PaymentTrace& pay = record.payment;
      const double total =
          pay.vendor + pay.energy + pay.compute + pay.memory;
      if (std::abs(pay.total - total) > 1e-9 * std::max(1.0, total)) {
        fail("trace line " + std::to_string(lineno) +
             ": payment components do not sum to total");
      }
      if (std::abs(pay.charged - pay.total) >
          1e-9 * std::max(1.0, pay.total)) {
        fail("trace line " + std::to_string(lineno) +
             ": admitted bid not charged the eq. (14) total");
      }
      ++admitted;
    } else if (record.payment.charged != 0.0) {
      fail("trace line " + std::to_string(lineno) + ": rejected bid charged");
    }
    ++records;
  }
  if (records == 0) fail("trace JSONL is empty");

  // --- Prometheus exposition ----------------------------------------------
  std::ifstream metrics_in(cli.get("metrics", ""));
  if (!metrics_in) fail("cannot open --metrics file");
  const auto values = parse_exposition(metrics_in);
  if (values.empty()) fail("metrics exposition is empty");
  const auto expect = [&](const std::string& name, std::uint64_t want) {
    const auto it = values.find(name);
    if (it == values.end()) fail("exposition missing " + name);
    if (static_cast<std::uint64_t>(it->second) != want) {
      std::ostringstream msg;
      msg << name << " = " << it->second << " but the decision log has "
          << want;
      fail(msg.str());
    }
  };
  // With --late clamp every ingested bid reaches the policy, so the JSONL
  // decision log and the service counters must agree exactly.
  expect("service_bids_decided_total", records);
  expect("service_bids_admitted_total", admitted);
  expect("service_bids_rejected_total", records - admitted);

  // --- Chrome trace --------------------------------------------------------
  std::ifstream chrome_in(cli.get("chrome", ""));
  if (!chrome_in) fail("cannot open --chrome file");
  std::ostringstream chrome_text;
  chrome_text << chrome_in.rdbuf();
  obs::Json chrome;
  try {
    chrome = obs::Json::parse(chrome_text.str());
  } catch (const std::exception& e) {
    fail(std::string("chrome trace does not parse: ") + e.what());
  }
  const obs::Json* events = chrome.find("traceEvents");
  if (events == nullptr) fail("chrome trace has no traceEvents member");
  if (events->as_array().empty()) fail("chrome traceEvents is empty");

  std::cout << "trace_check: OK — " << records << " decisions (" << admitted
            << " admitted), " << values.size() << " exposition series, "
            << events->as_array().size() << " trace events\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "trace_check: error: " << e.what() << "\n";
  return 1;
}
