// trace_check — CI validator for lorasched_serve's observability outputs.
//
// Reads the three artifacts a traced serve run emits and cross-checks them
// against each other:
//  * --trace JSONL: every line must parse back through parse_decision_line
//    (the exact schema the tests pin down), every record must carry the
//    Alg. 2 candidate list, and admitted records must charge the eq. (14)
//    payment total.
//  * --metrics Prometheus exposition: must parse, and its counters must
//    agree with the decision log — records == service_bids_decided_total,
//    admitted records == service_bids_admitted_total.
//  * --chrome trace-event JSON: must parse with a non-empty traceEvents
//    array (a timeline Perfetto can load).
//
// Exits 0 when everything is consistent, 1 with a diagnostic otherwise.
//
//   ./trace_check --trace d.jsonl --metrics m.prom --chrome d.jsonl.chrome.json
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>

#include "lorasched/obs/json.h"
#include "lorasched/obs/trace.h"
#include "lorasched/util/cli.h"

using namespace lorasched;

namespace {

/// Parses a Prometheus text exposition into {metric name -> value},
/// ignoring HELP/TYPE comments and labeled series (histogram buckets).
std::map<std::string, double> parse_exposition(std::istream& in) {
  std::map<std::string, double> values;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line.front() == '#') continue;
    const auto space = line.find(' ');
    if (space == std::string::npos) {
      throw std::runtime_error("exposition line " + std::to_string(lineno) +
                               ": no value");
    }
    const std::string name = line.substr(0, space);
    std::size_t parsed = 0;
    const double value = std::stod(line.substr(space + 1), &parsed);
    if (name.empty()) {
      throw std::runtime_error("exposition line " + std::to_string(lineno) +
                               ": empty metric name");
    }
    // Labeled series (foo_bucket{le="..."}) keep their label string in the
    // key — the cross-check below only reads unlabeled counters.
    values[name] = value;
  }
  return values;
}

[[noreturn]] void fail(const std::string& what) {
  std::cerr << "trace_check: FAIL: " << what << "\n";
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) try {
  const util::Cli cli(argc, argv);
  cli.allow_only({"trace", "metrics", "chrome"});

  // --- Decision JSONL ------------------------------------------------------
  std::ifstream trace_in(cli.get("trace", ""));
  if (!trace_in) fail("cannot open --trace file");
  std::uint64_t records = 0;
  std::uint64_t admitted = 0;
  std::string line;
  int lineno = 0;
  while (std::getline(trace_in, line)) {
    ++lineno;
    if (line.empty()) continue;
    obs::DecisionTraceRecord record;
    try {
      record = obs::parse_decision_line(line);
    } catch (const std::exception& e) {
      fail("trace line " + std::to_string(lineno) + ": " + e.what());
    }
    if (record.candidates.empty()) {
      fail("trace line " + std::to_string(lineno) +
           ": no Alg. 2 candidates recorded");
    }
    if (record.admitted) {
      if (record.chosen < 0 ||
          record.chosen >= static_cast<std::int32_t>(record.candidates.size())) {
        fail("trace line " + std::to_string(lineno) +
             ": admitted without a chosen candidate");
      }
      if (record.duals.empty()) {
        fail("trace line " + std::to_string(lineno) +
             ": admitted without sampled duals");
      }
      const obs::PaymentTrace& pay = record.payment;
      const double total =
          pay.vendor + pay.energy + pay.compute + pay.memory;
      if (std::abs(pay.total - total) > 1e-9 * std::max(1.0, total)) {
        fail("trace line " + std::to_string(lineno) +
             ": payment components do not sum to total");
      }
      if (std::abs(pay.charged - pay.total) >
          1e-9 * std::max(1.0, pay.total)) {
        fail("trace line " + std::to_string(lineno) +
             ": admitted bid not charged the eq. (14) total");
      }
      ++admitted;
    } else if (record.payment.charged != 0.0) {
      fail("trace line " + std::to_string(lineno) + ": rejected bid charged");
    }
    ++records;
  }
  if (records == 0) fail("trace JSONL is empty");

  // --- Prometheus exposition ----------------------------------------------
  std::ifstream metrics_in(cli.get("metrics", ""));
  if (!metrics_in) fail("cannot open --metrics file");
  const auto values = parse_exposition(metrics_in);
  if (values.empty()) fail("metrics exposition is empty");
  const auto expect = [&](const std::string& name, std::uint64_t want) {
    const auto it = values.find(name);
    if (it == values.end()) fail("exposition missing " + name);
    if (static_cast<std::uint64_t>(it->second) != want) {
      std::ostringstream msg;
      msg << name << " = " << it->second << " but the decision log has "
          << want;
      fail(msg.str());
    }
  };
  // With --late clamp every ingested bid reaches the policy, so the JSONL
  // decision log and the service counters must agree exactly.
  expect("service_bids_decided_total", records);
  expect("service_bids_admitted_total", admitted);
  expect("service_bids_rejected_total", records - admitted);

  // --- Chrome trace --------------------------------------------------------
  std::ifstream chrome_in(cli.get("chrome", ""));
  if (!chrome_in) fail("cannot open --chrome file");
  std::ostringstream chrome_text;
  chrome_text << chrome_in.rdbuf();
  obs::Json chrome;
  try {
    chrome = obs::Json::parse(chrome_text.str());
  } catch (const std::exception& e) {
    fail(std::string("chrome trace does not parse: ") + e.what());
  }
  const obs::Json* events = chrome.find("traceEvents");
  if (events == nullptr) fail("chrome trace has no traceEvents member");
  if (events->as_array().empty()) fail("chrome traceEvents is empty");

  std::cout << "trace_check: OK — " << records << " decisions (" << admitted
            << " admitted), " << values.size() << " exposition series, "
            << events->as_array().size() << " trace events\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "trace_check: error: " << e.what() << "\n";
  return 1;
}
