// Multi-model operation: two cluster zones (a GPT-2 zone on A40s and a
// LLaMA-7B zone on A100s), each running its own self-calibrating pdFTSP
// auction — the paper's §2.1 "zones" remark made concrete.
//
//   ./multizone [--seed S] [--tasks N]
#include <cstdio>

#include "lorasched/core/multizone.h"
#include "lorasched/util/cli.h"
#include "lorasched/util/rng.h"

using namespace lorasched;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  cli.allow_only({"seed", "tasks"});
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 5)));
  const long total_tasks = cli.get_int("tasks", 120);
  const Slot horizon = 96;

  ZoneConfig gpt2;
  gpt2.model_name = "gpt2";
  gpt2.base_model_gb = 6.0;
  gpt2.nodes = make_fleet(FleetKind::kA40Only, 4);

  ZoneConfig llama;
  llama.model_name = "llama-7b";
  llama.base_model_gb = 14.0;  // a larger shared base model
  llama.nodes = make_fleet(FleetKind::kA100Only, 4);

  MultiZoneAuction auction({gpt2, llama}, EnergyModel{}, horizon);

  // Synthesize a mixed stream: LLaMA tasks are heavier and bid higher.
  for (TaskId id = 0; id < total_tasks; ++id) {
    Task task;
    task.id = id;
    task.model = rng.bernoulli(0.4) ? 1 : 0;
    task.arrival = static_cast<Slot>(rng.uniform_int(0, horizon - 24));
    task.dataset_samples = rng.uniform(5000.0, 20000.0);
    task.epochs = static_cast<int>(rng.uniform_int(1, 5));
    task.work = task.dataset_samples * task.epochs;
    task.mem_gb = task.model == 1 ? rng.uniform(4.0, 12.0)
                                  : rng.uniform(2.0, 8.0);
    task.compute_share = task.model == 1 ? 0.5 : 0.25;
    task.deadline =
        task.arrival + static_cast<Slot>(rng.uniform_int(8, 23));
    const double cost_anchor = task.work / 2e5;  // rough $ anchor
    task.true_value = cost_anchor * rng.uniform(0.7, 3.2) *
                      (task.model == 1 ? 2.0 : 1.0);
    task.bid = task.true_value;
    (void)auction.submit(task, {});
  }

  std::printf("%-10s %-9s %-9s %-12s %-12s %-10s\n", "zone", "admitted",
              "rejected", "welfare($)", "provider($)", "util");
  for (int zone = 0; zone < auction.zone_count(); ++zone) {
    const Metrics& m = auction.zone_metrics(zone);
    std::printf("%-10s %-9d %-9d %-12.3f %-12.3f %.1f%%\n",
                auction.zone_name(zone).c_str(), m.admitted, m.rejected,
                m.social_welfare, m.provider_utility,
                100.0 * auction.zone_ledger(zone).compute_utilization());
  }
  const Metrics total = auction.total_metrics();
  std::printf("%-10s %-9d %-9d %-12.3f %-12.3f\n", "TOTAL", total.admitted,
              total.rejected, total.social_welfare, total.provider_utility);
  return 0;
}
