// Capacity planning with the auction as the demand model: sweep the fleet
// size for a fixed workload and find where additional GPUs stop paying for
// themselves — the provider-side question the paper's Fig. 4 hints at.
//
//   ./capacity_planning [--rate R] [--seeds N] [--max-nodes M]
#include <iostream>
#include <vector>

#include "lorasched/experiments/runner.h"
#include "lorasched/util/cli.h"
#include "lorasched/util/table.h"

using namespace lorasched;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  cli.allow_only({"rate", "seeds", "max-nodes"});
  const double rate = cli.get_double("rate", 6.0);
  const int seeds = static_cast<int>(cli.get_int("seeds", 3));
  const int max_nodes = static_cast<int>(cli.get_int("max-nodes", 24));

  std::cout << "Fleet sizing under a fixed workload (" << rate
            << " tasks/slot), pdFTSP auction:\n\n";

  util::Table table("Marginal value of GPUs",
                    {"nodes", "welfare($)", "provider($)", "admit rate",
                     "util", "marginal welfare/node($)"});
  double prev_welfare = 0.0;
  int prev_nodes = 0;
  for (int nodes = 4; nodes <= max_nodes; nodes *= 2) {
    ScenarioConfig config;
    config.nodes = nodes;
    config.horizon = 96;
    config.arrival_rate = rate;
    std::vector<std::uint64_t> seed_list;
    for (int s = 0; s < seeds; ++s) {
      seed_list.push_back(100 + static_cast<std::uint64_t>(s));
    }
    RunSet only_pdftsp;
    only_pdftsp.titan = only_pdftsp.eft = only_pdftsp.ntm = false;
    const auto results =
        compare_policies_averaged(config, seed_list, only_pdftsp);
    const Metrics& m = results.front().metrics;
    const double admit_rate =
        static_cast<double>(m.admitted) /
        std::max(1, m.admitted + m.rejected);
    const double marginal =
        prev_nodes == 0
            ? 0.0
            : (m.social_welfare - prev_welfare) / (nodes - prev_nodes);
    table.add_row({std::to_string(nodes),
                   util::Table::num(m.social_welfare, 2),
                   util::Table::num(m.provider_utility, 2),
                   util::Table::pct(admit_rate), util::Table::pct(m.utilization),
                   prev_nodes == 0 ? "-" : util::Table::num(marginal, 2)});
    prev_welfare = m.social_welfare;
    prev_nodes = nodes;
  }
  table.print(std::cout);
  std::cout << "\nWhen the marginal welfare per added node falls below your "
               "amortized GPU cost, stop buying.\n";
  return 0;
}
