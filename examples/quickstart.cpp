// Quickstart: build a tiny cluster, submit a handful of LoRA fine-tuning
// bids, and watch the pdFTSP auction decide, schedule, and price each one.
//
//   ./quickstart [--seed N]
#include <cstdio>
#include <iostream>

#include "lorasched/core/pdftsp.h"
#include "lorasched/experiments/scenario.h"
#include "lorasched/sim/engine.h"
#include "lorasched/util/cli.h"

using namespace lorasched;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  cli.allow_only({"seed"});

  // A small cloud: 4 GPUs (2x A100, 2x A40) sharing one GPT-2-sized base
  // model (r_b = 6 GB), half a day of 10-minute slots.
  ScenarioConfig config;
  config.nodes = 4;
  config.fleet = FleetKind::kHybrid;
  config.horizon = 72;
  config.arrival_rate = 0.4;  // a light trickle so each decision is visible
  config.vendors = 3;
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));
  const Instance instance = make_instance(config);

  std::printf("Cluster: %d nodes, %.0f samples/slot total, base model %.0f GB\n",
              instance.cluster.node_count(),
              instance.cluster.total_compute_per_slot(),
              instance.cluster.base_model_gb());
  std::printf("Submitting %zu fine-tuning bids over %d slots...\n\n",
              instance.tasks.size(), instance.horizon);

  Pdftsp policy(pdftsp_config_for(instance), instance.cluster, instance.energy,
                instance.horizon);
  const SimResult result = run_simulation(instance, policy);

  std::printf("%-5s %-7s %-9s %-9s %-8s %-9s %-7s %s\n", "task", "arrive",
              "deadline", "bid($)", "admit", "pay($)", "vendor", "plan");
  for (const TaskOutcome& o : result.outcomes) {
    const Task& task = instance.tasks[static_cast<std::size_t>(o.task)];
    std::printf("%-5d %-7d %-9d %-9.3f %-8s %-9.3f %-7d ", o.task, o.arrival,
                task.deadline, o.bid, o.admitted ? "yes" : "no", o.payment,
                o.vendor);
    if (o.admitted) {
      std::printf("%d slots, done @ slot %d", o.slots_used, o.completion);
    } else {
      std::printf("-");
    }
    std::printf("\n");
  }

  const Metrics& m = result.metrics;
  std::printf("\nSocial welfare:     %8.3f $\n", m.social_welfare);
  std::printf("Provider utility:   %8.3f $\n", m.provider_utility);
  std::printf("User utility:       %8.3f $\n", m.user_utility);
  std::printf("Admitted/rejected:  %d / %d\n", m.admitted, m.rejected);
  std::printf("Fleet utilization:  %.1f%%\n", 100.0 * m.utilization);
  return 0;
}
