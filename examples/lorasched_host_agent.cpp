// lorasched_host_agent — the worker process of the distributed control
// plane (DESIGN.md §11). It loads the same scenario as the cluster leader,
// binds a loopback TCP port, and serves shard assignments: each
// AssignShard from the leader builds an in-process ShardRunner whose
// rounds are driven entirely over the wire.
//
//   ./lorasched_host_agent --port 7701 &
//   ./lorasched_host_agent --port 7702 &
//   ./lorasched_cluster_leader --agents 127.0.0.1:7701,127.0.0.1:7702
//       --bids bids.txt --shards 4 --slot-ms 0
//
// The agent and leader MUST be launched with the same --scenario/--seed:
// the Hello handshake compares environment digests and refuses mismatched
// pairs. The process exits when the leader sends Shutdown (leader flag
// --shutdown-agents) or on SIGINT/SIGTERM.
//
// Observability (DESIGN.md §12): --metrics-out rewrites the Prometheus
// exposition of the agent and per-shard registries every --metrics-every
// seconds (SIGUSR1 forces a dump), --push-ms streams cumulative metric
// snapshots to the leader's federated registry, and --http-port serves
// /metrics and /healthz for a local scraper.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>

#include "lorasched/experiments/scenario.h"
#include "lorasched/io/serialize.h"
#include "lorasched/net/host_agent.h"
#include "lorasched/net/http.h"
#include "lorasched/util/cli.h"

using namespace lorasched;

namespace {

net::HostAgent* g_agent = nullptr;
volatile std::sig_atomic_t g_dump_requested = 0;

void on_signal(int) {
  if (g_agent != nullptr) g_agent->stop();
}

void on_sigusr1(int) { g_dump_requested = 1; }

}  // namespace

int main(int argc, char** argv) try {
  const util::Cli cli(argc, argv);
  cli.allow_only({"scenario", "seed", "port", "ping-ms", "idle-ms", "name",
                  "push-ms", "metrics-out", "metrics-every", "http-port"});

  ScenarioConfig config;
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  if (cli.has("scenario")) {
    std::ifstream in(cli.get("scenario", ""));
    if (!in) throw std::runtime_error("cannot open scenario file");
    config = io::read_scenario(in);
  }
  Instance env = make_instance(config);

  net::HostAgent::Config agent_config;
  agent_config.port = static_cast<std::uint16_t>(cli.get_int("port", 7701));
  agent_config.ping_interval =
      std::chrono::milliseconds(cli.get_int("ping-ms", 200));
  agent_config.idle_timeout =
      std::chrono::milliseconds(cli.get_int("idle-ms", 5000));
  agent_config.name =
      cli.get("name", "agent-" + std::to_string(agent_config.port));
  agent_config.metrics_push_interval =
      std::chrono::milliseconds(cli.get_int("push-ms", 0));

  net::HostAgent agent(std::move(env), agent_config);
  agent.start();
  g_agent = &agent;
  std::signal(SIGINT, &on_signal);
  std::signal(SIGTERM, &on_signal);
  std::signal(SIGUSR1, &on_sigusr1);
  std::cerr << "host-agent " << agent_config.name << " listening on 127.0.0.1:"
            << agent.port() << "\n";

  const std::string metrics_path = cli.get("metrics-out", "");
  const auto metrics_every =
      std::chrono::seconds(cli.get_int("metrics-every", 0));
  const auto dump_metrics = [&] {
    std::ostringstream text;
    agent.write_metrics(text);
    if (metrics_path.empty()) {
      std::cerr << text.str();
      return;
    }
    const std::string tmp = metrics_path + ".tmp";
    {
      std::ofstream out(tmp);
      if (!out) throw std::runtime_error("cannot write metrics file");
      out << text.str();
      if (!out.flush()) throw std::runtime_error("metrics write failed");
    }
    if (std::rename(tmp.c_str(), metrics_path.c_str()) != 0) {
      throw std::runtime_error("cannot replace metrics file");
    }
  };

  std::unique_ptr<net::HttpServer> http;
  if (cli.has("http-port")) {
    http = std::make_unique<net::HttpServer>(
        static_cast<std::uint16_t>(cli.get_int("http-port", 0)));
    http->handle("/metrics", [&agent] {
      std::ostringstream text;
      agent.write_metrics(text);
      return net::HttpResponse{200, "text/plain; version=0.0.4; charset=utf-8",
                               text.str()};
    });
    http->handle("/healthz", [&agent, &agent_config] {
      std::ostringstream text;
      text << "name: " << agent_config.name << "\n"
           << "status: " << (agent.running() ? "serving" : "stopped") << "\n"
           << "sessions: " << agent.sessions_served() << "\n"
           << "shards:";
      for (const int shard : agent.assigned_shards()) text << " " << shard;
      text << "\n";
      return net::HttpResponse{200, "text/plain; charset=utf-8", text.str()};
    });
    http->start();
    std::cerr << "http endpoint on 127.0.0.1:" << http->port()
              << " (/metrics /healthz)\n";
  }

  // Poll instead of agent.wait() so SIGUSR1 and the periodic dump run on
  // the main thread (signal handlers only set a flag).
  auto last_dump = std::chrono::steady_clock::now();
  while (agent.running()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (g_dump_requested != 0) {
      g_dump_requested = 0;
      dump_metrics();
    }
    const auto now = std::chrono::steady_clock::now();
    if (metrics_every.count() > 0 && now - last_dump >= metrics_every) {
      last_dump = now;
      dump_metrics();
    }
  }
  agent.wait();
  if (http != nullptr) http->stop();
  if (!metrics_path.empty() || metrics_every.count() > 0) dump_metrics();
  std::cerr << "host-agent stopped after " << agent.sessions_served()
            << " leader session(s)\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
