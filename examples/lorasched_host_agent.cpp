// lorasched_host_agent — the worker process of the distributed control
// plane (DESIGN.md §11). It loads the same scenario as the cluster leader,
// binds a loopback TCP port, and serves shard assignments: each
// AssignShard from the leader builds an in-process ShardRunner whose
// rounds are driven entirely over the wire.
//
//   ./lorasched_host_agent --port 7701 &
//   ./lorasched_host_agent --port 7702 &
//   ./lorasched_cluster_leader --agents 127.0.0.1:7701,127.0.0.1:7702
//       --bids bids.txt --shards 4 --slot-ms 0
//
// The agent and leader MUST be launched with the same --scenario/--seed:
// the Hello handshake compares environment digests and refuses mismatched
// pairs. The process exits when the leader sends Shutdown (leader flag
// --shutdown-agents) or on SIGINT/SIGTERM.
#include <chrono>
#include <csignal>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>

#include "lorasched/experiments/scenario.h"
#include "lorasched/io/serialize.h"
#include "lorasched/net/host_agent.h"
#include "lorasched/util/cli.h"

using namespace lorasched;

namespace {

net::HostAgent* g_agent = nullptr;

void on_signal(int) {
  if (g_agent != nullptr) g_agent->stop();
}

}  // namespace

int main(int argc, char** argv) try {
  const util::Cli cli(argc, argv);
  cli.allow_only({"scenario", "seed", "port", "ping-ms", "idle-ms"});

  ScenarioConfig config;
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  if (cli.has("scenario")) {
    std::ifstream in(cli.get("scenario", ""));
    if (!in) throw std::runtime_error("cannot open scenario file");
    config = io::read_scenario(in);
  }
  Instance env = make_instance(config);

  net::HostAgent::Config agent_config;
  agent_config.port = static_cast<std::uint16_t>(cli.get_int("port", 7701));
  agent_config.ping_interval =
      std::chrono::milliseconds(cli.get_int("ping-ms", 200));
  agent_config.idle_timeout =
      std::chrono::milliseconds(cli.get_int("idle-ms", 5000));

  net::HostAgent agent(std::move(env), agent_config);
  agent.start();
  g_agent = &agent;
  std::signal(SIGINT, &on_signal);
  std::signal(SIGTERM, &on_signal);
  std::cerr << "host-agent listening on 127.0.0.1:" << agent.port() << "\n";
  agent.wait();
  std::cerr << "host-agent stopped after " << agent.sessions_served()
            << " leader session(s)\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
