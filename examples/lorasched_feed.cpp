// lorasched_feed — bid-stream driver for lorasched_serve.
//
// Materializes a scenario's arrival sequence and emits it as line-delimited
// bids, either all at once (--export, for file-based replay) or paced slot
// by slot onto stdout so a pipe into lorasched_serve exercises real-time
// ingestion:
//
//   ./lorasched_feed --export bids.txt --seed 7
//   ./lorasched_feed --slot-ms 100 --seed 7 | ./lorasched_serve --slot-ms 100 --seed 7
#include <chrono>
#include <fstream>
#include <iostream>
#include <stdexcept>

#include "lorasched/experiments/scenario.h"
#include "lorasched/io/serialize.h"
#include "lorasched/loadgen/arrival.h"
#include "lorasched/util/cli.h"

using namespace lorasched;

int main(int argc, char** argv) try {
  const util::Cli cli(argc, argv);
  cli.allow_only({"scenario", "seed", "export", "slot-ms"});

  ScenarioConfig config;
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  if (cli.has("scenario")) {
    std::ifstream in(cli.get("scenario", ""));
    if (!in) throw std::runtime_error("cannot open scenario file");
    config = io::read_scenario(in);
  }
  const Instance instance = make_instance(config);

  if (cli.has("export")) {
    std::ofstream out(cli.get("export", ""));
    if (!out) throw std::runtime_error("cannot open export file");
    for (const Task& task : instance.tasks) {
      out << io::format_bid_line(task) << '\n';
    }
    std::cerr << "exported " << instance.tasks.size() << " bids to "
              << cli.get("export", "") << "\n";
    return 0;
  }

  // Paced emission: bids leave during their arrival slot, so the consumer's
  // slot clock (same --slot-ms) sees them exactly when the simulator would.
  const auto slot_period =
      std::chrono::milliseconds(cli.get_int("slot-ms", 0));
  const std::size_t fed = loadgen::pace_bids(
      instance.tasks, slot_period,
      [](const Task& task) { std::cout << io::format_bid_line(task) << '\n'; },
      [](Slot) { std::cout.flush(); });
  std::cerr << "fed " << fed << " bids over " << instance.horizon
            << " slots\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
