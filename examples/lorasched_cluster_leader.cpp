// lorasched_cluster_leader — the leader process of the distributed control
// plane (DESIGN.md §11). The same CLI surface as lorasched_shard_serve
// (bid ingestion, slot pacing, checkpoints, metrics), but the K pdFTSP
// shards run inside lorasched_host_agent processes reached over the binary
// wire protocol: shard i is served by agent i mod A.
//
//   ./lorasched_host_agent --port 7701 &
//   ./lorasched_host_agent --port 7702 &
//   ./lorasched_cluster_leader --agents 127.0.0.1:7701,127.0.0.1:7702
//       --bids bids.txt --shards 4 --slot-ms 0 --out outcomes.csv
//       --shutdown-agents
//
// Decisions, payments, and welfare are bit-identical to an in-process
// ShardedService with the same K and config (test_net and the CI smoke pin
// this). A crashed agent is detected by heartbeat; its shards' bids fail
// over to live shards and the run completes degraded instead of hanging.
// --checkpoint-every 1 keeps every shard's leader-side state cache fresh,
// which lets a between-round reconnect resume bit-identically.
//
// Observability (DESIGN.md §12): agents launched with --push-ms stream
// cumulative metric snapshots that the leader merges into a federated
// registry (series labeled agent/shard); --http-port serves /metrics
// (federated exposition), /healthz (per-agent link liveness), and /tracez;
// --trace-out writes one merged Chrome trace where each agent's decision
// spans parent to the leader's per-round bid spans. All of it is
// observation-only — decisions are bit-identical with everything on or off
// (SIGUSR1 forces a --metrics-out dump, as in lorasched_shard_serve).
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "lorasched/core/online_params.h"
#include "lorasched/experiments/scenario.h"
#include "lorasched/io/serialize.h"
#include "lorasched/net/firehose_ingest.h"
#include "lorasched/net/http.h"
#include "lorasched/net/remote_shard.h"
#include "lorasched/obs/cluster_trace.h"
#include "lorasched/obs/federation.h"
#include "lorasched/service/slot_clock.h"
#include "lorasched/shard/sharded_service.h"
#include "lorasched/util/cli.h"

using namespace lorasched;

namespace {

/// "host:port,host:port" -> endpoint list (bare "port" implies loopback).
std::vector<std::pair<std::string, std::uint16_t>> parse_agents(
    const std::string& spec) {
  std::vector<std::pair<std::string, std::uint16_t>> endpoints;
  std::istringstream in(spec);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (item.empty()) continue;
    const auto colon = item.rfind(':');
    std::string host = "127.0.0.1";
    std::string port = item;
    if (colon != std::string::npos) {
      host = item.substr(0, colon);
      port = item.substr(colon + 1);
    }
    const int parsed = std::stoi(port);
    if (parsed <= 0 || parsed > 65535) {
      throw std::invalid_argument("bad agent port in --agents: " + item);
    }
    endpoints.emplace_back(host, static_cast<std::uint16_t>(parsed));
  }
  if (endpoints.empty()) {
    throw std::invalid_argument("--agents needs at least one host:port");
  }
  return endpoints;
}

volatile std::sig_atomic_t g_dump_requested = 0;

void on_sigusr1(int) { g_dump_requested = 1; }

}  // namespace

int main(int argc, char** argv) try {
  const util::Cli cli(argc, argv);
  cli.allow_only({"scenario", "seed", "shards", "reroute", "router-seed",
                  "bids", "slot-ms", "queue-cap", "backpressure", "late",
                  "checkpoint", "checkpoint-every", "resume", "out", "verbose",
                  "metrics-out", "metrics-every", "agents", "rpc-timeout-ms",
                  "heartbeat-ms", "timing", "shutdown-agents", "http-port",
                  "trace-out", "ingest-port", "ingest-clients"});

  ScenarioConfig config;
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  if (cli.has("scenario")) {
    std::ifstream in(cli.get("scenario", ""));
    if (!in) throw std::runtime_error("cannot open scenario file");
    config = io::read_scenario(in);
  }
  const Instance env = make_instance(config);

  shard::ShardedConfig sharded_config;
  sharded_config.shards = cli.get_int("shards", 4);
  sharded_config.reroute_attempts = cli.get_int("reroute", 1);
  sharded_config.router_seed =
      static_cast<std::uint64_t>(cli.get_int("router-seed", 0));
  sharded_config.queue_capacity =
      static_cast<std::size_t>(cli.get_int("queue-cap", 4096));
  sharded_config.time_decisions = cli.get_bool("timing", true);
  const std::string backpressure = cli.get("backpressure", "block");
  if (backpressure == "block") {
    sharded_config.backpressure = service::BackpressureMode::kBlock;
  } else if (backpressure == "reject") {
    sharded_config.backpressure = service::BackpressureMode::kReject;
  } else {
    throw std::invalid_argument("backpressure must be block|reject");
  }
  const std::string late = cli.get("late", "clamp");
  if (late == "clamp") {
    sharded_config.late_bids = service::LateBidMode::kClamp;
  } else if (late == "reject") {
    sharded_config.late_bids = service::LateBidMode::kReject;
  } else {
    throw std::invalid_argument("late must be clamp|reject");
  }

  // Observability plane (DESIGN.md §12). Declared before the links: the
  // metrics sinks and the transport counters borrow these for the links'
  // whole lifetime.
  obs::MetricsRegistry leader_net;      // leader-side transport counters
  obs::FederatedRegistry federated;     // merged agent pushes, /metrics
  obs::ClusterTraceCollector tracer;    // merged bid trace, --trace-out
  const std::string trace_path = cli.get("trace-out", "");
  if (!trace_path.empty()) sharded_config.tracer = &tracer;

  // One link per agent process, shared by the shards it serves.
  const auto endpoints = parse_agents(cli.get("agents", ""));
  net::HelloMsg hello;
  hello.digest = net::env_digest(env.cluster, env.market, env.horizon);
  hello.nodes = env.cluster.node_count();
  hello.classes = env.cluster.class_count();
  hello.horizon = env.horizon;
  hello.shards_total = sharded_config.shards;
  std::vector<std::shared_ptr<net::AgentLink>> links;
  links.reserve(endpoints.size());
  for (const auto& [host, port] : endpoints) {
    net::LinkConfig link_config;
    link_config.host = host;
    link_config.port = port;
    link_config.heartbeat_timeout =
        std::chrono::milliseconds(cli.get_int("heartbeat-ms", 2000));
    link_config.rpc_timeout =
        std::chrono::milliseconds(cli.get_int("rpc-timeout-ms", 30000));
    link_config.metrics = &leader_net;
    auto link = std::make_shared<net::AgentLink>(link_config, hello);
    link->set_metrics_sink([&federated](net::MetricsSnapshotMsg&& msg) {
      federated.absorb(msg.agent, msg.seq, msg.groups);
    });
    link->connect();
    std::cerr << "connected to host-agent " << host << ":" << port << "\n";
    links.push_back(std::move(link));
  }

  // The same pdFTSP pricing the in-process service would use; each remote
  // handle ships it in its AssignShard.
  const PdftspConfig policy = pdftsp_config_for(env);
  const shard::HandleFactory remote_handles =
      [&](int shard_id, std::vector<NodeId> members,
          const shard::ShardContext& ctx)
      -> std::unique_ptr<shard::ShardHandle> {
    return std::make_unique<net::RemoteShardHandle>(
        links[static_cast<std::size_t>(shard_id) % links.size()], policy,
        shard_id, std::move(members), ctx);
  };
  shard::ShardedService server(env, remote_handles, sharded_config);

  // Wire bid ingest (lorasched_firehose clients), same seam as
  // lorasched_shard_serve: sequenced bids in, decisions back per
  // connection, queue closed once every expected source ended its stream.
  const bool wire_ingest = cli.has("ingest-port");
  std::unique_ptr<net::FirehoseIngest> ingest;
  std::unique_ptr<net::IngestSubscriber> ingest_sub;
  if (wire_ingest) {
    net::FirehoseIngest::Config ingest_config;
    ingest_config.port =
        static_cast<std::uint16_t>(cli.get_int("ingest-port", 0));
    ingest_config.expected_streams = cli.get_int("ingest-clients", 1);
    ingest_config.metrics = &server.registry();
    ingest = std::make_unique<net::FirehoseIngest>(
        ingest_config, [&server](const Task& bid) { return server.submit(bid); },
        [&server] { server.close(); });
    ingest_sub = std::make_unique<net::IngestSubscriber>(*ingest);
    server.add_subscriber(ingest_sub.get());
    std::cerr << "bid ingest on 127.0.0.1:" << ingest->port()
              << " (expecting " << ingest_config.expected_streams
              << " stream(s))\n";
  }

  const std::string metrics_path = cli.get("metrics-out", "");
  const auto metrics_every = cli.get_int("metrics-every", 0);
  const auto dump_metrics = [&] {
    std::ostringstream text;
    server.registry().write_prometheus(text);
    if (metrics_path.empty()) {
      std::cerr << text.str();
      return;
    }
    const std::string tmp = metrics_path + ".tmp";
    {
      std::ofstream out(tmp);
      if (!out) throw std::runtime_error("cannot write metrics file");
      out << text.str();
      if (!out.flush()) throw std::runtime_error("metrics write failed");
    }
    if (std::rename(tmp.c_str(), metrics_path.c_str()) != 0) {
      throw std::runtime_error("cannot replace metrics file");
    }
  };
  std::signal(SIGUSR1, &on_sigusr1);

  std::unique_ptr<net::HttpServer> http;
  std::atomic<std::uint64_t> leader_seq{0};
  if (cli.has("http-port")) {
    http = std::make_unique<net::HttpServer>(
        static_cast<std::uint16_t>(cli.get_int("http-port", 0)));
    http->handle("/metrics", [&] {
      // The leader federates itself like any agent: absorb a fresh
      // cumulative snapshot of its own registries under agent="leader",
      // then emit the one merged document.
      std::vector<obs::MetricsGroup> groups(1);
      groups[0].shard = -1;
      groups[0].metrics = server.registry().snapshot();
      for (obs::MetricSnapshot& metric : leader_net.snapshot()) {
        groups[0].metrics.push_back(std::move(metric));
      }
      federated.absorb("leader", leader_seq.fetch_add(1) + 1, groups);
      std::ostringstream text;
      federated.write_prometheus(text);
      return net::HttpResponse{200, "text/plain; version=0.0.4; charset=utf-8",
                               text.str()};
    });
    http->handle("/healthz", [&] {
      std::ostringstream text;
      for (std::size_t a = 0; a < links.size(); ++a) {
        const net::AgentLink::Health h = links[a]->health();
        text << "agent " << endpoints[a].first << ":" << endpoints[a].second
             << " link=" << (h.open ? "open" : "down") << " last_rx_ms="
             << (h.last_rx_age_ns < 0 ? -1 : h.last_rx_age_ns / 1000000)
             << " reconnects=" << h.reconnects
             << " rpc_timeouts=" << h.rpc_timeouts;
        if (!h.last_error.empty()) text << " error=\"" << h.last_error << "\"";
        text << "\n";
      }
      return net::HttpResponse{200, "text/plain; charset=utf-8", text.str()};
    });
    http->handle("/tracez", [&] {
      std::ostringstream text;
      if (sharded_config.tracer == nullptr) {
        text << "tracing disabled (run with --trace-out)\n";
      } else {
        for (const auto& span : tracer.summaries()) {
          text << span.name << " count=" << span.count
               << " total_ms=" << static_cast<double>(span.total_ns) / 1e6
               << " max_ms=" << static_cast<double>(span.max_ns) / 1e6 << "\n";
        }
      }
      return net::HttpResponse{200, "text/plain; charset=utf-8", text.str()};
    });
    http->start();
    std::cerr << "http endpoint on 127.0.0.1:" << http->port()
              << " (/metrics /healthz /tracez)\n";
  }

  std::unordered_set<TaskId> already_known;
  if (cli.has("resume")) {
    std::ifstream in(cli.get("resume", ""));
    if (!in) throw std::runtime_error("cannot open resume checkpoint");
    const shard::ShardedCheckpoint snapshot = io::read_sharded_checkpoint(in);
    for (const TaskOutcome& outcome : snapshot.outcomes) {
      already_known.insert(outcome.task);
    }
    for (const Task& task : snapshot.pending) already_known.insert(task.id);
    server.restore(snapshot);
    std::cerr << "resumed at slot " << server.current_slot() << "/"
              << server.horizon() << " across " << server.shard_count()
              << " remote shards\n";
  }

  std::atomic<std::uint64_t> fed{0};
  std::atomic<std::uint64_t> shed{0};
  // With wire ingest and no --bids file there is nothing to feed locally —
  // stdin is not consumed.
  std::thread feeder;
  if (!wire_ingest || cli.has("bids")) {
    feeder = std::thread([&] {
      std::ifstream file;
      const std::string bids = cli.get("bids", "-");
      std::istream* in = &std::cin;
      if (bids != "-") {
        file.open(bids);
        if (!file) {
          std::cerr << "error: cannot open bids file " << bids << "\n";
          if (!wire_ingest) server.close();
          return;
        }
        in = &file;
      }
      std::string line;
      while (std::getline(*in, line)) {
        if (line.empty() || line.front() == '#') continue;
        Task bid;
        try {
          bid = io::parse_bid_line(line);
        } catch (const std::exception& e) {
          std::cerr << "skipping malformed bid line: " << e.what() << "\n";
          shed.fetch_add(1);
          continue;
        }
        if (already_known.count(bid.id) != 0) continue;
        const auto result = server.submit(bid);
        if (result == service::SubmitResult::kAccepted) {
          fed.fetch_add(1);
        } else {
          shed.fetch_add(1);
        }
      }
      if (!wire_ingest) server.close();
    });
  }

  const auto slot_period =
      std::chrono::milliseconds(cli.get_int("slot-ms", 0));
  // Under wire ingest the queue closes when every source ended its stream.
  if (slot_period.count() == 0) {
    while (!server.queue().closed() || server.queue().depth() != 0) {
      server.queue().wait_available();
      server.pump();
    }
    if (feeder.joinable()) feeder.join();
  }
  const auto checkpoint_every = cli.get_int("checkpoint-every", 0);
  const std::string checkpoint_path = cli.get("checkpoint", "");
  const service::SlotClock clock(slot_period);
  while (!server.done()) {
    if (!server.idle()) clock.wait_slot_end(server.current_slot());
    server.step();
    if (!checkpoint_path.empty() && checkpoint_every > 0 &&
        server.current_slot() % checkpoint_every == 0) {
      const std::string tmp = checkpoint_path + ".tmp";
      {
        std::ofstream out(tmp);
        if (!out) throw std::runtime_error("cannot write checkpoint");
        io::write_sharded_checkpoint(out, server.checkpoint());
        if (!out.flush()) throw std::runtime_error("checkpoint write failed");
      }
      if (std::rename(tmp.c_str(), checkpoint_path.c_str()) != 0) {
        throw std::runtime_error("cannot replace checkpoint file");
      }
    }
    if (g_dump_requested != 0) {
      g_dump_requested = 0;
      dump_metrics();
    }
    if (metrics_every > 0 && server.current_slot() % metrics_every == 0) {
      dump_metrics();
    }
  }
  if (feeder.joinable()) feeder.join();
  // Flush tail decisions to firehose clients before tearing the links down.
  if (ingest) ingest->stop();

  const auto ops = server.metrics();
  const std::uint64_t rerouted = server.rerouted_bids();
  const std::uint64_t recovered = server.reroute_admits();
  const std::uint64_t failed_over = server.failover_bids();
  const int dead = server.dead_shards();
  const SimResult result = server.finish();
  std::cerr << "served " << fed.load() << " bids (" << shed.load()
            << " shed) on " << server.shard_count() << " remote shards over "
            << links.size() << " agent(s), welfare "
            << result.metrics.social_welfare << "$, admitted "
            << result.metrics.admitted << "/"
            << (result.metrics.admitted + result.metrics.rejected)
            << ", rerouted " << rerouted << " (" << recovered
            << " admitted on a second chance), ingest " << ops.ingest_rate
            << " bids/s\n";
  if (dead > 0) {
    std::cerr << "degraded: " << dead << " shard(s) lost mid-run, "
              << failed_over << " bids failed over to live shards\n";
  }

  if (!metrics_path.empty() || metrics_every > 0 || g_dump_requested != 0) {
    dump_metrics();
  }

  if (cli.has("out")) {
    std::ofstream out(cli.get("out", ""));
    if (!out) throw std::runtime_error("cannot open output file");
    io::write_outcomes_csv(out, result.outcomes);
  }
  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    if (!out) throw std::runtime_error("cannot open trace output file");
    tracer.write_chrome_trace(out);
    std::cerr << "wrote merged cluster trace (" << tracer.events()
              << " spans" << (tracer.dropped() > 0 ? ", some dropped" : "")
              << ") to " << trace_path << "\n";
  }
  if (cli.get_bool("shutdown-agents", false)) {
    for (const auto& link : links) link->send_shutdown();
  }
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
