// lorasched_shard_serve — the sharded admission daemon (DESIGN.md §10).
//
// The sharded sibling of lorasched_serve: the same line-delimited bid
// ingestion, slot pacing, outcome export, and checkpoint/resume workflow,
// but decisions run on a ShardedService — K independent pdFTSP shards, a
// price-aware router, and second-chance re-routing of rejected bids.
//
//   ./lorasched_feed --export bids.txt
//   ./lorasched_shard_serve --bids bids.txt --shards 4 --slot-ms 0
//   ./lorasched_feed --slot-ms 100 |
//       ./lorasched_shard_serve --shards 8 --slot-ms 100
//   ./lorasched_shard_serve --bids bids.txt --shards 4
//       --checkpoint ck.txt --checkpoint-every 12
//   ./lorasched_shard_serve --bids bids.txt --shards 4 --resume ck.txt
//
// A checkpoint pins the shard count and router config; resuming under a
// different --shards/--reroute/--router-seed is rejected rather than
// silently diverging. --metrics-out writes the Prometheus exposition of
// the service registry (rewritten every --metrics-every slots; SIGUSR1
// forces a dump).
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_set>

#include "lorasched/core/online_params.h"
#include "lorasched/experiments/scenario.h"
#include "lorasched/io/serialize.h"
#include "lorasched/net/firehose_ingest.h"
#include "lorasched/net/http.h"
#include "lorasched/service/slot_clock.h"
#include "lorasched/shard/sharded_service.h"
#include "lorasched/util/cli.h"

using namespace lorasched;

namespace {

class LogSubscriber final : public service::DecisionSubscriber {
 public:
  explicit LogSubscriber(bool verbose) : verbose_(verbose) {}

  void on_admitted(const TaskOutcome& outcome,
                   const Schedule& schedule) override {
    if (!verbose_) return;
    std::cerr << "admit task " << outcome.task << " pay " << outcome.payment
              << "$ completes slot " << schedule.completion_slot() << "\n";
  }
  void on_rejected(const TaskOutcome& outcome) override {
    if (!verbose_) return;
    std::cerr << "reject task " << outcome.task << " bid " << outcome.bid
              << "$\n";
  }
  void on_slot_end(const service::SlotReport& report) override {
    if (!verbose_ || report.batch == 0) return;
    std::cerr << "slot " << report.slot << ": batch " << report.batch
              << " queue " << report.queue_depth << " decide "
              << report.decide_seconds * 1e3 << "ms\n";
  }

 private:
  bool verbose_;
};

volatile std::sig_atomic_t g_dump_requested = 0;

void on_sigusr1(int) { g_dump_requested = 1; }

}  // namespace

int main(int argc, char** argv) try {
  const util::Cli cli(argc, argv);
  cli.allow_only({"scenario", "seed", "shards", "reroute", "router-seed",
                  "bids", "slot-ms", "queue-cap", "backpressure", "late",
                  "checkpoint", "checkpoint-every", "resume", "out", "verbose",
                  "metrics-out", "metrics-every", "timing", "http-port",
                  "ingest-port", "ingest-clients", "admission-batch",
                  "batch-workers"});

  ScenarioConfig config;
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  if (cli.has("scenario")) {
    std::ifstream in(cli.get("scenario", ""));
    if (!in) throw std::runtime_error("cannot open scenario file");
    config = io::read_scenario(in);
  }
  const Instance env = make_instance(config);

  shard::ShardedConfig sharded_config;
  sharded_config.shards = cli.get_int("shards", 4);
  sharded_config.reroute_attempts = cli.get_int("reroute", 1);
  sharded_config.router_seed =
      static_cast<std::uint64_t>(cli.get_int("router-seed", 0));
  sharded_config.queue_capacity =
      static_cast<std::size_t>(cli.get_int("queue-cap", 4096));
  sharded_config.time_decisions = cli.get_bool("timing", true);
  const std::string backpressure = cli.get("backpressure", "block");
  if (backpressure == "block") {
    sharded_config.backpressure = service::BackpressureMode::kBlock;
  } else if (backpressure == "reject") {
    sharded_config.backpressure = service::BackpressureMode::kReject;
  } else {
    throw std::invalid_argument("backpressure must be block|reject");
  }
  const std::string late = cli.get("late", "clamp");
  if (late == "clamp") {
    sharded_config.late_bids = service::LateBidMode::kClamp;
  } else if (late == "reject") {
    sharded_config.late_bids = service::LateBidMode::kReject;
  } else {
    throw std::invalid_argument("late must be clamp|reject");
  }

  // One independent pdFTSP per shard, priced for the full scenario (the
  // α/β/κ bounds depend on the bid population, not the partition).
  // Epoch-batched admission (DESIGN.md §5c) applies per shard; decisions
  // stay bit-identical to the one-at-a-time loop at any setting.
  PdftspConfig policy_config = pdftsp_config_for(env);
  policy_config.admission_batch =
      static_cast<int>(cli.get_int("admission-batch", 0));
  policy_config.batch_workers =
      static_cast<int>(cli.get_int("batch-workers", 0));
  shard::ShardedService server(
      env, shard::make_pdftsp_factory(policy_config), sharded_config);
  LogSubscriber log(cli.get_bool("verbose", false));
  server.add_subscriber(&log);

  // Wire bid ingest (lorasched_firehose clients): sequenced bids arrive as
  // kBidSubmit frames and decisions stream back per connection. Once every
  // expected source ends its stream, the quiesce callback closes the queue
  // — so the local feeder must NOT close it when wire ingest is active.
  const bool wire_ingest = cli.has("ingest-port");
  std::unique_ptr<net::FirehoseIngest> ingest;
  std::unique_ptr<net::IngestSubscriber> ingest_sub;
  if (wire_ingest) {
    net::FirehoseIngest::Config ingest_config;
    ingest_config.port =
        static_cast<std::uint16_t>(cli.get_int("ingest-port", 0));
    ingest_config.expected_streams = cli.get_int("ingest-clients", 1);
    ingest_config.metrics = &server.registry();
    ingest = std::make_unique<net::FirehoseIngest>(
        ingest_config, [&server](const Task& bid) { return server.submit(bid); },
        [&server] { server.close(); });
    ingest_sub = std::make_unique<net::IngestSubscriber>(*ingest);
    server.add_subscriber(ingest_sub.get());
    std::cerr << "bid ingest on 127.0.0.1:" << ingest->port()
              << " (expecting " << ingest_config.expected_streams
              << " stream(s))\n";
  }

  const std::string metrics_path = cli.get("metrics-out", "");
  const auto metrics_every = cli.get_int("metrics-every", 0);
  std::signal(SIGUSR1, &on_sigusr1);
  const auto dump_metrics = [&] {
    std::ostringstream text;
    server.registry().write_prometheus(text);
    if (metrics_path.empty()) {
      std::cerr << text.str();
      return;
    }
    const std::string tmp = metrics_path + ".tmp";
    {
      std::ofstream out(tmp);
      if (!out) throw std::runtime_error("cannot write metrics file");
      out << text.str();
      if (!out.flush()) throw std::runtime_error("metrics write failed");
    }
    if (std::rename(tmp.c_str(), metrics_path.c_str()) != 0) {
      throw std::runtime_error("cannot replace metrics file");
    }
  };

  std::unique_ptr<net::HttpServer> http;
  if (cli.has("http-port")) {
    http = std::make_unique<net::HttpServer>(
        static_cast<std::uint16_t>(cli.get_int("http-port", 0)));
    http->handle("/metrics", [&server] {
      std::ostringstream text;
      server.registry().write_prometheus(text);
      return net::HttpResponse{200, "text/plain; version=0.0.4; charset=utf-8",
                               text.str()};
    });
    http->handle("/healthz", [&server] {
      std::ostringstream text;
      text << "status: serving\n"
           << "shards: " << server.shard_count() << "\n"
           << "queue_depth: " << server.queue().depth() << "\n";
      return net::HttpResponse{200, "text/plain; charset=utf-8", text.str()};
    });
    http->start();
    std::cerr << "http endpoint on 127.0.0.1:" << http->port()
              << " (/metrics /healthz)\n";
  }

  std::unordered_set<TaskId> already_known;
  if (cli.has("resume")) {
    std::ifstream in(cli.get("resume", ""));
    if (!in) throw std::runtime_error("cannot open resume checkpoint");
    const shard::ShardedCheckpoint snapshot = io::read_sharded_checkpoint(in);
    for (const TaskOutcome& outcome : snapshot.outcomes) {
      already_known.insert(outcome.task);
    }
    for (const Task& task : snapshot.pending) already_known.insert(task.id);
    server.restore(snapshot);
    std::cerr << "resumed at slot " << server.current_slot() << "/"
              << server.horizon() << " across " << server.shard_count()
              << " shards (" << already_known.size()
              << " bids already ingested)\n";
  }

  std::atomic<std::uint64_t> fed{0};
  std::atomic<std::uint64_t> shed{0};
  // With wire ingest and no --bids file there is nothing to feed locally —
  // stdin is not consumed.
  std::thread feeder;
  if (!wire_ingest || cli.has("bids")) {
    feeder = std::thread([&] {
      std::ifstream file;
      const std::string bids = cli.get("bids", "-");
      std::istream* in = &std::cin;
      if (bids != "-") {
        file.open(bids);
        if (!file) {
          std::cerr << "error: cannot open bids file " << bids << "\n";
          if (!wire_ingest) server.close();
          return;
        }
        in = &file;
      }
      std::string line;
      while (std::getline(*in, line)) {
        if (line.empty() || line.front() == '#') continue;
        Task bid;
        try {
          bid = io::parse_bid_line(line);
        } catch (const std::exception& e) {
          std::cerr << "skipping malformed bid line: " << e.what() << "\n";
          shed.fetch_add(1);
          continue;
        }
        if (already_known.count(bid.id) != 0) continue;
        const auto result = server.submit(bid);
        if (result == service::SubmitResult::kAccepted) {
          fed.fetch_add(1);
        } else {
          shed.fetch_add(1);
        }
      }
      if (!wire_ingest) server.close();
    });
  }

  const auto slot_period =
      std::chrono::milliseconds(cli.get_int("slot-ms", 0));
  // slot-ms 0 = offline replay: pump the whole stream in first (see
  // lorasched_serve for why a plain join would deadlock past --queue-cap).
  // Under wire ingest the queue closes when every source ended its stream.
  if (slot_period.count() == 0) {
    while (!server.queue().closed() || server.queue().depth() != 0) {
      server.queue().wait_available();
      server.pump();
    }
    if (feeder.joinable()) feeder.join();
  }
  const auto checkpoint_every = cli.get_int("checkpoint-every", 0);
  const std::string checkpoint_path = cli.get("checkpoint", "");
  const service::SlotClock clock(slot_period);
  while (!server.done()) {
    if (!server.idle()) clock.wait_slot_end(server.current_slot());
    server.step();
    if (!checkpoint_path.empty() && checkpoint_every > 0 &&
        server.current_slot() % checkpoint_every == 0) {
      const std::string tmp = checkpoint_path + ".tmp";
      {
        std::ofstream out(tmp);
        if (!out) throw std::runtime_error("cannot write checkpoint");
        io::write_sharded_checkpoint(out, server.checkpoint());
        if (!out.flush()) throw std::runtime_error("checkpoint write failed");
      }
      if (std::rename(tmp.c_str(), checkpoint_path.c_str()) != 0) {
        throw std::runtime_error("cannot replace checkpoint file");
      }
    }
    if (g_dump_requested != 0) {
      g_dump_requested = 0;
      dump_metrics();
    }
    if (metrics_every > 0 && server.current_slot() % metrics_every == 0) {
      dump_metrics();
    }
  }
  if (feeder.joinable()) feeder.join();
  // Flush tail decisions to firehose clients before tearing the links down.
  if (ingest) ingest->stop();

  const auto ops = server.metrics();
  const std::uint64_t rerouted = server.rerouted_bids();
  const std::uint64_t recovered = server.reroute_admits();
  const SimResult result = server.finish();
  std::cerr << "served " << fed.load() << " bids (" << shed.load()
            << " shed) on " << server.shard_count() << " shards, welfare "
            << result.metrics.social_welfare << "$, admitted "
            << result.metrics.admitted << "/"
            << (result.metrics.admitted + result.metrics.rejected)
            << ", rerouted " << rerouted << " (" << recovered
            << " admitted on a second chance), ingest " << ops.ingest_rate
            << " bids/s, decide p50 " << ops.decide_p50 * 1e6 << "us p99 "
            << ops.decide_p99 * 1e6 << "us\n";

  if (!metrics_path.empty() || metrics_every > 0 || g_dump_requested != 0) {
    dump_metrics();
  }

  if (cli.has("out")) {
    std::ofstream out(cli.get("out", ""));
    if (!out) throw std::runtime_error("cannot open output file");
    io::write_outcomes_csv(out, result.outcomes);
  }
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
