// One day in the life of a fine-tuning cloud: the paper's full evaluation
// setting (144 x 10-minute slots) with all four algorithms side by side.
//
//   ./cloud_day [--nodes N] [--rate R] [--fleet A100|A40|hybrid]
//               [--trace MLaaS|Philly|Helios] [--seed S]
#include <iostream>
#include <stdexcept>

#include "lorasched/experiments/runner.h"
#include "lorasched/util/cli.h"
#include "lorasched/util/stats.h"
#include "lorasched/util/table.h"

using namespace lorasched;

namespace {

FleetKind parse_fleet(const std::string& name) {
  if (name == "A100") return FleetKind::kA100Only;
  if (name == "A40") return FleetKind::kA40Only;
  if (name == "hybrid") return FleetKind::kHybrid;
  throw std::invalid_argument("unknown fleet: " + name);
}

TraceKind parse_trace(const std::string& name) {
  if (name == "MLaaS") return TraceKind::kMLaaS;
  if (name == "Philly") return TraceKind::kPhilly;
  if (name == "Helios") return TraceKind::kHelios;
  throw std::invalid_argument("unknown trace: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  cli.allow_only({"nodes", "rate", "fleet", "trace", "seed"});

  ScenarioConfig config;
  config.nodes = static_cast<int>(cli.get_int("nodes", 20));
  config.fleet = parse_fleet(cli.get("fleet", "hybrid"));
  config.horizon = 144;
  config.arrival_rate = cli.get_double("rate", 8.0);
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  if (cli.has("trace")) config.trace = parse_trace(cli.get("trace", "MLaaS"));

  const Instance instance = make_instance(config);
  std::cout << "Day-long run: " << config.nodes << " " << to_string(config.fleet)
            << " nodes, " << instance.tasks.size() << " tasks ("
            << (config.trace ? to_string(*config.trace) : std::string("Poisson"))
            << " arrivals)\n\n";

  const auto results = compare_policies(instance, {}, config.seed + 1);

  util::Table table("One-day comparison (paper setting, scaled node count)",
                    {"algorithm", "welfare($)", "normalized", "admitted",
                     "rejected", "util", "avg decide(ms)"});
  for (const PolicyResult& r : results) {
    table.add_row({r.policy, util::Table::num(r.metrics.social_welfare, 2),
                   util::Table::num(r.normalized_welfare, 3),
                   std::to_string(r.metrics.admitted),
                   std::to_string(r.metrics.rejected),
                   util::Table::pct(r.metrics.utilization),
                   util::Table::num(1e3 * util::mean(r.decide_seconds), 3)});
  }
  table.print(std::cout);

  std::cout << "\npdFTSP improvement over each baseline:\n";
  const double best = results.front().metrics.social_welfare;
  for (std::size_t i = 1; i < results.size(); ++i) {
    const double other = results[i].metrics.social_welfare;
    if (other > 0) {
      std::cout << "  vs " << results[i].policy << ": "
                << util::Table::pct(best / other - 1.0) << "\n";
    }
  }
  return 0;
}
