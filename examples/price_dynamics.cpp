// Price and occupancy dynamics over a day: per-slot demand, admissions,
// cumulative welfare, fleet occupancy, mean posted resource prices, and an
// ASCII Gantt of the first nodes — the inner life of the primal-dual
// auction made visible.
//
//   ./price_dynamics [--nodes N] [--rate R] [--seed S]
#include <iostream>

#include "lorasched/core/pdftsp.h"
#include "lorasched/experiments/scenario.h"
#include "lorasched/sim/engine.h"
#include "lorasched/sim/gantt.h"
#include "lorasched/sim/timeseries.h"
#include "lorasched/util/cli.h"
#include "lorasched/util/table.h"

using namespace lorasched;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  cli.allow_only({"nodes", "rate", "seed"});

  ScenarioConfig config;
  config.nodes = static_cast<int>(cli.get_int("nodes", 8));
  config.horizon = 96;
  config.arrival_rate = cli.get_double("rate", 5.0);
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const Instance instance = make_instance(config);

  Pdftsp policy(pdftsp_config_for(instance), instance.cluster, instance.energy,
                instance.horizon);
  const SimResult result = run_simulation(instance, policy);
  const SlotSeries series = build_series(instance, result);

  util::Table table("Per-slot auction dynamics (8-slot buckets)",
                    {"slot", "arrivals", "admitted", "cum welfare($)",
                     "occupancy", "mean λ", "mean φ", "TOU"});
  for (Slot t = 0; t < instance.horizon; t += 8) {
    int arrivals = 0;
    int admitted = 0;
    double occupancy = 0.0;
    double lam = 0.0;
    double phi = 0.0;
    const Slot end = std::min<Slot>(instance.horizon, t + 8);
    for (Slot u = t; u < end; ++u) {
      arrivals += series.arrivals[static_cast<std::size_t>(u)];
      admitted += series.admissions[static_cast<std::size_t>(u)];
      occupancy += series.utilization[static_cast<std::size_t>(u)];
      for (NodeId k = 0; k < instance.cluster.node_count(); ++k) {
        lam += policy.duals().lambda(k, u);
        phi += policy.duals().phi(k, u);
      }
    }
    const double cells =
        static_cast<double>(end - t) * instance.cluster.node_count();
    table.add_row(
        {std::to_string(t) + "-" + std::to_string(end - 1),
         std::to_string(arrivals), std::to_string(admitted),
         util::Table::num(
             series.cumulative_welfare[static_cast<std::size_t>(end - 1)], 1),
         util::Table::pct(occupancy / (end - t)),
         util::Table::num(lam / cells, 3), util::Table::num(phi / cells, 3),
         util::Table::num(instance.energy.tou_multiplier(t + 4), 2)});
  }
  table.print(std::cout);

  std::cout << "\nOccupancy Gantt (first 64 slots):\n";
  GanttOptions gantt;
  gantt.to = std::min<Slot>(instance.horizon, 64);
  gantt.max_nodes = 8;
  std::cout << render_gantt(instance, result, gantt);
  std::cout << "\nFinal: welfare "
            << util::Table::num(result.metrics.social_welfare, 2)
            << "$, admitted " << result.metrics.admitted << "/"
            << (result.metrics.admitted + result.metrics.rejected)
            << ", fleet utilization "
            << util::Table::pct(result.metrics.utilization) << "\n";
  return 0;
}
