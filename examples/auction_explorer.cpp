// Auction mechanics explorer: demonstrates the two economic properties the
// paper proves — truthfulness (Thm. 3) and individual rationality (Thm. 4)
// — on a live instance, by sweeping one user's bid while everyone else
// stays fixed, and by listing bids vs. payments for the winners.
//
//   ./auction_explorer [--seed S] [--sweep-task I]
#include <iostream>

#include "lorasched/core/pdftsp.h"
#include "lorasched/experiments/scenario.h"
#include "lorasched/sim/engine.h"
#include "lorasched/util/cli.h"
#include "lorasched/util/table.h"

using namespace lorasched;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  cli.allow_only({"seed", "sweep-task"});

  ScenarioConfig config;
  config.nodes = 6;
  config.horizon = 72;
  config.arrival_rate = 2.0;
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed", 21));
  const Instance instance = make_instance(config);
  const PdftspConfig pd_config = pdftsp_config_for(instance);

  auto run_with_bid = [&](TaskId victim, double bid) {
    Instance modified = instance;
    modified.tasks[static_cast<std::size_t>(victim)].bid = bid;
    Pdftsp policy(pd_config, modified.cluster, modified.energy,
                  modified.horizon);
    return run_simulation(modified, policy);
  };

  // --- Part 1: bid sweep for one task (the paper's Fig. 10 experiment) ----
  const TaskId victim = static_cast<TaskId>(
      cli.get_int("sweep-task",
                  static_cast<long>(instance.tasks.size()) / 3));
  const Task& task = instance.tasks[static_cast<std::size_t>(victim)];
  std::cout << "Sweeping bids for task " << victim << " (true valuation "
            << util::Table::num(task.true_value, 3) << "$)\n\n";

  util::Table sweep("Utility vs. bid — truthful bidding is optimal",
                    {"bid($)", "won?", "payment($)", "utility($)"});
  for (double factor : {0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 4.0}) {
    const double bid = task.true_value * factor;
    const SimResult result = run_with_bid(victim, bid);
    const TaskOutcome& o = result.outcomes[static_cast<std::size_t>(victim)];
    const double utility = o.admitted ? task.true_value - o.payment : 0.0;
    sweep.add_row({util::Table::num(bid, 3), o.admitted ? "yes" : "no",
                   util::Table::num(o.payment, 3),
                   util::Table::num(utility, 4)});
  }
  sweep.print(std::cout);
  std::cout << "The payment never depends on the bid — only win/lose does.\n\n";

  // --- Part 2: bids vs payments for a sample of winners (Fig. 11) --------
  Pdftsp policy(pd_config, instance.cluster, instance.energy,
                instance.horizon);
  const SimResult base = run_simulation(instance, policy);
  util::Table ir("Individual rationality — payment <= bid for every winner",
                 {"task", "bid($)", "payment($)", "utility($)"});
  int shown = 0;
  for (const TaskOutcome& o : base.outcomes) {
    if (!o.admitted || shown >= 10) continue;
    ++shown;
    ir.add_row({std::to_string(o.task), util::Table::num(o.bid, 3),
                util::Table::num(o.payment, 3),
                util::Table::num(o.true_value - o.payment, 4)});
  }
  ir.print(std::cout);
  return 0;
}
