// Workload replay tool: export a scenario's bid stream, or load a
// previously exported one, run a chosen policy over it, and dump per-task
// outcomes as CSV — the round-trip the io/ module exists for.
//
//   ./replay --export tasks.csv [--scenario scen.txt]       # write workload
//   ./replay --tasks tasks.csv --policy pdFTSP --out o.csv  # replay it
#include <fstream>
#include <iostream>
#include <memory>
#include <stdexcept>

#include "lorasched/baselines/eft.h"
#include "lorasched/baselines/ntm.h"
#include "lorasched/baselines/titan.h"
#include "lorasched/core/online_params.h"
#include "lorasched/core/pdftsp.h"
#include "lorasched/experiments/scenario.h"
#include "lorasched/io/serialize.h"
#include "lorasched/sim/engine.h"
#include "lorasched/util/cli.h"

using namespace lorasched;

namespace {

std::unique_ptr<Policy> make_policy(const std::string& name,
                                    const Instance& instance) {
  if (name == "pdFTSP") {
    return std::make_unique<Pdftsp>(pdftsp_config_for(instance),
                                    instance.cluster, instance.energy,
                                    instance.horizon);
  }
  if (name == "pdFTSP-adaptive") {
    return std::make_unique<AdaptivePdftsp>(OnlineParamEstimator::Config{},
                                            instance.cluster, instance.energy,
                                            instance.horizon);
  }
  if (name == "Titan") return std::make_unique<TitanPolicy>();
  if (name == "EFT") return std::make_unique<EftPolicy>();
  if (name == "NTM") return std::make_unique<NtmPolicy>();
  throw std::invalid_argument("unknown policy: " + name);
}

}  // namespace

int main(int argc, char** argv) try {
  const util::Cli cli(argc, argv);
  cli.allow_only({"export", "scenario", "tasks", "policy", "out", "seed"});

  ScenarioConfig config;
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  if (cli.has("scenario")) {
    std::ifstream in(cli.get("scenario", ""));
    if (!in) throw std::runtime_error("cannot open scenario file");
    config = io::read_scenario(in);
  }

  if (cli.has("export")) {
    const Instance instance = make_instance(config);
    std::ofstream out(cli.get("export", ""));
    if (!out) throw std::runtime_error("cannot open export file");
    io::write_tasks_csv(out, instance.tasks);
    std::cout << "exported " << instance.tasks.size() << " tasks to "
              << cli.get("export", "") << "\n";
    return 0;
  }

  Instance instance = make_instance(config);
  if (cli.has("tasks")) {
    std::ifstream in(cli.get("tasks", ""));
    if (!in) throw std::runtime_error("cannot open tasks file");
    instance.tasks = io::read_tasks_csv(in);
    std::cout << "loaded " << instance.tasks.size() << " tasks\n";
  }

  const std::string policy_name = cli.get("policy", "pdFTSP");
  auto policy = make_policy(policy_name, instance);
  const SimResult result = run_simulation(instance, *policy);
  std::cout << policy_name << ": welfare " << result.metrics.social_welfare
            << "$, admitted " << result.metrics.admitted << "/"
            << (result.metrics.admitted + result.metrics.rejected) << "\n";

  if (cli.has("out")) {
    std::ofstream out(cli.get("out", ""));
    if (!out) throw std::runtime_error("cannot open output file");
    io::write_outcomes_csv(out, result.outcomes);
    std::cout << "outcomes written to " << cli.get("out", "") << "\n";
  }
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
