// lorasched_serve — the long-running admission daemon.
//
// Reads line-delimited bids (io::format_bid_line records) from stdin or a
// file, streams them into an AdmissionService over the scenario's cluster,
// and decides each slot on a configurable slot period (replay speed). The
// service can checkpoint every N slots and resume from a checkpoint file,
// so a killed daemon continues mid-horizon with bit-identical decisions.
//
//   ./lorasched_feed --export bids.txt
//   ./lorasched_serve --bids bids.txt --slot-ms 0 --out outcomes.csv
//   ./lorasched_feed --slot-ms 100 | ./lorasched_serve --slot-ms 100
//   ./lorasched_serve --bids bids.txt --checkpoint ck.txt --checkpoint-every 12
//   ./lorasched_serve --bids bids.txt --resume ck.txt
//
// Observability (DESIGN.md §8):
//   --trace-out d.jsonl     per-bid decision trace (JSONL) + profiling
//                           spans; also writes d.jsonl.chrome.json, a
//                           Chrome trace-event timeline for Perfetto
//   --metrics-out m.prom    Prometheus text exposition of the service
//                           registry, rewritten every --metrics-every
//                           slots (default 0 = only at exit) and on
//                           SIGUSR1 (kill -USR1 <pid> for an on-demand
//                           dump of a live daemon)
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_set>

#include "lorasched/core/online_params.h"
#include "lorasched/core/pdftsp.h"
#include "lorasched/experiments/scenario.h"
#include "lorasched/io/serialize.h"
#include "lorasched/obs/span.h"
#include "lorasched/obs/trace.h"
#include "lorasched/service/admission_service.h"
#include "lorasched/service/slot_clock.h"
#include "lorasched/util/cli.h"

using namespace lorasched;

namespace {

/// Logs every decision to stderr — a demo subscriber (billing/executor
/// stand-in); stdout stays clean for piped workflows.
class LogSubscriber final : public service::DecisionSubscriber {
 public:
  explicit LogSubscriber(bool verbose) : verbose_(verbose) {}

  void on_admitted(const TaskOutcome& outcome,
                   const Schedule& schedule) override {
    if (!verbose_) return;
    std::cerr << "admit task " << outcome.task << " pay " << outcome.payment
              << "$ completes slot " << schedule.completion_slot() << "\n";
  }
  void on_rejected(const TaskOutcome& outcome) override {
    if (!verbose_) return;
    std::cerr << "reject task " << outcome.task << " bid " << outcome.bid
              << "$\n";
  }
  void on_slot_end(const service::SlotReport& report) override {
    if (!verbose_ || report.batch == 0) return;
    std::cerr << "slot " << report.slot << ": batch " << report.batch
              << " queue " << report.queue_depth << " decide "
              << report.decide_seconds * 1e3 << "ms\n";
  }

 private:
  bool verbose_;
};

/// SIGUSR1 flags an on-demand metrics dump; the slot loop polls it (the
/// handler itself only flips the flag — async-signal-safe).
volatile std::sig_atomic_t g_dump_requested = 0;

void on_sigusr1(int) { g_dump_requested = 1; }

std::unique_ptr<Policy> make_policy(const std::string& name,
                                    const Instance& instance,
                                    int admission_batch, int batch_workers) {
  if (name == "pdFTSP") {
    PdftspConfig config = pdftsp_config_for(instance);
    config.admission_batch = admission_batch;
    config.batch_workers = batch_workers;
    return std::make_unique<Pdftsp>(config, instance.cluster, instance.energy,
                                    instance.horizon);
  }
  if (admission_batch != 0 || batch_workers != 0) {
    throw std::invalid_argument(
        "--admission-batch/--batch-workers require --policy pdFTSP");
  }
  if (name == "pdFTSP-adaptive") {
    return std::make_unique<AdaptivePdftsp>(OnlineParamEstimator::Config{},
                                            instance.cluster, instance.energy,
                                            instance.horizon);
  }
  throw std::invalid_argument("unknown (or non-checkpointable) policy: " +
                              name);
}

}  // namespace

int main(int argc, char** argv) try {
  const util::Cli cli(argc, argv);
  cli.allow_only({"scenario", "seed", "policy", "bids", "slot-ms", "queue-cap",
                  "backpressure", "late", "checkpoint", "checkpoint-every",
                  "resume", "out", "verbose", "trace-out", "metrics-out",
                  "metrics-every", "admission-batch", "batch-workers"});

  ScenarioConfig config;
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  if (cli.has("scenario")) {
    std::ifstream in(cli.get("scenario", ""));
    if (!in) throw std::runtime_error("cannot open scenario file");
    config = io::read_scenario(in);
  }
  const Instance env = make_instance(config);
  // Epoch-batched admission (DESIGN.md §5c): decisions are bit-identical to
  // the one-at-a-time loop at any batch/worker setting.
  const auto policy = make_policy(
      cli.get("policy", "pdFTSP"), env,
      static_cast<int>(cli.get_int("admission-batch", 0)),
      static_cast<int>(cli.get_int("batch-workers", 0)));

  service::ServiceConfig service_config;
  service_config.queue_capacity =
      static_cast<std::size_t>(cli.get_int("queue-cap", 4096));
  const std::string backpressure = cli.get("backpressure", "block");
  if (backpressure == "block") {
    service_config.backpressure = service::BackpressureMode::kBlock;
  } else if (backpressure == "reject") {
    service_config.backpressure = service::BackpressureMode::kReject;
  } else {
    throw std::invalid_argument("backpressure must be block|reject");
  }
  const std::string late = cli.get("late", "clamp");
  if (late == "clamp") {
    service_config.late_bids = service::LateBidMode::kClamp;
  } else if (late == "reject") {
    service_config.late_bids = service::LateBidMode::kReject;
  } else {
    throw std::invalid_argument("late must be clamp|reject");
  }

  service::AdmissionService server(env, *policy, service_config);
  LogSubscriber log(cli.get_bool("verbose", false));
  server.add_subscriber(&log);

  // Observability: decision trace (JSONL + Chrome trace) and metrics dumps.
  const std::string trace_path = cli.get("trace-out", "");
  std::ofstream trace_stream;
  std::unique_ptr<obs::DecisionTracer> tracer;
  obs::Traceable* traceable = nullptr;
  if (!trace_path.empty()) {
    traceable = dynamic_cast<obs::Traceable*>(policy.get());
    if (traceable == nullptr) {
      throw std::invalid_argument("policy does not support --trace-out");
    }
    trace_stream.open(trace_path);
    if (!trace_stream) throw std::runtime_error("cannot open trace file");
    tracer = std::make_unique<obs::DecisionTracer>(&trace_stream);
    traceable->set_trace_sink(tracer.get());
    obs::Profiler::instance().set_enabled(true);
    obs::Profiler::instance().set_timeline(true);
  }

  const std::string metrics_path = cli.get("metrics-out", "");
  const auto metrics_every = cli.get_int("metrics-every", 0);
  std::signal(SIGUSR1, &on_sigusr1);
  const auto dump_metrics = [&] {
    std::ostringstream text;
    server.registry().write_prometheus(text);
    if (metrics_path.empty()) {
      std::cerr << text.str();
      return;
    }
    // Write-then-rename, same as checkpoints: a scraper never reads a
    // half-written exposition.
    const std::string tmp = metrics_path + ".tmp";
    {
      std::ofstream out(tmp);
      if (!out) throw std::runtime_error("cannot write metrics file");
      out << text.str();
      if (!out.flush()) throw std::runtime_error("metrics write failed");
    }
    if (std::rename(tmp.c_str(), metrics_path.c_str()) != 0) {
      throw std::runtime_error("cannot replace metrics file");
    }
  };

  // Bids the checkpoint already accounts for (decided or still pending);
  // the feeder skips them so replaying the same bid file after a resume
  // does not double-submit.
  std::unordered_set<TaskId> already_known;
  if (cli.has("resume")) {
    std::ifstream in(cli.get("resume", ""));
    if (!in) throw std::runtime_error("cannot open resume checkpoint");
    const service::Checkpoint snapshot = io::read_checkpoint(in);
    for (const TaskOutcome& outcome : snapshot.outcomes) {
      already_known.insert(outcome.task);
    }
    for (const Task& task : snapshot.pending) already_known.insert(task.id);
    server.restore(snapshot);
    std::cerr << "resumed at slot " << server.current_slot() << "/"
              << server.horizon() << " (" << already_known.size()
              << " bids already ingested)\n";
  }

  // Ingestion thread: stdin or a bid file, one bid per line.
  std::atomic<std::uint64_t> fed{0};
  std::atomic<std::uint64_t> shed{0};
  std::thread feeder([&] {
    std::ifstream file;
    const std::string bids = cli.get("bids", "-");
    std::istream* in = &std::cin;
    if (bids != "-") {
      file.open(bids);
      if (!file) {
        std::cerr << "error: cannot open bids file " << bids << "\n";
        server.close();
        return;
      }
      in = &file;
    }
    std::string line;
    while (std::getline(*in, line)) {
      if (line.empty() || line.front() == '#') continue;
      Task bid;
      try {
        bid = io::parse_bid_line(line);
      } catch (const std::exception& e) {
        // One garbled line must not take the daemon down.
        std::cerr << "skipping malformed bid line: " << e.what() << "\n";
        shed.fetch_add(1);
        continue;
      }
      if (already_known.count(bid.id) != 0) continue;
      const auto result = server.submit(bid);
      if (result == service::SubmitResult::kAccepted) {
        fed.fetch_add(1);
      } else {
        shed.fetch_add(1);
      }
    }
    server.close();
  });

  // Slot loop (consumer thread = main), with periodic checkpoints.
  const auto slot_period =
      std::chrono::milliseconds(cli.get_int("slot-ms", 0));
  // slot-ms 0 is offline replay: ingest the whole stream first, then decide
  // every slot back to back. Racing the unpaced loop against the feeder
  // would otherwise let the horizon finish mid-ingestion on a loaded
  // machine, leaving an arbitrary suffix of bids undecided. A plain
  // feeder.join() would deadlock once the bid file outgrows --queue-cap
  // under the default block backpressure (the feeder waits for a drain
  // that join() prevents), so pump the queue into the service while the
  // feeder runs — pump() absorbs bids without deciding anything.
  if (slot_period.count() == 0) {
    while (!server.queue().closed() || server.queue().depth() != 0) {
      server.queue().wait_available();
      server.pump();
    }
    feeder.join();
  }
  const auto checkpoint_every = cli.get_int("checkpoint-every", 0);
  const std::string checkpoint_path = cli.get("checkpoint", "");
  const service::SlotClock clock(slot_period);
  while (!server.done()) {
    if (!server.idle()) clock.wait_slot_end(server.current_slot());
    server.step();
    if (!checkpoint_path.empty() && checkpoint_every > 0 &&
        server.current_slot() % checkpoint_every == 0) {
      // Write-then-rename so a kill mid-write never leaves a truncated
      // checkpoint behind — the previous complete one survives.
      const std::string tmp = checkpoint_path + ".tmp";
      {
        std::ofstream out(tmp);
        if (!out) throw std::runtime_error("cannot write checkpoint");
        io::write_checkpoint(out, server.checkpoint());
        if (!out.flush()) throw std::runtime_error("checkpoint write failed");
      }
      if (std::rename(tmp.c_str(), checkpoint_path.c_str()) != 0) {
        throw std::runtime_error("cannot replace checkpoint file");
      }
    }
    if (g_dump_requested != 0) {
      g_dump_requested = 0;
      dump_metrics();
    }
    if (metrics_every > 0 && server.current_slot() % metrics_every == 0) {
      dump_metrics();
    }
  }
  if (feeder.joinable()) feeder.join();

  const auto ops = server.metrics();
  const SimResult result = server.finish();
  std::cerr << "served " << fed.load() << " bids (" << shed.load()
            << " shed), welfare " << result.metrics.social_welfare
            << "$, admitted " << result.metrics.admitted << "/"
            << (result.metrics.admitted + result.metrics.rejected)
            << ", ingest " << ops.ingest_rate << " bids/s, decide p50 "
            << ops.decide_p50 * 1e6 << "us p99 " << ops.decide_p99 * 1e6
            << "us\n";

  if (!metrics_path.empty() || metrics_every > 0 || g_dump_requested != 0) {
    dump_metrics();
  }
  if (tracer != nullptr) {
    // Detach the sink before anything else: the tracer and trace_stream
    // are declared after policy/server, so they are destroyed first at
    // scope exit — the policy must not hold the pointer past this point.
    traceable->set_trace_sink(nullptr);
    tracer->flush();
    trace_stream.close();
    std::ofstream chrome(trace_path + ".chrome.json");
    if (!chrome) throw std::runtime_error("cannot open chrome trace file");
    obs::write_chrome_trace(chrome, tracer->instants());
    std::cerr << "trace: " << tracer->records() << " decisions to "
              << trace_path << " (+ .chrome.json timeline)\n";
    for (const obs::SpanStats& span : obs::Profiler::instance().snapshot()) {
      std::cerr << "span " << span.name << ": " << span.count << " x, total "
                << span.total_seconds * 1e3 << "ms self "
                << span.self_seconds * 1e3 << "ms\n";
    }
  }

  if (cli.has("out")) {
    std::ofstream out(cli.get("out", ""));
    if (!out) throw std::runtime_error("cannot open output file");
    io::write_outcomes_csv(out, result.outcomes);
  }
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
