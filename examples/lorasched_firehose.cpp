// lorasched_firehose — multi-source / multi-process bid firehose with
// sequence-loss accounting and latency CDFs (DESIGN.md §14).
//
// Generates seeded, reproducible per-source bid streams (loadgen/) and
// drives them against a serving process, accounting every bid's fate:
// offered, admitted, rejected, shed, lost, out-of-order, duplicate. The
// run ends with a BENCH_soak.json verdict and a non-zero exit when any
// bid was lost or any sequence violation occurred.
//
// Modes (pick one):
//   --export bids.txt        write the merged offered stream as bid lines
//                            (same seed => byte-identical file; the CI
//                            determinism check cmps two exports)
//   --connect host:port      wire mode: one connection per source against
//                            a serving process started with --ingest-port
//                            (lorasched_shard_serve or
//                            lorasched_cluster_leader)
//   (neither)                inline mode: an in-process AdmissionService
//                            decided with pdFTSP — the no-sockets soak the
//                            unit tests and micro-bench build on
//
//   ./lorasched_shard_serve --shards 4 --slot-ms 0 --ingest-port 7801
//       --ingest-clients 4 &
//   ./lorasched_firehose --connect 127.0.0.1:7801 --sources 4 --rate 200
//       --mix burst --json-out BENCH_soak.json
//
// --processes P forks P workers, partitioning the sources round-robin;
// each worker writes a partial verdict and the parent merges them exactly
// (histogram bucket counts sum element-wise) into the final report.
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <iterator>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "lorasched/core/pdftsp.h"
#include "lorasched/experiments/scenario.h"
#include "lorasched/io/serialize.h"
#include "lorasched/loadgen/arrival.h"
#include "lorasched/loadgen/firehose.h"
#include "lorasched/loadgen/soak_metrics.h"
#include "lorasched/loadgen/verdict.h"
#include "lorasched/net/messages.h"
#include "lorasched/net/transport.h"
#include "lorasched/service/admission_service.h"
#include "lorasched/service/slot_clock.h"
#include "lorasched/util/cli.h"

using namespace lorasched;

namespace {

struct SourceStream {
  std::uint32_t source = 0;
  std::vector<Task> bids;
};

loadgen::SoakStatus to_soak(net::BidStatus status) {
  switch (status) {
    case net::BidStatus::kAdmitted: return loadgen::SoakStatus::kAdmitted;
    case net::BidStatus::kRejected: return loadgen::SoakStatus::kRejected;
    case net::BidStatus::kShedFull: return loadgen::SoakStatus::kShedFull;
    case net::BidStatus::kShedClosed:
      return loadgen::SoakStatus::kShedClosed;
  }
  throw std::logic_error("unmapped bid status");
}

loadgen::SoakStatus shed_for(service::SubmitResult result) {
  return result == service::SubmitResult::kRejectedClosed
             ? loadgen::SoakStatus::kShedClosed
             : loadgen::SoakStatus::kShedFull;
}

std::vector<SourceStream> generate_streams(const Instance& env,
                                           const ScenarioConfig& scenario,
                                           std::uint32_t sources,
                                           loadgen::ArrivalMix mix,
                                           double rate, Slot window) {
  std::vector<SourceStream> streams;
  streams.reserve(sources);
  for (std::uint32_t s = 0; s < sources; ++s) {
    loadgen::FirehoseConfig fc;
    fc.source = s;
    fc.seed = scenario.seed;
    fc.mix = mix;
    fc.rate_per_slot = rate;
    fc.horizon = env.horizon;
    fc.arrival_window = window;
    fc.taskgen = scenario.taskgen;
    loadgen::BidFirehose firehose(fc, env.cluster, env.energy, env.market);
    streams.push_back({s, firehose.generate()});
  }
  return streams;
}

void print_summary(const loadgen::SoakReport& report) {
  std::cerr << "soak: offered " << report.totals.offered << ", responded "
            << report.totals.responded << " (admitted "
            << report.totals.admitted << ", rejected "
            << report.totals.rejected << ", shed " << report.totals.shed
            << "), lost " << report.totals.lost << ", ooo "
            << report.totals.out_of_order << ", dup "
            << report.totals.duplicates << ", unknown "
            << report.totals.unknown << "\n"
            << "soak: e2e latency p50 " << report.latency.percentile(50) * 1e3
            << "ms p90 " << report.latency.percentile(90) * 1e3 << "ms p99 "
            << report.latency.percentile(99) * 1e3 << "ms p999 "
            << report.latency.percentile(99.9) * 1e3 << "ms over "
            << report.elapsed_seconds << "s ("
            << (report.elapsed_seconds > 0.0
                    ? static_cast<double>(report.totals.offered) /
                          report.elapsed_seconds
                    : 0.0)
            << " bids/s offered)\n";
}

int finish_run(const loadgen::SoakReport& report, const std::string& json_out,
               bool quiet) {
  if (!quiet) print_summary(report);
  int code = report.clean() ? 0 : 1;
  if (!json_out.empty()) {
    code = loadgen::write_verdict(report, json_out);
    if (!quiet) std::cerr << "soak: verdict written to " << json_out << "\n";
  }
  if (code != 0) std::cerr << "soak: FAILED (loss or sequence violation)\n";
  return code;
}

/// Waits until every offered bid got a response, the drain budget ran out,
/// or every connection died (then waiting is pointless).
void await_drain(const loadgen::SoakMetrics& soak,
                 const std::vector<std::unique_ptr<net::Connection>>& conns,
                 std::chrono::milliseconds budget) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (soak.outstanding() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    bool any_open = false;
    for (const auto& conn : conns) {
      if (conn->open()) any_open = true;
    }
    if (!any_open) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

int run_wire(const std::vector<SourceStream>& streams,
             const std::string& host, std::uint16_t port,
             std::chrono::milliseconds slot_period,
             std::chrono::milliseconds drain_budget,
             const std::string& json_out, bool quiet) {
  loadgen::SoakMetrics soak;
  std::vector<std::unique_ptr<net::Connection>> conns;
  conns.reserve(streams.size());
  for (std::size_t i = 0; i < streams.size(); ++i) {
    net::Socket socket = net::connect_with_backoff(
        host, port, 40, std::chrono::milliseconds(50));
    net::Connection::Config cc;
    cc.outbox_capacity = 8192;
    conns.push_back(std::make_unique<net::Connection>(
        std::move(socket), cc,
        [&soak](net::Frame&& frame) {
          if (frame.type != net::MsgType::kBidDecision) return;
          const net::BidDecisionMsg m =
              net::decode_bid_decision(frame.payload);
          soak.record_response(m.source, m.seq, to_soak(m.status),
                               loadgen::SoakMetrics::now_ns());
        },
        [](const std::string& reason) {
          if (!reason.empty()) {
            std::cerr << "soak: connection failed: " << reason << "\n";
          }
        }));
  }

  std::vector<std::thread> senders;
  senders.reserve(streams.size());
  for (std::size_t i = 0; i < streams.size(); ++i) {
    senders.emplace_back([&, i] {
      const SourceStream& stream = streams[i];
      net::Connection& conn = *conns[i];
      const std::size_t sent = loadgen::pace_bids(
          stream.bids, slot_period, [&](const Task& bid) {
            net::BidSubmitMsg msg;
            msg.source = stream.source;
            msg.seq = loadgen::bid_seq(bid.id);
            msg.send_ns = loadgen::SoakMetrics::now_ns();
            msg.task = bid;
            soak.record_offered(msg.source, msg.seq, msg.send_ns);
            if (!conn.send(net::MsgType::kBidSubmit, net::encode(msg))) {
              // Connection gone: the bid (and the rest of the stream)
              // counts as lost in the verdict.
              return;
            }
          });
      net::BidStreamEndMsg end;
      end.source = stream.source;
      end.offered = sent;
      conn.send(net::MsgType::kBidStreamEnd, net::encode(end));
    });
  }
  for (std::thread& t : senders) t.join();

  await_drain(soak, conns, drain_budget);
  for (const auto& conn : conns) {
    conn->drain(std::chrono::milliseconds(500));
  }
  conns.clear();
  return finish_run(soak.report(), json_out, quiet);
}

int run_inline(const std::vector<SourceStream>& streams, const Instance& env,
               std::chrono::milliseconds slot_period, std::size_t queue_cap,
               const std::string& json_out, bool quiet) {
  Pdftsp policy(pdftsp_config_for(env), env.cluster, env.energy, env.horizon);
  service::ServiceConfig sc;
  sc.queue_capacity = queue_cap;
  sc.late_bids = service::LateBidMode::kClamp;
  service::AdmissionService server(env, policy, sc);
  loadgen::SoakMetrics soak;
  server.add_subscriber(&soak);

  std::vector<std::thread> senders;
  senders.reserve(streams.size());
  for (std::size_t i = 0; i < streams.size(); ++i) {
    senders.emplace_back([&, i] {
      const SourceStream& stream = streams[i];
      loadgen::pace_bids(stream.bids, slot_period, [&](const Task& bid) {
        const std::uint64_t seq = loadgen::bid_seq(bid.id);
        soak.record_offered(stream.source, seq,
                            loadgen::SoakMetrics::now_ns());
        const service::SubmitResult result = server.submit(bid);
        if (result != service::SubmitResult::kAccepted) {
          soak.record_response(stream.source, seq, shed_for(result),
                               loadgen::SoakMetrics::now_ns());
        }
      });
    });
  }
  std::thread closer([&] {
    for (std::thread& t : senders) t.join();
    server.close();
  });

  if (slot_period.count() == 0) {
    while (!server.queue().closed() || server.queue().depth() != 0) {
      server.queue().wait_available();
      server.pump();
    }
  }
  const service::SlotClock clock(slot_period);
  while (!server.done()) {
    if (!server.idle()) clock.wait_slot_end(server.current_slot());
    server.step();
  }
  closer.join();
  const SimResult result = server.finish();
  if (!quiet) {
    std::cerr << "soak: inline service welfare "
              << result.metrics.social_welfare << "$, admitted "
              << result.metrics.admitted << "/"
              << (result.metrics.admitted + result.metrics.rejected) << "\n";
  }
  return finish_run(soak.report(), json_out, quiet);
}

/// Fork-per-worker fan-out: worker w takes sources w, w+P, w+2P, ... and
/// writes `<json_out>.part<w>`; the parent merges the partials exactly.
int run_processes(const std::vector<SourceStream>& streams, int processes,
                  const std::string& host, std::uint16_t port,
                  std::chrono::milliseconds slot_period,
                  std::chrono::milliseconds drain_budget,
                  const std::string& json_out, bool quiet) {
  std::vector<pid_t> children;
  for (int w = 0; w < processes; ++w) {
    const pid_t pid = fork();
    if (pid < 0) throw std::runtime_error("fork failed");
    if (pid == 0) {
      std::vector<SourceStream> mine;
      for (std::size_t i = static_cast<std::size_t>(w); i < streams.size();
           i += static_cast<std::size_t>(processes)) {
        mine.push_back(streams[i]);
      }
      const std::string part = json_out + ".part" + std::to_string(w);
      int code = 1;
      try {
        code = run_wire(mine, host, port, slot_period, drain_budget, part,
                        true);
      } catch (const std::exception& e) {
        std::cerr << "soak worker " << w << ": " << e.what() << "\n";
      }
      std::_Exit(code);
    }
    children.push_back(pid);
  }
  bool workers_ok = true;
  for (const pid_t pid : children) {
    int status = 0;
    if (waitpid(pid, &status, 0) < 0 || !WIFEXITED(status) ||
        WEXITSTATUS(status) != 0) {
      workers_ok = false;
    }
  }
  std::vector<loadgen::SoakReport> parts;
  for (int w = 0; w < processes; ++w) {
    const std::string part = json_out + ".part" + std::to_string(w);
    std::ifstream in(part);
    if (!in) {
      std::cerr << "soak: missing worker verdict " << part << "\n";
      workers_ok = false;
      continue;
    }
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    parts.push_back(loadgen::parse_verdict(obs::Json::parse(text)));
    std::remove(part.c_str());
  }
  const loadgen::SoakReport merged = loadgen::merge_reports(parts);
  const int code = finish_run(merged, json_out, quiet);
  return workers_ok ? code : 1;
}

}  // namespace

int main(int argc, char** argv) try {
  const util::Cli cli(argc, argv);
  cli.allow_only({"scenario", "seed", "sources", "rate", "mix",
                  "arrival-window", "slot-ms", "connect", "export",
                  "processes", "json-out", "drain-timeout-ms", "queue-cap",
                  "quiet"});

  ScenarioConfig config;
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  if (cli.has("scenario")) {
    std::ifstream in(cli.get("scenario", ""));
    if (!in) throw std::runtime_error("cannot open scenario file");
    config = io::read_scenario(in);
  }
  const Instance env = make_instance(config);

  const auto sources =
      static_cast<std::uint32_t>(cli.get_int("sources", 2));
  if (sources == 0 || sources > loadgen::kMaxBidSource + 1) {
    throw std::invalid_argument("sources must be in [1, 127]");
  }
  const double rate = cli.get_double("rate", 50.0);
  const loadgen::ArrivalMix mix =
      loadgen::parse_arrival_mix(cli.get("mix", "poisson"));
  const auto window = static_cast<Slot>(cli.get_int("arrival-window", 0));
  const auto slot_period =
      std::chrono::milliseconds(cli.get_int("slot-ms", 0));
  const auto drain_budget =
      std::chrono::milliseconds(cli.get_int("drain-timeout-ms", 10000));
  const std::string json_out = cli.get("json-out", "");
  const bool quiet = cli.get_bool("quiet", false);

  const std::vector<SourceStream> streams =
      generate_streams(env, config, sources, mix, rate, window);
  std::uint64_t total = 0;
  for (const SourceStream& s : streams) total += s.bids.size();
  if (!quiet) {
    std::cerr << "soak: generated " << total << " bids across " << sources
              << " source(s), mix " << loadgen::to_string(mix) << ", seed "
              << config.seed << "\n";
  }

  if (cli.has("export")) {
    // The offered stream, merged across sources in (arrival, id) order —
    // bit-identical across runs with the same flags.
    std::vector<Task> merged;
    merged.reserve(total);
    for (const SourceStream& s : streams) {
      merged.insert(merged.end(), s.bids.begin(), s.bids.end());
    }
    std::stable_sort(merged.begin(), merged.end(),
                     [](const Task& a, const Task& b) {
                       return a.arrival != b.arrival ? a.arrival < b.arrival
                                                     : a.id < b.id;
                     });
    std::ofstream out(cli.get("export", ""));
    if (!out) throw std::runtime_error("cannot open export file");
    for (const Task& bid : merged) {
      out << io::format_bid_line(bid) << '\n';
    }
    std::cerr << "exported " << merged.size() << " bids to "
              << cli.get("export", "") << "\n";
    return 0;
  }

  if (cli.has("connect")) {
    const std::string endpoint = cli.get("connect", "");
    const auto colon = endpoint.rfind(':');
    if (colon == std::string::npos) {
      throw std::invalid_argument("--connect wants host:port");
    }
    const std::string host = endpoint.substr(0, colon);
    const auto port =
        static_cast<std::uint16_t>(std::stoi(endpoint.substr(colon + 1)));
    const int processes = cli.get_int("processes", 1);
    if (processes > 1) {
      if (json_out.empty()) {
        throw std::invalid_argument("--processes needs --json-out");
      }
      return run_processes(streams, processes, host, port, slot_period,
                           drain_budget, json_out, quiet);
    }
    return run_wire(streams, host, port, slot_period, drain_budget, json_out,
                    quiet);
  }

  return run_inline(streams, env, slot_period,
                    static_cast<std::size_t>(cli.get_int("queue-cap", 4096)),
                    json_out, quiet);
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
