// HostAgent — the process that owns ShardRunners on behalf of a remote
// leader (DESIGN.md §11). It listens on loopback TCP, serves one leader
// connection at a time, and speaks the wire protocol:
//
//   Hello/HelloAck      environment-digest handshake (scenario mismatch is
//                       a handshake failure, not silent divergence)
//   AssignShard         builds a ShardRunner over the shard's members with
//                       the leader's pricing parameters
//   BlockCells          replays the leader's outage calendar
//   BeginRound+Offer×n  one decision round; the worker buffers ALL n
//                       offers before arming the runner, so a leader that
//                       dies mid-feed can never leave a runner stuck in a
//                       half-fed round
//   RoundResults        decisions + the shard's post-round price summary
//   Publish/State/Restore  parked-state access for boards and checkpoints
//   Shutdown            stops the agent
//
// Each assigned shard gets a worker thread (rounds on different shards of
// the same agent decide concurrently, matching the in-process service).
// The transport answers heartbeats internally, so a busy round never makes
// the agent look dead. When the leader connection drops, the session's
// runners are torn down; a reconnecting leader re-assigns and restores
// state (see remote_shard.h).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "lorasched/net/messages.h"
#include "lorasched/net/transport.h"
#include "lorasched/obs/registry.h"
#include "lorasched/shard/price_board.h"
#include "lorasched/shard/shard_runner.h"
#include "lorasched/sim/instance.h"
#include "lorasched/util/mutex.h"
#include "lorasched/util/thread_annotations.h"

namespace lorasched::net {

class HostAgent {
 public:
  /// Builds the per-shard policy from the leader's AssignShard parameters.
  /// The default wires them into make_pdftsp_factory (alpha, beta,
  /// welfare_unit, share_options, parallel_candidates).
  using FactoryBuilder =
      std::function<shard::PolicyFactory(const AssignShardMsg&)>;

  struct Config {
    /// 0 picks an ephemeral port (see port()) — the test/CI mode.
    std::uint16_t port = 0;
    std::chrono::milliseconds ping_interval{200};
    /// Fail the session when the leader is silent this long (it pings
    /// constantly while alive). 0 disables.
    std::chrono::milliseconds idle_timeout{2000};
    /// Agent name stamped on metrics pushes — the leader's federated
    /// `agent` label (DESIGN.md §12).
    std::string name = "agent";
    /// > 0: push a cumulative MetricsSnapshot to the leader at this
    /// cadence, piggybacked on the connection's maintenance thread.
    std::chrono::milliseconds metrics_push_interval{0};
  };

  /// `env` supplies cluster/energy/market/horizon (tasks and outages are
  /// ignored — bids and blocks arrive over the wire).
  HostAgent(Instance env, Config config, FactoryBuilder factory = {});
  ~HostAgent();

  HostAgent(const HostAgent&) = delete;
  HostAgent& operator=(const HostAgent&) = delete;

  /// Binds the listener and starts the accept thread.
  void start() EXCLUDES(session_mutex_);
  /// Stops serving: interrupts the listener, fails the live session, joins.
  /// Idempotent; also triggered by a kShutdown frame from the leader.
  void stop() EXCLUDES(session_mutex_);
  /// Blocks until the agent stopped (kShutdown or stop()).
  void wait() EXCLUDES(session_mutex_);

  [[nodiscard]] std::uint16_t port() const;
  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }
  /// Leader sessions accepted so far (reconnects increment it).
  [[nodiscard]] std::uint64_t sessions_served() const noexcept {
    return sessions_.load(std::memory_order_relaxed);
  }

  /// The agent's process-wide registry (transport counters). Shard-level
  /// registries are created per assigned shard and persist across leader
  /// sessions, so counters stay monotone through reconnects.
  [[nodiscard]] obs::MetricsRegistry& registry() noexcept {
    return agent_registry_;
  }
  /// Shards assigned at least once (sorted) — the /healthz shard list.
  [[nodiscard]] std::vector<int> assigned_shards() const
      EXCLUDES(registries_mutex_);
  /// Prometheus exposition of the agent registry plus each shard registry
  /// (shard-labeled) — the agent's /metrics and --metrics-out document.
  void write_metrics(std::ostream& out) const EXCLUDES(registries_mutex_);
  /// Best-effort: one cumulative metrics push now. False without a live
  /// session or when the outbox is full (it rides the connection's
  /// maintenance thread, which must never block behind a stalled peer —
  /// the next tick retries).
  bool push_metrics() EXCLUDES(registries_mutex_, session_mutex_);

 private:
  class Worker;

  void accept_main() EXCLUDES(session_mutex_);
  void serve(Socket socket) EXCLUDES(session_mutex_, workers_mutex_);
  void handle_frame(Frame&& frame) EXCLUDES(session_mutex_, workers_mutex_);
  /// Sends through the live session connection; false once it failed.
  bool send(MsgType type, const std::vector<std::uint8_t>& payload)
      EXCLUDES(session_mutex_);
  void fail_session(const std::string& reason) EXCLUDES(session_mutex_);
  [[nodiscard]] shard::PriceSnapshot board_read(int shard) const
      EXCLUDES(workers_mutex_);
  /// Get-or-create the shard's registry (stable address, agent lifetime).
  [[nodiscard]] obs::MetricsRegistry& shard_registry(int shard)
      EXCLUDES(registries_mutex_);
  /// Fetches the live transport under session_mutex_ and drops the lock
  /// before the caller touches it (DESIGN.md §13). Safe because only the
  /// accept thread swaps conn_, workers are joined before the swap-out,
  /// and the transport's own threads are joined by its destructor — so the
  /// pointee outlives every fetched use.
  [[nodiscard]] Connection* connection() const EXCLUDES(session_mutex_);
  /// Same raw-pointer pattern for the session's price board (workers_mutex_
  /// guards the swap; the pointee is lock-free and outlives the workers).
  [[nodiscard]] shard::PriceBoard* board() const EXCLUDES(workers_mutex_);

  Instance env_;
  Config config_;
  FactoryBuilder factory_;
  std::uint64_t digest_ = 0;

  std::unique_ptr<Listener> listener_;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> sessions_{0};

  // --- Observability (agent lifetime, survives sessions) ------------------
  obs::MetricsRegistry agent_registry_;
  mutable util::Mutex registries_mutex_;
  std::map<int, std::unique_ptr<obs::MetricsRegistry>> shard_registries_
      GUARDED_BY(registries_mutex_);
  std::atomic<std::uint64_t> push_seq_{0};

  // --- Per-session state (reset by serve()) -------------------------------
  // Lock order (DESIGN.md §13): workers_mutex_ before a Worker's own
  // queue mutex (stop/enqueue run under the map lock); session_mutex_,
  // workers_mutex_ and registries_mutex_ are never held together.
  mutable util::Mutex workers_mutex_;
  bool got_hello_ GUARDED_BY(workers_mutex_) = false;
  /// False outside a session and during teardown — late reader-thread
  /// frames are dropped instead of resurrecting a worker.
  bool accepting_frames_ GUARDED_BY(workers_mutex_) = false;
  std::map<int, std::unique_ptr<Worker>> workers_ GUARDED_BY(workers_mutex_);
  /// The session's price board. Runners hold references into it, so it is
  /// created exactly once per session (a duplicate Hello is a wire error)
  /// and destroyed only after every worker joined.
  std::unique_ptr<shard::PriceBoard> board_ GUARDED_BY(workers_mutex_);

  mutable util::Mutex session_mutex_;
  util::CondVar session_cv_;
  /// Swapped by the accept thread only; send()s from the worker, reader
  /// and maintenance threads go through connection() — see its comment.
  std::unique_ptr<Connection> conn_ GUARDED_BY(session_mutex_);
  bool session_closed_ GUARDED_BY(session_mutex_) = true;
  /// The reader thread starts inside the Connection constructor, so on a
  /// fast loopback the leader's Hello can arrive before serve()'s
  /// assignment to conn_ retires — replying through a still-null conn_
  /// would silently drop the HelloAck. Frame delivery waits on this flag.
  bool conn_published_ GUARDED_BY(session_mutex_) = false;
};

}  // namespace lorasched::net
