// Minimal HTTP/1.1 scrape endpoint (DESIGN.md §12).
//
// Just enough HTTP for `curl` and a Prometheus scraper: GET only, exact
// path match (query strings ignored), one request per connection
// (`Connection: close`), responses with Content-Length. Requests are
// served serially on the accept thread — a scrape endpoint has no
// concurrency requirement, and serial service means handlers can read
// shared state with a plain mutex.
//
// Hard limits keep a hostile peer harmless: request heads over 8 KiB are
// rejected with 431, a socket that goes quiet mid-request times out via
// SO_RCVTIMEO, and anything unparsable gets 400 and a close.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "lorasched/net/transport.h"

namespace lorasched::net {

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Registered per path; runs on the accept thread, one request at a time.
using HttpHandler = std::function<HttpResponse()>;

class HttpServer {
 public:
  /// Binds immediately (port 0 picks an ephemeral port, see port());
  /// throws TransportError when the bind fails. Serving starts at start().
  explicit HttpServer(std::uint16_t port, bool loopback_only = true);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers `handler` for exact-match `path` (e.g. "/metrics").
  /// Register everything before start() — the map is not locked, so this
  /// throws std::logic_error once the accept thread is running.
  void handle(std::string path, HttpHandler handler);

  void start();
  /// Idempotent; joins the accept thread.
  void stop();

  [[nodiscard]] std::uint16_t port() const noexcept;
  [[nodiscard]] std::uint64_t requests_served() const noexcept {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  void accept_main();
  void serve_one(Socket socket);

  Listener listener_;
  /// Frozen before the accept thread starts (handle() throws after
  /// start()), then read-only — the documented no-mutex exemption
  /// (DESIGN.md §13): publication happens-before via started_ / the
  /// accept-thread spawn.
  std::map<std::string, HttpHandler> handlers_;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> started_{false};
  std::atomic<std::uint64_t> requests_{0};
};

}  // namespace lorasched::net
