// FirehoseIngest — the server-side seam that lets firehose clients stream
// sequenced bids into a serving process over the control-plane wire
// protocol (DESIGN.md §14).
//
// One ingest instance listens on a loopback port, accepts any number of
// firehose connections, and for every kBidSubmit frame
//  1. parks a pending entry (task id -> connection, source, seq, echoed
//     send stamp) *before* submitting — the service's consumer thread may
//     decide the bid concurrently with the submit returning;
//  2. submits the task through the injected submit function (usually
//     AdmissionService::submit or ShardedService::submit). A rejected
//     submit (queue full / closed) un-parks the entry and answers the
//     client immediately with a shed decision.
// The serving tool forwards its DecisionSubscriber callbacks into
// on_decision(), which resolves the pending entry and ships the
// kBidDecision back on the submitting client's connection.
//
// Quiesce protocol: every firehose source ends its stream with
// kBidStreamEnd. Once `expected_streams` distinct sources have ended, the
// on_quiesce callback runs exactly once — serving tools close their bid
// queue there, which is what lets a horizon-free (--slot-ms 0) pump loop
// terminate. Until then the feeder path must NOT close the queue.
//
// Threading: submits and stream-ends arrive on per-connection reader
// threads (a blocking submit under kBlock backpressure stalls that one
// reader — TCP backpressure against exactly the client that overruns the
// queue); on_decision runs on the service's consumer thread; shed replies
// use try_send so a reader thread never blocks on its own outbox.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "lorasched/net/messages.h"
#include "lorasched/net/transport.h"
#include "lorasched/obs/registry.h"
#include "lorasched/service/bid_queue.h"
#include "lorasched/service/subscriber.h"
#include "lorasched/types.h"
#include "lorasched/util/mutex.h"
#include "lorasched/util/thread_annotations.h"

namespace lorasched::net {

class FirehoseIngest {
 public:
  struct Config {
    /// Listen port; 0 picks an ephemeral port (see port()).
    std::uint16_t port = 0;
    /// Distinct sources that must send kBidStreamEnd before on_quiesce
    /// fires. <= 0 disables the quiesce callback entirely.
    int expected_streams = 1;
    /// Per-connection outbox bound (decision frames queued to one client).
    std::size_t outbox_capacity = 4096;
    /// Optional registry for ingest counters (get-or-create by name).
    obs::MetricsRegistry* metrics = nullptr;
  };

  using SubmitFn = std::function<service::SubmitResult(const Task&)>;
  using QuiesceFn = std::function<void()>;

  /// Starts listening and accepting immediately. `submit` is called from
  /// connection reader threads and must be thread-safe; `on_quiesce` fires
  /// at most once, from a reader thread.
  FirehoseIngest(Config config, SubmitFn submit, QuiesceFn on_quiesce);
  ~FirehoseIngest();

  FirehoseIngest(const FirehoseIngest&) = delete;
  FirehoseIngest& operator=(const FirehoseIngest&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Resolves a decided bid: ships kBidDecision to the client that
  /// submitted it (no-op for task ids never seen on the wire, so a local
  /// feeder can coexist with wire ingest). Call from the service's
  /// consumer thread (a DecisionSubscriber adapter).
  void on_decision(TaskId task, bool admitted, Money payment,
                   Slot decided_slot) EXCLUDES(mutex_);

  /// Stops accepting, drains every live connection for up to `budget` (so
  /// tail decisions reach their clients), then tears them down. Idempotent.
  void stop(std::chrono::milliseconds budget = std::chrono::milliseconds(
                2000)) EXCLUDES(mutex_);

  /// Bids decided but unanswerable (client gone / outbox shed).
  [[nodiscard]] std::uint64_t replies_dropped() const noexcept {
    return replies_dropped_.load(std::memory_order_relaxed);
  }
  /// Wire submits still awaiting a decision.
  [[nodiscard]] std::size_t pending() const EXCLUDES(mutex_);
  /// Distinct sources that ended their streams.
  [[nodiscard]] std::size_t streams_ended() const EXCLUDES(mutex_);

 private:
  struct Client {
    std::unique_ptr<Connection> conn;
  };

  struct Pending {
    std::shared_ptr<Client> client;
    std::uint32_t source = 0;
    std::uint64_t seq = 0;
    std::int64_t send_ns = 0;
  };

  void accept_main();
  void handle_frame(const std::shared_ptr<Client>& client, Frame&& frame)
      EXCLUDES(mutex_);
  void handle_submit(const std::shared_ptr<Client>& client,
                     BidSubmitMsg&& msg) EXCLUDES(mutex_);
  void handle_stream_end(const BidStreamEndMsg& msg) EXCLUDES(mutex_);

  Config config_;
  SubmitFn submit_;
  QuiesceFn on_quiesce_;
  Listener listener_;
  std::uint16_t port_ = 0;

  obs::Counter* bids_in_ = nullptr;
  obs::Counter* sheds_ = nullptr;
  obs::Counter* decisions_out_ = nullptr;

  mutable util::Mutex mutex_;
  std::vector<std::shared_ptr<Client>> clients_ GUARDED_BY(mutex_);
  std::map<TaskId, Pending> pending_ GUARDED_BY(mutex_);
  std::set<std::uint32_t> ended_sources_ GUARDED_BY(mutex_);
  bool quiesced_ GUARDED_BY(mutex_) = false;
  bool stopped_ GUARDED_BY(mutex_) = false;

  std::atomic<std::uint64_t> replies_dropped_{0};
  std::thread acceptor_;
};

/// DecisionSubscriber adapter: forwards a service's decision callbacks into
/// FirehoseIngest::on_decision. Register it on the serving AdmissionService
/// or ShardedService alongside the tool's other subscribers; all callbacks
/// run on the consumer thread, so the decided-slot tracking needs no lock.
class IngestSubscriber final : public service::DecisionSubscriber {
 public:
  explicit IngestSubscriber(FirehoseIngest& ingest) : ingest_(ingest) {}

  void on_admitted(const TaskOutcome& outcome,
                   const Schedule& schedule) override {
    (void)schedule;
    ingest_.on_decision(outcome.task, true, outcome.payment, slot_);
  }
  void on_rejected(const TaskOutcome& outcome) override {
    ingest_.on_decision(outcome.task, false, 0.0, slot_);
  }
  void on_slot_end(const service::SlotReport& report) override {
    // Decisions for slot N fire before on_slot_end(N), so the next batch
    // belongs to N + 1.
    slot_ = report.slot + 1;
  }

 private:
  FirehoseIngest& ingest_;
  Slot slot_ = 0;  // consumer-thread only
};

}  // namespace lorasched::net
