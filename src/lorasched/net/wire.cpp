#include "lorasched/net/wire.h"

#include <cstring>

namespace lorasched::net {

const char* to_string(MsgType type) noexcept {
  switch (type) {
    case MsgType::kHello: return "hello";
    case MsgType::kHelloAck: return "hello_ack";
    case MsgType::kAssignShard: return "assign_shard";
    case MsgType::kAssignAck: return "assign_ack";
    case MsgType::kBlockCells: return "block_cells";
    case MsgType::kBlockAck: return "block_ack";
    case MsgType::kBeginRound: return "begin_round";
    case MsgType::kOffer: return "offer";
    case MsgType::kRoundResults: return "round_results";
    case MsgType::kPublishRequest: return "publish_request";
    case MsgType::kPublishReply: return "publish_reply";
    case MsgType::kStateRequest: return "state_request";
    case MsgType::kStateReply: return "state_reply";
    case MsgType::kRestoreState: return "restore_state";
    case MsgType::kRestoreAck: return "restore_ack";
    case MsgType::kPing: return "ping";
    case MsgType::kPong: return "pong";
    case MsgType::kShutdown: return "shutdown";
    case MsgType::kError: return "error";
    case MsgType::kMetricsSnapshot: return "metrics_snapshot";
    case MsgType::kBidSubmit: return "bid_submit";
    case MsgType::kBidDecision: return "bid_decision";
    case MsgType::kBidStreamEnd: return "bid_stream_end";
  }
  return "unknown";
}

namespace {

[[nodiscard]] bool known_type(std::uint8_t raw) noexcept {
  return raw >= static_cast<std::uint8_t>(MsgType::kHello) &&
         raw <= static_cast<std::uint8_t>(MsgType::kBidStreamEnd);
}

[[noreturn]] void fail(const char* what, const char* why) {
  throw WireError(std::string("wire: ") + why + " reading " + what);
}

}  // namespace

void WireWriter::put_varint(std::uint64_t v) {
  while (v >= 0x80) {
    buffer_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buffer_.push_back(static_cast<std::uint8_t>(v));
}

void WireWriter::put_f64(double v) {
  const auto bits = std::bit_cast<std::uint64_t>(v);
  for (int i = 0; i < 8; ++i) {
    buffer_.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
  }
}

void WireWriter::put_string(const std::string& s) {
  put_varint(s.size());
  buffer_.insert(buffer_.end(), s.begin(), s.end());
}

void WireWriter::put_doubles(const std::vector<double>& values) {
  put_varint(values.size());
  for (const double v : values) put_f64(v);
}

std::uint8_t WireReader::get_u8(const char* what) {
  if (pos_ >= size_) fail(what, "truncated byte");
  return data_[pos_++];
}

std::uint64_t WireReader::get_varint(const char* what) {
  std::uint64_t value = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (pos_ >= size_) fail(what, "truncated varint");
    const std::uint8_t byte = data_[pos_++];
    const auto low = static_cast<std::uint64_t>(byte & 0x7F);
    if (shift == 63 && low > 1) fail(what, "varint overflows 64 bits");
    value |= low << shift;
    if ((byte & 0x80) == 0) {
      // An overlong encoding ("0x80 0x00" for zero) would make the format
      // non-canonical; reject it so every value has exactly one encoding.
      if (byte == 0 && shift != 0) fail(what, "overlong varint");
      return value;
    }
  }
  fail(what, "varint longer than 10 bytes");
}

double WireReader::get_f64(const char* what) {
  if (size_ - pos_ < 8) fail(what, "truncated f64");
  std::uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(
                                                        i)])
            << (8 * i);
  }
  pos_ += 8;
  return std::bit_cast<double>(bits);
}

std::string WireReader::get_string(const char* what) {
  const std::uint64_t n = get_count(what);
  if (remaining() < n) fail(what, "truncated string");
  std::string s(reinterpret_cast<const char*>(data_ + pos_),
                static_cast<std::size_t>(n));
  pos_ += static_cast<std::size_t>(n);
  return s;
}

std::vector<double> WireReader::get_doubles(const char* what) {
  const std::uint64_t n = get_count(what);
  if (remaining() < n * 8) fail(what, "truncated double array");
  std::vector<double> values(static_cast<std::size_t>(n));
  for (double& v : values) v = get_f64(what);
  return values;
}

std::uint64_t WireReader::get_count(const char* what) {
  const std::uint64_t n = get_varint(what);
  if (n > kMaxWireElements) fail(what, "absurd element count");
  return n;
}

void WireReader::expect_done(const char* what) const {
  if (pos_ != size_) fail(what, "trailing bytes after payload");
}

std::vector<std::uint8_t> encode_frame(MsgType type,
                                       const std::vector<std::uint8_t>&
                                           payload) {
  if (payload.size() > kMaxWirePayload) {
    throw WireError("wire: refusing to encode an oversized frame");
  }
  WireWriter header;
  for (const std::uint8_t b : kWireMagic) header.put_u8(b);
  header.put_u8(kWireVersion);
  header.put_u8(static_cast<std::uint8_t>(type));
  header.put_varint(payload.size());
  std::vector<std::uint8_t> bytes = header.take();
  bytes.insert(bytes.end(), payload.begin(), payload.end());
  return bytes;
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t size) {
  // Compact the consumed prefix before it dominates the buffer.
  if (scan_ > 0 && scan_ >= buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(scan_));
    scan_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + size);
}

bool FrameDecoder::next(Frame& out) {
  const std::size_t available = buffer_.size() - scan_;
  if (available < kFramePrefix + 1) return false;
  const std::uint8_t* head = buffer_.data() + scan_;
  if (std::memcmp(head, kWireMagic, sizeof(kWireMagic)) != 0) {
    throw WireError("wire: bad frame magic (stream is not lswp framed)");
  }
  if (head[4] != kWireVersion) {
    throw WireError(
        "wire: protocol version " + std::to_string(int{head[4]}) +
        " from peer, this build speaks version " +
        std::to_string(int{kWireVersion}));
  }
  if (!known_type(head[5])) {
    throw WireError("wire: unknown message type " +
                    std::to_string(int{head[5]}));
  }
  // Varint payload length, bounded to 10 bytes past the fixed prefix.
  std::uint64_t length = 0;
  std::size_t used = 0;
  bool complete = false;
  for (; used < 10 && kFramePrefix + used < available; ++used) {
    const std::uint8_t byte = head[kFramePrefix + used];
    length |= static_cast<std::uint64_t>(byte & 0x7F) << (7 * used);
    if ((byte & 0x80) == 0) {
      complete = true;
      ++used;
      break;
    }
  }
  if (!complete) {
    if (used >= 10) throw WireError("wire: frame length varint too long");
    return false;  // header still arriving
  }
  if (length > kMaxWirePayload) {
    throw WireError("wire: frame payload length is absurd");
  }
  const std::size_t header = kFramePrefix + used;
  if (available < header + length) return false;  // payload still arriving
  out.type = static_cast<MsgType>(head[5]);
  out.payload.assign(head + header,
                     head + header + static_cast<std::size_t>(length));
  scan_ += header + static_cast<std::size_t>(length);
  return true;
}

}  // namespace lorasched::net
