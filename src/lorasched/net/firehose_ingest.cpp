#include "lorasched/net/firehose_ingest.h"

#include <stdexcept>
#include <utility>

namespace lorasched::net {

namespace {

BidStatus shed_status(service::SubmitResult result) noexcept {
  return result == service::SubmitResult::kRejectedClosed
             ? BidStatus::kShedClosed
             : BidStatus::kShedFull;
}

}  // namespace

FirehoseIngest::FirehoseIngest(Config config, SubmitFn submit,
                               QuiesceFn on_quiesce)
    : config_(config),
      submit_(std::move(submit)),
      on_quiesce_(std::move(on_quiesce)),
      listener_(config.port),
      port_(listener_.port()) {
  if (!submit_) {
    throw std::invalid_argument("FirehoseIngest needs a submit function");
  }
  if (config_.metrics != nullptr) {
    bids_in_ = &config_.metrics->counter(
        "lorasched_ingest_bids_total", "Bids received on the ingest port");
    sheds_ = &config_.metrics->counter(
        "lorasched_ingest_sheds_total",
        "Wire bids shed at the queue (full or closed)");
    decisions_out_ = &config_.metrics->counter(
        "lorasched_ingest_decisions_sent_total",
        "Decision frames shipped back to firehose clients");
  }
  acceptor_ = std::thread([this] { accept_main(); });
}

FirehoseIngest::~FirehoseIngest() { stop(); }

void FirehoseIngest::accept_main() {
  while (true) {
    Socket socket;
    try {
      socket = listener_.accept();
    } catch (const TransportError&) {
      return;  // interrupted by stop()
    }
    auto client = std::make_shared<Client>();
    Connection::Config conn_config;
    conn_config.outbox_capacity = config_.outbox_capacity;
    conn_config.metrics = config_.metrics;
    // Weak capture: the Client owns the Connection owns this lambda, so a
    // shared capture would be a cycle that leaks every connection.
    const std::weak_ptr<Client> weak = client;
    client->conn = std::make_unique<Connection>(
        std::move(socket), conn_config,
        [this, weak](Frame&& frame) {
          if (const std::shared_ptr<Client> live = weak.lock()) {
            handle_frame(live, std::move(frame));
          }
        },
        [](const std::string&) {});
    util::MutexLock lock(mutex_);
    if (stopped_) return;  // raced with stop(); Client teardown closes it
    clients_.push_back(std::move(client));
  }
}

void FirehoseIngest::handle_frame(const std::shared_ptr<Client>& client,
                                  Frame&& frame) {
  switch (frame.type) {
    case MsgType::kBidSubmit:
      handle_submit(client, decode_bid_submit(frame.payload));
      return;
    case MsgType::kBidStreamEnd:
      handle_stream_end(decode_bid_stream_end(frame.payload));
      return;
    default:
      client->conn->fail("unexpected " + std::string(to_string(frame.type)) +
                         " frame on the ingest port");
      return;
  }
}

void FirehoseIngest::handle_submit(const std::shared_ptr<Client>& client,
                                   BidSubmitMsg&& msg) {
  if (bids_in_ != nullptr) bids_in_->add(1);
  const TaskId id = msg.task.id;
  {
    // Park before submitting: the consumer thread may decide this bid (and
    // call on_decision) before submit_() even returns.
    util::MutexLock lock(mutex_);
    pending_[id] = Pending{client, msg.source, msg.seq, msg.send_ns};
  }
  const service::SubmitResult result = submit_(msg.task);
  if (result == service::SubmitResult::kAccepted) return;
  {
    util::MutexLock lock(mutex_);
    pending_.erase(id);
  }
  if (sheds_ != nullptr) sheds_->add(1);
  BidDecisionMsg reply;
  reply.source = msg.source;
  reply.seq = msg.seq;
  reply.send_ns = msg.send_ns;
  reply.task = id;
  reply.status = shed_status(result);
  // This runs on the connection's reader thread, so the blocking send()
  // is off-limits; a shed during outbox overload drops the reply and the
  // client accounts the bid as lost — visible, not wedged.
  if (!client->conn->try_send(MsgType::kBidDecision, encode(reply))) {
    replies_dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

void FirehoseIngest::handle_stream_end(const BidStreamEndMsg& msg) {
  QuiesceFn quiesce;
  {
    util::MutexLock lock(mutex_);
    ended_sources_.insert(msg.source);
    if (!quiesced_ && config_.expected_streams > 0 &&
        ended_sources_.size() >=
            static_cast<std::size_t>(config_.expected_streams)) {
      quiesced_ = true;
      quiesce = on_quiesce_;
    }
  }
  if (quiesce) quiesce();
}

void FirehoseIngest::on_decision(TaskId task, bool admitted, Money payment,
                                 Slot decided_slot) {
  Pending entry;
  {
    util::MutexLock lock(mutex_);
    const auto it = pending_.find(task);
    if (it == pending_.end()) return;  // locally fed bid, not ours
    entry = std::move(it->second);
    pending_.erase(it);
  }
  BidDecisionMsg reply;
  reply.source = entry.source;
  reply.seq = entry.seq;
  reply.send_ns = entry.send_ns;
  reply.task = task;
  reply.status = admitted ? BidStatus::kAdmitted : BidStatus::kRejected;
  reply.payment = payment;
  reply.decided_slot = decided_slot;
  // Consumer thread: the blocking send is allowed and gives end-to-end
  // backpressure against a client that stops reading decisions.
  if (entry.client->conn->send(MsgType::kBidDecision, encode(reply))) {
    if (decisions_out_ != nullptr) decisions_out_->add(1);
  } else {
    replies_dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

void FirehoseIngest::stop(std::chrono::milliseconds budget) {
  {
    util::MutexLock lock(mutex_);
    if (stopped_) return;
    stopped_ = true;
  }
  listener_.interrupt();
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::shared_ptr<Client>> clients;
  {
    util::MutexLock lock(mutex_);
    clients.swap(clients_);
  }
  for (const std::shared_ptr<Client>& client : clients) {
    client->conn->drain(budget);
  }
  clients.clear();  // destroys the connections (joins their threads)
}

std::size_t FirehoseIngest::pending() const {
  util::MutexLock lock(mutex_);
  return pending_.size();
}

std::size_t FirehoseIngest::streams_ended() const {
  util::MutexLock lock(mutex_);
  return ended_sources_.size();
}

}  // namespace lorasched::net
