#include "lorasched/net/transport.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace lorasched::net {

namespace {

[[nodiscard]] std::string errno_text(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

[[nodiscard]] std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void set_nodelay(int fd) noexcept {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

Socket::~Socket() { close(); }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.release();
  }
  return *this;
}

Socket Socket::connect(const std::string& host, std::uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* results = nullptr;
  const std::string service = std::to_string(port);
  const int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints,
                               &results);
  if (rc != 0) {
    throw TransportError("resolve " + host + ": " + gai_strerror(rc));
  }
  int last_errno = ECONNREFUSED;
  for (addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_errno = errno;
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      ::freeaddrinfo(results);
      set_nodelay(fd);
      return Socket(fd);
    }
    last_errno = errno;
    ::close(fd);
  }
  ::freeaddrinfo(results);
  errno = last_errno;
  throw TransportError(errno_text(("connect " + host + ":" + service)
                                      .c_str()));
}

void Socket::shutdown() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Listener::Listener(std::uint16_t port, bool loopback_only) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw TransportError(errno_text("socket"));
  socket_ = Socket(fd);
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = loopback_only ? htonl(INADDR_LOOPBACK)
                                       : htonl(INADDR_ANY);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    throw TransportError(errno_text("bind"));
  }
  if (::listen(fd, 16) != 0) throw TransportError(errno_text("listen"));
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    throw TransportError(errno_text("getsockname"));
  }
  port_ = ntohs(bound.sin_port);
}

Socket Listener::accept() {
  const int fd = ::accept(socket_.fd(), nullptr, nullptr);
  if (fd < 0) throw TransportError(errno_text("accept"));
  set_nodelay(fd);
  return Socket(fd);
}

void Listener::interrupt() noexcept {
  socket_.shutdown();
  // Linux accept() does not always wake on shutdown of a listening socket;
  // closing the fd does, at the cost of accept() returning EBADF/EINVAL —
  // both surface as the TransportError the caller expects.
  socket_.close();
}

Connection::Connection(Socket socket, Config config, FrameHandler on_frame,
                       CloseHandler on_close)
    : socket_(std::move(socket)),
      config_(config),
      on_frame_(std::move(on_frame)),
      on_close_(std::move(on_close)) {
  last_rx_ns_.store(now_ns(), std::memory_order_relaxed);
  if (config_.metrics != nullptr) register_metrics();
  reader_ = std::thread(&Connection::reader_main, this);
  writer_ = std::thread(&Connection::writer_main, this);
  if (config_.ping_interval.count() > 0 || config_.idle_timeout.count() > 0 ||
      (config_.hook_interval.count() > 0 && config_.tick_hook)) {
    maintenance_ = std::thread(&Connection::maintenance_main, this);
  }
}

void Connection::register_metrics() {
  obs::MetricsRegistry& reg = *config_.metrics;
  const std::string& prefix = config_.metrics_prefix;
  for (std::size_t raw = static_cast<std::size_t>(MsgType::kHello);
       raw < kTypeSlots; ++raw) {
    const std::string suffix =
        std::string(to_string(static_cast<MsgType>(raw))) + "_total";
    tx_frames_[raw] = &reg.counter(prefix + "_tx_frames_" + suffix,
                                   "Frames enqueued for send, by type");
    tx_bytes_[raw] = &reg.counter(prefix + "_tx_bytes_" + suffix,
                                  "Encoded frame bytes enqueued, by type");
    rx_frames_[raw] = &reg.counter(prefix + "_rx_frames_" + suffix,
                                   "Frames decoded from the peer, by type");
    rx_bytes_[raw] = &reg.counter(prefix + "_rx_bytes_" + suffix,
                                  "Decoded frame bytes received, by type");
  }
  rtt_hist_ = &reg.histogram(
      prefix + "_heartbeat_rtt_seconds",
      obs::HistogramOptions{.min = 1e-6, .max = 10.0},
      "Ping to pong round-trip time");
}

std::chrono::nanoseconds Connection::last_rx_age() const noexcept {
  return std::chrono::nanoseconds(
      now_ns() - last_rx_ns_.load(std::memory_order_relaxed));
}

Connection::~Connection() {
  stopping_.store(true, std::memory_order_release);
  fail("connection destroyed");
  if (reader_.joinable()) reader_.join();
  if (writer_.joinable()) writer_.join();
  if (maintenance_.joinable()) maintenance_.join();
}

void Connection::fail(const std::string& reason) noexcept {
  if (failed_.exchange(true, std::memory_order_acq_rel)) return;
  socket_.shutdown();  // wakes the reader blocked in recv
  outbox_cv_.notify_all();
  outbox_room_.notify_all();
  maint_cv_.notify_all();
  if (on_close_) {
    try {
      std::call_once(close_once_, on_close_, reason);
    } catch (...) {
      // A throwing close handler must not take the process down from a
      // transport thread; the failure state is already set.
    }
  }
}

bool Connection::send(MsgType type, const std::vector<std::uint8_t>& payload) {
  if (!open()) return false;
  return enqueue(type, encode_frame(type, payload));
}

bool Connection::try_send(MsgType type,
                          const std::vector<std::uint8_t>& payload) {
  if (!open()) return false;
  return try_enqueue(type, encode_frame(type, payload));
}

bool Connection::push_locked(MsgType type, std::vector<std::uint8_t>&& bytes,
                             std::size_t encoded_size) {
  outbox_.push_back(std::move(bytes));
  ++in_flight_;
  outbox_cv_.notify_one();
  const auto raw = static_cast<std::size_t>(type);
  if (raw < kTypeSlots && tx_frames_[raw] != nullptr) {
    tx_frames_[raw]->add(1);
    tx_bytes_[raw]->add(encoded_size);
  }
  return true;
}

bool Connection::enqueue(MsgType type, std::vector<std::uint8_t> bytes) {
  const std::size_t encoded_size = bytes.size();
  util::MutexLock lock(outbox_mutex_);
  while (!failed_.load(std::memory_order_acquire) &&
         outbox_.size() >= config_.outbox_capacity) {
    outbox_room_.wait(lock);
  }
  if (failed_.load(std::memory_order_acquire)) return false;
  return push_locked(type, std::move(bytes), encoded_size);
}

bool Connection::try_enqueue(MsgType type, std::vector<std::uint8_t> bytes) {
  const std::size_t encoded_size = bytes.size();
  util::MutexLock lock(outbox_mutex_);
  if (failed_.load(std::memory_order_acquire)) return false;
  if (outbox_.size() >= config_.outbox_capacity) {
    // Shedding instead of waiting keeps the reader and maintenance
    // threads live while a stalled peer backs the outbox up; the missed
    // heartbeat only hastens the idle timeout that stall deserves.
    sends_shed_full_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return push_locked(type, std::move(bytes), encoded_size);
}

void Connection::drain(std::chrono::milliseconds budget) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  util::MutexLock lock(outbox_mutex_);
  while (!failed_.load(std::memory_order_acquire) && in_flight_ != 0) {
    if (outbox_room_.wait_until(lock, deadline) == std::cv_status::timeout) {
      return;
    }
  }
}

void Connection::writer_main() {
  for (;;) {
    std::vector<std::uint8_t> bytes;
    {
      util::MutexLock lock(outbox_mutex_);
      while (!failed_.load(std::memory_order_acquire) && outbox_.empty()) {
        outbox_cv_.wait(lock);
      }
      if (failed_.load(std::memory_order_acquire)) return;
      bytes = std::move(outbox_.front());
      outbox_.pop_front();
      outbox_room_.notify_one();
    }
    std::size_t written = 0;
    while (written < bytes.size()) {
      const ssize_t n =
          ::send(socket_.fd(), bytes.data() + written, bytes.size() - written,
                 MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        fail(errno_text("send"));
        return;
      }
      written += static_cast<std::size_t>(n);
    }
    bytes_sent_.fetch_add(bytes.size(), std::memory_order_relaxed);
    frames_sent_.fetch_add(1, std::memory_order_relaxed);
    {
      util::MutexLock lock(outbox_mutex_);
      --in_flight_;
      outbox_room_.notify_all();  // wakes drain() as well as blocked senders
    }
  }
}

void Connection::reader_main() {
  FrameDecoder decoder;
  std::uint8_t chunk[16 * 1024];
  Frame frame;
  for (;;) {
    const ssize_t n = ::recv(socket_.fd(), chunk, sizeof(chunk), 0);
    if (n == 0) {
      fail("peer closed the connection");
      return;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      fail(stopping_.load(std::memory_order_acquire) ? "connection destroyed"
                                                     : errno_text("recv"));
      return;
    }
    bytes_received_.fetch_add(static_cast<std::uint64_t>(n),
                              std::memory_order_relaxed);
    last_rx_ns_.store(now_ns(), std::memory_order_relaxed);
    try {
      decoder.feed(chunk, static_cast<std::size_t>(n));
      while (decoder.next(frame)) {
        frames_received_.fetch_add(1, std::memory_order_relaxed);
        const auto raw = static_cast<std::size_t>(frame.type);
        if (raw < kTypeSlots && rx_frames_[raw] != nullptr) {
          rx_frames_[raw]->add(1);
          rx_bytes_[raw]->add(frame.payload.size());
        }
        if (frame.type == MsgType::kPing) {
          // Transport-level heartbeat: answer in kind, don't surface. The
          // reply must not block the reader — a full outbox (peer stalled)
          // previously parked the reader here, which froze rx entirely and
          // could deadlock two mutually-stalled peers; shed instead.
          try_enqueue(MsgType::kPong,
                      encode_frame(MsgType::kPong, frame.payload));
          continue;
        }
        if (frame.type == MsgType::kPong) {  // liveness refreshed
          const std::int64_t sent =
              last_ping_sent_ns_.exchange(0, std::memory_order_relaxed);
          if (sent != 0 && rtt_hist_ != nullptr) {
            rtt_hist_->record(static_cast<double>(now_ns() - sent) * 1e-9);
          }
          continue;
        }
        if (on_frame_) on_frame_(std::move(frame));
      }
    } catch (const WireError& e) {
      fail(e.what());
      return;
    } catch (const std::exception& e) {
      fail(std::string("frame handler: ") + e.what());
      return;
    }
  }
}

void Connection::maintenance_main() {
  auto tick = std::chrono::milliseconds::max();
  if (config_.ping_interval.count() > 0) {
    tick = std::min(tick, config_.ping_interval);
  }
  if (config_.idle_timeout.count() > 0) {
    tick = std::min(tick, config_.idle_timeout / 4);
  }
  if (config_.hook_interval.count() > 0 && config_.tick_hook) {
    tick = std::min(tick, config_.hook_interval);
  }
  auto last_ping = std::chrono::steady_clock::now();
  auto last_hook = last_ping;
  util::MutexLock lock(maint_mutex_);
  while (!failed_.load(std::memory_order_acquire)) {
    maint_cv_.wait_for(lock, tick);
    if (failed_.load(std::memory_order_acquire)) return;
    const auto now = std::chrono::steady_clock::now();
    if (config_.idle_timeout.count() > 0) {
      const auto last_rx = std::chrono::steady_clock::time_point(
          std::chrono::nanoseconds(
              last_rx_ns_.load(std::memory_order_relaxed)));
      if (now - last_rx > config_.idle_timeout) {
        fail("peer silent past the idle timeout (heartbeat lost)");
        return;
      }
    }
    if (config_.ping_interval.count() > 0 &&
        now - last_ping >= config_.ping_interval) {
      last_ping = now;
      last_ping_sent_ns_.store(now_ns(), std::memory_order_relaxed);
      // Never block the failure detector on a full outbox: a blocking
      // enqueue() here meant a stalled peer stopped this loop — and with
      // it the idle-timeout check — exactly when detection mattered most.
      if (!try_enqueue(MsgType::kPing, encode_frame(MsgType::kPing, {}))) {
        last_ping_sent_ns_.store(0, std::memory_order_relaxed);
      }
    }
    if (config_.hook_interval.count() > 0 && config_.tick_hook &&
        now - last_hook >= config_.hook_interval) {
      last_hook = now;
      // The metrics-push piggyback (DESIGN.md §12); runs unlocked so the
      // hook may call send() on this connection.
      lock.unlock();
      try {
        config_.tick_hook();
      } catch (...) {
        // An observability hook must never take the transport down.
      }
      lock.lock();
    }
  }
}

Socket connect_with_backoff(const std::string& host, std::uint16_t port,
                            int attempts,
                            std::chrono::milliseconds initial_backoff) {
  std::string last_error = "no attempts made";
  auto pause = initial_backoff;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(pause);
      pause = std::min(pause * 2, std::chrono::milliseconds(5000));
    }
    try {
      return Socket::connect(host, port);
    } catch (const TransportError& e) {
      last_error = e.what();
    }
  }
  throw TransportError("connect to " + host + ":" + std::to_string(port) +
                       " failed after " + std::to_string(attempts) +
                       " attempts: " + last_error);
}

}  // namespace lorasched::net
