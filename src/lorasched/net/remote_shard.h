// Leader-side remote shard plumbing (DESIGN.md §11): AgentLink owns one
// framed TCP connection to a lorasched_host_agent and demultiplexes its
// replies into per-shard mailboxes; RemoteShardHandle implements
// shard::ShardHandle over that link, so ShardedService drives a shard in
// another process through exactly the code path it uses for an in-process
// ShardRunner.
//
// Failure semantics (the part that makes degradation graceful instead of
// hang-or-crash):
//  * Heartbeats live in the transport (Connection pings every
//    ping_interval and fails after heartbeat_timeout of silence), so a
//    killed agent is detected within ~heartbeat_timeout even mid-round.
//  * Every RPC is bounded by rpc_timeout; a timeout FAILS the whole link
//    (socket shut down, mailboxes flushed) so a late reply can never be
//    misdelivered to a later request.
//  * A link failure while a round is in flight permanently kills the
//    affected handles: the agent may or may not have applied the round, so
//    resuming it could silently diverge. The service fails the bids over
//    to live shards (no reroute budget consumed) and routes around the
//    dead shard from then on.
//  * A link failure *between* rounds is recoverable when the handle's
//    leader-side state cache is current (the last wait_round was followed
//    by a state() fetch or restore_state push — true whenever the driver
//    checkpoints every slot): the next use reconnects with backoff,
//    re-handshakes, re-assigns, replays blocks, and restores the cached
//    state, and the shard continues bit-identically.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "lorasched/core/pdftsp.h"
#include "lorasched/net/messages.h"
#include "lorasched/net/transport.h"
#include "lorasched/obs/cluster_trace.h"
#include "lorasched/obs/registry.h"
#include "lorasched/shard/shard_handle.h"
#include "lorasched/shard/sharded_service.h"
#include "lorasched/util/mutex.h"
#include "lorasched/util/thread_annotations.h"

namespace lorasched::net {

struct LinkConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Transport heartbeat cadence and silence budget (see Connection).
  std::chrono::milliseconds ping_interval{200};
  std::chrono::milliseconds heartbeat_timeout{2000};
  /// Per-RPC reply deadline; also bounds wait_round(). A timeout fails the
  /// link (see header comment).
  std::chrono::milliseconds rpc_timeout{10000};
  /// Initial-dial retry budget (connect_with_backoff).
  int connect_attempts = 10;
  std::chrono::milliseconds connect_backoff{50};
  /// Re-dial budget when an established link drops between rounds; 0
  /// disables revival entirely (first failure is permanent).
  int reconnect_attempts = 2;
  /// Optional registry for link observability (borrowed, not owned): the
  /// transport's per-type frame/byte counters and heartbeat RTT histogram
  /// plus the link's reconnect / rpc-timeout counters (DESIGN.md §12).
  obs::MetricsRegistry* metrics = nullptr;
};

/// One connection to one host-agent; shared by every RemoteShardHandle
/// assigned to that agent. All request methods are leader-thread-only; the
/// reader thread only fills mailboxes.
///
/// Lock discipline (DESIGN.md §13): two mutexes, never held together.
/// mutex_ guards the mailboxes and failure state the reader/close threads
/// share with the leader; conn_mutex_ guards conn_ swaps against health()
/// scrapes. Link-down detection inside take_or_wait() reads last_error_
/// (set by the close handler, which notifies mail_cv_) instead of poking
/// the transport, which is what keeps the two locks disjoint.
class AgentLink {
 public:
  AgentLink(LinkConfig config, HelloMsg hello);
  ~AgentLink();

  AgentLink(const AgentLink&) = delete;
  AgentLink& operator=(const AgentLink&) = delete;

  /// Dials (with backoff) and runs the Hello handshake. Throws
  /// TransportError / WireError / std::runtime_error on failure.
  void connect() EXCLUDES(mutex_, conn_mutex_);
  [[nodiscard]] bool open() const noexcept EXCLUDES(conn_mutex_);
  [[nodiscard]] const LinkConfig& config() const noexcept { return config_; }
  /// Close reason of the last failure ("" while open).
  [[nodiscard]] std::string last_error() const EXCLUDES(mutex_);

  /// Sends `type` and blocks for the matching `want` reply for `shard`
  /// (kError from the agent rethrows as std::logic_error — the shard hit a
  /// contract violation, not an outage). Throws shard::ShardUnavailable on
  /// link failure or timeout.
  Frame call(int shard, MsgType type, const std::vector<std::uint8_t>& payload,
             MsgType want) EXCLUDES(mutex_, conn_mutex_);
  /// Fire-and-forget (BeginRound / Offer). Throws shard::ShardUnavailable
  /// when the link is down.
  void post(MsgType type, const std::vector<std::uint8_t>& payload)
      EXCLUDES(mutex_, conn_mutex_);
  /// Like call() without a request — waits for an already-requested reply
  /// (RoundResults after BeginRound+Offers).
  Frame wait(int shard, MsgType want) EXCLUDES(mutex_, conn_mutex_);

  /// Re-dials a dropped link (bounded attempts) and replays every
  /// registered handle's resync. False when the link stays down. No-op
  /// true when already open.
  bool ensure_open() EXCLUDES(mutex_, conn_mutex_);
  /// Runs after every successful reconnect handshake, in shard order. The
  /// callback must not throw (mark the handle dead instead).
  void register_resync(int shard, std::function<void()> resync);

  /// Best-effort kShutdown to the agent (process teardown).
  void send_shutdown() EXCLUDES(conn_mutex_);

  /// Installs the sink for the agent's metrics pushes (kMetricsSnapshot is
  /// agent-scoped — its payload leads with the agent name, not a shard id).
  /// Set before connect(); the sink runs on the reader thread and must not
  /// block on this link. A malformed push fails the link like any other
  /// bad frame.
  void set_metrics_sink(std::function<void(MetricsSnapshotMsg&&)> sink)
      EXCLUDES(mutex_);

  /// Liveness summary for /healthz (DESIGN.md §12). Safe to call from a
  /// scrape thread while the leader thread is using the link.
  struct Health {
    bool open = false;
    std::string last_error;
    /// Nanoseconds since the last frame from the agent (-1: never dialed).
    std::int64_t last_rx_age_ns = -1;
    std::uint64_t reconnects = 0;
    std::uint64_t rpc_timeouts = 0;
  };
  [[nodiscard]] Health health() const EXCLUDES(mutex_, conn_mutex_);

 private:
  void dial_and_handshake() EXCLUDES(mutex_, conn_mutex_);
  void on_frame(Frame&& frame) EXCLUDES(mutex_);
  Frame take_or_wait(int shard, MsgType want,
                     std::chrono::steady_clock::time_point deadline,
                     const char* what) EXCLUDES(mutex_, conn_mutex_);
  /// Leader-thread-only: fetches the transport pointer under conn_mutex_
  /// and drops the lock before the caller touches it. Safe because only
  /// the leader thread ever swaps conn_, so the pointee outlives every
  /// leader-side use; the scrape thread must instead hold conn_mutex_
  /// across its whole read (health() does).
  [[nodiscard]] Connection* connection() const EXCLUDES(conn_mutex_);

  LinkConfig config_;
  HelloMsg hello_;
  /// Guards conn_ swaps (dial / teardown, leader thread) against health()
  /// reads from a scrape thread. Never held together with mutex_ — see the
  /// class comment.
  mutable util::Mutex conn_mutex_;
  std::unique_ptr<Connection> conn_ GUARDED_BY(conn_mutex_);
  /// Leader-thread-only (registered during setup, replayed inside
  /// ensure_open()); deliberately unguarded.
  std::map<int, std::function<void()>> resyncs_;

  mutable util::Mutex mutex_;
  util::CondVar mail_cv_;
  std::map<int, std::deque<Frame>> mail_ GUARDED_BY(mutex_);
  std::string last_error_ GUARDED_BY(mutex_);
  std::function<void(MetricsSnapshotMsg&&)> metrics_sink_ GUARDED_BY(mutex_);
  // Lock-free health counters (read by the scrape thread).
  std::atomic<std::uint64_t> reconnects_{0};
  std::atomic<std::uint64_t> rpc_timeouts_{0};
  obs::Counter* reconnects_total_ = nullptr;
  obs::Counter* rpc_timeouts_total_ = nullptr;
};

/// shard::ShardHandle over an AgentLink — the drop-in that makes
/// ShardedService distributed. Construction assigns the shard on the agent
/// (AssignShard round trip); block() calls are batched and flushed before
/// the first round, mirroring the in-process setup order.
class RemoteShardHandle final : public shard::ShardHandle {
 public:
  RemoteShardHandle(std::shared_ptr<AgentLink> link,
                    const PdftspConfig& policy, int shard_id,
                    std::vector<NodeId> members,
                    const shard::ShardContext& ctx);

  [[nodiscard]] int id() const noexcept override { return shard_id_; }
  [[nodiscard]] const std::vector<NodeId>& to_global()
      const noexcept override {
    return to_global_;
  }
  [[nodiscard]] bool alive() const noexcept override { return !dead_; }

  void block(NodeId local_node, Slot t) override;
  void register_dp_metrics(obs::MetricsRegistry& registry) const override {
    // The DP cache counters live in the agent process; its own registry
    // exports them.
    (void)registry;
  }

  void begin_round(Slot slot, std::size_t expected) override;
  void offer(Task bid) override;
  [[nodiscard]] const std::vector<shard::RoundResult>& wait_round() override;
  void publish(Slot from) override;

  [[nodiscard]] double booked_compute() const noexcept override {
    return booked_;
  }
  [[nodiscard]] shard::ShardState state() const override;
  void restore_state(const shard::ShardState& state) override;
  void accumulate_utilization(double& used, double& cap) const override;

 private:
  /// Throws ShardUnavailable unless the link is usable, reviving it first
  /// when that is safe (see header comment).
  void ensure_ready() const;
  void flush_blocks() const;
  void assign() const;
  void resync();
  [[noreturn]] void die(const std::string& reason) const;

  std::shared_ptr<AgentLink> link_;
  const int shard_id_;
  std::vector<NodeId> to_global_;
  std::vector<double> compute_caps_;  // per local node, for utilization
  const Slot horizon_;
  shard::PriceBoard& board_;
  AssignShardMsg assignment_;

  // Documented exemption (DESIGN.md §13): every mutable member below is
  // leader-thread-only — the handle is driven exclusively by
  // ShardedService's leader thread, including resync(), which runs inside
  // the leader's own ensure_open() call. Nothing here needs a mutex; the
  // concurrent surface is entirely inside AgentLink.
  mutable bool dead_ = false;
  mutable std::string death_reason_;
  /// Rounds ran since the cache was last synced — a drop now loses state.
  mutable bool dirty_ = false;
  bool in_round_ = false;
  mutable std::vector<std::pair<NodeId, Slot>> pending_blocks_;
  std::vector<std::pair<NodeId, Slot>> all_blocks_;  // replay on resync
  std::vector<Task> round_tasks_;
  Slot round_slot_ = 0;
  std::vector<shard::RoundResult> results_;
  double booked_ = 0.0;
  mutable bool have_cache_ = false;
  mutable shard::ShardState cache_;

  // Cross-process tracing (observation-only — never consulted by decision
  // logic). round_trace_ is stamped on every Offer of the round; the
  // agent's spans come back on RoundResults and are absorbed under this
  // agent's label.
  obs::ClusterTraceCollector* tracer_ = nullptr;
  std::string agent_label_;
  obs::RoundTraceCtx round_trace_;
};

}  // namespace lorasched::net
