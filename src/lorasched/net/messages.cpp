#include "lorasched/net/messages.h"

namespace lorasched::net {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void fnv(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= kFnvPrime;
  }
}

void fnv(std::uint64_t& h, double v) {
  fnv(h, std::bit_cast<std::uint64_t>(v));
}

void put_node_ids(WireWriter& w, const std::vector<NodeId>& ids) {
  w.put_varint(ids.size());
  for (const NodeId id : ids) w.put_svarint(id);
}

std::vector<NodeId> get_node_ids(WireReader& r, const char* what) {
  const std::uint64_t n = r.get_count(what);
  std::vector<NodeId> ids(static_cast<std::size_t>(n));
  for (NodeId& id : ids) id = static_cast<NodeId>(r.get_svarint(what));
  return ids;
}

void put_shard_state(WireWriter& w, const ShardWireState& s) {
  w.put_f64(s.booked_compute);
  w.put_doubles(s.policy_state);
  put_ledger(w, s.ledger);
}

ShardWireState get_shard_state(WireReader& r) {
  ShardWireState s;
  s.booked_compute = r.get_f64("state booked");
  s.policy_state = r.get_doubles("state policy");
  s.ledger = get_ledger(r);
  return s;
}

}  // namespace

std::uint64_t env_digest(const Cluster& cluster, const Marketplace& market,
                         Slot horizon) {
  std::uint64_t h = kFnvOffset;
  fnv(h, static_cast<std::uint64_t>(cluster.node_count()));
  fnv(h, static_cast<std::uint64_t>(cluster.class_count()));
  fnv(h, static_cast<std::uint64_t>(horizon));
  fnv(h, cluster.base_model_gb());
  for (NodeId k = 0; k < cluster.node_count(); ++k) {
    fnv(h, static_cast<std::uint64_t>(cluster.node_class(k)));
    fnv(h, cluster.compute_capacity(k));
    fnv(h, cluster.mem_capacity(k));
  }
  fnv(h, static_cast<std::uint64_t>(market.vendor_count()));
  fnv(h, market.config().price_lo);
  fnv(h, market.config().price_hi);
  return h;
}

void put_task(WireWriter& w, const Task& t) {
  w.put_svarint(t.id);
  w.put_svarint(t.arrival);
  w.put_svarint(t.deadline);
  w.put_f64(t.dataset_samples);
  w.put_svarint(t.epochs);
  w.put_f64(t.work);
  w.put_f64(t.mem_gb);
  w.put_f64(t.compute_share);
  w.put_bool(t.needs_prep);
  w.put_svarint(t.model);
  w.put_f64(t.bid);
  w.put_f64(t.true_value);
}

Task get_task(WireReader& r) {
  Task t;
  t.id = static_cast<TaskId>(r.get_svarint("task id"));
  t.arrival = static_cast<Slot>(r.get_svarint("task arrival"));
  t.deadline = static_cast<Slot>(r.get_svarint("task deadline"));
  t.dataset_samples = r.get_f64("task dataset");
  t.epochs = static_cast<int>(r.get_svarint("task epochs"));
  t.work = r.get_f64("task work");
  t.mem_gb = r.get_f64("task mem");
  t.compute_share = r.get_f64("task share");
  t.needs_prep = r.get_bool("task prep");
  t.model = static_cast<int>(r.get_svarint("task model"));
  t.bid = r.get_f64("task bid");
  t.true_value = r.get_f64("task value");
  return t;
}

void put_schedule(WireWriter& w, const Schedule& s) {
  w.put_svarint(s.task);
  w.put_svarint(s.vendor);
  w.put_f64(s.vendor_price);
  w.put_svarint(s.prep_delay);
  w.put_varint(s.run.size());
  for (const Assignment& a : s.run) {
    w.put_svarint(a.node);
    w.put_svarint(a.slot);
  }
  w.put_f64(s.total_compute);
  w.put_f64(s.total_mem);
  w.put_f64(s.norm_compute);
  w.put_f64(s.norm_mem);
  w.put_f64(s.energy_cost);
  w.put_f64(s.welfare_gain);
  w.put_bool(s.exclusive);
  w.put_f64(s.share_override);
}

Schedule get_schedule(WireReader& r) {
  Schedule s;
  s.task = static_cast<TaskId>(r.get_svarint("schedule task"));
  s.vendor = static_cast<VendorId>(r.get_svarint("schedule vendor"));
  s.vendor_price = r.get_f64("schedule vendor price");
  s.prep_delay = static_cast<Slot>(r.get_svarint("schedule prep delay"));
  const std::uint64_t n = r.get_count("schedule run length");
  s.run.resize(static_cast<std::size_t>(n));
  for (Assignment& a : s.run) {
    a.node = static_cast<NodeId>(r.get_svarint("schedule node"));
    a.slot = static_cast<Slot>(r.get_svarint("schedule slot"));
  }
  s.total_compute = r.get_f64("schedule compute");
  s.total_mem = r.get_f64("schedule mem");
  s.norm_compute = r.get_f64("schedule norm compute");
  s.norm_mem = r.get_f64("schedule norm mem");
  s.energy_cost = r.get_f64("schedule energy");
  s.welfare_gain = r.get_f64("schedule welfare");
  s.exclusive = r.get_bool("schedule exclusive");
  s.share_override = r.get_f64("schedule share override");
  return s;
}

void put_price_snapshot(WireWriter& w, const shard::PriceSnapshot& s) {
  w.put_svarint(s.published_slot);
  w.put_f64(s.free_compute);
  w.put_varint(s.classes.size());
  for (const shard::ClassPrice& c : s.classes) {
    w.put_f64(c.free_compute);
    w.put_f64(c.free_mem);
    w.put_f64(c.mean_lambda);
    w.put_f64(c.mean_phi);
  }
}

shard::PriceSnapshot get_price_snapshot(WireReader& r) {
  shard::PriceSnapshot s;
  s.published_slot = static_cast<Slot>(r.get_svarint("snapshot slot"));
  s.free_compute = r.get_f64("snapshot free compute");
  const std::uint64_t n = r.get_count("snapshot class count");
  s.classes.resize(static_cast<std::size_t>(n));
  for (shard::ClassPrice& c : s.classes) {
    c.free_compute = r.get_f64("class free compute");
    c.free_mem = r.get_f64("class free mem");
    c.mean_lambda = r.get_f64("class lambda");
    c.mean_phi = r.get_f64("class phi");
  }
  return s;
}

void put_ledger(WireWriter& w, const CapacityLedger::Snapshot& s) {
  w.put_svarint(s.nodes);
  w.put_svarint(s.horizon);
  w.put_doubles(s.used_compute);
  w.put_doubles(s.used_mem);
  w.put_varint(s.task_count.size());
  for (const int v : s.task_count) w.put_svarint(v);
  w.put_varint(s.exclusive.size());
  for (const char v : s.exclusive) w.put_u8(v != 0 ? 1 : 0);
  w.put_varint(s.blocked.size());
  for (const char v : s.blocked) w.put_u8(v != 0 ? 1 : 0);
}

CapacityLedger::Snapshot get_ledger(WireReader& r) {
  CapacityLedger::Snapshot s;
  s.nodes = static_cast<int>(r.get_svarint("ledger nodes"));
  s.horizon = static_cast<Slot>(r.get_svarint("ledger horizon"));
  s.used_compute = r.get_doubles("ledger used compute");
  s.used_mem = r.get_doubles("ledger used mem");
  const std::uint64_t counts = r.get_count("ledger task counts");
  s.task_count.resize(static_cast<std::size_t>(counts));
  for (int& v : s.task_count) {
    v = static_cast<int>(r.get_svarint("ledger task count"));
  }
  const std::uint64_t exclusive = r.get_count("ledger exclusive count");
  s.exclusive.resize(static_cast<std::size_t>(exclusive));
  for (char& v : s.exclusive) {
    v = static_cast<char>(r.get_u8("ledger exclusive"));
  }
  const std::uint64_t blocked = r.get_count("ledger blocked count");
  s.blocked.resize(static_cast<std::size_t>(blocked));
  for (char& v : s.blocked) v = static_cast<char>(r.get_u8("ledger blocked"));
  return s;
}

std::vector<std::uint8_t> encode(const HelloMsg& m) {
  WireWriter w;
  w.put_varint(m.digest);
  w.put_svarint(m.nodes);
  w.put_svarint(m.classes);
  w.put_svarint(m.horizon);
  w.put_svarint(m.shards_total);
  return w.take();
}

HelloMsg decode_hello(const std::vector<std::uint8_t>& p) {
  WireReader r(p);
  HelloMsg m;
  m.digest = r.get_varint("hello digest");
  m.nodes = static_cast<std::int32_t>(r.get_svarint("hello nodes"));
  m.classes = static_cast<std::int32_t>(r.get_svarint("hello classes"));
  m.horizon = static_cast<Slot>(r.get_svarint("hello horizon"));
  m.shards_total = static_cast<std::int32_t>(r.get_svarint("hello shards"));
  r.expect_done("hello");
  return m;
}

std::vector<std::uint8_t> encode(const HelloAckMsg& m) {
  WireWriter w;
  w.put_varint(m.digest);
  return w.take();
}

HelloAckMsg decode_hello_ack(const std::vector<std::uint8_t>& p) {
  WireReader r(p);
  HelloAckMsg m;
  m.digest = r.get_varint("hello_ack digest");
  r.expect_done("hello_ack");
  return m;
}

std::vector<std::uint8_t> encode(const AssignShardMsg& m) {
  WireWriter w;
  w.put_svarint(m.shard_id);
  put_node_ids(w, m.members);
  w.put_f64(m.alpha);
  w.put_f64(m.beta);
  w.put_f64(m.welfare_unit);
  w.put_doubles(m.share_options);
  w.put_svarint(m.parallel_candidates);
  w.put_bool(m.time_decisions);
  w.put_varint(m.inbox_capacity);
  return w.take();
}

AssignShardMsg decode_assign_shard(const std::vector<std::uint8_t>& p) {
  WireReader r(p);
  AssignShardMsg m;
  m.shard_id = static_cast<std::int32_t>(r.get_svarint("assign shard id"));
  m.members = get_node_ids(r, "assign members");
  m.alpha = r.get_f64("assign alpha");
  m.beta = r.get_f64("assign beta");
  m.welfare_unit = r.get_f64("assign welfare unit");
  m.share_options = r.get_doubles("assign share options");
  m.parallel_candidates =
      static_cast<std::int32_t>(r.get_svarint("assign parallel"));
  m.time_decisions = r.get_bool("assign timing");
  m.inbox_capacity = r.get_varint("assign inbox capacity");
  r.expect_done("assign_shard");
  return m;
}

std::vector<std::uint8_t> encode(const AssignAckMsg& m) {
  WireWriter w;
  w.put_svarint(m.shard_id);
  return w.take();
}

AssignAckMsg decode_assign_ack(const std::vector<std::uint8_t>& p) {
  WireReader r(p);
  AssignAckMsg m;
  m.shard_id = static_cast<std::int32_t>(r.get_svarint("assign_ack shard"));
  r.expect_done("assign_ack");
  return m;
}

std::vector<std::uint8_t> encode(const BlockCellsMsg& m) {
  WireWriter w;
  w.put_svarint(m.shard_id);
  w.put_varint(m.cells.size());
  for (const auto& [node, slot] : m.cells) {
    w.put_svarint(node);
    w.put_svarint(slot);
  }
  return w.take();
}

BlockCellsMsg decode_block_cells(const std::vector<std::uint8_t>& p) {
  WireReader r(p);
  BlockCellsMsg m;
  m.shard_id = static_cast<std::int32_t>(r.get_svarint("block shard"));
  const std::uint64_t n = r.get_count("block cell count");
  m.cells.resize(static_cast<std::size_t>(n));
  for (auto& [node, slot] : m.cells) {
    node = static_cast<NodeId>(r.get_svarint("block node"));
    slot = static_cast<Slot>(r.get_svarint("block slot"));
  }
  r.expect_done("block_cells");
  return m;
}

std::vector<std::uint8_t> encode(const BlockAckMsg& m) {
  WireWriter w;
  w.put_svarint(m.shard_id);
  return w.take();
}

BlockAckMsg decode_block_ack(const std::vector<std::uint8_t>& p) {
  WireReader r(p);
  BlockAckMsg m;
  m.shard_id = static_cast<std::int32_t>(r.get_svarint("block_ack shard"));
  r.expect_done("block_ack");
  return m;
}

std::vector<std::uint8_t> encode(const BeginRoundMsg& m) {
  WireWriter w;
  w.put_svarint(m.shard_id);
  w.put_svarint(m.slot);
  w.put_varint(m.expected);
  return w.take();
}

BeginRoundMsg decode_begin_round(const std::vector<std::uint8_t>& p) {
  WireReader r(p);
  BeginRoundMsg m;
  m.shard_id = static_cast<std::int32_t>(r.get_svarint("round shard"));
  m.slot = static_cast<Slot>(r.get_svarint("round slot"));
  m.expected = r.get_count("round expected");
  r.expect_done("begin_round");
  return m;
}

std::vector<std::uint8_t> encode(const OfferMsg& m) {
  WireWriter w;
  w.put_svarint(m.shard_id);
  put_task(w, m.task);
  w.put_varint(m.trace_id);
  w.put_varint(m.parent_span);
  return w.take();
}

OfferMsg decode_offer(const std::vector<std::uint8_t>& p) {
  WireReader r(p);
  OfferMsg m;
  m.shard_id = static_cast<std::int32_t>(r.get_svarint("offer shard"));
  m.task = get_task(r);
  m.trace_id = r.get_varint("offer trace id");
  m.parent_span = r.get_varint("offer parent span");
  r.expect_done("offer");
  return m;
}

std::vector<std::uint8_t> encode(const RoundResultsMsg& m) {
  WireWriter w;
  w.put_svarint(m.shard_id);
  w.put_svarint(m.slot);
  w.put_varint(m.results.size());
  for (const WireDecision& d : m.results) {
    w.put_svarint(d.task);
    w.put_bool(d.admit);
    w.put_f64(d.payment);
    w.put_f64(d.decide_seconds);
    if (d.admit) put_schedule(w, d.schedule);
  }
  put_price_snapshot(w, m.snapshot);
  w.put_varint(m.spans.size());
  for (const obs::RemoteSpan& s : m.spans) put_span(w, s);
  return w.take();
}

RoundResultsMsg decode_round_results(const std::vector<std::uint8_t>& p) {
  WireReader r(p);
  RoundResultsMsg m;
  m.shard_id = static_cast<std::int32_t>(r.get_svarint("results shard"));
  m.slot = static_cast<Slot>(r.get_svarint("results slot"));
  const std::uint64_t n = r.get_count("results count");
  m.results.resize(static_cast<std::size_t>(n));
  for (WireDecision& d : m.results) {
    d.task = static_cast<TaskId>(r.get_svarint("result task"));
    d.admit = r.get_bool("result admit");
    d.payment = r.get_f64("result payment");
    d.decide_seconds = r.get_f64("result decide seconds");
    if (d.admit) d.schedule = get_schedule(r);
  }
  m.snapshot = get_price_snapshot(r);
  const std::uint64_t spans = r.get_count("results span count");
  m.spans.resize(static_cast<std::size_t>(spans));
  for (obs::RemoteSpan& s : m.spans) s = get_span(r);
  r.expect_done("round_results");
  return m;
}

std::vector<std::uint8_t> encode(const PublishRequestMsg& m) {
  WireWriter w;
  w.put_svarint(m.shard_id);
  w.put_svarint(m.from);
  return w.take();
}

PublishRequestMsg decode_publish_request(const std::vector<std::uint8_t>& p) {
  WireReader r(p);
  PublishRequestMsg m;
  m.shard_id = static_cast<std::int32_t>(r.get_svarint("publish shard"));
  m.from = static_cast<Slot>(r.get_svarint("publish from"));
  r.expect_done("publish_request");
  return m;
}

std::vector<std::uint8_t> encode(const PublishReplyMsg& m) {
  WireWriter w;
  w.put_svarint(m.shard_id);
  put_price_snapshot(w, m.snapshot);
  return w.take();
}

PublishReplyMsg decode_publish_reply(const std::vector<std::uint8_t>& p) {
  WireReader r(p);
  PublishReplyMsg m;
  m.shard_id = static_cast<std::int32_t>(r.get_svarint("publish_reply shard"));
  m.snapshot = get_price_snapshot(r);
  r.expect_done("publish_reply");
  return m;
}

std::vector<std::uint8_t> encode(const StateRequestMsg& m) {
  WireWriter w;
  w.put_svarint(m.shard_id);
  return w.take();
}

StateRequestMsg decode_state_request(const std::vector<std::uint8_t>& p) {
  WireReader r(p);
  StateRequestMsg m;
  m.shard_id = static_cast<std::int32_t>(r.get_svarint("state_request shard"));
  r.expect_done("state_request");
  return m;
}

std::vector<std::uint8_t> encode(const StateReplyMsg& m) {
  WireWriter w;
  w.put_svarint(m.shard_id);
  put_shard_state(w, m.state);
  return w.take();
}

StateReplyMsg decode_state_reply(const std::vector<std::uint8_t>& p) {
  WireReader r(p);
  StateReplyMsg m;
  m.shard_id = static_cast<std::int32_t>(r.get_svarint("state_reply shard"));
  m.state = get_shard_state(r);
  r.expect_done("state_reply");
  return m;
}

std::vector<std::uint8_t> encode(const RestoreStateMsg& m) {
  WireWriter w;
  w.put_svarint(m.shard_id);
  put_shard_state(w, m.state);
  return w.take();
}

RestoreStateMsg decode_restore_state(const std::vector<std::uint8_t>& p) {
  WireReader r(p);
  RestoreStateMsg m;
  m.shard_id = static_cast<std::int32_t>(r.get_svarint("restore shard"));
  m.state = get_shard_state(r);
  r.expect_done("restore_state");
  return m;
}

std::vector<std::uint8_t> encode(const RestoreAckMsg& m) {
  WireWriter w;
  w.put_svarint(m.shard_id);
  return w.take();
}

RestoreAckMsg decode_restore_ack(const std::vector<std::uint8_t>& p) {
  WireReader r(p);
  RestoreAckMsg m;
  m.shard_id = static_cast<std::int32_t>(r.get_svarint("restore_ack shard"));
  r.expect_done("restore_ack");
  return m;
}

void put_histogram_snapshot(WireWriter& w, const obs::HistogramSnapshot& h) {
  w.put_f64(h.options.min);
  w.put_f64(h.options.max);
  w.put_svarint(h.options.buckets_per_octave);
  w.put_varint(h.counts.size());
  for (const std::uint64_t c : h.counts) w.put_varint(c);
  w.put_varint(h.count);
  w.put_f64(h.sum);
  w.put_f64(h.min_seen);
  w.put_f64(h.max_seen);
}

obs::HistogramSnapshot get_histogram_snapshot(WireReader& r) {
  obs::HistogramSnapshot h;
  h.options.min = r.get_f64("histogram min");
  h.options.max = r.get_f64("histogram max");
  h.options.buckets_per_octave =
      static_cast<int>(r.get_svarint("histogram bpo"));
  const std::uint64_t buckets = r.get_count("histogram bucket count");
  h.counts.resize(static_cast<std::size_t>(buckets));
  for (std::uint64_t& c : h.counts) c = r.get_varint("histogram bucket");
  h.count = r.get_varint("histogram count");
  h.sum = r.get_f64("histogram sum");
  h.min_seen = r.get_f64("histogram min seen");
  h.max_seen = r.get_f64("histogram max seen");
  return h;
}

void put_metric(WireWriter& w, const obs::MetricSnapshot& m) {
  w.put_string(m.name);
  w.put_string(m.help);
  w.put_u8(static_cast<std::uint8_t>(m.kind));
  w.put_f64(m.value);
  if (m.kind == obs::MetricKind::kHistogram) {
    put_histogram_snapshot(w, m.histogram);
  }
}

obs::MetricSnapshot get_metric(WireReader& r) {
  obs::MetricSnapshot m;
  m.name = r.get_string("metric name");
  m.help = r.get_string("metric help");
  const std::uint8_t kind = r.get_u8("metric kind");
  if (kind > static_cast<std::uint8_t>(obs::MetricKind::kHistogram)) {
    throw WireError("wire: bad metric kind");
  }
  m.kind = static_cast<obs::MetricKind>(kind);
  m.value = r.get_f64("metric value");
  if (m.kind == obs::MetricKind::kHistogram) {
    m.histogram = get_histogram_snapshot(r);
  }
  return m;
}

void put_span(WireWriter& w, const obs::RemoteSpan& s) {
  w.put_string(s.name);
  w.put_svarint(s.task);
  w.put_varint(s.trace_id);
  w.put_varint(s.span_id);
  w.put_varint(s.parent_span);
  w.put_svarint(s.start_offset_ns);
  w.put_svarint(s.duration_ns);
}

obs::RemoteSpan get_span(WireReader& r) {
  obs::RemoteSpan s;
  s.name = r.get_string("span name");
  s.task = r.get_svarint("span task");
  s.trace_id = r.get_varint("span trace id");
  s.span_id = r.get_varint("span id");
  s.parent_span = r.get_varint("span parent");
  s.start_offset_ns = r.get_svarint("span start offset");
  s.duration_ns = r.get_svarint("span duration");
  return s;
}

std::vector<std::uint8_t> encode(const MetricsSnapshotMsg& m) {
  WireWriter w;
  w.put_string(m.agent);
  w.put_varint(m.seq);
  w.put_varint(m.groups.size());
  for (const obs::MetricsGroup& g : m.groups) {
    w.put_svarint(g.shard);
    w.put_varint(g.metrics.size());
    for (const obs::MetricSnapshot& metric : g.metrics) put_metric(w, metric);
  }
  return w.take();
}

MetricsSnapshotMsg decode_metrics_snapshot(const std::vector<std::uint8_t>& p) {
  WireReader r(p);
  MetricsSnapshotMsg m;
  m.agent = r.get_string("metrics agent");
  m.seq = r.get_varint("metrics seq");
  const std::uint64_t groups = r.get_count("metrics group count");
  m.groups.resize(static_cast<std::size_t>(groups));
  for (obs::MetricsGroup& g : m.groups) {
    g.shard = static_cast<std::int32_t>(r.get_svarint("metrics shard"));
    const std::uint64_t metrics = r.get_count("metrics metric count");
    g.metrics.resize(static_cast<std::size_t>(metrics));
    for (obs::MetricSnapshot& metric : g.metrics) metric = get_metric(r);
  }
  r.expect_done("metrics_snapshot");
  return m;
}

std::vector<std::uint8_t> encode(const ErrorMsg& m) {
  WireWriter w;
  w.put_svarint(m.shard_id);
  w.put_string(m.message);
  return w.take();
}

ErrorMsg decode_error(const std::vector<std::uint8_t>& p) {
  WireReader r(p);
  ErrorMsg m;
  m.shard_id = static_cast<std::int32_t>(r.get_svarint("error shard"));
  m.message = r.get_string("error message");
  r.expect_done("error");
  return m;
}

std::vector<std::uint8_t> encode(const BidSubmitMsg& m) {
  WireWriter w;
  w.put_varint(m.source);
  w.put_varint(m.seq);
  w.put_svarint(m.send_ns);
  put_task(w, m.task);
  return w.take();
}

BidSubmitMsg decode_bid_submit(const std::vector<std::uint8_t>& p) {
  WireReader r(p);
  BidSubmitMsg m;
  m.source = static_cast<std::uint32_t>(r.get_varint("bid_submit source"));
  m.seq = r.get_varint("bid_submit seq");
  m.send_ns = r.get_svarint("bid_submit send_ns");
  m.task = get_task(r);
  r.expect_done("bid_submit");
  return m;
}

std::vector<std::uint8_t> encode(const BidDecisionMsg& m) {
  WireWriter w;
  w.put_varint(m.source);
  w.put_varint(m.seq);
  w.put_svarint(m.send_ns);
  w.put_svarint(m.task);
  w.put_u8(static_cast<std::uint8_t>(m.status));
  w.put_f64(m.payment);
  w.put_svarint(m.decided_slot);
  return w.take();
}

BidDecisionMsg decode_bid_decision(const std::vector<std::uint8_t>& p) {
  WireReader r(p);
  BidDecisionMsg m;
  m.source = static_cast<std::uint32_t>(r.get_varint("bid_decision source"));
  m.seq = r.get_varint("bid_decision seq");
  m.send_ns = r.get_svarint("bid_decision send_ns");
  m.task = static_cast<TaskId>(r.get_svarint("bid_decision task"));
  const std::uint8_t status = r.get_u8("bid_decision status");
  if (status > static_cast<std::uint8_t>(BidStatus::kShedClosed)) {
    throw WireError("wire: unknown bid_decision status " +
                    std::to_string(int{status}));
  }
  m.status = static_cast<BidStatus>(status);
  m.payment = r.get_f64("bid_decision payment");
  m.decided_slot = static_cast<Slot>(r.get_svarint("bid_decision slot"));
  r.expect_done("bid_decision");
  return m;
}

std::vector<std::uint8_t> encode(const BidStreamEndMsg& m) {
  WireWriter w;
  w.put_varint(m.source);
  w.put_varint(m.offered);
  return w.take();
}

BidStreamEndMsg decode_bid_stream_end(const std::vector<std::uint8_t>& p) {
  WireReader r(p);
  BidStreamEndMsg m;
  m.source = static_cast<std::uint32_t>(r.get_varint("bid_stream_end source"));
  m.offered = r.get_varint("bid_stream_end offered");
  r.expect_done("bid_stream_end");
  return m;
}

}  // namespace lorasched::net
