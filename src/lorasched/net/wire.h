// Binary wire format for the distributed control plane (DESIGN.md §11).
//
// Every frame on a leader/host-agent connection is
//
//   magic "lswp" (4 bytes) | version (1 byte) | msg type (1 byte)
//   | payload length (varint) | payload bytes
//
// and payloads are built from four primitives only: LEB128 varints
// (unsigned, at most ten bytes, overlong encodings rejected), zigzag
// varints for signed integers, little-endian fixed 64-bit doubles (a
// bit_cast of the IEEE-754 pattern, so every double crosses the wire
// bit-identically — the distributed service's determinism guarantee
// depends on this), and length-prefixed byte strings.
//
// Decoding is defensive: truncation, overlong varints, counts beyond
// kMaxWireElements, and payloads beyond kMaxWirePayload all throw
// WireError with a message naming the field — never UB, never an
// allocation driven by an unvalidated count (fuzz/fuzz_wire.cpp hammers
// exactly these paths).
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace lorasched::net {

/// Malformed or truncated wire data. Also the error a decoder raises on
/// version skew, so every "this peer speaks something else" failure is one
/// catchable type.
class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

inline constexpr std::uint8_t kWireMagic[4] = {'l', 's', 'w', 'p'};
inline constexpr std::uint8_t kWireVersion = 1;
/// Frame header bytes before the varint payload length.
inline constexpr std::size_t kFramePrefix = 6;

/// Hard ceiling on a frame payload (checkpoint states dominate; a fleet
/// ledger at 1<<26 cells of doubles is ~0.5 GiB — anything past 1 GiB is a
/// corrupt or hostile length field).
inline constexpr std::uint64_t kMaxWirePayload = std::uint64_t{1} << 30;
/// Hard ceiling on any element count inside a payload, mirroring
/// io::serialize's kMaxCheckpointCount rationale.
inline constexpr std::uint64_t kMaxWireElements = std::uint64_t{1} << 26;

/// Control-plane message types (DESIGN.md §11 tables).
enum class MsgType : std::uint8_t {
  kHello = 1,          // leader -> agent: env digest + fleet shape
  kHelloAck = 2,       // agent -> leader: digest echo
  kAssignShard = 3,    // leader -> agent: shard id, members, pricing config
  kAssignAck = 4,      // agent -> leader
  kBlockCells = 5,     // leader -> agent: outage calendar for one shard
  kBlockAck = 6,       // agent -> leader
  kBeginRound = 7,     // leader -> agent: slot + expected offer count
  kOffer = 8,          // leader -> agent: one bid
  kRoundResults = 9,   // agent -> leader: decisions + fresh price summary
  kPublishRequest = 10,  // leader -> agent: republish from a slot
  kPublishReply = 11,    // agent -> leader: price summary
  kStateRequest = 12,    // leader -> agent: checkpoint one shard
  kStateReply = 13,      // agent -> leader: booked/policy/ledger state
  kRestoreState = 14,    // leader -> agent: restore one shard
  kRestoreAck = 15,      // agent -> leader
  kPing = 16,            // either direction; transport answers kPong itself
  kPong = 17,
  kShutdown = 18,  // leader -> agent: drain and exit
  kError = 19,     // agent -> leader: round failed (message = what())
  kMetricsSnapshot = 20,  // agent -> leader: cumulative metrics push
  // Bid-ingest stream (firehose client -> serving process), DESIGN.md §14.
  kBidSubmit = 21,     // client -> server: one sequenced bid
  kBidDecision = 22,   // server -> client: decision/shed for one bid
  kBidStreamEnd = 23,  // client -> server: this source is done sending
};

[[nodiscard]] const char* to_string(MsgType type) noexcept;

// --- Encoding ---------------------------------------------------------------

class WireWriter {
 public:
  void put_u8(std::uint8_t v) { buffer_.push_back(v); }
  /// LEB128 unsigned varint, 1-10 bytes.
  void put_varint(std::uint64_t v);
  /// Zigzag-mapped signed varint.
  void put_svarint(std::int64_t v) {
    put_varint((static_cast<std::uint64_t>(v) << 1) ^
               static_cast<std::uint64_t>(v >> 63));
  }
  /// Little-endian fixed 8-byte IEEE-754 pattern (bit-exact round trip).
  void put_f64(double v);
  void put_bool(bool v) { put_u8(v ? 1 : 0); }
  /// Varint length + raw bytes.
  void put_string(const std::string& s);
  void put_doubles(const std::vector<double>& values);

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept {
    return buffer_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() noexcept {
    return std::move(buffer_);
  }

 private:
  std::vector<std::uint8_t> buffer_;
};

// --- Decoding ---------------------------------------------------------------

class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit WireReader(const std::vector<std::uint8_t>& bytes)
      : WireReader(bytes.data(), bytes.size()) {}

  [[nodiscard]] std::uint8_t get_u8(const char* what);
  [[nodiscard]] std::uint64_t get_varint(const char* what);
  [[nodiscard]] std::int64_t get_svarint(const char* what) {
    const std::uint64_t z = get_varint(what);
    return static_cast<std::int64_t>((z >> 1) ^ (~(z & 1) + 1));
  }
  [[nodiscard]] double get_f64(const char* what);
  [[nodiscard]] bool get_bool(const char* what) { return get_u8(what) != 0; }
  [[nodiscard]] std::string get_string(const char* what);
  [[nodiscard]] std::vector<double> get_doubles(const char* what);
  /// Varint bounded by kMaxWireElements — use for every element count that
  /// drives an allocation.
  [[nodiscard]] std::uint64_t get_count(const char* what);

  [[nodiscard]] std::size_t remaining() const noexcept { return size_ - pos_; }
  /// Throws WireError unless the payload was consumed exactly.
  void expect_done(const char* what) const;

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// --- Framing ----------------------------------------------------------------

struct Frame {
  MsgType type = MsgType::kPing;
  std::vector<std::uint8_t> payload;
};

/// Serializes a complete frame (header + payload) ready for one write.
[[nodiscard]] std::vector<std::uint8_t> encode_frame(MsgType type,
                                                     const std::vector<
                                                         std::uint8_t>&
                                                         payload);

/// Incremental frame decoder for a byte stream: feed bytes as they arrive,
/// pop complete frames. Throws WireError on bad magic, version skew, an
/// unknown message type, or an absurd payload length — the connection is
/// then unrecoverable (framing is lost) and must be closed.
class FrameDecoder {
 public:
  void feed(const std::uint8_t* data, std::size_t size);
  /// Extracts the next complete frame, or false if more bytes are needed.
  [[nodiscard]] bool next(Frame& out);

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t scan_ = 0;  // consumed prefix, compacted lazily
};

}  // namespace lorasched::net
