#include "lorasched/net/http.h"

#include <sys/socket.h>
#include <sys/time.h>

#include <cstring>
#include <stdexcept>

namespace lorasched::net {

namespace {

constexpr std::size_t kMaxRequestHead = 8 * 1024;

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    default: return "OK";
  }
}

void send_all(Socket& socket, const std::string& bytes) {
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n = ::send(socket.fd(), bytes.data() + written,
                             bytes.size() - written, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // peer gone; nothing useful to do
    }
    written += static_cast<std::size_t>(n);
  }
}

void send_response(Socket& socket, const HttpResponse& response) {
  std::string head = "HTTP/1.1 " + std::to_string(response.status) + " " +
                     status_text(response.status) +
                     "\r\nContent-Type: " + response.content_type +
                     "\r\nContent-Length: " +
                     std::to_string(response.body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  send_all(socket, head + response.body);
}

}  // namespace

HttpServer::HttpServer(std::uint16_t port, bool loopback_only)
    : listener_(port, loopback_only) {}

HttpServer::~HttpServer() { stop(); }

void HttpServer::handle(std::string path, HttpHandler handler) {
  if (started_.load(std::memory_order_acquire)) {
    // The accept thread reads handlers_ without a lock — the map must be
    // frozen before it starts.
    throw std::logic_error("HttpServer::handle() after start()");
  }
  handlers_[std::move(path)] = std::move(handler);
}

void HttpServer::start() {
  if (started_.exchange(true, std::memory_order_acq_rel)) return;
  accept_thread_ = std::thread(&HttpServer::accept_main, this);
}

void HttpServer::stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  listener_.interrupt();
  if (accept_thread_.joinable()) accept_thread_.join();
}

std::uint16_t HttpServer::port() const noexcept { return listener_.port(); }

void HttpServer::accept_main() {
  while (!stopping_.load(std::memory_order_acquire)) {
    Socket socket;
    try {
      socket = listener_.accept();
    } catch (const TransportError&) {
      return;  // interrupted (stop) or listener gone
    }
    timeval timeout{};
    timeout.tv_sec = 2;
    ::setsockopt(socket.fd(), SOL_SOCKET, SO_RCVTIMEO, &timeout,
                 sizeof(timeout));
    serve_one(std::move(socket));
  }
}

void HttpServer::serve_one(Socket socket) {
  std::string head;
  char chunk[1024];
  while (head.find("\r\n\r\n") == std::string::npos) {
    if (head.size() > kMaxRequestHead) {
      send_response(socket, HttpResponse{431, "text/plain; charset=utf-8",
                                         "request head too large\n"});
      return;
    }
    const ssize_t n = ::recv(socket.fd(), chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // peer closed or timed out mid-request
    }
    head.append(chunk, static_cast<std::size_t>(n));
  }

  // Request line: METHOD SP PATH SP VERSION.
  const std::size_t line_end = head.find("\r\n");
  const std::string line = head.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = line.rfind(' ');
  if (sp1 == std::string::npos || sp2 == sp1) {
    send_response(socket, HttpResponse{400, "text/plain; charset=utf-8",
                                       "malformed request line\n"});
    return;
  }
  const std::string method = line.substr(0, sp1);
  std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);

  requests_.fetch_add(1, std::memory_order_relaxed);
  if (method != "GET") {
    send_response(socket, HttpResponse{405, "text/plain; charset=utf-8",
                                       "only GET is supported\n"});
    return;
  }
  const auto it = handlers_.find(path);
  if (it == handlers_.end()) {
    send_response(socket, HttpResponse{404, "text/plain; charset=utf-8",
                                       "no handler for " + path + "\n"});
    return;
  }
  HttpResponse response;
  try {
    response = it->second();
  } catch (const std::exception& e) {
    response = HttpResponse{500, "text/plain; charset=utf-8",
                            std::string("handler failed: ") + e.what() + "\n"};
  }
  send_response(socket, response);
}

}  // namespace lorasched::net
