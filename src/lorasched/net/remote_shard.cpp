#include "lorasched/net/remote_shard.h"

#include <stdexcept>
#include <utility>

namespace lorasched::net {

using shard::ShardUnavailable;

AgentLink::AgentLink(LinkConfig config, HelloMsg hello)
    : config_(std::move(config)), hello_(hello) {
  if (config_.metrics != nullptr) {
    reconnects_total_ = &config_.metrics->counter(
        "lorasched_net_reconnects_total",
        "Successful link re-dials after a drop");
    rpc_timeouts_total_ = &config_.metrics->counter(
        "lorasched_net_rpc_timeouts_total",
        "RPCs that failed the link on a missed reply deadline");
  }
}

AgentLink::~AgentLink() {
  std::unique_ptr<Connection> old;
  {
    util::MutexLock lock(conn_mutex_);
    old = std::move(conn_);
  }
  // `old` joins the transport threads here, outside conn_mutex_, so a
  // concurrent health() scrape is never parked behind the join.
}

Connection* AgentLink::connection() const {
  util::MutexLock lock(conn_mutex_);
  return conn_.get();
}

bool AgentLink::open() const noexcept {
  util::MutexLock lock(conn_mutex_);
  return conn_ != nullptr && conn_->open();
}

std::string AgentLink::last_error() const {
  util::MutexLock lock(mutex_);
  return last_error_;
}

void AgentLink::connect() { dial_and_handshake(); }

void AgentLink::dial_and_handshake() {
  {
    std::unique_ptr<Connection> old;
    {
      util::MutexLock lock(conn_mutex_);
      old = std::move(conn_);
    }
    // Destroying `old` joins the dropped transport's threads; done outside
    // conn_mutex_ (see ~AgentLink).
  }
  {
    util::MutexLock lock(mutex_);
    mail_.clear();
    last_error_.clear();
  }
  Socket socket = connect_with_backoff(config_.host, config_.port,
                                       config_.connect_attempts,
                                       config_.connect_backoff);
  Connection::Config cc;
  cc.ping_interval = config_.ping_interval;
  cc.idle_timeout = config_.heartbeat_timeout;
  cc.metrics = config_.metrics;
  auto conn = std::make_unique<Connection>(
      std::move(socket), cc, [this](Frame&& f) { on_frame(std::move(f)); },
      [this](const std::string& reason) {
        util::MutexLock lock(mutex_);
        if (last_error_.empty()) last_error_ = reason;
        mail_cv_.notify_all();
      });
  Connection* raw = conn.get();
  {
    util::MutexLock lock(conn_mutex_);
    conn_ = std::move(conn);
  }
  if (!raw->send(MsgType::kHello, encode(hello_))) {
    throw TransportError("hello send failed: " + last_error());
  }
  const Frame ack = take_or_wait(
      -1, MsgType::kHelloAck,
      std::chrono::steady_clock::now() + config_.rpc_timeout,
      "hello handshake");
  const HelloAckMsg reply = decode_hello_ack(ack.payload);
  if (reply.digest != hello_.digest) {
    raw->fail("environment digest mismatch");
    throw std::runtime_error(
        "host-agent environment digest mismatch — leader and agent were "
        "launched with different scenarios");
  }
}

void AgentLink::on_frame(Frame&& frame) {
  // Reader thread. kMetricsSnapshot is agent-scoped — its payload leads
  // with the agent name, not a shard id — so it must bypass the shard-id
  // peek below. Decode and hand off right here; a malformed push throws
  // WireError, which the transport turns into a link failure.
  if (frame.type == MsgType::kMetricsSnapshot) {
    MetricsSnapshotMsg msg = decode_metrics_snapshot(frame.payload);
    std::function<void(MetricsSnapshotMsg&&)> sink;
    {
      util::MutexLock lock(mutex_);
      sink = metrics_sink_;
    }
    if (sink) sink(std::move(msg));
    return;
  }
  // Route by the leading shard id every shard-scoped reply
  // carries; HelloAck is connection-scoped (shard -1). A malformed prefix
  // throws WireError, which the transport turns into a link failure.
  int shard = -1;
  if (frame.type != MsgType::kHelloAck) {
    WireReader r(frame.payload);
    shard = static_cast<int>(r.get_svarint("reply shard id"));
  }
  util::MutexLock lock(mutex_);
  mail_[shard].push_back(std::move(frame));
  mail_cv_.notify_all();
}

Frame AgentLink::take_or_wait(int shard, MsgType want,
                              std::chrono::steady_clock::time_point deadline,
                              const char* what) {
  util::MutexLock lock(mutex_);
  for (;;) {
    std::deque<Frame>& box = mail_[shard];
    for (auto it = box.begin(); it != box.end(); ++it) {
      if (it->type != want && it->type != MsgType::kError) continue;
      Frame frame = std::move(*it);
      box.erase(it);
      if (frame.type == MsgType::kError) {
        lock.unlock();
        const ErrorMsg error = decode_error(frame.payload);
        // The shard hit a contract violation (policy bug, bad request) —
        // the same class of failure an in-process runner rethrows from
        // wait_round(); surface it identically.
        throw std::logic_error("host-agent error (shard " +
                               std::to_string(error.shard_id) +
                               "): " + error.message);
      }
      return frame;
    }
    // Link-down test via last_error_, not the transport: the close handler
    // sets it under mutex_ and notifies mail_cv_, so a failure mid-wait
    // wakes us with the reason already posted — and mutex_ never nests
    // with conn_mutex_ (DESIGN.md §13). A link that dropped before the
    // handler ran just waits the one extra wakeup.
    if (!last_error_.empty()) {
      throw ShardUnavailable(std::string(what) +
                             ": link down: " + last_error_);
    }
    if (mail_cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      // Check once more — the reply may have raced the deadline.
      bool present = false;
      for (const Frame& f : mail_[shard]) {
        present = present || f.type == want || f.type == MsgType::kError;
      }
      if (present) continue;
      lock.unlock();
      rpc_timeouts_.fetch_add(1, std::memory_order_relaxed);
      if (rpc_timeouts_total_ != nullptr) rpc_timeouts_total_->add(1);
      // Fail the whole link: a reply arriving after we gave up must never
      // be delivered to a later request. No lock is held here, so the
      // close handler (which takes mutex_) may run synchronously.
      if (Connection* c = connection()) {
        c->fail(std::string(what) + ": no reply within the rpc timeout");
      }
      throw ShardUnavailable(std::string(what) +
                             ": no reply within the rpc timeout");
    }
  }
}

Frame AgentLink::call(int shard, MsgType type,
                      const std::vector<std::uint8_t>& payload,
                      MsgType want) {
  post(type, payload);
  return take_or_wait(shard, want,
                      std::chrono::steady_clock::now() + config_.rpc_timeout,
                      to_string(type));
}

void AgentLink::post(MsgType type, const std::vector<std::uint8_t>& payload) {
  Connection* c = connection();
  if (c == nullptr || !c->send(type, payload)) {
    throw ShardUnavailable(std::string(to_string(type)) +
                           ": link down: " + last_error());
  }
}

Frame AgentLink::wait(int shard, MsgType want) {
  return take_or_wait(shard, want,
                      std::chrono::steady_clock::now() + config_.rpc_timeout,
                      to_string(want));
}

bool AgentLink::ensure_open() {
  if (open()) return true;
  bool dialed = false;
  for (int attempt = 0; attempt < config_.reconnect_attempts; ++attempt) {
    try {
      dial_and_handshake();
      dialed = true;
      reconnects_.fetch_add(1, std::memory_order_relaxed);
      if (reconnects_total_ != nullptr) reconnects_total_->add(1);
      break;
    } catch (const std::exception&) {
      // Backoff lives inside connect_with_backoff; try the full dial again.
    }
  }
  if (!dialed || !open()) return false;
  // Fresh session on the agent: re-assign and restore every handle, in
  // shard order (the map is ordered).
  for (auto& [shard, resync] : resyncs_) {
    (void)shard;
    resync();
  }
  return open();
}

void AgentLink::register_resync(int shard, std::function<void()> resync) {
  resyncs_[shard] = std::move(resync);
}

void AgentLink::set_metrics_sink(
    std::function<void(MetricsSnapshotMsg&&)> sink) {
  util::MutexLock lock(mutex_);
  metrics_sink_ = std::move(sink);
}

AgentLink::Health AgentLink::health() const {
  // Scrape thread: takes the two mutexes one after the other, never
  // nested. conn_->open()/last_rx_age() are atomic reads, safe to call
  // while holding conn_mutex_ (they take no lock of their own).
  Health h;
  {
    util::MutexLock lock(conn_mutex_);
    h.open = conn_ != nullptr && conn_->open();
    if (conn_ != nullptr) h.last_rx_age_ns = conn_->last_rx_age().count();
  }
  h.last_error = last_error();
  h.reconnects = reconnects_.load(std::memory_order_relaxed);
  h.rpc_timeouts = rpc_timeouts_.load(std::memory_order_relaxed);
  return h;
}

void AgentLink::send_shutdown() {
  Connection* c = connection();
  if (c == nullptr) return;
  if (!c->send(MsgType::kShutdown, {})) return;
  // send() only enqueues; the caller typically destroys the link right
  // after, which drops unwritten frames. Linger until the frame actually
  // reached the socket so the agent really gets told to exit.
  c->drain(std::chrono::milliseconds(1000));
}

// --- RemoteShardHandle ------------------------------------------------------

RemoteShardHandle::RemoteShardHandle(std::shared_ptr<AgentLink> link,
                                     const PdftspConfig& policy, int shard_id,
                                     std::vector<NodeId> members,
                                     const shard::ShardContext& ctx)
    : link_(std::move(link)),
      shard_id_(shard_id),
      to_global_(std::move(members)),
      horizon_(ctx.horizon),
      board_(ctx.board) {
  compute_caps_.reserve(to_global_.size());
  for (const NodeId node : to_global_) {
    compute_caps_.push_back(ctx.fleet.compute_capacity(node));
  }
  assignment_.shard_id = shard_id_;
  assignment_.members = to_global_;
  assignment_.alpha = policy.alpha;
  assignment_.beta = policy.beta;
  assignment_.welfare_unit = policy.welfare_unit;
  assignment_.share_options = policy.share_options;
  assignment_.parallel_candidates = policy.parallel_candidates;
  assignment_.time_decisions = ctx.config.time_decisions;
  assignment_.inbox_capacity = ctx.config.inbox_capacity;
  tracer_ = ctx.config.tracer;
  agent_label_ = link_->config().host + ":" +
                 std::to_string(link_->config().port);
  link_->register_resync(shard_id_, [this] { resync(); });
  assign();
}

void RemoteShardHandle::die(const std::string& reason) const {
  dead_ = true;
  death_reason_ = reason;
  throw ShardUnavailable("shard " + std::to_string(shard_id_) + ": " +
                         reason);
}

void RemoteShardHandle::ensure_ready() const {
  if (dead_) {
    throw ShardUnavailable("shard " + std::to_string(shard_id_) + ": " +
                           death_reason_);
  }
  if (link_->open()) return;
  if (dirty_) {
    die("state advanced since the last sync and the connection dropped — "
        "resuming could silently diverge");
  }
  if (!link_->ensure_open()) {
    die("host-agent unreachable: " + link_->last_error());
  }
  if (dead_) {  // our own resync failed during the revival
    throw ShardUnavailable("shard " + std::to_string(shard_id_) + ": " +
                           death_reason_);
  }
}

void RemoteShardHandle::assign() const {
  const Frame ack =
      link_->call(shard_id_, MsgType::kAssignShard, encode(assignment_),
                  MsgType::kAssignAck);
  const AssignAckMsg reply = decode_assign_ack(ack.payload);
  if (reply.shard_id != shard_id_) {
    throw std::logic_error("assign ack for the wrong shard");
  }
}

void RemoteShardHandle::resync() {
  // Runs inside AgentLink::ensure_open() after a successful re-handshake.
  // Must not throw: a handle that cannot resync marks itself dead and the
  // service routes around it.
  if (dead_) return;
  if (dirty_ || in_round_) {
    dead_ = true;
    death_reason_ =
        "rounds ran since the last state sync; the reconnected agent "
        "cannot be restored faithfully";
    return;
  }
  try {
    assign();
    if (!all_blocks_.empty()) {
      BlockCellsMsg blocks;
      blocks.shard_id = shard_id_;
      blocks.cells = all_blocks_;
      const Frame ack = link_->call(shard_id_, MsgType::kBlockCells,
                                    encode(blocks), MsgType::kBlockAck);
      (void)decode_block_ack(ack.payload);
    }
    pending_blocks_.clear();  // subset of all_blocks_, just replayed
    if (have_cache_) {
      RestoreStateMsg restore;
      restore.shard_id = shard_id_;
      restore.state = ShardWireState{cache_.booked_compute,
                                     cache_.policy_state, cache_.ledger};
      const Frame ack = link_->call(shard_id_, MsgType::kRestoreState,
                                    encode(restore), MsgType::kRestoreAck);
      (void)decode_restore_ack(ack.payload);
    }
  } catch (const std::exception& e) {
    dead_ = true;
    death_reason_ = std::string("resync failed: ") + e.what();
  }
}

void RemoteShardHandle::block(NodeId local_node, Slot t) {
  pending_blocks_.emplace_back(local_node, t);
  all_blocks_.emplace_back(local_node, t);
}

void RemoteShardHandle::flush_blocks() const {
  if (pending_blocks_.empty()) return;
  BlockCellsMsg blocks;
  blocks.shard_id = shard_id_;
  blocks.cells = pending_blocks_;
  const Frame ack = link_->call(shard_id_, MsgType::kBlockCells,
                                encode(blocks), MsgType::kBlockAck);
  (void)decode_block_ack(ack.payload);
  pending_blocks_.clear();
}

void RemoteShardHandle::begin_round(Slot slot, std::size_t expected) {
  ensure_ready();
  flush_blocks();
  round_tasks_.clear();
  round_tasks_.reserve(expected);
  round_slot_ = slot;
  round_trace_ = tracer_ != nullptr ? tracer_->begin_round(shard_id_, slot)
                                    : obs::RoundTraceCtx{};
  in_round_ = true;
  try {
    BeginRoundMsg begin;
    begin.shard_id = shard_id_;
    begin.slot = slot;
    begin.expected = expected;
    link_->post(MsgType::kBeginRound, encode(begin));
  } catch (...) {
    // Nothing reached the agent's runner (its worker buffers all offers
    // before arming), so the shard's state is intact — the next slot may
    // revive the link.
    in_round_ = false;
    throw;
  }
}

void RemoteShardHandle::offer(Task bid) {
  if (!in_round_) {
    throw std::logic_error("offer() outside an armed round");
  }
  try {
    OfferMsg msg;
    msg.shard_id = shard_id_;
    msg.task = bid;
    msg.trace_id = round_trace_.trace_id;
    msg.parent_span = round_trace_.span_id;
    link_->post(MsgType::kOffer, encode(msg));
  } catch (...) {
    in_round_ = false;  // the round can never have started on the agent
    throw;
  }
  round_tasks_.push_back(std::move(bid));
}

const std::vector<shard::RoundResult>& RemoteShardHandle::wait_round() {
  if (!in_round_) {
    throw std::logic_error("wait_round() without begin_round()");
  }
  Frame frame;
  try {
    frame = link_->wait(shard_id_, MsgType::kRoundResults);
  } catch (const ShardUnavailable& e) {
    // Every offer was enqueued, so the agent may have run the round and
    // advanced its duals/ledger without us seeing the results. Resuming
    // would diverge — this shard is done for the run.
    in_round_ = false;
    die(std::string("round lost: ") + e.what());
  }
  in_round_ = false;
  const RoundResultsMsg msg = decode_round_results(frame.payload);
  if (msg.slot != round_slot_ ||
      msg.results.size() != round_tasks_.size()) {
    die("round results do not match the offered batch");
  }
  results_.clear();
  results_.reserve(msg.results.size());
  for (std::size_t j = 0; j < msg.results.size(); ++j) {
    const WireDecision& d = msg.results[j];
    if (d.task != round_tasks_[j].id) {
      die("round results are out of offer order");
    }
    shard::RoundResult r;
    r.task = round_tasks_[j];
    r.decide_seconds = d.decide_seconds;
    r.decision.task = d.task;
    r.decision.admit = d.admit;
    r.decision.payment = d.payment;
    r.decision.schedule = d.schedule;
    if (d.admit) booked_ += d.schedule.total_compute;
    results_.push_back(std::move(r));
  }
  if (tracer_ != nullptr && round_trace_.active()) {
    tracer_->end_round(shard_id_);
    tracer_->absorb(agent_label_, shard_id_, round_slot_, msg.spans);
  }
  dirty_ = true;  // duals/ledger advanced past the cached state
  board_.publish(shard_id_, msg.snapshot);
  return results_;
}

void RemoteShardHandle::publish(Slot from) {
  ensure_ready();
  flush_blocks();
  PublishRequestMsg request;
  request.shard_id = shard_id_;
  request.from = from;
  const Frame frame = link_->call(shard_id_, MsgType::kPublishRequest,
                                  encode(request), MsgType::kPublishReply);
  const PublishReplyMsg reply = decode_publish_reply(frame.payload);
  board_.publish(shard_id_, reply.snapshot);
}

shard::ShardState RemoteShardHandle::state() const {
  ensure_ready();
  flush_blocks();
  StateRequestMsg request;
  request.shard_id = shard_id_;
  const Frame frame = link_->call(shard_id_, MsgType::kStateRequest,
                                  encode(request), MsgType::kStateReply);
  const StateReplyMsg reply = decode_state_reply(frame.payload);
  if (reply.state.booked_compute != booked_) {
    // Leader and agent accumulate the identical admissions in the
    // identical order, so any drift means lost or duplicated decisions.
    throw std::logic_error(
        "remote shard booked-compute drifted from the leader's ledger");
  }
  cache_.booked_compute = reply.state.booked_compute;
  cache_.policy_state = reply.state.policy_state;
  cache_.ledger = reply.state.ledger;
  have_cache_ = true;
  dirty_ = false;
  return cache_;
}

void RemoteShardHandle::restore_state(const shard::ShardState& state) {
  ensure_ready();
  flush_blocks();
  RestoreStateMsg restore;
  restore.shard_id = shard_id_;
  restore.state =
      ShardWireState{state.booked_compute, state.policy_state, state.ledger};
  const Frame ack = link_->call(shard_id_, MsgType::kRestoreState,
                                encode(restore), MsgType::kRestoreAck);
  (void)decode_restore_ack(ack.payload);
  booked_ = state.booked_compute;
  cache_ = state;
  have_cache_ = true;
  dirty_ = false;
}

void RemoteShardHandle::accumulate_utilization(double& used,
                                               double& cap) const {
  // Same accumulation order as ShardRunner::accumulate_utilization —
  // node-major capacity, then slot-minor usage off the fetched ledger.
  const shard::ShardState st = state();
  for (std::size_t k = 0; k < compute_caps_.size(); ++k) {
    cap += compute_caps_[k] * static_cast<double>(horizon_);
    for (Slot t = 0; t < horizon_; ++t) {
      used += st.ledger.used_compute[k * static_cast<std::size_t>(horizon_) +
                                     static_cast<std::size_t>(t)];
    }
  }
}

}  // namespace lorasched::net
