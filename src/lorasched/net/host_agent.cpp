#include "lorasched/net/host_agent.h"

#include <ostream>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>

#include "lorasched/obs/cluster_trace.h"
#include "lorasched/obs/federation.h"

namespace lorasched::net {

// --- Worker -----------------------------------------------------------------

/// One assigned shard's server loop: a queue of frames fed by the reader
/// thread, drained by a dedicated thread that owns the ShardRunner. Any
/// exception while processing a request is shipped back as kError — the
/// leader rethrows it with the shard id attached.
class HostAgent::Worker {
 public:
  Worker(HostAgent& agent, int shard_id)
      : agent_(agent),
        shard_id_(shard_id),
        thread_(&Worker::main, this) {}

  ~Worker() {
    stop();
    if (thread_.joinable()) thread_.join();
  }

  void stop() EXCLUDES(mutex_) {
    {
      util::MutexLock lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
  }

  void enqueue(Frame&& frame) EXCLUDES(mutex_) {
    {
      util::MutexLock lock(mutex_);
      queue_.push_back(std::move(frame));
    }
    cv_.notify_all();
  }

 private:
  [[nodiscard]] std::optional<Frame> pop() EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    while (!stop_ && queue_.empty()) cv_.wait(lock);
    if (stop_) return std::nullopt;
    Frame frame = std::move(queue_.front());
    queue_.pop_front();
    return frame;
  }

  void main() {
    for (;;) {
      std::optional<Frame> frame = pop();
      if (!frame.has_value()) return;
      try {
        process(std::move(*frame));
      } catch (const std::exception& e) {
        agent_.send(MsgType::kError, encode(ErrorMsg{shard_id_, e.what()}));
      }
    }
  }

  shard::ShardRunner& runner() {
    if (runner_ == nullptr) {
      throw std::runtime_error("shard " + std::to_string(shard_id_) +
                               " is not assigned");
    }
    return *runner_;
  }

  void process(Frame&& frame) {
    switch (frame.type) {
      case MsgType::kAssignShard: {
        const AssignShardMsg m = decode_assign_shard(frame.payload);
        runner_ = std::make_unique<shard::ShardRunner>(
            m.shard_id, agent_.env_.cluster, m.members, agent_.env_.energy,
            agent_.env_.market, agent_.env_.horizon, agent_.factory_(m),
            *agent_.board(), static_cast<std::size_t>(m.inbox_capacity),
            m.time_decisions);
        // Same metric names every session → the same counters continue,
        // so federated series stay monotone across leader reconnects.
        runner_->register_dp_metrics(agent_.shard_registry(shard_id_));
        agent_.send(MsgType::kAssignAck, encode(AssignAckMsg{shard_id_}));
        return;
      }
      case MsgType::kBlockCells: {
        const BlockCellsMsg m = decode_block_cells(frame.payload);
        for (const auto& [node, slot] : m.cells) runner().block(node, slot);
        agent_.send(MsgType::kBlockAck, encode(BlockAckMsg{shard_id_}));
        return;
      }
      case MsgType::kBeginRound: {
        (void)runner();
        do_round(decode_begin_round(frame.payload));
        return;
      }
      case MsgType::kPublishRequest: {
        const PublishRequestMsg m = decode_publish_request(frame.payload);
        runner().publish(m.from);
        PublishReplyMsg reply;
        reply.shard_id = shard_id_;
        reply.snapshot = agent_.board_read(shard_id_);
        agent_.send(MsgType::kPublishReply, encode(reply));
        return;
      }
      case MsgType::kStateRequest: {
        const shard::ShardState st = runner().state();
        StateReplyMsg reply;
        reply.shard_id = shard_id_;
        reply.state =
            ShardWireState{st.booked_compute, st.policy_state, st.ledger};
        agent_.send(MsgType::kStateReply, encode(reply));
        return;
      }
      case MsgType::kRestoreState: {
        const RestoreStateMsg m = decode_restore_state(frame.payload);
        runner().restore_state(shard::ShardState{m.state.booked_compute,
                                                 m.state.policy_state,
                                                 m.state.ledger});
        agent_.send(MsgType::kRestoreAck, encode(RestoreAckMsg{shard_id_}));
        return;
      }
      default:
        throw std::runtime_error(std::string("unexpected frame ") +
                                 to_string(frame.type) +
                                 " outside a round");
    }
  }

  void do_round(const BeginRoundMsg& m) {
    // Collect every expected offer BEFORE arming the runner: a leader that
    // dies mid-feed then never touches the runner, so its state stays at
    // the last completed round (exactly what a reconnecting leader's
    // restore assumes).
    std::vector<OfferMsg> offers;
    offers.reserve(static_cast<std::size_t>(m.expected));
    while (offers.size() < m.expected) {
      std::optional<Frame> frame = pop();
      if (!frame.has_value()) return;  // session teardown mid-feed
      if (frame->type != MsgType::kOffer) {
        throw std::runtime_error(
            std::string("expected an offer during the round, got ") +
            to_string(frame->type));
      }
      offers.push_back(decode_offer(frame->payload));
    }
    // Tracing (DESIGN.md §12) is observation-only: the context is read,
    // never consulted by the decision path below.
    const bool traced = !offers.empty() && offers.front().trace_id != 0;
    const auto round_start = std::chrono::steady_clock::now();
    shard::ShardRunner& r = runner();
    r.begin_round(m.slot, static_cast<std::size_t>(m.expected));
    for (OfferMsg& offer : offers) r.offer(std::move(offer.task));
    const std::vector<shard::RoundResult>& results = r.wait_round();
    const auto round_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now() - round_start)
                              .count();
    RoundResultsMsg out;
    out.shard_id = shard_id_;
    out.slot = m.slot;
    out.results.reserve(results.size());
    for (const shard::RoundResult& res : results) {
      WireDecision d;
      d.task = res.task.id;
      d.admit = res.decision.admit;
      d.payment = res.decision.payment;
      d.decide_seconds = res.decide_seconds;
      if (d.admit) d.schedule = res.decision.schedule;
      out.results.push_back(std::move(d));
    }
    if (traced) {
      // One round span parented to the leader's bid span, plus one decide
      // span per bid. The shard decides bids sequentially, so cumulative
      // decide_seconds offsets recover the in-round timeline.
      const std::uint64_t trace_id = offers.front().trace_id;
      const std::uint64_t round_span =
          obs::trace_mix(offers.front().parent_span, 1);
      out.spans.push_back(obs::RemoteSpan{"agent_round", -1, trace_id,
                                          round_span,
                                          offers.front().parent_span, 0,
                                          round_ns});
      std::int64_t offset_ns = 0;
      for (const shard::RoundResult& res : results) {
        const auto decide_ns =
            static_cast<std::int64_t>(res.decide_seconds * 1e9);
        out.spans.push_back(obs::RemoteSpan{
            "decide", res.task.id, trace_id,
            obs::trace_mix(round_span,
                           static_cast<std::uint64_t>(res.task.id) + 1),
            round_span, offset_ns, decide_ns});
        offset_ns += decide_ns;
      }
    }
    // The runner already republished (from = slot + 1); ship the fresh
    // summary with the results so the leader's board update is part of the
    // round, not a separate race.
    out.snapshot = agent_.board_read(shard_id_);
    agent_.send(MsgType::kRoundResults, encode(out));
  }

  HostAgent& agent_;
  const int shard_id_;
  /// Worker-thread-only (created and used inside process()); deliberately
  /// unguarded — the runner has its own internal locking.
  std::unique_ptr<shard::ShardRunner> runner_;

  util::Mutex mutex_;
  util::CondVar cv_;
  std::deque<Frame> queue_ GUARDED_BY(mutex_);
  bool stop_ GUARDED_BY(mutex_) = false;
  std::thread thread_;
};

// --- HostAgent --------------------------------------------------------------

HostAgent::HostAgent(Instance env, Config config, FactoryBuilder factory)
    : env_(std::move(env)),
      config_(config),
      factory_(std::move(factory)),
      digest_(env_digest(env_.cluster, env_.market, env_.horizon)) {
  if (!factory_) {
    factory_ = [](const AssignShardMsg& m) {
      PdftspConfig policy;
      policy.alpha = m.alpha;
      policy.beta = m.beta;
      policy.welfare_unit = m.welfare_unit;
      policy.share_options = m.share_options;
      policy.parallel_candidates = m.parallel_candidates;
      return shard::make_pdftsp_factory(policy);
    };
  }
}

HostAgent::~HostAgent() { stop(); }

void HostAgent::start() {
  if (running_.load(std::memory_order_acquire)) return;
  listener_ = std::make_unique<Listener>(config_.port);
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  {
    util::MutexLock lock(session_mutex_);
    session_closed_ = true;
  }
  accept_thread_ = std::thread(&HostAgent::accept_main, this);
}

void HostAgent::stop() {
  stopping_.store(true, std::memory_order_release);
  if (listener_ != nullptr) listener_->interrupt();
  // Wake serve()'s session wait (its predicate checks stopping_); the
  // accept thread then tears the live connection down itself — touching
  // conn_ from here would race that teardown.
  {
    util::MutexLock lock(session_mutex_);
  }
  session_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
}

void HostAgent::wait() {
  util::MutexLock lock(session_mutex_);
  while (running_.load(std::memory_order_acquire)) session_cv_.wait(lock);
}

std::uint16_t HostAgent::port() const {
  return listener_ != nullptr ? listener_->port() : 0;
}

void HostAgent::accept_main() {
  while (!stopping_.load(std::memory_order_acquire)) {
    Socket peer;
    try {
      peer = listener_->accept();
    } catch (const TransportError&) {
      break;  // interrupted (stop/shutdown) or listener died
    }
    serve(std::move(peer));
  }
  running_.store(false, std::memory_order_release);
  {
    util::MutexLock lock(session_mutex_);
  }
  session_cv_.notify_all();
}

void HostAgent::serve(Socket socket) {
  sessions_.fetch_add(1, std::memory_order_relaxed);
  {
    util::MutexLock lock(workers_mutex_);
    accepting_frames_ = true;
    got_hello_ = false;
  }
  {
    util::MutexLock lock(session_mutex_);
    session_closed_ = false;
    conn_published_ = false;
  }
  Connection::Config cc;
  cc.ping_interval = config_.ping_interval;
  cc.idle_timeout = config_.idle_timeout;
  cc.metrics = &agent_registry_;
  if (config_.metrics_push_interval.count() > 0) {
    // The push rides the maintenance thread; the teardown below joins
    // that thread before the session state goes away.
    cc.hook_interval = config_.metrics_push_interval;
    cc.tick_hook = [this] { push_metrics(); };
  }
  auto conn = std::make_unique<Connection>(
      std::move(socket), cc,
      [this](Frame&& f) {
        // Hold the first frames until serve() has published conn_ — the
        // handshake reply must not race the assignment below.
        {
          util::MutexLock lock(session_mutex_);
          while (!conn_published_) session_cv_.wait(lock);
        }
        handle_frame(std::move(f));
      },
      [this](const std::string&) {
        {
          util::MutexLock lock(session_mutex_);
          session_closed_ = true;
        }
        session_cv_.notify_all();
      });
  {
    util::MutexLock lock(session_mutex_);
    conn_ = std::move(conn);
    conn_published_ = true;
  }
  session_cv_.notify_all();
  {
    util::MutexLock lock(session_mutex_);
    while (!session_closed_ && !stopping_.load(std::memory_order_acquire)) {
      session_cv_.wait(lock);
    }
  }
  // Teardown order matters: workers may still be mid-round and sending —
  // stop and join them while conn_ is alive, then drop the connection,
  // then the board the runners publish into. The joins run OUTSIDE
  // workers_mutex_: a worker mid-round fetches the board through board()
  // (which takes workers_mutex_), so joining under the lock would
  // deadlock against the very threads being joined.
  std::map<int, std::unique_ptr<Worker>> dead_workers;
  {
    util::MutexLock lock(workers_mutex_);
    accepting_frames_ = false;
    for (auto& [shard, worker] : workers_) {
      (void)shard;
      worker->stop();
    }
    dead_workers.swap(workers_);
  }
  dead_workers.clear();  // joins every worker thread
  std::unique_ptr<Connection> old_conn;
  {
    util::MutexLock lock(session_mutex_);
    old_conn = std::move(conn_);
  }
  old_conn.reset();  // joins the transport threads outside session_mutex_
  {
    util::MutexLock lock(workers_mutex_);
    board_.reset();
  }
}

void HostAgent::handle_frame(Frame&& frame) {
  // Reader thread. Decode errors thrown here fail the connection.
  if (frame.type == MsgType::kHello) {
    const HelloMsg m = decode_hello(frame.payload);
    if (m.digest != digest_) {
      send(MsgType::kError,
           encode(ErrorMsg{-1, "environment digest mismatch — leader and "
                               "agent run different scenarios"}));
      fail_session("environment digest mismatch");
      return;
    }
    if (m.shards_total <= 0) {
      throw WireError("hello: shards_total must be positive");
    }
    auto board = std::make_unique<shard::PriceBoard>(
        m.shards_total, env_.cluster.class_count());
    {
      util::MutexLock lock(workers_mutex_);
      if (got_hello_) {
        // A second Hello would swap the PriceBoard out from under the
        // session's ShardRunners — they hold references into it. Fail the
        // session; the leader must reconnect for a fresh one.
        throw WireError("duplicate hello within one session");
      }
      board_ = std::move(board);
      got_hello_ = true;
    }
    send(MsgType::kHelloAck, encode(HelloAckMsg{digest_}));
    return;
  }
  if (frame.type == MsgType::kShutdown) {
    stopping_.store(true, std::memory_order_release);
    if (listener_ != nullptr) listener_->interrupt();
    fail_session("shutdown requested by leader");
    return;
  }
  // Everything else is shard-scoped: demux on the leading shard id.
  WireReader peek(frame.payload);
  const int shard = static_cast<int>(peek.get_svarint("shard id"));
  util::MutexLock lock(workers_mutex_);
  if (!accepting_frames_) return;  // session already tearing down
  if (!got_hello_) {
    throw WireError("shard frame before the hello handshake");
  }
  auto it = workers_.find(shard);
  if (it == workers_.end()) {
    if (frame.type != MsgType::kAssignShard) {
      send(MsgType::kError,
           encode(ErrorMsg{shard, "message for an unassigned shard"}));
      return;
    }
    it = workers_.emplace(shard, std::make_unique<Worker>(*this, shard)).first;
  }
  it->second->enqueue(std::move(frame));
}

Connection* HostAgent::connection() const {
  util::MutexLock lock(session_mutex_);
  return conn_.get();
}

shard::PriceBoard* HostAgent::board() const {
  util::MutexLock lock(workers_mutex_);
  return board_.get();
}

bool HostAgent::send(MsgType type, const std::vector<std::uint8_t>& payload) {
  Connection* c = connection();
  return c != nullptr && c->send(type, payload);
}

void HostAgent::fail_session(const std::string& reason) {
  Connection* c = connection();
  if (c != nullptr) c->fail(reason);
}

shard::PriceSnapshot HostAgent::board_read(int shard) const {
  return board()->read(shard);
}

obs::MetricsRegistry& HostAgent::shard_registry(int shard) {
  util::MutexLock lock(registries_mutex_);
  auto it = shard_registries_.find(shard);
  if (it == shard_registries_.end()) {
    it = shard_registries_
             .emplace(shard, std::make_unique<obs::MetricsRegistry>())
             .first;
  }
  return *it->second;
}

std::vector<int> HostAgent::assigned_shards() const {
  util::MutexLock lock(registries_mutex_);
  std::vector<int> shards;
  shards.reserve(shard_registries_.size());
  for (const auto& [shard, registry] : shard_registries_) {
    (void)registry;
    shards.push_back(shard);
  }
  return shards;
}

void HostAgent::write_metrics(std::ostream& out) const {
  agent_registry_.write_prometheus(out);
  util::MutexLock lock(registries_mutex_);
  // Shard registries repeat metric names across shards (by design — the
  // series differ only in the shard label), so each name's HELP/TYPE
  // header is emitted once.
  std::set<std::string> seen;
  for (const auto& [shard, registry] : shard_registries_) {
    const std::vector<std::pair<std::string, std::string>> labels = {
        {"shard", std::to_string(shard)}};
    for (const obs::MetricSnapshot& metric : registry->snapshot()) {
      const bool headers = seen.insert(metric.name).second;
      obs::write_prometheus_labeled(out, {metric}, labels, headers);
    }
  }
}

bool HostAgent::push_metrics() {
  MetricsSnapshotMsg msg;
  msg.agent = config_.name;
  msg.seq = push_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  msg.groups.push_back(obs::MetricsGroup{-1, agent_registry_.snapshot()});
  {
    util::MutexLock lock(registries_mutex_);
    for (const auto& [shard, registry] : shard_registries_) {
      msg.groups.push_back(obs::MetricsGroup{shard, registry->snapshot()});
    }
  }
  // try_send, not send: this runs on the connection's maintenance thread,
  // which must never park behind a full outbox (the same thread drives the
  // idle-timeout failure detector). A shed push is made up for by the next
  // tick — the snapshots are cumulative.
  Connection* c = connection();
  return c != nullptr && c->try_send(MsgType::kMetricsSnapshot, encode(msg));
}

}  // namespace lorasched::net
