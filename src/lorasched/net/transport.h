// TCP transport for the control plane (DESIGN.md §11): RAII sockets, a
// listener, and a framed Connection with one read and one write thread.
//
// Connection threading model:
//  * the writer thread drains a bounded outbox, so send() never blocks on
//    the network (it blocks only when the outbox is full — backpressure
//    against a stalled peer);
//  * the reader thread decodes frames and hands them to the frame handler;
//    kPing frames are answered with kPong and kPong frames only refresh
//    the liveness clock — heartbeating lives entirely inside the
//    transport, so every protocol layer above gets failure detection for
//    free;
//  * an optional maintenance thread sends pings every `ping_interval` and
//    fails the connection when nothing (data or pong) arrived within
//    `idle_timeout`.
//
// Any failure — peer close, read/write error, decode error, idle timeout —
// runs the close handler exactly once with a reason, after which send()
// returns false. connect_with_backoff() retries an outbound connect a
// bounded number of times with exponentially growing pauses.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>

#include "lorasched/net/wire.h"
#include "lorasched/obs/registry.h"
#include "lorasched/util/mutex.h"
#include "lorasched/util/thread_annotations.h"

namespace lorasched::net {

/// Socket-level failure (connect/bind/accept/IO). Distinct from WireError
/// so callers can tell "peer unreachable" from "peer speaks garbage".
class TransportError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// RAII file descriptor for a connected TCP stream (TCP_NODELAY set — the
/// round protocol is latency-bound request/response, not bulk transfer).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();
  Socket(Socket&& other) noexcept : fd_(other.release()) {}
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Blocking connect to host:port. Throws TransportError on failure.
  [[nodiscard]] static Socket connect(const std::string& host,
                                      std::uint16_t port);

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }
  [[nodiscard]] int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  /// Shuts down both directions, waking any thread blocked in recv/send on
  /// this socket. Safe to call from another thread; idempotent.
  void shutdown() noexcept;
  void close() noexcept;

 private:
  int fd_ = -1;
};

/// Listening TCP socket bound to 127.0.0.1 (the control plane is expected
/// to run behind a private network; wildcard binding is opt-in).
class Listener {
 public:
  /// Binds and listens; `port` 0 picks an ephemeral port (see port()).
  explicit Listener(std::uint16_t port, bool loopback_only = true);

  /// Blocks until a peer connects or interrupt() is called (then throws
  /// TransportError).
  [[nodiscard]] Socket accept();

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  /// Unblocks a pending accept() and fails all future ones.
  void interrupt() noexcept;

 private:
  Socket socket_;
  std::uint16_t port_ = 0;
};

class Connection {
 public:
  struct Config {
    /// Outbox bound in frames; send() blocks when full (peer stalled).
    std::size_t outbox_capacity = 4096;
    /// > 0: the maintenance thread sends kPing at this cadence.
    std::chrono::milliseconds ping_interval{0};
    /// > 0: fail the connection when no frame arrived for this long.
    std::chrono::milliseconds idle_timeout{0};
    /// Optional transport metrics (DESIGN.md §12): per-message-type frame
    /// and byte counters (tx at enqueue, rx at decode) plus a heartbeat
    /// RTT histogram. The registry must outlive the connection; counters
    /// are get-or-create by name, so successive connections of one process
    /// continue the same series.
    obs::MetricsRegistry* metrics = nullptr;
    std::string metrics_prefix = "lorasched_net";
    /// > 0: the maintenance thread calls `tick_hook` at this cadence (the
    /// metrics-push piggyback). The hook runs on the maintenance thread
    /// and must not block on this connection's outbox being full — use
    /// try_send(), which sheds instead of waiting, so a stalled peer can
    /// never wedge the failure detector behind its own full outbox.
    std::chrono::milliseconds hook_interval{0};
    std::function<void()> tick_hook;
  };

  using FrameHandler = std::function<void(Frame&&)>;
  using CloseHandler = std::function<void(const std::string& reason)>;

  /// Takes ownership of a connected socket and starts the reader/writer
  /// threads. `on_frame` runs on the reader thread (do not block it on the
  /// network); `on_close` runs exactly once, from whichever thread detects
  /// the failure.
  Connection(Socket socket, Config config, FrameHandler on_frame,
             CloseHandler on_close);
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Enqueues a frame; returns false if the connection already failed.
  /// Blocks while the outbox is full (backpressure against a stalled
  /// peer) — never call it from the reader or maintenance thread.
  bool send(MsgType type, const std::vector<std::uint8_t>& payload)
      EXCLUDES(outbox_mutex_);

  /// Non-blocking send: returns false without enqueuing when the
  /// connection failed OR the outbox is full (counted in
  /// sends_shed_full()). The only send the transport's own threads may
  /// use — the reader answers pings with it and the maintenance hook
  /// pushes metrics through it, so liveness machinery keeps running when
  /// a stalled peer has filled the outbox (a dropped heartbeat just
  /// brings the idle timeout closer, which is the correct outcome).
  bool try_send(MsgType type, const std::vector<std::uint8_t>& payload)
      EXCLUDES(outbox_mutex_);

  /// Blocks until every frame accepted by send() has been written to the
  /// socket, the connection failed, or `budget` elapsed — whichever comes
  /// first. Destroying a Connection fails it immediately, dropping queued
  /// frames; a sender whose last frame must actually reach the peer (the
  /// leader's final Shutdown) drains before tearing down.
  void drain(std::chrono::milliseconds budget) EXCLUDES(outbox_mutex_);

  [[nodiscard]] bool open() const noexcept {
    return !failed_.load(std::memory_order_acquire);
  }
  /// Fails the connection with a reason (runs the close handler once).
  void fail(const std::string& reason) noexcept;

  // Lifetime traffic counters (relaxed; exported as RPC metrics).
  [[nodiscard]] std::uint64_t bytes_sent() const noexcept {
    return bytes_sent_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bytes_received() const noexcept {
    return bytes_received_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t frames_sent() const noexcept {
    return frames_sent_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t frames_received() const noexcept {
    return frames_received_.load(std::memory_order_relaxed);
  }
  /// Frames a transport-internal try_send() shed because the outbox was
  /// full (pings, pongs, maintenance-hook pushes).
  [[nodiscard]] std::uint64_t sends_shed_full() const noexcept {
    return sends_shed_full_.load(std::memory_order_relaxed);
  }
  /// Time since the last frame (or byte) arrived from the peer — the
  /// /healthz "last heartbeat age".
  [[nodiscard]] std::chrono::nanoseconds last_rx_age() const noexcept;

 private:
  void reader_main() EXCLUDES(outbox_mutex_);
  void writer_main() EXCLUDES(outbox_mutex_);
  void maintenance_main() EXCLUDES(outbox_mutex_);
  void register_metrics();
  bool enqueue(MsgType type, std::vector<std::uint8_t> bytes)
      EXCLUDES(outbox_mutex_);
  bool try_enqueue(MsgType type, std::vector<std::uint8_t> bytes)
      EXCLUDES(outbox_mutex_);
  bool push_locked(MsgType type, std::vector<std::uint8_t>&& bytes,
                   std::size_t encoded_size) REQUIRES(outbox_mutex_);

  Socket socket_;
  Config config_;
  FrameHandler on_frame_;
  CloseHandler on_close_;

  util::Mutex outbox_mutex_;
  util::CondVar outbox_cv_;    // writer waits for work
  util::CondVar outbox_room_;  // senders wait for space or drain
  std::deque<std::vector<std::uint8_t>> outbox_ GUARDED_BY(outbox_mutex_);
  /// Frames accepted by send() but not yet written to the socket;
  /// drain() waits for zero.
  std::size_t in_flight_ GUARDED_BY(outbox_mutex_) = 0;

  std::atomic<bool> failed_{false};
  std::atomic<bool> stopping_{false};
  std::once_flag close_once_;

  std::atomic<std::int64_t> last_rx_ns_{0};  // steady_clock since epoch
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> bytes_received_{0};
  std::atomic<std::uint64_t> frames_sent_{0};
  std::atomic<std::uint64_t> frames_received_{0};
  std::atomic<std::uint64_t> sends_shed_full_{0};

  // Per-message-type counters, indexed by the raw MsgType byte (null when
  // Config.metrics is unset). Registered once in the constructor; the hot
  // path is a single relaxed add.
  static constexpr std::size_t kTypeSlots =
      static_cast<std::size_t>(MsgType::kBidStreamEnd) + 1;
  std::array<obs::Counter*, kTypeSlots> tx_frames_{};
  std::array<obs::Counter*, kTypeSlots> tx_bytes_{};
  std::array<obs::Counter*, kTypeSlots> rx_frames_{};
  std::array<obs::Counter*, kTypeSlots> rx_bytes_{};
  obs::Histogram* rtt_hist_ = nullptr;
  std::atomic<std::int64_t> last_ping_sent_ns_{0};

  /// maint_mutex_ guards no data — it only carries maint_cv_, the
  /// maintenance thread's interruptible sleep (fail() notifies it).
  util::Mutex maint_mutex_;
  util::CondVar maint_cv_;

  std::thread reader_;
  std::thread writer_;
  std::thread maintenance_;
};

/// Outbound connect retried with exponential backoff: `attempts` tries,
/// pausing `initial_backoff` then doubling (capped at 5 s). Throws
/// TransportError when every attempt failed.
[[nodiscard]] Socket connect_with_backoff(
    const std::string& host, std::uint16_t port, int attempts,
    std::chrono::milliseconds initial_backoff);

}  // namespace lorasched::net
