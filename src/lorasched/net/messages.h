// Typed control-plane messages and their wire codecs (DESIGN.md §11).
//
// Each message struct maps 1:1 to a MsgType frame. encode() produces the
// payload bytes; each decode_*() parses a payload and throws WireError on
// anything malformed (truncation, absurd counts, trailing bytes). Doubles
// cross as fixed64 bit patterns, so a decoded Task / PriceSnapshot /
// checkpoint state compares bit-identical to what the peer encoded —
// test_net pins the round trips.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "lorasched/cluster/capacity_ledger.h"
#include "lorasched/cluster/cluster.h"
#include "lorasched/core/schedule.h"
#include "lorasched/net/wire.h"
#include "lorasched/obs/cluster_trace.h"
#include "lorasched/obs/federation.h"
#include "lorasched/shard/price_board.h"
#include "lorasched/types.h"
#include "lorasched/workload/task.h"
#include "lorasched/workload/vendor.h"

namespace lorasched::net {

/// FNV-1a digest of the environment both processes must agree on (fleet
/// shape and capacities, base-model size, vendor count, horizon). A leader
/// and host-agent launched with different scenarios fail the handshake
/// instead of silently diverging.
[[nodiscard]] std::uint64_t env_digest(const Cluster& cluster,
                                       const Marketplace& market,
                                       Slot horizon);

struct HelloMsg {
  std::uint64_t digest = 0;
  std::int32_t nodes = 0;
  std::int32_t classes = 0;
  Slot horizon = 0;
  std::int32_t shards_total = 0;
};

struct HelloAckMsg {
  std::uint64_t digest = 0;
};

/// Everything a host-agent needs to build one ShardRunner identical to the
/// in-process one: the shard's global members plus the pdFTSP pricing
/// parameters (the agent derives cluster/energy/market from its own copy
/// of the scenario, verified by the Hello digest).
struct AssignShardMsg {
  std::int32_t shard_id = -1;
  std::vector<NodeId> members;
  double alpha = 1.0;
  double beta = 1.0;
  double welfare_unit = 1.0;
  std::vector<double> share_options;
  std::int32_t parallel_candidates = 0;
  bool time_decisions = true;
  std::uint64_t inbox_capacity = 1024;
};

struct AssignAckMsg {
  std::int32_t shard_id = -1;
};

struct BlockCellsMsg {
  std::int32_t shard_id = -1;
  /// (shard-local node, slot) outage cells.
  std::vector<std::pair<NodeId, Slot>> cells;
};

struct BlockAckMsg {
  std::int32_t shard_id = -1;
};

struct BeginRoundMsg {
  std::int32_t shard_id = -1;
  Slot slot = 0;
  std::uint64_t expected = 0;
};

struct OfferMsg {
  std::int32_t shard_id = -1;
  Task task;
  /// Trace context (DESIGN.md §12): the leader's round trace id and bid
  /// span id. Always encoded; both zero when tracing is off, and never
  /// consulted by decision logic (bit-identity pinned by tests).
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;
};

/// One bid's outcome inside a RoundResults frame. The leader already holds
/// the Task, so only the decision crosses back; schedule node ids are
/// shard-local, exactly like ShardRunner::RoundResult.
struct WireDecision {
  TaskId task = -1;
  bool admit = false;
  Money payment = 0.0;
  double decide_seconds = 0.0;
  Schedule schedule;
};

struct RoundResultsMsg {
  std::int32_t shard_id = -1;
  Slot slot = 0;
  std::vector<WireDecision> results;
  /// The shard's post-round price summary (published_slot = slot), shipped
  /// with the results so the leader's board update is part of the round.
  shard::PriceSnapshot snapshot;
  /// Agent-side spans for this round (empty when the offers carried no
  /// trace context); offsets are relative to the agent's round start.
  std::vector<obs::RemoteSpan> spans;
};

struct PublishRequestMsg {
  std::int32_t shard_id = -1;
  Slot from = 0;
};

struct PublishReplyMsg {
  std::int32_t shard_id = -1;
  shard::PriceSnapshot snapshot;
};

struct StateRequestMsg {
  std::int32_t shard_id = -1;
};

/// One shard's full decision state — the unit of the cluster checkpoint
/// and of reconnect-time resync.
struct ShardWireState {
  double booked_compute = 0.0;
  std::vector<double> policy_state;
  CapacityLedger::Snapshot ledger;
};

struct StateReplyMsg {
  std::int32_t shard_id = -1;
  ShardWireState state;
};

struct RestoreStateMsg {
  std::int32_t shard_id = -1;
  ShardWireState state;
};

struct RestoreAckMsg {
  std::int32_t shard_id = -1;
};

/// A failed request: the agent ships the exception text back so the leader
/// can rethrow it with full context (shard_id < 0 = connection-level).
struct ErrorMsg {
  std::int32_t shard_id = -1;
  std::string message;
};

/// One metrics push: the agent's process-wide registry plus each assigned
/// shard's registry as cumulative snapshots (replace-not-add federation,
/// see obs/federation.h). `seq` increments per push so the leader can drop
/// duplicates after a resync.
struct MetricsSnapshotMsg {
  std::string agent;
  std::uint64_t seq = 0;
  std::vector<obs::MetricsGroup> groups;
};

// --- Bid-ingest stream (DESIGN.md §14) --------------------------------------

/// One sequenced bid from a firehose source. `send_ns` is an opaque
/// timestamp on the *sender's* monotonic clock; the server never interprets
/// it, only echoes it back in the decision so a stateless client can
/// compute end-to-end latency without clock synchronization.
struct BidSubmitMsg {
  std::uint32_t source = 0;
  std::uint64_t seq = 0;
  std::int64_t send_ns = 0;
  Task task;
};

/// Terminal status of one submitted bid. Wire-stable values — matches
/// loadgen::SoakStatus.
enum class BidStatus : std::uint8_t {
  kAdmitted = 0,
  kRejected = 1,
  kShedFull = 2,    // ingest queue full (BackpressureMode::kReject)
  kShedClosed = 3,  // service no longer accepting bids
};

/// The server's answer to one BidSubmit: decision (or shed), payment for
/// admitted bids, the slot it was decided at, and the echoed send stamp.
struct BidDecisionMsg {
  std::uint32_t source = 0;
  std::uint64_t seq = 0;
  std::int64_t send_ns = 0;
  TaskId task = -1;
  BidStatus status = BidStatus::kRejected;
  Money payment = 0.0;
  Slot decided_slot = -1;
};

/// End-of-stream marker: this source offered `offered` bids and will send
/// no more. When every expected ingest client has ended its stream, the
/// server closes its bid queue so a horizon-free run can quiesce.
struct BidStreamEndMsg {
  std::uint32_t source = 0;
  std::uint64_t offered = 0;
};

// --- Payload codecs ---------------------------------------------------------

[[nodiscard]] std::vector<std::uint8_t> encode(const HelloMsg& m);
[[nodiscard]] std::vector<std::uint8_t> encode(const HelloAckMsg& m);
[[nodiscard]] std::vector<std::uint8_t> encode(const AssignShardMsg& m);
[[nodiscard]] std::vector<std::uint8_t> encode(const AssignAckMsg& m);
[[nodiscard]] std::vector<std::uint8_t> encode(const BlockCellsMsg& m);
[[nodiscard]] std::vector<std::uint8_t> encode(const BlockAckMsg& m);
[[nodiscard]] std::vector<std::uint8_t> encode(const BeginRoundMsg& m);
[[nodiscard]] std::vector<std::uint8_t> encode(const OfferMsg& m);
[[nodiscard]] std::vector<std::uint8_t> encode(const RoundResultsMsg& m);
[[nodiscard]] std::vector<std::uint8_t> encode(const PublishRequestMsg& m);
[[nodiscard]] std::vector<std::uint8_t> encode(const PublishReplyMsg& m);
[[nodiscard]] std::vector<std::uint8_t> encode(const StateRequestMsg& m);
[[nodiscard]] std::vector<std::uint8_t> encode(const StateReplyMsg& m);
[[nodiscard]] std::vector<std::uint8_t> encode(const RestoreStateMsg& m);
[[nodiscard]] std::vector<std::uint8_t> encode(const RestoreAckMsg& m);
[[nodiscard]] std::vector<std::uint8_t> encode(const ErrorMsg& m);
[[nodiscard]] std::vector<std::uint8_t> encode(const MetricsSnapshotMsg& m);
[[nodiscard]] std::vector<std::uint8_t> encode(const BidSubmitMsg& m);
[[nodiscard]] std::vector<std::uint8_t> encode(const BidDecisionMsg& m);
[[nodiscard]] std::vector<std::uint8_t> encode(const BidStreamEndMsg& m);

[[nodiscard]] HelloMsg decode_hello(const std::vector<std::uint8_t>& p);
[[nodiscard]] HelloAckMsg decode_hello_ack(const std::vector<std::uint8_t>& p);
[[nodiscard]] AssignShardMsg decode_assign_shard(
    const std::vector<std::uint8_t>& p);
[[nodiscard]] AssignAckMsg decode_assign_ack(
    const std::vector<std::uint8_t>& p);
[[nodiscard]] BlockCellsMsg decode_block_cells(
    const std::vector<std::uint8_t>& p);
[[nodiscard]] BlockAckMsg decode_block_ack(const std::vector<std::uint8_t>& p);
[[nodiscard]] BeginRoundMsg decode_begin_round(
    const std::vector<std::uint8_t>& p);
[[nodiscard]] OfferMsg decode_offer(const std::vector<std::uint8_t>& p);
[[nodiscard]] RoundResultsMsg decode_round_results(
    const std::vector<std::uint8_t>& p);
[[nodiscard]] PublishRequestMsg decode_publish_request(
    const std::vector<std::uint8_t>& p);
[[nodiscard]] PublishReplyMsg decode_publish_reply(
    const std::vector<std::uint8_t>& p);
[[nodiscard]] StateRequestMsg decode_state_request(
    const std::vector<std::uint8_t>& p);
[[nodiscard]] StateReplyMsg decode_state_reply(
    const std::vector<std::uint8_t>& p);
[[nodiscard]] RestoreStateMsg decode_restore_state(
    const std::vector<std::uint8_t>& p);
[[nodiscard]] RestoreAckMsg decode_restore_ack(
    const std::vector<std::uint8_t>& p);
[[nodiscard]] ErrorMsg decode_error(const std::vector<std::uint8_t>& p);
[[nodiscard]] MetricsSnapshotMsg decode_metrics_snapshot(
    const std::vector<std::uint8_t>& p);
[[nodiscard]] BidSubmitMsg decode_bid_submit(const std::vector<std::uint8_t>& p);
[[nodiscard]] BidDecisionMsg decode_bid_decision(
    const std::vector<std::uint8_t>& p);
[[nodiscard]] BidStreamEndMsg decode_bid_stream_end(
    const std::vector<std::uint8_t>& p);

// --- Shared sub-codecs (exposed for fuzzing and tests) ----------------------

void put_task(WireWriter& w, const Task& t);
[[nodiscard]] Task get_task(WireReader& r);
void put_schedule(WireWriter& w, const Schedule& s);
[[nodiscard]] Schedule get_schedule(WireReader& r);
void put_price_snapshot(WireWriter& w, const shard::PriceSnapshot& s);
[[nodiscard]] shard::PriceSnapshot get_price_snapshot(WireReader& r);
void put_ledger(WireWriter& w, const CapacityLedger::Snapshot& s);
[[nodiscard]] CapacityLedger::Snapshot get_ledger(WireReader& r);
void put_metric(WireWriter& w, const obs::MetricSnapshot& m);
[[nodiscard]] obs::MetricSnapshot get_metric(WireReader& r);
void put_histogram_snapshot(WireWriter& w, const obs::HistogramSnapshot& h);
[[nodiscard]] obs::HistogramSnapshot get_histogram_snapshot(WireReader& r);
void put_span(WireWriter& w, const obs::RemoteSpan& s);
[[nodiscard]] obs::RemoteSpan get_span(WireReader& r);

}  // namespace lorasched::net
