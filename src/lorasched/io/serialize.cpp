#include "lorasched/io/serialize.h"

#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "lorasched/io/csv.h"

namespace lorasched::io {

namespace {

const std::vector<std::string> kTaskHeader = {
    "id",        "arrival",  "deadline",     "dataset_samples",
    "epochs",    "work",     "mem_gb",       "compute_share",
    "needs_prep", "model",   "bid",          "true_value"};

std::string fmt(double value) {
  std::ostringstream os;
  os.precision(17);
  os << value;
  return os.str();
}

double parse_double(const std::string& text) {
  std::size_t used = 0;
  const double value = std::stod(text, &used);
  if (used != text.size()) {
    throw std::invalid_argument("trailing characters in number: " + text);
  }
  return value;
}

long parse_long(const std::string& text) {
  std::size_t used = 0;
  const long value = std::stol(text, &used);
  if (used != text.size()) {
    throw std::invalid_argument("trailing characters in integer: " + text);
  }
  return value;
}

}  // namespace

void write_tasks_csv(std::ostream& out, const std::vector<Task>& tasks) {
  std::vector<std::vector<std::string>> records;
  records.push_back(kTaskHeader);
  for (const Task& t : tasks) {
    records.push_back({std::to_string(t.id), std::to_string(t.arrival),
                       std::to_string(t.deadline), fmt(t.dataset_samples),
                       std::to_string(t.epochs), fmt(t.work), fmt(t.mem_gb),
                       fmt(t.compute_share), t.needs_prep ? "1" : "0",
                       std::to_string(t.model), fmt(t.bid),
                       fmt(t.true_value)});
  }
  write_csv(out, records);
}

std::vector<Task> read_tasks_csv(std::istream& in) {
  const auto records = read_csv(in);
  if (records.empty() || records.front() != kTaskHeader) {
    throw std::invalid_argument("missing or unexpected task CSV header");
  }
  std::vector<Task> tasks;
  tasks.reserve(records.size() - 1);
  for (std::size_t row = 1; row < records.size(); ++row) {
    const auto& r = records[row];
    if (r.size() != kTaskHeader.size()) {
      throw std::invalid_argument("task CSV row has wrong field count");
    }
    Task t;
    t.id = static_cast<TaskId>(parse_long(r[0]));
    t.arrival = static_cast<Slot>(parse_long(r[1]));
    t.deadline = static_cast<Slot>(parse_long(r[2]));
    t.dataset_samples = parse_double(r[3]);
    t.epochs = static_cast<int>(parse_long(r[4]));
    t.work = parse_double(r[5]);
    t.mem_gb = parse_double(r[6]);
    t.compute_share = parse_double(r[7]);
    t.needs_prep = r[8] == "1";
    t.model = static_cast<int>(parse_long(r[9]));
    t.bid = parse_double(r[10]);
    t.true_value = parse_double(r[11]);
    tasks.push_back(t);
  }
  return tasks;
}

void write_outcomes_csv(std::ostream& out,
                        const std::vector<TaskOutcome>& outcomes) {
  std::vector<std::vector<std::string>> records;
  records.push_back({"task", "admitted", "bid", "true_value", "payment",
                     "vendor_cost", "energy_cost", "vendor", "arrival",
                     "completion", "slots_used", "decide_seconds"});
  for (const TaskOutcome& o : outcomes) {
    records.push_back({std::to_string(o.task), o.admitted ? "1" : "0",
                       fmt(o.bid), fmt(o.true_value), fmt(o.payment),
                       fmt(o.vendor_cost), fmt(o.energy_cost),
                       std::to_string(o.vendor), std::to_string(o.arrival),
                       std::to_string(o.completion),
                       std::to_string(o.slots_used), fmt(o.decide_seconds)});
  }
  write_csv(out, records);
}

void write_scenario(std::ostream& out, const ScenarioConfig& config) {
  out << "nodes = " << config.nodes << '\n';
  out << "fleet = " << to_string(config.fleet) << '\n';
  out << "horizon = " << config.horizon << '\n';
  out << "arrival_rate = " << fmt(config.arrival_rate) << '\n';
  if (config.trace.has_value()) {
    out << "trace = " << to_string(*config.trace) << '\n';
  }
  out << "deadline = " << to_string(config.deadline) << '\n';
  out << "vendors = " << config.vendors << '\n';
  out << "prep_probability = " << fmt(config.prep_probability) << '\n';
  out << "base_model_gb = " << fmt(config.base_model_gb) << '\n';
  out << "seed = " << config.seed << '\n';
}

ScenarioConfig read_scenario(std::istream& in) {
  ScenarioConfig config;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line.front() == '#') continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("scenario line missing '=': " + line);
    }
    auto trim = [](std::string text) {
      const auto first = text.find_first_not_of(" \t");
      const auto last = text.find_last_not_of(" \t");
      if (first == std::string::npos) return std::string{};
      return text.substr(first, last - first + 1);
    };
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key == "nodes") {
      config.nodes = static_cast<int>(parse_long(value));
    } else if (key == "fleet") {
      if (value == "A100") config.fleet = FleetKind::kA100Only;
      else if (value == "A40") config.fleet = FleetKind::kA40Only;
      else if (value == "hybrid") config.fleet = FleetKind::kHybrid;
      else throw std::invalid_argument("unknown fleet: " + value);
    } else if (key == "horizon") {
      config.horizon = static_cast<Slot>(parse_long(value));
    } else if (key == "arrival_rate") {
      config.arrival_rate = parse_double(value);
    } else if (key == "trace") {
      if (value == "MLaaS") config.trace = TraceKind::kMLaaS;
      else if (value == "Philly") config.trace = TraceKind::kPhilly;
      else if (value == "Helios") config.trace = TraceKind::kHelios;
      else throw std::invalid_argument("unknown trace: " + value);
    } else if (key == "deadline") {
      if (value == "tight") config.deadline = DeadlineKind::kTight;
      else if (value == "medium") config.deadline = DeadlineKind::kMedium;
      else if (value == "slack") config.deadline = DeadlineKind::kSlack;
      else throw std::invalid_argument("unknown deadline: " + value);
    } else if (key == "vendors") {
      config.vendors = static_cast<int>(parse_long(value));
    } else if (key == "prep_probability") {
      config.prep_probability = parse_double(value);
    } else if (key == "base_model_gb") {
      config.base_model_gb = parse_double(value);
    } else if (key == "seed") {
      config.seed = static_cast<std::uint64_t>(parse_long(value));
    } else {
      throw std::invalid_argument("unknown scenario key: " + key);
    }
  }
  return config;
}

}  // namespace lorasched::io
