#include "lorasched/io/serialize.h"

#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "lorasched/io/csv.h"

namespace lorasched::io {

namespace {

const std::vector<std::string> kTaskHeader = {
    "id",        "arrival",  "deadline",     "dataset_samples",
    "epochs",    "work",     "mem_gb",       "compute_share",
    "needs_prep", "model",   "bid",          "true_value"};

std::string fmt(double value) {
  std::ostringstream os;
  os.precision(17);
  os << value;
  return os.str();
}

double parse_double(const std::string& text) {
  std::size_t used = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &used);
  } catch (const std::out_of_range&) {
    // The documented contract is invalid_argument on any malformed field;
    // out-of-range magnitudes ("1e99999") are malformed input, not a
    // different error class (flushed out by fuzz/fuzz_bid_parser).
    throw std::invalid_argument("number out of range: " + text);
  }
  if (used != text.size()) {
    throw std::invalid_argument("trailing characters in number: " + text);
  }
  return value;
}

long parse_long(const std::string& text) {
  std::size_t used = 0;
  long value = 0;
  try {
    value = std::stol(text, &used);
  } catch (const std::out_of_range&) {
    throw std::invalid_argument("integer out of range: " + text);
  }
  if (used != text.size()) {
    throw std::invalid_argument("trailing characters in integer: " + text);
  }
  return value;
}

std::vector<std::string> task_fields(const Task& t) {
  return {std::to_string(t.id),       std::to_string(t.arrival),
          std::to_string(t.deadline), fmt(t.dataset_samples),
          std::to_string(t.epochs),   fmt(t.work),
          fmt(t.mem_gb),              fmt(t.compute_share),
          t.needs_prep ? "1" : "0",   std::to_string(t.model),
          fmt(t.bid),                 fmt(t.true_value)};
}

Task task_from_fields(const std::vector<std::string>& r) {
  if (r.size() != kTaskHeader.size()) {
    throw std::invalid_argument("task record has wrong field count");
  }
  Task t;
  t.id = static_cast<TaskId>(parse_long(r[0]));
  t.arrival = static_cast<Slot>(parse_long(r[1]));
  t.deadline = static_cast<Slot>(parse_long(r[2]));
  t.dataset_samples = parse_double(r[3]);
  t.epochs = static_cast<int>(parse_long(r[4]));
  t.work = parse_double(r[5]);
  t.mem_gb = parse_double(r[6]);
  t.compute_share = parse_double(r[7]);
  t.needs_prep = r[8] == "1";
  t.model = static_cast<int>(parse_long(r[9]));
  t.bid = parse_double(r[10]);
  t.true_value = parse_double(r[11]);
  return t;
}

}  // namespace

void write_tasks_csv(std::ostream& out, const std::vector<Task>& tasks) {
  std::vector<std::vector<std::string>> records;
  records.push_back(kTaskHeader);
  for (const Task& t : tasks) records.push_back(task_fields(t));
  write_csv(out, records);
}

std::string format_bid_line(const Task& task) {
  return format_csv_line(task_fields(task));
}

Task parse_bid_line(const std::string& line) {
  return task_from_fields(parse_csv_line(line));
}

std::vector<Task> read_tasks_csv(std::istream& in) {
  const auto records = read_csv(in);
  if (records.empty() || records.front() != kTaskHeader) {
    throw std::invalid_argument("missing or unexpected task CSV header");
  }
  std::vector<Task> tasks;
  tasks.reserve(records.size() - 1);
  for (std::size_t row = 1; row < records.size(); ++row) {
    tasks.push_back(task_from_fields(records[row]));
  }
  return tasks;
}

void write_outcomes_csv(std::ostream& out,
                        const std::vector<TaskOutcome>& outcomes) {
  std::vector<std::vector<std::string>> records;
  records.push_back({"task", "admitted", "bid", "true_value", "payment",
                     "vendor_cost", "energy_cost", "vendor", "arrival",
                     "completion", "slots_used", "decide_seconds"});
  for (const TaskOutcome& o : outcomes) {
    records.push_back({std::to_string(o.task), o.admitted ? "1" : "0",
                       fmt(o.bid), fmt(o.true_value), fmt(o.payment),
                       fmt(o.vendor_cost), fmt(o.energy_cost),
                       std::to_string(o.vendor), std::to_string(o.arrival),
                       std::to_string(o.completion),
                       std::to_string(o.slots_used), fmt(o.decide_seconds)});
  }
  write_csv(out, records);
}

void write_scenario(std::ostream& out, const ScenarioConfig& config) {
  out << "nodes = " << config.nodes << '\n';
  out << "fleet = " << to_string(config.fleet) << '\n';
  out << "horizon = " << config.horizon << '\n';
  out << "arrival_rate = " << fmt(config.arrival_rate) << '\n';
  if (config.trace.has_value()) {
    out << "trace = " << to_string(*config.trace) << '\n';
  }
  out << "deadline = " << to_string(config.deadline) << '\n';
  out << "vendors = " << config.vendors << '\n';
  out << "prep_probability = " << fmt(config.prep_probability) << '\n';
  out << "base_model_gb = " << fmt(config.base_model_gb) << '\n';
  out << "seed = " << config.seed << '\n';
}

namespace {

constexpr const char* kCheckpointMagic = "lorasched-checkpoint";
constexpr int kCheckpointVersion = 1;
constexpr const char* kShardedCheckpointMagic = "lorasched-sharded-checkpoint";
constexpr int kShardedCheckpointVersion = 1;

void expect_token(std::istream& in, const std::string& want) {
  std::string got;
  if (!(in >> got) || got != want) {
    throw std::invalid_argument("checkpoint: expected '" + want + "', got '" +
                                got + "'");
  }
}

template <typename T>
T read_value(std::istream& in, const char* what) {
  T value{};
  if (!(in >> value)) {
    throw std::invalid_argument(std::string("checkpoint: unreadable ") + what);
  }
  return value;
}

/// Validates the "<magic> <version>" header every checkpoint stream starts
/// with. The two failure modes get distinct, actionable errors: a wrong
/// magic means the file is not this kind of checkpoint at all (or not a
/// checkpoint), while a known magic with an unknown version names both
/// versions so the operator knows which side to upgrade.
void read_header(std::istream& in, const char* magic, int supported,
                 const char* what) {
  std::string got;
  if (!(in >> got) || got != magic) {
    throw std::invalid_argument(
        std::string("not a ") + what + " stream: expected the '" + magic +
        "' magic header, got '" + got + "'");
  }
  const auto version = read_value<int>(in, "format version");
  if (version != supported) {
    throw std::invalid_argument(
        std::string(what) + " format version " + std::to_string(version) +
        " is not supported (this build reads version " +
        std::to_string(supported) + ")");
  }
}

/// Hard ceiling on any element count read from a checkpoint. A corrupted
/// (or adversarial) count must not drive a multi-gigabyte allocation before
/// the stream runs dry — fuzz/fuzz_checkpoint found exactly that via
/// vector(n) on a forged length field. 1 << 26 grid cells is far beyond any
/// cluster/horizon this system targets.
constexpr std::size_t kMaxCheckpointCount = std::size_t{1} << 26;

std::size_t read_count(std::istream& in, const char* what) {
  const auto n = read_value<std::size_t>(in, what);
  if (n > kMaxCheckpointCount) {
    throw std::invalid_argument(std::string("checkpoint: absurd ") + what);
  }
  return n;
}

void write_doubles(std::ostream& out, const std::vector<double>& values) {
  out << values.size();
  for (double v : values) out << ' ' << v;
  out << '\n';
}

std::vector<double> read_doubles(std::istream& in, const char* what) {
  const auto n = read_count(in, what);
  std::vector<double> values(n);
  for (std::size_t i = 0; i < n; ++i) values[i] = read_value<double>(in, what);
  return values;
}

template <typename Int>
void write_ints(std::ostream& out, const std::vector<Int>& values) {
  out << values.size();
  for (Int v : values) out << ' ' << static_cast<long>(v);
  out << '\n';
}

template <typename Int>
std::vector<Int> read_ints(std::istream& in, const char* what) {
  const auto n = read_count(in, what);
  std::vector<Int> values(n);
  for (std::size_t i = 0; i < n; ++i) {
    values[i] = static_cast<Int>(read_value<long>(in, what));
  }
  return values;
}

void write_task_record(std::ostream& out, const Task& t) {
  out << t.id << ' ' << t.arrival << ' ' << t.deadline << ' '
      << t.dataset_samples << ' ' << t.epochs << ' ' << t.work << ' '
      << t.mem_gb << ' ' << t.compute_share << ' ' << (t.needs_prep ? 1 : 0)
      << ' ' << t.model << ' ' << t.bid << ' ' << t.true_value << '\n';
}

Task read_task_record(std::istream& in) {
  Task t;
  t.id = read_value<TaskId>(in, "task id");
  t.arrival = read_value<Slot>(in, "task arrival");
  t.deadline = read_value<Slot>(in, "task deadline");
  t.dataset_samples = read_value<double>(in, "task dataset");
  t.epochs = read_value<int>(in, "task epochs");
  t.work = read_value<double>(in, "task work");
  t.mem_gb = read_value<double>(in, "task mem");
  t.compute_share = read_value<double>(in, "task share");
  t.needs_prep = read_value<int>(in, "task prep") != 0;
  t.model = read_value<int>(in, "task model");
  t.bid = read_value<double>(in, "task bid");
  t.true_value = read_value<double>(in, "task value");
  return t;
}

void write_outcome_record(std::ostream& out, const TaskOutcome& o) {
  out << o.task << ' ' << (o.admitted ? 1 : 0) << ' ' << o.bid << ' '
      << o.true_value << ' ' << o.payment << ' ' << o.vendor_cost << ' '
      << o.energy_cost << ' ' << o.vendor << ' ' << o.arrival << ' '
      << o.completion << ' ' << o.slots_used << ' ' << o.preemptions << ' '
      << o.decide_seconds << '\n';
}

TaskOutcome read_outcome_record(std::istream& in) {
  TaskOutcome o;
  o.task = read_value<TaskId>(in, "outcome task");
  o.admitted = read_value<int>(in, "outcome admitted") != 0;
  o.bid = read_value<double>(in, "outcome bid");
  o.true_value = read_value<double>(in, "outcome value");
  o.payment = read_value<double>(in, "outcome payment");
  o.vendor_cost = read_value<double>(in, "outcome vendor cost");
  o.energy_cost = read_value<double>(in, "outcome energy cost");
  o.vendor = read_value<VendorId>(in, "outcome vendor");
  o.arrival = read_value<Slot>(in, "outcome arrival");
  o.completion = read_value<Slot>(in, "outcome completion");
  o.slots_used = read_value<int>(in, "outcome slots");
  o.preemptions = read_value<int>(in, "outcome preemptions");
  o.decide_seconds = read_value<double>(in, "outcome decide time");
  return o;
}

void write_schedule_record(std::ostream& out, const Schedule& s) {
  out << s.task << ' ' << s.vendor << ' ' << s.vendor_price << ' '
      << s.prep_delay << ' ' << (s.exclusive ? 1 : 0) << ' '
      << s.share_override << ' ' << s.total_compute << ' ' << s.total_mem
      << ' ' << s.norm_compute << ' ' << s.norm_mem << ' ' << s.energy_cost
      << ' ' << s.welfare_gain << ' ' << s.run.size();
  for (const Assignment& a : s.run) out << ' ' << a.node << ' ' << a.slot;
  out << '\n';
}

// Section helpers shared by the monolithic and sharded checkpoint formats;
// each emits/consumes exactly the labeled lines the v1 monolithic format
// defined, so refactoring did not change a byte on disk.

void write_ledger_section(std::ostream& out,
                          const CapacityLedger::Snapshot& ledger) {
  out << "ledger " << ledger.nodes << ' ' << ledger.horizon << '\n';
  out << "used_compute ";
  write_doubles(out, ledger.used_compute);
  out << "used_mem ";
  write_doubles(out, ledger.used_mem);
  out << "task_count ";
  write_ints(out, ledger.task_count);
  out << "exclusive ";
  write_ints(out, ledger.exclusive);
  out << "blocked ";
  write_ints(out, ledger.blocked);
}

CapacityLedger::Snapshot read_ledger_section(std::istream& in) {
  CapacityLedger::Snapshot ledger;
  expect_token(in, "ledger");
  ledger.nodes = read_value<int>(in, "ledger nodes");
  ledger.horizon = read_value<Slot>(in, "ledger horizon");
  expect_token(in, "used_compute");
  ledger.used_compute = read_doubles(in, "used_compute");
  expect_token(in, "used_mem");
  ledger.used_mem = read_doubles(in, "used_mem");
  expect_token(in, "task_count");
  ledger.task_count = read_ints<int>(in, "task_count");
  expect_token(in, "exclusive");
  ledger.exclusive = read_ints<char>(in, "exclusive");
  expect_token(in, "blocked");
  ledger.blocked = read_ints<char>(in, "blocked");
  return ledger;
}

void write_metrics_section(std::ostream& out, const Metrics& m) {
  out << "metrics " << m.social_welfare << ' ' << m.provider_utility << ' '
      << m.user_utility << ' ' << m.total_bids_admitted << ' '
      << m.total_payments << ' ' << m.total_vendor_cost << ' '
      << m.total_energy_cost << ' ' << m.admitted << ' ' << m.rejected << ' '
      << m.utilization << '\n';
}

Metrics read_metrics_section(std::istream& in) {
  expect_token(in, "metrics");
  Metrics m;
  m.social_welfare = read_value<double>(in, "social_welfare");
  m.provider_utility = read_value<double>(in, "provider_utility");
  m.user_utility = read_value<double>(in, "user_utility");
  m.total_bids_admitted = read_value<double>(in, "total_bids_admitted");
  m.total_payments = read_value<double>(in, "total_payments");
  m.total_vendor_cost = read_value<double>(in, "total_vendor_cost");
  m.total_energy_cost = read_value<double>(in, "total_energy_cost");
  m.admitted = read_value<int>(in, "admitted");
  m.rejected = read_value<int>(in, "rejected");
  m.utilization = read_value<double>(in, "utilization");
  return m;
}

Schedule read_schedule_record(std::istream& in) {
  Schedule s;
  s.task = read_value<TaskId>(in, "schedule task");
  s.vendor = read_value<VendorId>(in, "schedule vendor");
  s.vendor_price = read_value<double>(in, "schedule vendor price");
  s.prep_delay = read_value<Slot>(in, "schedule prep delay");
  s.exclusive = read_value<int>(in, "schedule exclusive") != 0;
  s.share_override = read_value<double>(in, "schedule share");
  s.total_compute = read_value<double>(in, "schedule compute");
  s.total_mem = read_value<double>(in, "schedule mem");
  s.norm_compute = read_value<double>(in, "schedule norm compute");
  s.norm_mem = read_value<double>(in, "schedule norm mem");
  s.energy_cost = read_value<double>(in, "schedule energy");
  s.welfare_gain = read_value<double>(in, "schedule welfare");
  const auto n = read_count(in, "schedule run length");
  s.run.resize(n);
  for (auto& a : s.run) {
    a.node = read_value<NodeId>(in, "schedule node");
    a.slot = read_value<Slot>(in, "schedule slot");
  }
  return s;
}

}  // namespace

void write_checkpoint(std::ostream& out,
                      const service::Checkpoint& checkpoint) {
  const auto saved_precision = out.precision(17);
  out << kCheckpointMagic << ' ' << kCheckpointVersion << '\n';
  out << "next_slot " << checkpoint.next_slot << '\n';
  out << "horizon " << checkpoint.horizon << '\n';
  out << "booked_compute " << checkpoint.booked_compute << '\n';
  out << "policy_state ";
  write_doubles(out, checkpoint.policy_state);

  write_ledger_section(out, checkpoint.ledger);

  out << "pending " << checkpoint.pending.size() << '\n';
  for (const Task& t : checkpoint.pending) write_task_record(out, t);
  out << "outcomes " << checkpoint.outcomes.size() << '\n';
  for (const TaskOutcome& o : checkpoint.outcomes) write_outcome_record(out, o);
  out << "schedules " << checkpoint.schedules.size() << '\n';
  for (const Schedule& s : checkpoint.schedules) write_schedule_record(out, s);

  write_metrics_section(out, checkpoint.metrics);
  out << "end\n";
  out.precision(saved_precision);
}

service::Checkpoint read_checkpoint(std::istream& in) {
  read_header(in, kCheckpointMagic, kCheckpointVersion, "checkpoint");
  service::Checkpoint cp;
  expect_token(in, "next_slot");
  cp.next_slot = read_value<Slot>(in, "next_slot");
  expect_token(in, "horizon");
  cp.horizon = read_value<Slot>(in, "horizon");
  expect_token(in, "booked_compute");
  cp.booked_compute = read_value<double>(in, "booked_compute");
  expect_token(in, "policy_state");
  cp.policy_state = read_doubles(in, "policy_state");

  cp.ledger = read_ledger_section(in);

  expect_token(in, "pending");
  const auto pending = read_count(in, "pending count");
  cp.pending.reserve(pending);
  for (std::size_t i = 0; i < pending; ++i) {
    cp.pending.push_back(read_task_record(in));
  }
  expect_token(in, "outcomes");
  const auto outcomes = read_count(in, "outcome count");
  cp.outcomes.reserve(outcomes);
  for (std::size_t i = 0; i < outcomes; ++i) {
    cp.outcomes.push_back(read_outcome_record(in));
  }
  expect_token(in, "schedules");
  const auto schedules = read_count(in, "schedule count");
  cp.schedules.reserve(schedules);
  for (std::size_t i = 0; i < schedules; ++i) {
    cp.schedules.push_back(read_schedule_record(in));
  }

  cp.metrics = read_metrics_section(in);
  expect_token(in, "end");
  return cp;
}

void write_sharded_checkpoint(std::ostream& out,
                              const shard::ShardedCheckpoint& checkpoint) {
  const auto saved_precision = out.precision(17);
  out << kShardedCheckpointMagic << ' ' << kShardedCheckpointVersion << '\n';
  out << "next_slot " << checkpoint.next_slot << '\n';
  out << "horizon " << checkpoint.horizon << '\n';
  out << "shards " << checkpoint.shards << '\n';
  out << "router_seed " << checkpoint.router_seed << '\n';
  out << "reroute_attempts " << checkpoint.reroute_attempts << '\n';
  out << "booked_compute " << checkpoint.booked_compute << '\n';
  for (std::size_t s = 0; s < checkpoint.shard_states.size(); ++s) {
    const shard::ShardState& state = checkpoint.shard_states[s];
    out << "shard " << s << '\n';
    out << "booked_compute " << state.booked_compute << '\n';
    out << "policy_state ";
    write_doubles(out, state.policy_state);
    write_ledger_section(out, state.ledger);
  }

  out << "pending " << checkpoint.pending.size() << '\n';
  for (const Task& t : checkpoint.pending) write_task_record(out, t);
  out << "outcomes " << checkpoint.outcomes.size() << '\n';
  for (const TaskOutcome& o : checkpoint.outcomes) write_outcome_record(out, o);
  out << "schedules " << checkpoint.schedules.size() << '\n';
  for (const Schedule& s : checkpoint.schedules) write_schedule_record(out, s);

  write_metrics_section(out, checkpoint.metrics);
  out << "end\n";
  out.precision(saved_precision);
}

shard::ShardedCheckpoint read_sharded_checkpoint(std::istream& in) {
  read_header(in, kShardedCheckpointMagic, kShardedCheckpointVersion,
              "sharded checkpoint");
  shard::ShardedCheckpoint cp;
  expect_token(in, "next_slot");
  cp.next_slot = read_value<Slot>(in, "next_slot");
  expect_token(in, "horizon");
  cp.horizon = read_value<Slot>(in, "horizon");
  expect_token(in, "shards");
  cp.shards = read_value<int>(in, "shards");
  if (cp.shards < 1 ||
      static_cast<std::size_t>(cp.shards) > kMaxCheckpointCount) {
    throw std::invalid_argument("checkpoint: absurd shard count");
  }
  expect_token(in, "router_seed");
  cp.router_seed = read_value<std::uint64_t>(in, "router_seed");
  expect_token(in, "reroute_attempts");
  cp.reroute_attempts = read_value<int>(in, "reroute_attempts");
  expect_token(in, "booked_compute");
  cp.booked_compute = read_value<double>(in, "booked_compute");
  cp.shard_states.reserve(static_cast<std::size_t>(cp.shards));
  for (int s = 0; s < cp.shards; ++s) {
    expect_token(in, "shard");
    const auto index = read_value<int>(in, "shard index");
    if (index != s) {
      throw std::invalid_argument("checkpoint: shard sections out of order");
    }
    shard::ShardState state;
    expect_token(in, "booked_compute");
    state.booked_compute = read_value<double>(in, "shard booked_compute");
    expect_token(in, "policy_state");
    state.policy_state = read_doubles(in, "shard policy_state");
    state.ledger = read_ledger_section(in);
    cp.shard_states.push_back(std::move(state));
  }

  expect_token(in, "pending");
  const auto pending = read_count(in, "pending count");
  cp.pending.reserve(pending);
  for (std::size_t i = 0; i < pending; ++i) {
    cp.pending.push_back(read_task_record(in));
  }
  expect_token(in, "outcomes");
  const auto outcomes = read_count(in, "outcome count");
  cp.outcomes.reserve(outcomes);
  for (std::size_t i = 0; i < outcomes; ++i) {
    cp.outcomes.push_back(read_outcome_record(in));
  }
  expect_token(in, "schedules");
  const auto schedules = read_count(in, "schedule count");
  cp.schedules.reserve(schedules);
  for (std::size_t i = 0; i < schedules; ++i) {
    cp.schedules.push_back(read_schedule_record(in));
  }

  cp.metrics = read_metrics_section(in);
  expect_token(in, "end");
  return cp;
}

ScenarioConfig read_scenario(std::istream& in) {
  ScenarioConfig config;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line.front() == '#') continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("scenario line missing '=': " + line);
    }
    auto trim = [](std::string text) {
      const auto first = text.find_first_not_of(" \t");
      const auto last = text.find_last_not_of(" \t");
      if (first == std::string::npos) return std::string{};
      return text.substr(first, last - first + 1);
    };
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key == "nodes") {
      config.nodes = static_cast<int>(parse_long(value));
    } else if (key == "fleet") {
      if (value == "A100") config.fleet = FleetKind::kA100Only;
      else if (value == "A40") config.fleet = FleetKind::kA40Only;
      else if (value == "hybrid") config.fleet = FleetKind::kHybrid;
      else throw std::invalid_argument("unknown fleet: " + value);
    } else if (key == "horizon") {
      config.horizon = static_cast<Slot>(parse_long(value));
    } else if (key == "arrival_rate") {
      config.arrival_rate = parse_double(value);
    } else if (key == "trace") {
      if (value == "MLaaS") config.trace = TraceKind::kMLaaS;
      else if (value == "Philly") config.trace = TraceKind::kPhilly;
      else if (value == "Helios") config.trace = TraceKind::kHelios;
      else throw std::invalid_argument("unknown trace: " + value);
    } else if (key == "deadline") {
      if (value == "tight") config.deadline = DeadlineKind::kTight;
      else if (value == "medium") config.deadline = DeadlineKind::kMedium;
      else if (value == "slack") config.deadline = DeadlineKind::kSlack;
      else throw std::invalid_argument("unknown deadline: " + value);
    } else if (key == "vendors") {
      config.vendors = static_cast<int>(parse_long(value));
    } else if (key == "prep_probability") {
      config.prep_probability = parse_double(value);
    } else if (key == "base_model_gb") {
      config.base_model_gb = parse_double(value);
    } else if (key == "seed") {
      config.seed = static_cast<std::uint64_t>(parse_long(value));
    } else {
      throw std::invalid_argument("unknown scenario key: " + key);
    }
  }
  return config;
}

}  // namespace lorasched::io
