// Serialization of workloads and results.
//
// Experiments are reproducible from a (config, seed) pair, but exporting
// the concrete realization matters for (a) analyzing runs with external
// tooling, (b) replaying the exact same bid sequence against a modified
// algorithm, and (c) publishing workloads alongside results. Tasks and
// per-task outcomes round-trip through CSV; scenario configs round-trip
// through a `key = value` text format.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "lorasched/experiments/scenario.h"
#include "lorasched/service/checkpoint.h"
#include "lorasched/shard/sharded_checkpoint.h"
#include "lorasched/sim/metrics.h"
#include "lorasched/workload/task.h"

namespace lorasched::io {

/// Writes tasks (all bid/demand fields) as CSV with a header row.
void write_tasks_csv(std::ostream& out, const std::vector<Task>& tasks);

/// Reads tasks written by write_tasks_csv. Throws std::invalid_argument on
/// malformed input (wrong header, bad field count, unparsable numbers).
[[nodiscard]] std::vector<Task> read_tasks_csv(std::istream& in);

/// Writes per-task auction outcomes as CSV with a header row.
void write_outcomes_csv(std::ostream& out,
                        const std::vector<TaskOutcome>& outcomes);

/// Writes a scenario config as `key = value` lines (flat fields only; the
/// nested taskgen/energy/market configs use their compiled defaults unless
/// present as dotted keys).
void write_scenario(std::ostream& out, const ScenarioConfig& config);

/// Reads a scenario written by write_scenario. Unknown keys throw.
[[nodiscard]] ScenarioConfig read_scenario(std::istream& in);

// --- Streaming bids (the lorasched_serve wire format) ----------------------
// One bid per line: the task CSV columns, comma-separated, no header —
// what lorasched_feed emits and lorasched_serve ingests from stdin or a
// trace file.

[[nodiscard]] std::string format_bid_line(const Task& task);
/// Throws std::invalid_argument on wrong field count or unparsable numbers.
[[nodiscard]] Task parse_bid_line(const std::string& line);

// --- Service checkpoints ----------------------------------------------------
// Text round-trip of a service::Checkpoint with full double precision
// (17 significant digits), so a restored service resumes bit-identically.

void write_checkpoint(std::ostream& out, const service::Checkpoint& checkpoint);
/// Throws std::invalid_argument on a malformed or truncated checkpoint.
[[nodiscard]] service::Checkpoint read_checkpoint(std::istream& in);

// --- Sharded-service checkpoints --------------------------------------------
// Same text discipline for a shard::ShardedCheckpoint: one labeled section
// per shard (bookings, policy dump, ledger grids), then the service-level
// decision log. Full double precision, so restore + resume is
// bit-identical.

void write_sharded_checkpoint(std::ostream& out,
                              const shard::ShardedCheckpoint& checkpoint);
/// Throws std::invalid_argument on a malformed or truncated checkpoint.
[[nodiscard]] shard::ShardedCheckpoint read_sharded_checkpoint(
    std::istream& in);

}  // namespace lorasched::io
