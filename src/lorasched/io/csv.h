// Minimal CSV tokenizer/emitter (RFC-4180-ish: quoted fields, embedded
// commas and quotes) used by the serialization layer. Kept separate from
// util/table.h, which only ever writes.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace lorasched::io {

/// Splits one CSV record into fields, honouring double-quote escaping.
[[nodiscard]] std::vector<std::string> parse_csv_line(const std::string& line);

/// Joins fields into one CSV record, quoting where required.
[[nodiscard]] std::string format_csv_line(const std::vector<std::string>& fields);

/// Reads all records from the stream (header included); skips blank lines.
[[nodiscard]] std::vector<std::vector<std::string>> read_csv(std::istream& in);

/// Writes records to the stream, one per line.
void write_csv(std::ostream& out,
               const std::vector<std::vector<std::string>>& records);

}  // namespace lorasched::io
