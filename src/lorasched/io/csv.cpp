#include "lorasched/io/csv.h"

#include <istream>
#include <ostream>
#include <stdexcept>

namespace lorasched::io {

std::vector<std::string> parse_csv_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char ch = line[i];
    if (quoted) {
      if (ch == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        current += ch;
      }
    } else if (ch == '"') {
      if (!current.empty()) {
        throw std::invalid_argument("quote inside unquoted CSV field");
      }
      quoted = true;
    } else if (ch == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current += ch;
    }
  }
  if (quoted) throw std::invalid_argument("unterminated CSV quote");
  fields.push_back(std::move(current));
  return fields;
}

std::string format_csv_line(const std::vector<std::string>& fields) {
  std::string line;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) line += ',';
    const std::string& field = fields[i];
    if (field.find_first_of(",\"\n") == std::string::npos) {
      line += field;
      continue;
    }
    line += '"';
    for (char ch : field) {
      if (ch == '"') line += '"';
      line += ch;
    }
    line += '"';
  }
  return line;
}

std::vector<std::vector<std::string>> read_csv(std::istream& in) {
  std::vector<std::vector<std::string>> records;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    records.push_back(parse_csv_line(line));
  }
  return records;
}

void write_csv(std::ostream& out,
               const std::vector<std::vector<std::string>>& records) {
  for (const auto& record : records) {
    out << format_csv_line(record) << '\n';
  }
}

}  // namespace lorasched::io
