// Monotonic wall-clock measurement shared by the simulation engine (Fig. 13
// per-task decision times) and the service-layer latency metrics, so both
// report the same quantity from the same clock.
//
// std::chrono::steady_clock is the only correct clock here: decision timing
// spans are short and must never go backwards under NTP slew or wall-clock
// adjustments, which system_clock (and, on some platforms,
// high_resolution_clock) permit.
#pragma once

#include <chrono>

namespace lorasched::util {

using MonoClock = std::chrono::steady_clock;

/// Seconds between two monotonic time points (negative iff b precedes a).
[[nodiscard]] inline double seconds_between(MonoClock::time_point a,
                                            MonoClock::time_point b) noexcept {
  return std::chrono::duration<double>(b - a).count();
}

/// A stopwatch over the monotonic clock. Constructed running.
class Stopwatch {
 public:
  Stopwatch() : start_(MonoClock::now()) {}

  /// Seconds elapsed since construction (or the last restart()).
  [[nodiscard]] double seconds() const noexcept {
    return seconds_between(start_, MonoClock::now());
  }

  void restart() noexcept { start_ = MonoClock::now(); }

  [[nodiscard]] MonoClock::time_point started_at() const noexcept {
    return start_;
  }

 private:
  MonoClock::time_point start_;
};

}  // namespace lorasched::util
