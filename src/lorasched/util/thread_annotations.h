// Clang Thread Safety Analysis attribute macros (DESIGN.md §13).
//
// These expand to Clang's `capability` attribute family when compiling
// with Clang and to nothing elsewhere, so GCC builds are untouched while
// the CI `thread-safety` job (clang, -Wthread-safety -Werror=thread-safety)
// proves the lock discipline at compile time. Names follow the canonical
// set from the Clang documentation; wrap a mutex type with CAPABILITY,
// mark every member it protects GUARDED_BY, and annotate functions that
// expect / take / drop the lock with REQUIRES / ACQUIRE / RELEASE.
//
// The analysis is intra-procedural and has two blind spots this codebase
// works around rather than silences:
//  * lambda bodies are analyzed with no capabilities held, so condition
//    waits use explicit `while` loops instead of predicate lambdas;
//  * constructors/destructors are analyzed like any function, so guarded
//    members are locked even there (or only touched via the init list,
//    which the analysis does not check).
#pragma once

#if defined(__clang__)
#define LORASCHED_THREAD_ATTR_(x) __attribute__((x))
#else
#define LORASCHED_THREAD_ATTR_(x)  // no-op outside Clang
#endif

/// Class attribute: instances of this type are lockable capabilities.
#define CAPABILITY(x) LORASCHED_THREAD_ATTR_(capability(x))

/// Class attribute: RAII object that acquires on construction and
/// releases on destruction (std::lock_guard shape).
#define SCOPED_CAPABILITY LORASCHED_THREAD_ATTR_(scoped_lockable)

/// Data member attribute: reads and writes require holding `x`.
#define GUARDED_BY(x) LORASCHED_THREAD_ATTR_(guarded_by(x))

/// Pointer member attribute: the pointee (not the pointer) is guarded.
#define PT_GUARDED_BY(x) LORASCHED_THREAD_ATTR_(pt_guarded_by(x))

/// Function attribute: caller must already hold the given capabilities.
#define REQUIRES(...) \
  LORASCHED_THREAD_ATTR_(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  LORASCHED_THREAD_ATTR_(requires_shared_capability(__VA_ARGS__))

/// Function attribute: acquires the capabilities and holds them on return.
#define ACQUIRE(...) LORASCHED_THREAD_ATTR_(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  LORASCHED_THREAD_ATTR_(acquire_shared_capability(__VA_ARGS__))

/// Function attribute: releases capabilities the caller holds on entry.
#define RELEASE(...) LORASCHED_THREAD_ATTR_(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  LORASCHED_THREAD_ATTR_(release_shared_capability(__VA_ARGS__))

/// Function attribute: acquires only when the return value equals the
/// first argument (try_lock shape).
#define TRY_ACQUIRE(...) \
  LORASCHED_THREAD_ATTR_(try_acquire_capability(__VA_ARGS__))

/// Function attribute: caller must NOT hold the capabilities (the
/// function locks them itself; guards against self-deadlock on the
/// non-recursive std::mutex underneath util::Mutex).
#define EXCLUDES(...) LORASCHED_THREAD_ATTR_(locks_excluded(__VA_ARGS__))

/// Declaration attributes for documenting lock-ordering rules.
#define ACQUIRED_BEFORE(...) \
  LORASCHED_THREAD_ATTR_(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  LORASCHED_THREAD_ATTR_(acquired_after(__VA_ARGS__))

/// Function attribute: returns a reference to the given capability.
#define RETURN_CAPABILITY(x) LORASCHED_THREAD_ATTR_(lock_returned(x))

/// Escape hatch — every use must carry a comment proving why the access
/// is safe (see DESIGN.md §13 for the audit list).
#define NO_THREAD_SAFETY_ANALYSIS \
  LORASCHED_THREAD_ATTR_(no_thread_safety_analysis)
