// Deterministic, seedable pseudo-random number generation.
//
// All stochastic inputs in lorasched (task generators, traces, vendor
// quotes, baseline tie-breaking) are driven through util::Rng so that every
// experiment is reproducible from a single 64-bit seed. The generator is
// xoshiro256**, seeded via splitmix64, which is both fast and statistically
// strong enough for simulation workloads.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

namespace lorasched::util {

/// Mixes a 64-bit value; used for seeding and for deriving independent
/// substream seeds (e.g. one stream per task id).
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** PRNG with convenience samplers.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) noexcept;

  /// Derives an independent substream from this generator's seed and a
  /// stream index, without perturbing this generator's state.
  [[nodiscard]] Rng substream(std::uint64_t stream) const noexcept;

  [[nodiscard]] std::uint64_t next() noexcept;

  // UniformRandomBitGenerator interface (usable with <random> distributions).
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }
  result_type operator()() noexcept { return next(); }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;
  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo,
                                         std::int64_t hi) noexcept;
  /// Standard normal via Box-Muller.
  [[nodiscard]] double normal(double mean = 0.0, double stddev = 1.0) noexcept;
  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// normal approximation for large ones).
  [[nodiscard]] int poisson(double mean) noexcept;
  /// Exponential with the given rate (lambda).
  [[nodiscard]] double exponential(double rate) noexcept;
  /// Bernoulli trial.
  [[nodiscard]] bool bernoulli(double p) noexcept;
  /// Index sampled proportionally to the (non-negative) weights.
  [[nodiscard]] std::size_t weighted_index(const std::vector<double>& weights) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

 private:
  std::uint64_t seed_;
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace lorasched::util
