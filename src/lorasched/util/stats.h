// Small descriptive-statistics helpers used by the benchmark harness and by
// tests (means, percentiles, empirical CDFs, online accumulators).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace lorasched::util {

[[nodiscard]] double mean(std::span<const double> values) noexcept;
[[nodiscard]] double variance(std::span<const double> values) noexcept;
[[nodiscard]] double stddev(std::span<const double> values) noexcept;
[[nodiscard]] double min_value(std::span<const double> values) noexcept;
[[nodiscard]] double max_value(std::span<const double> values) noexcept;
[[nodiscard]] double sum(std::span<const double> values) noexcept;

/// Linear-interpolation percentile, p in [0, 100]. Copies and sorts.
[[nodiscard]] double percentile(std::span<const double> values, double p);

/// One point of an empirical CDF.
struct CdfPoint {
  double value = 0.0;
  double fraction = 0.0;  ///< P(X <= value)
};

/// Empirical CDF of the sample, optionally downsampled to at most
/// `max_points` evenly spaced points (0 = keep all).
[[nodiscard]] std::vector<CdfPoint> empirical_cdf(
    std::span<const double> values, std::size_t max_points = 0);

/// Welford online mean/variance accumulator.
class RunningStats {
 public:
  void add(double value) noexcept;
  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace lorasched::util
