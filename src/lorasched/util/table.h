// Console table and CSV emission for the benchmark harness.
//
// Every figure-reproduction binary prints an aligned table (the "series the
// paper reports") to stdout and can optionally dump the same rows as CSV.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace lorasched::util {

/// A simple column-aligned text table with a title and a header row.
class Table {
 public:
  Table(std::string title, std::vector<std::string> header);

  /// Adds one row; the number of cells must match the header width.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  [[nodiscard]] static std::string num(double value, int precision = 3);
  /// Formats a ratio as a percentage string, e.g. 0.489 -> "48.90%".
  [[nodiscard]] static std::string pct(double ratio, int precision = 2);

  /// Renders to the stream with aligned columns and a rule under the header.
  void print(std::ostream& os) const;
  /// Renders as CSV (header + rows, comma separated, quotes where needed).
  void write_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& header() const noexcept {
    return header_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& data()
      const noexcept {
    return rows_;
  }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace lorasched::util
