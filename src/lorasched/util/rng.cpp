#include "lorasched/util/rng.h"

#include <cmath>

namespace lorasched::util {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

Rng Rng::substream(std::uint64_t stream) const noexcept {
  // Mix the base seed with the stream index through splitmix to decorrelate.
  std::uint64_t sm = seed_ ^ (0xa0761d6478bd642full * (stream + 1));
  return Rng(splitmix64(sm));
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53-bit mantissa -> uniform in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t draw = next();
  while (draw >= limit) draw = next();
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::normal(double mean, double stddev) noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = radius * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * radius * std::cos(theta);
}

int Rng::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    const double threshold = std::exp(-mean);
    int count = 0;
    double product = uniform();
    while (product > threshold) {
      ++count;
      product *= uniform();
    }
    return count;
  }
  // Normal approximation with continuity correction for large means.
  const double draw = normal(mean, std::sqrt(mean));
  return draw < 0.0 ? 0 : static_cast<int>(draw + 0.5);
}

double Rng::exponential(double rate) noexcept {
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / rate;
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

std::size_t Rng::weighted_index(const std::vector<double>& weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) return 0;
  double draw = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    draw -= weights[i];
    if (draw <= 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace lorasched::util
