// Annotated mutex / scoped-lock / condition-variable wrappers (DESIGN.md
// §13). Thin shims over the std primitives that carry the Clang thread
// safety attributes from thread_annotations.h, so `-Wthread-safety` can
// prove that every GUARDED_BY member is only touched under its mutex.
// Zero overhead: everything inlines to the std call.
//
// Condition waits: CondVar::wait takes the MutexLock by reference and is
// deliberately *unannotated* — the analysis treats the capability as held
// across the wait (the absl convention). Because lambda bodies are
// analyzed with no capabilities held, call sites use explicit
//   while (!predicate) cv.wait(lock);
// loops instead of the predicate-lambda overloads.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "lorasched/util/thread_annotations.h"

namespace lorasched::util {

/// std::mutex with the `capability` attribute. Non-recursive — public
/// entry points that lock internally are annotated EXCLUDES(mutex_) and
/// call private `_locked` helpers annotated REQUIRES(mutex_).
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { raw_.lock(); }
  void unlock() RELEASE() { raw_.unlock(); }
  [[nodiscard]] bool try_lock() TRY_ACQUIRE(true) { return raw_.try_lock(); }

  /// The wrapped std::mutex — CondVar interop only.
  [[nodiscard]] std::mutex& native() noexcept { return raw_; }

 private:
  std::mutex raw_;
};

/// Scoped lock over a Mutex (std::unique_lock underneath). Supports the
/// early-unlock / re-lock pattern (drop the lock before notifying a
/// condition variable); the destructor releases only if still held.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) ACQUIRE(mutex) : lock_(mutex.native()) {}
  ~MutexLock() RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Early release, e.g. to notify after the critical section.
  void unlock() RELEASE() { lock_.unlock(); }
  /// Re-acquire after an early unlock().
  void lock() ACQUIRE() { lock_.lock(); }

  /// The wrapped unique_lock — CondVar interop only.
  [[nodiscard]] std::unique_lock<std::mutex>& native() noexcept {
    return lock_;
  }

 private:
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable bound to util::Mutex via MutexLock. Waits atomically
/// release and re-acquire the caller's lock; see the header comment for
/// why they carry no thread-safety annotations.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(MutexLock& lock) { cv_.wait(lock.native()); }

  template <class Rep, class Period>
  std::cv_status wait_for(MutexLock& lock,
                          const std::chrono::duration<Rep, Period>& timeout) {
    return cv_.wait_for(lock.native(), timeout);
  }

  template <class Clock, class Duration>
  std::cv_status wait_until(
      MutexLock& lock,
      const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv_.wait_until(lock.native(), deadline);
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace lorasched::util
