// Fixed-size worker pool with a `parallel_for` helper.
//
// Benchmarks sweep many (seed, scenario) cells; cells are independent, so we
// farm them out across hardware threads. The pool is also used by the
// offline column-generation solver to price multiple tasks concurrently.
#pragma once

#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "lorasched/util/mutex.h"
#include "lorasched/util/thread_annotations.h"

namespace lorasched::util {

class ThreadPool {
 public:
  /// `threads == 0` uses std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a job for asynchronous execution.
  void submit(std::function<void()> job) EXCLUDES(mutex_);

  /// Blocks until every submitted job has finished.
  void wait_idle() EXCLUDES(mutex_);

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

 private:
  void worker_loop() EXCLUDES(mutex_);

  std::vector<std::thread> workers_;
  Mutex mutex_;
  std::queue<std::function<void()>> jobs_ GUARDED_BY(mutex_);
  CondVar job_ready_;
  CondVar all_done_;
  std::size_t in_flight_ GUARDED_BY(mutex_) = 0;
  bool shutting_down_ GUARDED_BY(mutex_) = false;
};

/// Runs body(i) for i in [begin, end) across the pool's workers and blocks
/// until all iterations complete. If any iteration throws, the first
/// exception (in completion order) is captured and rethrown on the calling
/// thread after the whole range has drained; the remaining iterations still
/// run, so partially written outputs stay index-consistent.
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body);

}  // namespace lorasched::util
