#include "lorasched/util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace lorasched::util {

double sum(std::span<const double> values) noexcept {
  double total = 0.0;
  for (double v : values) total += v;
  return total;
}

double mean(std::span<const double> values) noexcept {
  if (values.empty()) return 0.0;
  return sum(values) / static_cast<double>(values.size());
}

double variance(std::span<const double> values) noexcept {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - m) * (v - m);
  return acc / static_cast<double>(values.size() - 1);
}

double stddev(std::span<const double> values) noexcept {
  return std::sqrt(variance(values));
}

double min_value(std::span<const double> values) noexcept {
  double best = std::numeric_limits<double>::infinity();
  for (double v : values) best = std::min(best, v);
  return best;
}

double max_value(std::span<const double> values) noexcept {
  double best = -std::numeric_limits<double>::infinity();
  for (double v : values) best = std::max(best, v);
  return best;
}

double percentile(std::span<const double> values, double p) {
  if (values.empty()) throw std::invalid_argument("percentile of empty sample");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile out of range");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = (p / 100.0) * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

std::vector<CdfPoint> empirical_cdf(std::span<const double> values,
                                    std::size_t max_points) {
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<CdfPoint> cdf;
  if (sorted.empty()) return cdf;
  const std::size_t n = sorted.size();
  std::size_t step = 1;
  if (max_points != 0 && n > max_points) step = n / max_points;
  for (std::size_t i = 0; i < n; i += step) {
    cdf.push_back({sorted[i],
                   static_cast<double>(i + 1) / static_cast<double>(n)});
  }
  if (cdf.back().value != sorted.back() || cdf.back().fraction != 1.0) {
    cdf.push_back({sorted.back(), 1.0});
  }
  return cdf;
}

void RunningStats::add(double value) noexcept {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

}  // namespace lorasched::util
