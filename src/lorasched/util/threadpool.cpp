#include "lorasched/util/threadpool.h"

#include <algorithm>
#include <exception>

namespace lorasched::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    shutting_down_ = true;
  }
  job_ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    MutexLock lock(mutex_);
    jobs_.push(std::move(job));
    ++in_flight_;
  }
  job_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  MutexLock lock(mutex_);
  while (in_flight_ != 0) all_done_.wait(lock);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      MutexLock lock(mutex_);
      while (!shutting_down_ && jobs_.empty()) job_ready_.wait(lock);
      if (jobs_.empty()) return;  // shutting down
      job = std::move(jobs_.front());
      jobs_.pop();
    }
    job();
    {
      MutexLock lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body) {
  // first_error is stack-local, so it cannot carry GUARDED_BY (the
  // attribute only applies to members); error_mutex still serializes the
  // racing workers.
  Mutex error_mutex;
  std::exception_ptr first_error;
  for (std::size_t i = begin; i < end; ++i) {
    pool.submit([i, &body, &error_mutex, &first_error] {
      try {
        body(i);
      } catch (...) {
        MutexLock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  pool.wait_idle();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace lorasched::util
