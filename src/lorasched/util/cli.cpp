#include "lorasched/util/cli.h"

#include <algorithm>
#include <stdexcept>

namespace lorasched::util {

Cli::Cli(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      throw std::invalid_argument("unexpected positional argument: " + token);
    }
    token.erase(0, 2);
    const auto eq = token.find('=');
    if (eq != std::string::npos) {
      values_[token.substr(0, eq)] = token.substr(eq + 1);
      continue;
    }
    // `--flag value` unless the next token is another flag (boolean switch).
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[token] = argv[++i];
    } else {
      values_[token] = "true";
    }
  }
}

std::string Cli::get(const std::string& name, const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

double Cli::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : std::stod(it->second);
}

long Cli::get_int(const std::string& name, long fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : std::stol(it->second);
}

bool Cli::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

bool Cli::has(const std::string& name) const {
  return values_.count(name) != 0;
}

void Cli::allow_only(const std::vector<std::string>& names) const {
  for (const auto& [key, value] : values_) {
    (void)value;
    if (std::find(names.begin(), names.end(), key) == names.end()) {
      throw std::invalid_argument("unknown flag: --" + key);
    }
  }
}

}  // namespace lorasched::util
