// Minimal command-line flag parser for examples and bench binaries.
//
// Supports `--name value` and `--name=value` forms plus boolean switches.
// Unknown flags raise an error so typos in experiment scripts fail loudly.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace lorasched::util {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  /// Returns the flag value or `fallback` if absent.
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] long get_int(const std::string& name, long fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;
  [[nodiscard]] bool has(const std::string& name) const;

  /// Declares the set of accepted flags; throws std::invalid_argument if the
  /// command line contained anything else. Call after construction.
  void allow_only(const std::vector<std::string>& names) const;

  [[nodiscard]] const std::string& program() const noexcept { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
};

}  // namespace lorasched::util
