#include "lorasched/util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace lorasched::util {

Table::Table(std::string title, std::vector<std::string> header)
    : title_(std::move(title)), header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("table needs a header");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("row width does not match header");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string Table::pct(double ratio, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << (ratio * 100.0) << "%";
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  os << "== " << title_ << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << '\n';
  };
  emit_row(header_);
  std::size_t rule = 0;
  for (std::size_t w : widths) rule += w + 2;
  os << std::string(rule, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void Table::write_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace lorasched::util
