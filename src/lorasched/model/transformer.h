// Transformer architecture descriptions and FLOP/parameter accounting.
//
// The paper obtains its capacity constants (C_kp, s_ik, r_i, r_b) by
// profiling GPT-2 + LoRA on physical A100/A40 GPUs. We cannot profile
// hardware here, so this module provides the substitute: an analytic
// parameter/FLOP/memory model of decoder-only transformers, from which
// model/perf_model.h derives per-GPU throughput and memory numbers. The
// formulas follow the standard accounting (Kaplan et al.'s 6ND rule for
// training FLOPs, exact parameter counts per block).
#pragma once

#include <string>

namespace lorasched::model {

/// Decoder-only transformer shape.
struct TransformerSpec {
  std::string name;
  int layers = 12;
  int d_model = 768;
  int heads = 12;
  /// Feed-forward inner size (usually 4 * d_model).
  int d_ff = 3072;
  /// MLP projection matrices per block: 2 for GPT-style (up, down), 3 for
  /// gated (SwiGLU) MLPs as in LLaMA.
  int mlp_projections = 2;
  int vocab = 50257;
  /// Training sequence length in tokens.
  int seq_len = 1024;

  /// Parameters in one attention block (QKV + output projections).
  [[nodiscard]] double attention_params() const noexcept;
  /// Parameters in one MLP block.
  [[nodiscard]] double mlp_params() const noexcept;
  /// Total trainable parameters, embeddings included.
  [[nodiscard]] double total_params() const noexcept;
  /// Training FLOPs for one sample (forward + backward, ~6 * params *
  /// tokens for dense training).
  [[nodiscard]] double train_flops_per_sample() const noexcept;
  /// fp16 weight bytes.
  [[nodiscard]] double weight_bytes() const noexcept;
};

/// GPT-2 small (124M), the paper's fine-tuning workload.
[[nodiscard]] TransformerSpec gpt2_small();
/// GPT-2 medium (355M).
[[nodiscard]] TransformerSpec gpt2_medium();
/// A LLaMA-7B-like shape for the multi-zone scenarios.
[[nodiscard]] TransformerSpec llama_7b();

}  // namespace lorasched::model
