// GPU throughput model: derives the scheduling constants the paper measured
// on physical hardware (C_kp samples/slot, r_i, r_b) from GPU datasheets
// and the transformer/LoRA FLOP accounting.
//
// Throughput = tensor TFLOPs × MFU / FLOPs-per-sample, where MFU (model
// FLOPs utilization) captures kernel and input-pipeline inefficiency
// (0.3-0.5 for fine-tuning workloads). The derived numbers land within a
// few percent of the hard-coded calibration in cluster/gpu_profile.cpp —
// test_model.cpp pins that agreement so the two never drift apart.
#pragma once

#include <string>

#include "lorasched/cluster/gpu_profile.h"
#include "lorasched/model/lora.h"
#include "lorasched/model/transformer.h"

namespace lorasched::model {

/// GPU datasheet numbers (dense fp16/bf16 tensor throughput).
struct GpuSpec {
  std::string name;
  double tensor_tflops = 0.0;
  double mem_gb = 0.0;
  double power_kw = 0.0;
  /// Amortized $/hour at full utilization (hardware + reference energy).
  double hourly_cost = 0.0;
  /// Model FLOPs utilization achieved by the fine-tuning stack.
  double mfu = 0.4;
};

[[nodiscard]] GpuSpec a100_spec();
[[nodiscard]] GpuSpec a40_spec();

/// Samples per second the GPU sustains fine-tuning `base` with `lora`.
[[nodiscard]] double samples_per_second(const GpuSpec& gpu,
                                        const TransformerSpec& base,
                                        const LoraSpec& lora);

/// Samples per scheduling slot (default 10 minutes).
[[nodiscard]] double samples_per_slot(const GpuSpec& gpu,
                                      const TransformerSpec& base,
                                      const LoraSpec& lora,
                                      double seconds_per_slot = 600.0);

/// Builds a cluster GpuProfile from first principles — the derived
/// substitute for the paper's hardware profiling run.
[[nodiscard]] GpuProfile derive_profile(const GpuSpec& gpu,
                                        const TransformerSpec& base,
                                        const LoraSpec& lora,
                                        double seconds_per_slot = 600.0);

}  // namespace lorasched::model
