#include "lorasched/model/transformer.h"

namespace lorasched::model {

double TransformerSpec::attention_params() const noexcept {
  // Q, K, V and output projections: 4 * d_model^2 (biases negligible).
  const double d = static_cast<double>(d_model);
  return 4.0 * d * d;
}

double TransformerSpec::mlp_params() const noexcept {
  return static_cast<double>(mlp_projections) * static_cast<double>(d_model) *
         static_cast<double>(d_ff);
}

double TransformerSpec::total_params() const noexcept {
  const double per_layer = attention_params() + mlp_params();
  const double embeddings =
      static_cast<double>(vocab) * static_cast<double>(d_model) +
      static_cast<double>(seq_len) * static_cast<double>(d_model);
  return layers * per_layer + embeddings;
}

double TransformerSpec::train_flops_per_sample() const noexcept {
  // 6 FLOPs per parameter per token (2 forward + 4 backward), times the
  // tokens in one training sample.
  return 6.0 * total_params() * static_cast<double>(seq_len);
}

double TransformerSpec::weight_bytes() const noexcept {
  return 2.0 * total_params();  // fp16
}

TransformerSpec gpt2_small() {
  return TransformerSpec{"gpt2-small", 12, 768, 12, 3072, 2, 50257, 1024};
}

TransformerSpec gpt2_medium() {
  return TransformerSpec{"gpt2-medium", 24, 1024, 16, 4096, 2, 50257, 1024};
}

TransformerSpec llama_7b() {
  return TransformerSpec{"llama-7b", 32, 4096, 32, 11008, 3, 32000, 2048};
}

}  // namespace lorasched::model
