#include "lorasched/model/perf_model.h"

namespace lorasched::model {

GpuSpec a100_spec() {
  // A100 80GB SXM: 312 TFLOPs bf16 dense. The MFU is calibrated for
  // GPT-2-small fine-tuning, whose small kernels leave big tensor cores
  // underfed (~13% MFU — large-model training reaches 40%+).
  return GpuSpec{"A100-80GB", 312.0, 80.0, 0.4, 1.50, 0.127};
}

GpuSpec a40_spec() {
  // A40 48GB: 149.7 TFLOPs bf16 dense; the smaller GPU keeps its pipes
  // fuller on small kernels, hence the higher MFU.
  return GpuSpec{"A40-48GB", 149.7, 48.0, 0.3, 0.80, 0.147};
}

double samples_per_second(const GpuSpec& gpu, const TransformerSpec& base,
                          const LoraSpec& lora) {
  const double flops = lora.train_flops_per_sample(base);
  return gpu.tensor_tflops * 1e12 * gpu.mfu / flops;
}

double samples_per_slot(const GpuSpec& gpu, const TransformerSpec& base,
                        const LoraSpec& lora, double seconds_per_slot) {
  return samples_per_second(gpu, base, lora) * seconds_per_slot;
}

GpuProfile derive_profile(const GpuSpec& gpu, const TransformerSpec& base,
                          const LoraSpec& lora, double seconds_per_slot) {
  GpuProfile profile;
  profile.name = gpu.name;
  profile.compute_per_slot = samples_per_slot(gpu, base, lora, seconds_per_slot);
  profile.mem_gb = gpu.mem_gb;
  profile.power_kw = gpu.power_kw;
  profile.hourly_cost = gpu.hourly_cost;
  return profile;
}

}  // namespace lorasched::model
