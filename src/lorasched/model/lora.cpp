#include "lorasched/model/lora.h"

namespace lorasched::model {

namespace {
constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;
}  // namespace

double LoraSpec::adapter_params(const TransformerSpec& base) const noexcept {
  // Each adapted d×d matrix gains B (d×r) + A (r×d) = 2 d r parameters.
  const double per_matrix =
      2.0 * static_cast<double>(base.d_model) * static_cast<double>(rank);
  return static_cast<double>(base.layers) *
         static_cast<double>(adapted_matrices_per_layer) * per_matrix;
}

double LoraSpec::train_flops_per_sample(const TransformerSpec& base) const noexcept {
  return flops_fraction() * base.train_flops_per_sample();
}

double LoraSpec::task_memory_gb(const TransformerSpec& base) const noexcept {
  const double params = adapter_params(base);
  // fp16 adapters + fp16 gradients + Adam state.
  const double adapter_bytes =
      params * (2.0 + 2.0 + optimizer_bytes_per_param);
  // Activation memory for one micro-batch: bytes ≈ 2 * batch * seq *
  // d_model * layers * c, with c ≈ 16 tensors checkpointed per block at
  // fp16 (empirically ~1-4 GB for GPT-2-small at batch 8).
  const double activation_bytes = 2.0 * batch_size *
                                  static_cast<double>(base.seq_len) *
                                  static_cast<double>(base.d_model) *
                                  static_cast<double>(base.layers) * 16.0;
  return (adapter_bytes + activation_bytes) / kGiB;
}

double LoraSpec::base_memory_gb(const TransformerSpec& base) noexcept {
  // fp16 weights plus ~1.5 GB of CUDA context, framework workspace, and
  // fragmentation reserve — the footprint the node pays once per model.
  return base.weight_bytes() / kGiB + 1.5;
}

}  // namespace lorasched::model
