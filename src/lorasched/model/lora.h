// LoRA adapter accounting (paper §2.1, Figs. 1-2).
//
// LoRA replaces the dense update ΔW with a rank-r factorization BA
// (B ∈ R^{d×r}, A ∈ R^{r×k}); only A and B train. For multi-LoRA serving
// (Fig. 2), every task on a node shares the frozen base weights W_0 and
// keeps only its adapters, optimizer state, and activations private —
// which is exactly what drives constraint (4g)'s `Σ r_i x_ikt + r_b <= C_km`.
#pragma once

#include "lorasched/model/transformer.h"

namespace lorasched::model {

struct LoraSpec {
  /// Adapter rank r (paper's r << min(d, k)).
  int rank = 8;
  /// Which projections get adapters: classic LoRA adapts the attention
  /// query/value projections (2 of the 4 d×d matrices per layer).
  int adapted_matrices_per_layer = 2;
  /// Micro-batch size during fine-tuning.
  int batch_size = 8;
  /// Optimizer bytes per trainable parameter (Adam fp32: weight copy +
  /// two moments = 12 bytes).
  double optimizer_bytes_per_param = 12.0;

  /// Trainable adapter parameters for the given base model.
  [[nodiscard]] double adapter_params(const TransformerSpec& base) const noexcept;
  /// Fraction of dense-training FLOPs a LoRA step costs. The forward pass
  /// is full-price; the backward pass only flows through the adapters and
  /// the activation graph (~2/3 of dense backward in practice).
  [[nodiscard]] double flops_fraction() const noexcept { return 0.72; }
  /// Training FLOPs for one sample with LoRA.
  [[nodiscard]] double train_flops_per_sample(const TransformerSpec& base) const noexcept;

  /// Per-task GPU memory in GB: adapters + optimizer state + gradient
  /// buffers + activations for one micro-batch.
  [[nodiscard]] double task_memory_gb(const TransformerSpec& base) const noexcept;
  /// Shared per-node memory in GB: the frozen fp16 base weights (r_b).
  [[nodiscard]] static double base_memory_gb(const TransformerSpec& base) noexcept;
};

}  // namespace lorasched::model
