// Titan baseline (paper §5.1 / [4]): an offline MILP fine-tuning scheduler
// adapted to the online setting by solving, at the start of every slot, a
// batch MILP over the tasks that arrived at that slot, with the labor
// vendor picked uniformly at random (as the paper specifies).
//
// Titan targets throughput/completion-time — it "ignores the pricing,
// deadline, and data pre-processing issues" (paper §1) — so its MILP
// maximizes the number of admitted tasks (earlier finishes as tie-break),
// blind to bids and operational cost. That is exactly why it lands between
// pdFTSP and the greedy baselines in the paper's figures: excellent
// packing, no economics.
//
// The MILP is built over candidate schedules per task (an energy-oblivious
// cost-minimal DP plan and an earliest-finish plan, both restricted to
// currently-free capacity) and solved with the in-repo branch & bound — the
// Gurobi substitute (DESIGN.md §3). Joint feasibility across the batch is
// enforced by per-(node, slot) *remaining*-capacity rows.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "lorasched/core/schedule_dp.h"
#include "lorasched/sim/policy.h"
#include "lorasched/solver/bnb.h"
#include "lorasched/util/rng.h"

namespace lorasched {

struct TitanConfig {
  ScheduleDpConfig dp{};
  solver::BnbOptions bnb{40000, 1e-6};
};

class TitanPolicy final : public Policy {
 public:
  explicit TitanPolicy(TitanConfig config = {}, std::uint64_t seed = 7)
      : config_(config), rng_(seed) {}

  [[nodiscard]] std::string_view name() const override { return "Titan"; }
  [[nodiscard]] std::vector<Decision> on_slot(const SlotContext& ctx) override;

 private:
  TitanConfig config_;
  util::Rng rng_;
};

}  // namespace lorasched
