#include "lorasched/baselines/ntm.h"

#include "lorasched/baselines/greedy_common.h"

namespace lorasched {

std::vector<Decision> NtmPolicy::on_slot(const SlotContext& ctx) {
  std::vector<Decision> decisions;
  decisions.reserve(ctx.arrivals.size());
  for (const Task& task : ctx.arrivals) {
    Decision d;
    d.task = task.id;

    VendorId vendor = kNoVendor;
    Money vendor_price = 0.0;
    Slot delay = 0;
    if (task.needs_prep) {
      const auto quotes = ctx.market.quotes(task);
      vendor = static_cast<VendorId>(
          rng_.uniform_int(0, static_cast<std::int64_t>(quotes.size()) - 1));
      vendor_price = quotes[static_cast<std::size_t>(vendor)].price;
      delay = quotes[static_cast<std::size_t>(vendor)].delay;
    }

    Schedule schedule =
        greedy_earliest_finish(task, task.arrival + delay, ctx.cluster,
                               ctx.energy, ctx.ledger, /*exclusive=*/true);
    if (!schedule.empty()) {
      schedule.vendor = vendor;
      schedule.vendor_price = vendor_price;
      schedule.prep_delay = delay;
      finalize_schedule(schedule, task, ctx.cluster, ctx.energy);
      d.admit = true;
      d.schedule = std::move(schedule);
      commit_decision(ctx.ledger, ctx.cluster, task, d);
    }
    decisions.push_back(std::move(d));
  }
  return decisions;
}

}  // namespace lorasched
