// EFT baseline (paper §5.1): pick the lowest-delay labor vendor and place
// the task so it finishes as early as possible. Admits any task it can
// complete by the deadline, regardless of economics — which is exactly why
// it trails pdFTSP on social welfare.
#pragma once

#include <string_view>
#include <vector>

#include "lorasched/sim/policy.h"

namespace lorasched {

class EftPolicy final : public Policy {
 public:
  [[nodiscard]] std::string_view name() const override { return "EFT"; }
  [[nodiscard]] std::vector<Decision> on_slot(const SlotContext& ctx) override;
};

}  // namespace lorasched
