#include "lorasched/baselines/eft.h"

#include <algorithm>

#include "lorasched/baselines/greedy_common.h"

namespace lorasched {

std::vector<Decision> EftPolicy::on_slot(const SlotContext& ctx) {
  std::vector<Decision> decisions;
  decisions.reserve(ctx.arrivals.size());
  for (const Task& task : ctx.arrivals) {
    Decision d;
    d.task = task.id;

    VendorId vendor = kNoVendor;
    Money vendor_price = 0.0;
    Slot delay = 0;
    if (task.needs_prep) {
      const auto quotes = ctx.market.quotes(task);
      const auto fastest = std::min_element(
          quotes.begin(), quotes.end(),
          [](const VendorQuote& a, const VendorQuote& b) {
            return a.delay != b.delay ? a.delay < b.delay : a.price < b.price;
          });
      vendor = static_cast<VendorId>(fastest - quotes.begin());
      vendor_price = fastest->price;
      delay = fastest->delay;
    }

    Schedule schedule =
        greedy_earliest_finish(task, task.arrival + delay, ctx.cluster,
                               ctx.energy, ctx.ledger, /*exclusive=*/false);
    if (!schedule.empty()) {
      schedule.vendor = vendor;
      schedule.vendor_price = vendor_price;
      schedule.prep_delay = delay;
      finalize_schedule(schedule, task, ctx.cluster, ctx.energy);
      d.admit = true;
      d.schedule = std::move(schedule);
      commit_decision(ctx.ledger, ctx.cluster, task, d);
    }
    decisions.push_back(std::move(d));
  }
  return decisions;
}

}  // namespace lorasched
