// NTM (No Task Merging) baseline (paper §5.1): no multi-LoRA sharing — each
// task loads its own replica of the pre-trained model and runs *alone* on
// its node for every slot it executes. Labor vendor chosen uniformly at
// random; placement is earliest-finish.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "lorasched/sim/policy.h"
#include "lorasched/util/rng.h"

namespace lorasched {

class NtmPolicy final : public Policy {
 public:
  explicit NtmPolicy(std::uint64_t seed = 1) : rng_(seed) {}

  [[nodiscard]] std::string_view name() const override { return "NTM"; }
  [[nodiscard]] std::vector<Decision> on_slot(const SlotContext& ctx) override;

 private:
  util::Rng rng_;
};

}  // namespace lorasched
