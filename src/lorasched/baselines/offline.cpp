#include "lorasched/baselines/offline.h"

namespace lorasched {

EmpiricalRatio empirical_ratio(const Instance& instance,
                               const SimResult& online,
                               ColgenOptions options) {
  EmpiricalRatio ratio;
  ratio.offline = solve_offline(instance, options);
  ratio.online_welfare = online.metrics.social_welfare;
  if (ratio.online_welfare > 0.0) {
    ratio.vs_integer = ratio.offline.integer_value / ratio.online_welfare;
    ratio.vs_lp_bound = ratio.offline.lp_bound / ratio.online_welfare;
  }
  return ratio;
}

}  // namespace lorasched
