// Offline-optimum comparison utilities for the Fig. 12 empirical
// competitive-ratio experiment.
#pragma once

#include "lorasched/sim/metrics.h"
#include "lorasched/solver/colgen.h"

namespace lorasched {

struct EmpiricalRatio {
  /// OPT estimate used / online welfare, with the integer offline solution
  /// as the OPT estimate (matches the paper's Gurobi-based measurement).
  double vs_integer = 0.0;
  /// Conservative variant using the LP upper bound as OPT (>= vs_integer).
  double vs_lp_bound = 0.0;
  OfflineBound offline;
  Money online_welfare = 0.0;
};

/// Runs the offline column-generation solver on the instance and relates it
/// to the given online result.
[[nodiscard]] EmpiricalRatio empirical_ratio(const Instance& instance,
                                             const SimResult& online,
                                             ColgenOptions options = {});

}  // namespace lorasched
