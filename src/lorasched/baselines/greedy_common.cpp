#include "lorasched/baselines/greedy_common.h"

namespace lorasched {

Schedule greedy_earliest_finish(const Task& task, Slot start,
                                const Cluster& cluster,
                                const EnergyModel& energy,
                                const CapacityLedger& ledger, bool exclusive) {
  Schedule schedule;
  schedule.task = task.id;
  schedule.exclusive = exclusive;
  if (start < 0 || start > task.deadline) return schedule;

  double done = 0.0;
  for (Slot t = start; t <= task.deadline && t < ledger.horizon(); ++t) {
    NodeId best = -1;
    double best_rate = 0.0;
    Money best_cost = 0.0;
    for (NodeId k = 0; k < cluster.node_count(); ++k) {
      const double rate = cluster.task_rate(task, k);
      if (!ledger.fits(k, t, rate, task.mem_gb, exclusive)) continue;
      const Money cost = energy.cost(task, cluster, k, t);
      if (rate > best_rate || (rate == best_rate && best != -1 && cost < best_cost)) {
        best = k;
        best_rate = rate;
        best_cost = cost;
      }
    }
    if (best == -1) continue;  // node-slot saturated; try the next slot
    schedule.run.push_back({best, t});
    done += best_rate;
    if (done >= task.work) break;
  }
  if (done < task.work) schedule.run.clear();  // cannot meet the deadline
  return schedule;
}

}  // namespace lorasched
