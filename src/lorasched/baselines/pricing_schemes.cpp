#include "lorasched/baselines/pricing_schemes.h"

#include <algorithm>
#include <stdexcept>

#include "lorasched/baselines/greedy_common.h"

namespace lorasched {

FixedPricePolicy::FixedPricePolicy(Money price_per_ksample)
    : rate_(price_per_ksample) {
  if (rate_ < 0.0) throw std::invalid_argument("posted price must be >= 0");
}

Money reference_price_per_ksample(const Cluster& cluster,
                                  const EnergyModel& energy, double markup) {
  // Mean $/sample across nodes at the mid time-of-use multiplier.
  double total = 0.0;
  const double tou_mid = 0.5 * (energy.config().off_peak_multiplier +
                                energy.config().peak_multiplier);
  for (NodeId k = 0; k < cluster.node_count(); ++k) {
    const auto& profile = cluster.profile(k);
    total += profile.hourly_cost * tou_mid * energy.config().hours_per_slot /
             profile.compute_per_slot;
  }
  return markup * 1000.0 * total / cluster.node_count();
}

std::vector<Decision> FixedPricePolicy::on_slot(const SlotContext& ctx) {
  std::vector<Decision> decisions;
  decisions.reserve(ctx.arrivals.size());
  for (const Task& task : ctx.arrivals) {
    Decision d;
    d.task = task.id;

    VendorId vendor = kNoVendor;
    Money vendor_price = 0.0;
    Slot delay = 0;
    if (task.needs_prep) {
      const auto quotes = ctx.market.quotes(task);
      const auto cheapest = std::min_element(
          quotes.begin(), quotes.end(),
          [](const VendorQuote& a, const VendorQuote& b) {
            return a.price != b.price ? a.price < b.price : a.delay < b.delay;
          });
      vendor = static_cast<VendorId>(cheapest - quotes.begin());
      vendor_price = cheapest->price;
      delay = cheapest->delay;
    }

    const Money posted = rate_ * task.work / 1000.0 + vendor_price;
    if (task.bid >= posted) {  // user accepts the posted price
      Schedule schedule =
          greedy_earliest_finish(task, task.arrival + delay, ctx.cluster,
                                 ctx.energy, ctx.ledger, /*exclusive=*/false);
      if (!schedule.empty()) {
        schedule.vendor = vendor;
        schedule.vendor_price = vendor_price;
        schedule.prep_delay = delay;
        finalize_schedule(schedule, task, ctx.cluster, ctx.energy);
        d.admit = true;
        d.schedule = std::move(schedule);
        d.payment = posted;
        commit_decision(ctx.ledger, ctx.cluster, task, d);
      }
    }
    decisions.push_back(std::move(d));
  }
  return decisions;
}

FirstPricePolicy::FirstPricePolicy(PdftspConfig config, const Cluster& cluster,
                                   const EnergyModel& energy, Slot horizon)
    : inner_(config, cluster, energy, horizon) {}

std::vector<Decision> FirstPricePolicy::on_slot(const SlotContext& ctx) {
  std::vector<Decision> decisions = inner_.on_slot(ctx);
  // Pay-as-bid: same winners and schedules, the payment rule is the only
  // difference under test.
  for (std::size_t i = 0; i < decisions.size(); ++i) {
    if (decisions[i].admit) decisions[i].payment = ctx.arrivals[i].bid;
  }
  return decisions;
}

}  // namespace lorasched
