// Alternative pricing mechanisms, for ablating the paper's auction design.
//
// * FixedPricePolicy — the "de facto fixed pricing, as adopted by some
//   providers" the paper's introduction argues against: a posted price per
//   1000 samples of fine-tuning work. A bid is served iff it clears the
//   posted price and fits (earliest-finish placement); it pays the posted
//   price. Trivially truthful, but deaf to demand and to operational-cost
//   dynamics — the welfare it forfeits is the paper's motivation.
// * FirstPricePolicy — pdFTSP's admission and scheduling, but winners pay
//   their own bid (pay-as-bid). Maximally extractive and *not* truthful:
//   bidders gain by shading, which bench/ablation_pricing demonstrates
//   empirically — the reason eq. (14) prices by resources instead.
#pragma once

#include <string_view>
#include <vector>

#include "lorasched/core/pdftsp.h"
#include "lorasched/sim/policy.h"

namespace lorasched {

class FixedPricePolicy final : public Policy {
 public:
  /// `price_per_ksample` is the posted rate; vendor charges (at the
  /// cheapest vendor) are passed through on top.
  explicit FixedPricePolicy(Money price_per_ksample);

  [[nodiscard]] std::string_view name() const override { return "FixedPrice"; }
  [[nodiscard]] std::vector<Decision> on_slot(const SlotContext& ctx) override;

  [[nodiscard]] Money price_per_ksample() const noexcept { return rate_; }

 private:
  Money rate_;
};

/// A reasonable posted rate for an instance: the fleet's mean operational
/// cost per ksample times `markup` (1.0 = at cost).
[[nodiscard]] Money reference_price_per_ksample(const Cluster& cluster,
                                                const EnergyModel& energy,
                                                double markup);

class FirstPricePolicy final : public Policy {
 public:
  FirstPricePolicy(PdftspConfig config, const Cluster& cluster,
                   const EnergyModel& energy, Slot horizon);

  [[nodiscard]] std::string_view name() const override { return "FirstPrice"; }
  [[nodiscard]] std::vector<Decision> on_slot(const SlotContext& ctx) override;

 private:
  Pdftsp inner_;
};

}  // namespace lorasched
