#include "lorasched/baselines/titan.h"

#include <map>
#include <utility>

#include "lorasched/baselines/greedy_common.h"
#include "lorasched/core/duals.h"
#include "lorasched/solver/lp.h"

namespace lorasched {

namespace {

/// Slot filter restricting the DP to (node, slot) pairs with free capacity
/// for this task's footprint.
struct FreeCapacityFilter {
  const CapacityLedger* ledger;
  const Cluster* cluster;
  const Task* task;

  static bool accept(const void* ctx, NodeId k, Slot t) {
    const auto* self = static_cast<const FreeCapacityFilter*>(ctx);
    return self->ledger->fits(k, t, self->cluster->task_rate(*self->task, k),
                              self->task->mem_gb);
  }
};

struct Candidate {
  std::size_t arrival_index = 0;
  Schedule schedule;
};

}  // namespace

std::vector<Decision> TitanPolicy::on_slot(const SlotContext& ctx) {
  std::vector<Decision> decisions(ctx.arrivals.size());
  for (std::size_t i = 0; i < ctx.arrivals.size(); ++i) {
    decisions[i].task = ctx.arrivals[i].id;
  }

  // --- Candidate generation -----------------------------------------------
  const ScheduleDp dp(ctx.cluster, ctx.energy, config_.dp);
  const DualState zero_duals(ctx.cluster.node_count(), ctx.ledger.horizon());
  std::vector<Candidate> candidates;
  // Scratch ledger for *sequentially booked* greedy candidates: this set is
  // jointly feasible by construction, so the MILP always has a solution at
  // least as good as processing the batch greedily.
  CapacityLedger scratch = ctx.ledger;
  for (std::size_t i = 0; i < ctx.arrivals.size(); ++i) {
    const Task& task = ctx.arrivals[i];
    VendorId vendor = kNoVendor;
    Money vendor_price = 0.0;
    Slot delay = 0;
    if (task.needs_prep) {
      const auto quotes = ctx.market.quotes(task);
      vendor = static_cast<VendorId>(
          rng_.uniform_int(0, static_cast<std::int64_t>(quotes.size()) - 1));
      vendor_price = quotes[static_cast<std::size_t>(vendor)].price;
      delay = quotes[static_cast<std::size_t>(vendor)].delay;
    }
    const Slot start = task.arrival + delay;

    auto add_candidate = [&](Schedule schedule) {
      if (schedule.empty()) return;
      schedule.vendor = vendor;
      schedule.vendor_price = vendor_price;
      schedule.prep_delay = delay;
      finalize_schedule(schedule, task, ctx.cluster, ctx.energy);
      for (const Candidate& existing : candidates) {
        if (existing.arrival_index == i &&
            existing.schedule.run == schedule.run) {
          return;  // duplicate plan
        }
      }
      candidates.push_back({i, std::move(schedule)});
    };

    const FreeCapacityFilter filter{&ctx.ledger, &ctx.cluster, &task};
    add_candidate(
        dp.find(task, start, zero_duals, &filter, &FreeCapacityFilter::accept));
    add_candidate(greedy_earliest_finish(task, start, ctx.cluster, ctx.energy,
                                         ctx.ledger, /*exclusive=*/false));
    Schedule sequential = greedy_earliest_finish(
        task, start, ctx.cluster, ctx.energy, scratch, /*exclusive=*/false);
    if (!sequential.empty()) {
      for (const Assignment& a : sequential.run) {
        scratch.reserve(a.node, a.slot, ctx.cluster.task_rate(task, a.node),
                        task.mem_gb);
      }
      add_candidate(std::move(sequential));
    }
  }
  if (candidates.empty()) return decisions;

  // --- Batch MILP over the candidates -------------------------------------
  solver::MilpProblem milp;
  milp.lp.objective.reserve(candidates.size());
  const double horizon = static_cast<double>(ctx.ledger.horizon());
  for (const Candidate& c : candidates) {
    // Titan's objective: admit as many tasks as possible, preferring plans
    // that finish earlier (its throughput/JCT focus); bids and energy cost
    // play no role.
    const double finish_penalty =
        static_cast<double>(c.schedule.completion_slot()) / horizon;
    milp.lp.objective.push_back(1.0 - 0.1 * finish_penalty);
  }
  // One-schedule-per-task rows.
  std::map<std::size_t, std::vector<std::pair<int, double>>> per_task;
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    per_task[candidates[c].arrival_index].emplace_back(static_cast<int>(c),
                                                       1.0);
  }
  for (auto& [task_index, coeffs] : per_task) {
    (void)task_index;
    milp.lp.add_row(std::move(coeffs), 1.0);
  }
  // Remaining-capacity rows per touched (node, slot).
  std::map<std::pair<NodeId, Slot>, std::vector<std::pair<int, double>>>
      compute_cells;
  std::map<std::pair<NodeId, Slot>, std::vector<std::pair<int, double>>>
      mem_cells;
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    const Task& task = ctx.arrivals[candidates[c].arrival_index];
    for (const Assignment& a : candidates[c].schedule.run) {
      compute_cells[{a.node, a.slot}].emplace_back(
          static_cast<int>(c), ctx.cluster.task_rate(task, a.node));
      mem_cells[{a.node, a.slot}].emplace_back(static_cast<int>(c),
                                               task.mem_gb);
    }
  }
  for (auto& [cell, coeffs] : compute_cells) {
    milp.lp.add_row(std::move(coeffs),
                    std::max(0.0, ctx.ledger.remaining_compute(cell.first,
                                                               cell.second)));
  }
  for (auto& [cell, coeffs] : mem_cells) {
    milp.lp.add_row(
        std::move(coeffs),
        std::max(0.0, ctx.ledger.remaining_mem(cell.first, cell.second)));
  }
  milp.binary_vars.resize(candidates.size());
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    milp.binary_vars[c] = static_cast<int>(c);
  }

  const solver::MilpSolution chosen = solver::solve_milp(milp, config_.bnb);
  if (!chosen.found_incumbent) return decisions;

  // --- Commit the selected schedules ---------------------------------------
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    if (chosen.x[c] < 0.5) continue;
    const std::size_t i = candidates[c].arrival_index;
    Decision& d = decisions[i];
    d.admit = true;
    d.schedule = candidates[c].schedule;
    commit_decision(ctx.ledger, ctx.cluster, ctx.arrivals[i], d);
  }
  return decisions;
}

}  // namespace lorasched
