// Shared greedy machinery for the EFT / NTM baselines (paper §5.1):
// capacity-aware earliest-finish-time placement against the live ledger.
#pragma once

#include "lorasched/cluster/capacity_ledger.h"
#include "lorasched/cluster/cluster.h"
#include "lorasched/cluster/energy.h"
#include "lorasched/core/schedule.h"
#include "lorasched/types.h"
#include "lorasched/workload/task.h"

namespace lorasched {

/// Builds an earliest-finish execution plan: walks slots from `start` to the
/// deadline, placing the task each slot on the feasible node with the
/// highest rate (ties: cheaper energy, then lower id), until the work is
/// covered. `exclusive` applies NTM semantics (sole occupant of each booked
/// node-slot). Returns an empty-run schedule when the task cannot finish by
/// its deadline.
[[nodiscard]] Schedule greedy_earliest_finish(const Task& task, Slot start,
                                              const Cluster& cluster,
                                              const EnergyModel& energy,
                                              const CapacityLedger& ledger,
                                              bool exclusive);

}  // namespace lorasched
