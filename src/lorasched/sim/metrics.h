// Run-level accounting: social welfare (the paper's objective (3)) and the
// per-party utilities (1)/(2), plus per-task outcome records for the
// truthfulness / rationality / runtime experiments.
#pragma once

#include <vector>

#include "lorasched/core/schedule.h"
#include "lorasched/types.h"

namespace lorasched {

struct TaskOutcome {
  TaskId task = -1;
  bool admitted = false;
  Money bid = 0.0;
  Money true_value = 0.0;
  Money payment = 0.0;
  Money vendor_cost = 0.0;
  Money energy_cost = 0.0;
  VendorId vendor = kNoVendor;
  Slot arrival = 0;
  Slot completion = -1;
  int slots_used = 0;
  /// Times the task was suspended and later resumed (gaps between executing
  /// slots) — the paper's §1 "suspend and resume execution alternately".
  int preemptions = 0;
  /// Wall-clock seconds the policy spent deciding this task (Fig. 13).
  double decide_seconds = 0.0;
};

struct Metrics {
  /// Σ b_i u_i − Σ q_in z_in − Σ e_ikt x_ikt — objective (3).
  Money social_welfare = 0.0;
  /// Σ p_i u_i − Σ q_in z_in − Σ e_ikt x_ikt — provider utility (2).
  Money provider_utility = 0.0;
  /// Σ (v_i − p_i) u_i — user utility (1) at true valuations.
  Money user_utility = 0.0;
  Money total_bids_admitted = 0.0;
  Money total_payments = 0.0;
  Money total_vendor_cost = 0.0;
  Money total_energy_cost = 0.0;
  int admitted = 0;
  int rejected = 0;
  /// Fraction of fleet compute booked over the horizon.
  double utilization = 0.0;

  void add_admitted(const TaskOutcome& outcome);
  void add_rejected();
};

struct SimResult {
  Metrics metrics;
  std::vector<TaskOutcome> outcomes;
  /// Admitted execution plans, aligned with `outcomes` (empty run for
  /// rejected tasks); feeds the time-series and Gantt tooling.
  std::vector<Schedule> schedules;
};

}  // namespace lorasched
