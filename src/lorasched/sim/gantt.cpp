#include "lorasched/sim/gantt.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace lorasched {

std::string render_gantt(const Instance& instance, const SimResult& result,
                         GanttOptions options) {
  if (result.schedules.size() != result.outcomes.size()) {
    throw std::invalid_argument("result is missing its schedules");
  }
  const Slot to = options.to < 0 ? instance.horizon : options.to;
  if (options.from < 0 || to > instance.horizon || options.from >= to) {
    throw std::invalid_argument("bad gantt slot range");
  }
  const int nodes = instance.cluster.node_count();
  const int shown = std::min(nodes, options.max_nodes);
  const auto width = static_cast<std::size_t>(to - options.from);

  std::vector<std::vector<int>> occupancy(
      static_cast<std::size_t>(nodes), std::vector<int>(width, 0));
  for (const Schedule& schedule : result.schedules) {
    for (const Assignment& a : schedule.run) {
      if (a.slot < options.from || a.slot >= to) continue;
      ++occupancy[static_cast<std::size_t>(a.node)]
                 [static_cast<std::size_t>(a.slot - options.from)];
    }
  }

  std::ostringstream os;
  os << "slots " << options.from << ".." << (to - 1) << " ('.'=idle, digit="
     << "concurrent tasks, '+'=10+)\n";
  for (int k = 0; k < shown; ++k) {
    os << "node " << k;
    if (k < 10) os << ' ';
    os << " [" << instance.cluster.profile(k).name << "] ";
    for (std::size_t c = 0; c < width; ++c) {
      const int n = occupancy[static_cast<std::size_t>(k)][c];
      if (n == 0) os << '.';
      else if (n < 10) os << static_cast<char>('0' + n);
      else os << '+';
    }
    os << '\n';
  }
  if (shown < nodes) {
    os << "(" << (nodes - shown) << " more nodes not shown)\n";
  }
  return os.str();
}

}  // namespace lorasched
