// Ground-truth validation of admitted schedules against the paper's
// constraints (4a)-(4e). Capacity ((4f)/(4g)) is enforced separately by the
// CapacityLedger, which throws on over-booking.
#pragma once

#include <string>

#include "lorasched/cluster/cluster.h"
#include "lorasched/core/schedule.h"
#include "lorasched/types.h"
#include "lorasched/workload/task.h"

namespace lorasched {

/// Returns an empty string when the schedule is a valid execution plan for
/// the task, otherwise a human-readable description of the first violated
/// constraint. Checked: window (4c)/(4d), one-node-per-slot (4b), work
/// completion (4e), vendor selection consistency (4a).
[[nodiscard]] std::string validate_schedule(const Task& task,
                                            const Schedule& schedule,
                                            const Cluster& cluster,
                                            Slot horizon);

/// Throws std::logic_error with the validation message when invalid.
void require_valid_schedule(const Task& task, const Schedule& schedule,
                            const Cluster& cluster, Slot horizon);

}  // namespace lorasched
