#include "lorasched/sim/metrics.h"

namespace lorasched {

void Metrics::add_admitted(const TaskOutcome& outcome) {
  ++admitted;
  total_bids_admitted += outcome.bid;
  total_payments += outcome.payment;
  total_vendor_cost += outcome.vendor_cost;
  total_energy_cost += outcome.energy_cost;
  social_welfare += outcome.bid - outcome.vendor_cost - outcome.energy_cost;
  provider_utility +=
      outcome.payment - outcome.vendor_cost - outcome.energy_cost;
  user_utility += outcome.true_value - outcome.payment;
}

void Metrics::add_rejected() { ++rejected; }

}  // namespace lorasched
