#include "lorasched/sim/engine.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "lorasched/obs/span.h"
#include "lorasched/sim/validator.h"
#include "lorasched/util/timing.h"

#ifdef LORASCHED_AUDIT
#include "lorasched/audit/invariants.h"
#endif

namespace lorasched {

void commit_decision(CapacityLedger& ledger, const Cluster& cluster,
                     const Task& task, const Decision& decision) {
  if (!decision.admit) return;
  LORASCHED_SPAN("ledger/commit");
  for (const Assignment& a : decision.schedule.run) {
    ledger.reserve(a.node, a.slot,
                   schedule_rate(decision.schedule, task, cluster, a.node),
                   task.mem_gb, decision.schedule.exclusive);
  }
}

SimResult run_simulation(const Instance& instance, Policy& policy,
                         EngineOptions options) {
  if (instance.horizon <= 0) {
    throw std::invalid_argument("instance horizon must be positive");
  }
  // Arrival order: by slot, ties by id (the order users hit the auctioneer).
  std::vector<Task> tasks = instance.tasks;
  std::stable_sort(tasks.begin(), tasks.end(),
                   [](const Task& a, const Task& b) {
                     return a.arrival != b.arrival ? a.arrival < b.arrival
                                                   : a.id < b.id;
                   });

  CapacityLedger ledger(instance.cluster, instance.horizon);
  for (const Outage& outage : instance.outages) {
    for (Slot t = std::max<Slot>(0, outage.from);
         t < std::min<Slot>(instance.horizon, outage.to); ++t) {
      ledger.block(outage.node, t);
    }
  }
  SimResult result;
  result.outcomes.reserve(tasks.size());

  double booked_compute = 0.0;

  std::size_t next = 0;
  for (Slot now = 0; now < instance.horizon; ++now) {
    std::vector<Task> arrivals;
    while (next < tasks.size() && tasks[next].arrival == now) {
      arrivals.push_back(tasks[next++]);
    }
    if (arrivals.empty()) continue;

    const SlotContext ctx{now,           arrivals,        instance.cluster,
                          instance.energy, instance.market, ledger};
    LORASCHED_SPAN("engine/slot");
    const util::Stopwatch watch;
    const std::vector<Decision> decisions = policy.on_slot(ctx);
    const double per_task_seconds =
        options.time_decisions
            ? watch.seconds() / static_cast<double>(arrivals.size())
            : 0.0;

    if (decisions.size() != arrivals.size()) {
      throw std::logic_error("policy returned wrong number of decisions");
    }
    for (std::size_t i = 0; i < arrivals.size(); ++i) {
      const Task& task = arrivals[i];
      const Decision& d = decisions[i];
      if (d.task != task.id) {
        throw std::logic_error("policy decisions out of order");
      }
#ifdef LORASCHED_AUDIT
      audit::check_outcome_accounting(task, d);
#endif
      TaskOutcome outcome;
      outcome.task = task.id;
      outcome.bid = task.bid;
      outcome.true_value = task.true_value;
      outcome.arrival = task.arrival;
      outcome.decide_seconds = per_task_seconds;
      if (d.admit) {
        require_valid_schedule(task, d.schedule, instance.cluster,
                               instance.horizon);
        if (d.payment < -1e-9) {
          throw std::logic_error("negative payment");
        }
        outcome.admitted = true;
        outcome.payment = d.payment;
        outcome.vendor = d.schedule.vendor;
        outcome.vendor_cost = d.schedule.vendor_price;
        outcome.energy_cost = d.schedule.energy_cost;
        outcome.completion = d.schedule.completion_slot();
        outcome.slots_used = static_cast<int>(d.schedule.run.size());
        for (std::size_t r = 1; r < d.schedule.run.size(); ++r) {
          if (d.schedule.run[r].slot != d.schedule.run[r - 1].slot + 1) {
            ++outcome.preemptions;
          }
        }
        booked_compute += d.schedule.total_compute;
        result.metrics.add_admitted(outcome);
      } else {
        result.metrics.add_rejected();
      }
      result.outcomes.push_back(outcome);
      result.schedules.push_back(d.admit ? d.schedule : Schedule{});
    }
#ifdef LORASCHED_AUDIT
    // Invariant (b), per slot: the ledger's booked compute tracks the sum
    // over admitted schedules — drift is blamed on the slot it appears in.
    audit::check_ledger_totals(ledger, booked_compute);
#endif
  }

  // Cross-check: the ledger's booked compute must equal the sum over
  // admitted schedules (a policy that admits without reserving, or reserves
  // without admitting, is a bug).
  double ledger_compute = 0.0;
  for (NodeId k = 0; k < instance.cluster.node_count(); ++k) {
    for (Slot t = 0; t < instance.horizon; ++t) {
      ledger_compute += ledger.used_compute(k, t);
    }
  }
  if (std::abs(ledger_compute - booked_compute) >
      1e-6 * std::max(1.0, booked_compute)) {
    throw std::logic_error(
        "ledger bookings do not match admitted schedules (policy bug)");
  }

  result.metrics.utilization = ledger.compute_utilization();
  return result;
}

}  // namespace lorasched
