// The scheduling-policy interface the simulation engine drives.
//
// Once per slot the engine hands the policy the batch of tasks that arrived
// at that slot (for pdFTSP/EFT/NTM the batch is processed task-by-task; for
// Titan it is solved jointly, matching the paper's per-slot adaptation).
//
// Contract: for every decision with admit == true the policy must book the
// schedule's (node, slot) reservations into ctx.ledger via commit_decision()
// before returning. The ledger throws on over-booking, so capacity
// violations are impossible by construction; the engine additionally
// validates windows/work and cross-checks that booked totals match the
// admitted schedules.
#pragma once

#include <string_view>
#include <vector>

#include "lorasched/cluster/capacity_ledger.h"
#include "lorasched/cluster/cluster.h"
#include "lorasched/cluster/energy.h"
#include "lorasched/core/schedule.h"
#include "lorasched/types.h"
#include "lorasched/workload/task.h"
#include "lorasched/workload/vendor.h"

namespace lorasched {

/// The auction outcome for one task.
struct Decision {
  TaskId task = -1;
  bool admit = false;
  /// Valid when admit is true; finalized (totals/costs computed).
  Schedule schedule;
  /// p_i — what the user pays. Zero for policies without pricing (the
  /// baselines); social welfare does not depend on it.
  Money payment = 0.0;
};

/// Everything a policy may look at (and book into) when deciding a slot.
struct SlotContext {
  Slot now = 0;
  const std::vector<Task>& arrivals;
  const Cluster& cluster;
  const EnergyModel& energy;
  const Marketplace& market;
  /// Ground-truth bookings; policies reserve through commit_decision().
  CapacityLedger& ledger;
};

/// Books every (node, slot) of an admitted decision. No-op when !admit.
/// Throws std::logic_error if any reservation does not fit.
void commit_decision(CapacityLedger& ledger, const Cluster& cluster,
                     const Task& task, const Decision& decision);

class Policy {
 public:
  virtual ~Policy() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;
  /// Returns one decision per arrival, in arrival order; admitted decisions
  /// must already be booked into ctx.ledger (see commit_decision).
  [[nodiscard]] virtual std::vector<Decision> on_slot(const SlotContext& ctx) = 0;
};

/// Mixin for policies whose mutable state must survive a service
/// checkpoint/restore cycle (service/admission_service.h). The state is a
/// flat vector of doubles — opaque to the service and the serializer — such
/// that a freshly constructed policy of the same configuration, after
/// restore_state(), makes bit-identical decisions to the original.
/// Stateless policies (the greedy baselines) simply don't implement it.
class CheckpointableState {
 public:
  virtual ~CheckpointableState() = default;
  [[nodiscard]] virtual std::vector<double> checkpoint_state() const = 0;
  /// Restores a dump produced by checkpoint_state() on an identically
  /// configured policy. Throws std::invalid_argument on shape mismatch.
  virtual void restore_state(const std::vector<double>& state) = 0;
};

}  // namespace lorasched
