// The slotted-time simulation engine (paper §2.1 "System Workflow").
//
// Drives a Policy over an Instance: at every slot it delivers the batch of
// newly arrived tasks, collects the policy's irrevocable decisions,
// validates every admitted schedule against constraints (4a)-(4e) (capacity
// (4f)/(4g) is enforced by the ledger itself) and accumulates welfare and
// utility metrics.
#pragma once

#include "lorasched/sim/instance.h"
#include "lorasched/sim/metrics.h"
#include "lorasched/sim/policy.h"

namespace lorasched {

struct EngineOptions {
  /// Record per-task wall-clock decision time (adds two clock calls per
  /// slot batch; on by default because Fig. 13 needs it).
  bool time_decisions = true;
};

/// Runs the policy over the instance and returns the accounting. Throws
/// std::logic_error on any policy contract violation (invalid schedule,
/// over-booking, missing/duplicate decisions).
[[nodiscard]] SimResult run_simulation(const Instance& instance,
                                       Policy& policy,
                                       EngineOptions options = {});

}  // namespace lorasched
