// ASCII Gantt rendering of cluster occupancy: one row per node, one column
// per slot, the cell showing how many tasks share that node-slot. Makes
// multi-LoRA packing (and NTM's lack of it) visible at a glance.
#pragma once

#include <string>

#include "lorasched/sim/instance.h"
#include "lorasched/sim/metrics.h"

namespace lorasched {

struct GanttOptions {
  /// First slot to render (inclusive).
  Slot from = 0;
  /// One-past-last slot to render; -1 = the whole horizon.
  Slot to = -1;
  /// Limit on rendered nodes (large clusters get truncated with a note).
  int max_nodes = 24;
};

/// Renders the run's occupancy. Cells: '.' idle, '1'-'9' concurrent tasks,
/// '+' for ten or more.
[[nodiscard]] std::string render_gantt(const Instance& instance,
                                       const SimResult& result,
                                       GanttOptions options = {});

}  // namespace lorasched
