// Per-slot time series derived from a finished run: how demand, admissions,
// welfare, and fleet occupancy evolve over the day. Used by the
// price-dynamics example and by failure-analysis in tests.
#pragma once

#include <vector>

#include "lorasched/sim/instance.h"
#include "lorasched/sim/metrics.h"
#include "lorasched/types.h"

namespace lorasched {

struct SlotSeries {
  /// Tasks arriving at each slot.
  std::vector<int> arrivals;
  /// Tasks admitted (by arrival slot).
  std::vector<int> admissions;
  /// Social welfare accumulated up to and including each slot (by arrival
  /// slot of the contributing tasks).
  std::vector<double> cumulative_welfare;
  /// Fraction of fleet compute booked in each slot (by execution slot).
  std::vector<double> utilization;

  [[nodiscard]] Slot horizon() const noexcept {
    return static_cast<Slot>(arrivals.size());
  }
};

/// Builds the series from an instance and its result (the result's
/// `schedules` provide exact per-slot occupancy).
[[nodiscard]] SlotSeries build_series(const Instance& instance,
                                      const SimResult& result);

}  // namespace lorasched
