#include "lorasched/sim/validator.h"

#include <sstream>
#include <stdexcept>

namespace lorasched {

std::string validate_schedule(const Task& task, const Schedule& schedule,
                              const Cluster& cluster, Slot horizon) {
  std::ostringstream why;
  if (schedule.task != task.id) {
    why << "schedule belongs to task " << schedule.task << ", not " << task.id;
    return why.str();
  }
  // (4a): a vendor must be chosen iff the task needs pre-processing.
  if (task.needs_prep && schedule.vendor == kNoVendor) {
    return "task needs pre-processing but no vendor selected (4a)";
  }
  if (!task.needs_prep && schedule.vendor != kNoVendor) {
    return "vendor selected for a task without pre-processing (4a)";
  }
  const Slot start = task.arrival + schedule.prep_delay;
  Slot prev = -1;
  double done = 0.0;
  for (const Assignment& a : schedule.run) {
    if (a.node < 0 || a.node >= cluster.node_count()) {
      return "assignment on unknown node";
    }
    if (a.slot < start) {
      why << "slot " << a.slot << " before earliest start " << start
          << " (4c)";
      return why.str();
    }
    if (a.slot > task.deadline) {
      why << "slot " << a.slot << " after deadline " << task.deadline
          << " (4d)";
      return why.str();
    }
    if (a.slot >= horizon) {
      why << "slot " << a.slot << " beyond horizon " << horizon;
      return why.str();
    }
    if (a.slot <= prev) {
      return "more than one node in a single slot (4b)";
    }
    prev = a.slot;
    done += schedule_rate(schedule, task, cluster, a.node);
  }
  // (4e): cumulative computation covers M_i.
  if (done + 1e-9 < task.work) {
    why << "work shortfall: scheduled " << done << " of " << task.work
        << " samples (4e)";
    return why.str();
  }
  return {};
}

void require_valid_schedule(const Task& task, const Schedule& schedule,
                            const Cluster& cluster, Slot horizon) {
  const std::string why = validate_schedule(task, schedule, cluster, horizon);
  if (!why.empty()) throw std::logic_error("invalid schedule: " + why);
}

}  // namespace lorasched
