#include "lorasched/sim/timeseries.h"

#include <stdexcept>

namespace lorasched {

SlotSeries build_series(const Instance& instance, const SimResult& result) {
  if (result.schedules.size() != result.outcomes.size()) {
    throw std::invalid_argument("result is missing its schedules");
  }
  SlotSeries series;
  const auto slots = static_cast<std::size_t>(instance.horizon);
  series.arrivals.assign(slots, 0);
  series.admissions.assign(slots, 0);
  series.cumulative_welfare.assign(slots, 0.0);
  series.utilization.assign(slots, 0.0);

  std::vector<double> booked(slots, 0.0);
  // Tasks are addressed by id (dense, equal to their index in
  // instance.tasks for generated workloads).
  for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
    const TaskOutcome& o = result.outcomes[i];
    const auto arrival = static_cast<std::size_t>(o.arrival);
    ++series.arrivals[arrival];
    if (!o.admitted) continue;
    ++series.admissions[arrival];
    series.cumulative_welfare[arrival] +=
        o.bid - o.vendor_cost - o.energy_cost;
    const Task& task = instance.tasks.at(static_cast<std::size_t>(o.task));
    for (const Assignment& a : result.schedules[i].run) {
      booked[static_cast<std::size_t>(a.slot)] +=
          schedule_rate(result.schedules[i], task, instance.cluster, a.node);
    }
  }
  // Prefix-sum the welfare and normalize occupancy.
  double running = 0.0;
  const double fleet = instance.cluster.total_compute_per_slot();
  for (std::size_t t = 0; t < slots; ++t) {
    running += series.cumulative_welfare[t];
    series.cumulative_welfare[t] = running;
    series.utilization[t] = fleet > 0.0 ? booked[t] / fleet : 0.0;
  }
  return series;
}

}  // namespace lorasched
