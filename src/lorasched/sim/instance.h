// One complete experiment instance: cluster + cost model + marketplace +
// the task arrival sequence over a slotted horizon.
#pragma once

#include <utility>
#include <vector>

#include "lorasched/cluster/cluster.h"
#include "lorasched/cluster/energy.h"
#include "lorasched/types.h"
#include "lorasched/workload/task.h"
#include "lorasched/workload/vendor.h"

namespace lorasched {

/// A node-unavailability window (failure injection): node `node` accepts no
/// work in slots [from, to).
struct Outage {
  NodeId node = -1;
  Slot from = 0;
  Slot to = 0;
};

struct Instance {
  Cluster cluster;
  EnergyModel energy;
  Marketplace market;
  Slot horizon = 0;
  /// Tasks in arrival order (ties broken by id).
  std::vector<Task> tasks;
  /// Injected node failures; blocked in the ledger before the run starts.
  std::vector<Outage> outages;

  Instance(Cluster cluster_in, EnergyModel energy_in, Marketplace market_in,
           Slot horizon_in, std::vector<Task> tasks_in)
      : cluster(std::move(cluster_in)),
        energy(std::move(energy_in)),
        market(std::move(market_in)),
        horizon(horizon_in),
        tasks(std::move(tasks_in)) {}
};

}  // namespace lorasched
