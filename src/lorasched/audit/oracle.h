// Brute-force oracle for Algorithm 2 — invariant (c) of the audit
// catalogue (audit/audit.h).
//
// ScheduleDp solves problem (12) with a DP over (slot, completed-work)
// states plus a per-slot class-representative reduction. The oracle solves
// the *same quantized problem* by exhaustive enumeration over per-slot node
// choices — deliberately dumb, with no shared code beyond the public model
// API — so a disagreement convicts the DP (or the quantization contract),
// not the oracle. Enumeration is capped (AuditConfig::oracle_max_combinations);
// instances above the cap skip the check and bump Auditor::oracle_skipped().
#pragma once

#include <optional>

#include "lorasched/cluster/cluster.h"
#include "lorasched/cluster/energy.h"
#include "lorasched/core/duals.h"
#include "lorasched/core/schedule.h"
#include "lorasched/core/schedule_dp.h"
#include "lorasched/types.h"
#include "lorasched/workload/task.h"

namespace lorasched::audit {

/// Minimal achievable dual-priced cost (eq. 12's objective) for `task`
/// started at `start` under the DP's work quantization, found by exhaustive
/// enumeration. Returns nullopt when the instance is infeasible under the
/// quantization, or when enumeration would exceed `max_combinations`
/// (distinguish via `*skipped`).
[[nodiscard]] std::optional<double> oracle_best_cost(
    const Task& task, Slot start, const DualState& duals,
    const Cluster& cluster, const EnergyModel& energy,
    const ScheduleDpConfig& config, const void* filter_ctx, SlotFilter filter,
    long long max_combinations, bool* skipped);

/// Differential check: `found` is what ScheduleDp::find returned for the
/// same inputs. Verifies (i) feasibility agreement — the DP finds a plan
/// iff the oracle does; (ii) optimality — the found plan's cost matches the
/// oracle minimum; (iii) the found plan completes the quantized work within
/// its window. No-op (plus a skip count) above the enumeration cap.
void check_dp_schedule(const Task& task, Slot start, const DualState& duals,
                       const Cluster& cluster, const EnergyModel& energy,
                       const ScheduleDpConfig& config, const void* filter_ctx,
                       SlotFilter filter, const Schedule& found);

}  // namespace lorasched::audit
