// Invariant check entry points (see audit/audit.h for the catalogue and
// DESIGN.md §9 for the rationale). All checks report through
// Auditor::instance(): they count, and in fail-fast mode throw
// InvariantViolation on the first failure. Every function here recomputes
// the audited quantity from first principles — none of them reuse the value
// the audited code produced.
#pragma once

#include <vector>

#include "lorasched/audit/audit.h"
#include "lorasched/cluster/capacity_ledger.h"
#include "lorasched/cluster/cluster.h"
#include "lorasched/core/duals.h"
#include "lorasched/core/schedule.h"
#include "lorasched/sim/policy.h"
#include "lorasched/types.h"
#include "lorasched/workload/task.h"

namespace lorasched::audit {

// --- (a) eq. (7)/(8): dual monotonicity + multiplicative update -----------

/// Verifies one apply_update() against the update equations: `pre_lambda`
/// and `pre_phi` are full-grid copies taken immediately before the update,
/// `post` is the dual state after it. Recomputes the expected grids by
/// replaying eq. (7)/(8) over the schedule's run, then requires (i) every
/// touched cell matches exactly and is non-decreasing, (ii) every untouched
/// cell is bit-identical.
void check_dual_update(const Task& task, const Schedule& schedule,
                       const Cluster& cluster,
                       const std::vector<double>& pre_lambda,
                       const std::vector<double>& pre_phi,
                       const DualState& post, double alpha, double beta,
                       double welfare_unit);

// --- (b) (4f)/(4g): ledger capacity + snapshot conservation ---------------

/// Verifies one reserve() of (`compute`, `mem`) at (k, t): the booked
/// amounts landed on exactly that cell (pre + amount == used) and the cell
/// still respects its capacity.
void check_ledger_reserve(const CapacityLedger& ledger, NodeId k, Slot t,
                          double pre_compute, double pre_mem, double compute,
                          double mem);

/// Verifies one restore(): the live grids equal the snapshot bit-for-bit,
/// booked totals are conserved, and every cell is internally consistent
/// (non-negative bookings within capacity, non-negative task counts).
void check_ledger_restore(const CapacityLedger& ledger,
                          const CapacityLedger::Snapshot& snapshot);

/// Engine/service cross-check, per decided slot: total compute booked in
/// the ledger equals the running sum over admitted schedules.
void check_ledger_totals(const CapacityLedger& ledger, double booked_compute);

// --- (d)/(e) eq. (14) + eq. (10): payment and admission consistency -------

/// Everything Pdftsp::handle_task() knew when it decided one bid.
/// `pre_lambda`/`pre_phi` are full-grid dual copies from *before* the
/// eq. (7)/(8) update (for rejected-by-sign bids the duals were never
/// touched, so the live grids qualify).
struct DecisionAudit {
  const Task& task;
  /// Best candidate (empty when no vendor/share produced a feasible plan).
  const Schedule& schedule;
  /// F(il) as the policy computed it (0 when no candidate).
  double objective = 0.0;
  /// The payment the decision carries (0 unless admitted).
  Money payment = 0.0;
  bool admitted = false;
  /// Alg. 1 line 12: F(il) > 0 but the ground-truth capacities refused.
  bool capacity_reject = false;
  const std::vector<double>& pre_lambda;
  const std::vector<double>& pre_phi;
  /// Ledger state at decision time (this bid not yet committed).
  const CapacityLedger& ledger;
};

/// Verifies one pdFTSP decision:
///  * a non-empty candidate is a valid execution plan (constraints 4a-4e);
///  * F(il) recomputed from the pre-update duals matches `objective`;
///  * admitted  ==> F > 0, payment == eq. (14) at the pre-update duals,
///    0 <= p_i <= b_i (Thm. 4), and every booked cell fits the ledger;
///  * rejected by sign ==> F <= 0 (or no candidate);
///  * capacity_reject ==> F > 0 and at least one booked cell does not fit.
void check_decision(const DecisionAudit& a, const Cluster& cluster);

// --- Engine / service per-bid accounting ----------------------------------

/// Policy-agnostic outcome sanity, applied to every decision the engine or
/// the admission service accepts from any policy: an admitted decision
/// carries a non-empty schedule for the right task and a finite,
/// non-negative payment; a rejected one charges nothing.
void check_outcome_accounting(const Task& task, const Decision& decision);

}  // namespace lorasched::audit
