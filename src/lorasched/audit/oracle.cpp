#include "lorasched/audit/oracle.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <vector>

#include "lorasched/audit/audit.h"

namespace lorasched::audit {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// The DP's work quantization, recomputed from its documented contract
/// (schedule_dp.h): unit = (min positive class rate) / granularity, total
/// units rounded up and clamped to max_units, per-node units rounded down.
struct Quantization {
  bool any_progress = false;  // some node can complete at least one unit
  double unit = 0.0;
  int total_units = 0;
  std::vector<int> node_units;  // per node
};

Quantization quantize(const Task& task, const Cluster& cluster,
                      const ScheduleDpConfig& config) {
  Quantization q;
  double min_rate = kInf;
  for (int c = 0; c < cluster.class_count(); ++c) {
    const double rate =
        cluster.task_rate(task, cluster.class_representative(c));
    if (rate > 0.0) min_rate = std::min(min_rate, rate);
  }
  if (!std::isfinite(min_rate)) return q;
  q.unit = min_rate / config.granularity;
  q.total_units = static_cast<int>(std::ceil(task.work / q.unit));
  if (q.total_units > config.max_units) {
    q.unit = task.work / static_cast<double>(config.max_units);
    q.total_units = config.max_units;
  }
  q.node_units.resize(static_cast<std::size_t>(cluster.node_count()), 0);
  for (NodeId k = 0; k < cluster.node_count(); ++k) {
    const int units =
        static_cast<int>(std::floor(cluster.task_rate(task, k) / q.unit));
    q.node_units[static_cast<std::size_t>(k)] = units;
    if (units > 0) q.any_progress = true;
  }
  return q;
}

struct Enumeration {
  Slot window = 0;
  int nodes = 0;
  int total_units = 0;
  /// usable[rel * nodes + k]: node k may run at slot start + rel.
  std::vector<char> usable;
  /// cost[rel * nodes + k]: dual-priced cost of that cell.
  std::vector<double> cost;
  const std::vector<int>* node_units = nullptr;
  double best = kInf;

  void dfs(Slot rel, int units_done, double cost_so_far) {
    if (rel == window) {
      if (units_done >= total_units) best = std::min(best, cost_so_far);
      return;
    }
    dfs(rel + 1, units_done, cost_so_far);  // leave the slot idle
    const std::size_t row =
        static_cast<std::size_t>(rel) * static_cast<std::size_t>(nodes);
    for (NodeId k = 0; k < nodes; ++k) {
      if (usable[row + static_cast<std::size_t>(k)] == 0) continue;
      const int gained = (*node_units)[static_cast<std::size_t>(k)];
      dfs(rel + 1, std::min(units_done + gained, total_units),
          cost_so_far + cost[row + static_cast<std::size_t>(k)]);
    }
  }
};

}  // namespace

std::optional<double> oracle_best_cost(
    const Task& task, Slot start, const DualState& duals,
    const Cluster& cluster, const EnergyModel& energy,
    const ScheduleDpConfig& config, const void* filter_ctx, SlotFilter filter,
    long long max_combinations, bool* skipped) {
  if (skipped != nullptr) *skipped = false;
  if (task.work <= 0.0 || start < 0 || start > task.deadline ||
      task.deadline >= duals.horizon()) {
    return std::nullopt;
  }
  const Quantization q = quantize(task, cluster, config);
  if (!q.any_progress) return std::nullopt;

  Enumeration e;
  e.window = task.deadline - start + 1;
  e.nodes = cluster.node_count();
  e.total_units = q.total_units;
  e.node_units = &q.node_units;
  const auto table = static_cast<std::size_t>(e.window) *
                     static_cast<std::size_t>(e.nodes);
  e.usable.assign(table, 0);
  e.cost.assign(table, kInf);

  long long combinations = 1;
  for (Slot rel = 0; rel < e.window; ++rel) {
    const Slot t = start + rel;
    long long options = 1;  // idle
    const std::size_t row =
        static_cast<std::size_t>(rel) * static_cast<std::size_t>(e.nodes);
    for (NodeId k = 0; k < e.nodes; ++k) {
      if (q.node_units[static_cast<std::size_t>(k)] == 0) continue;
      if (filter != nullptr && !filter(filter_ctx, k, t)) continue;
      const double s_norm =
          cluster.task_rate(task, k) / cluster.compute_capacity(k);
      const double r_norm = task.mem_gb / cluster.adapter_mem_capacity(k);
      e.usable[row + static_cast<std::size_t>(k)] = 1;
      e.cost[row + static_cast<std::size_t>(k)] =
          s_norm * duals.lambda(k, t) + r_norm * duals.phi(k, t) +
          energy.cost(task, cluster, k, t);
      ++options;
    }
    if (combinations > max_combinations / options) {
      if (skipped != nullptr) *skipped = true;
      return std::nullopt;
    }
    combinations *= options;
  }

  e.dfs(0, 0, 0.0);
  if (e.best == kInf) return std::nullopt;
  return e.best;
}

void check_dp_schedule(const Task& task, Slot start, const DualState& duals,
                       const Cluster& cluster, const EnergyModel& energy,
                       const ScheduleDpConfig& config, const void* filter_ctx,
                       SlotFilter filter, const Schedule& found) {
  Auditor& auditor = Auditor::instance();
  auditor.count_check();

  bool skipped = false;
  const std::optional<double> oracle = oracle_best_cost(
      task, start, duals, cluster, energy, config, filter_ctx, filter,
      auditor.config().oracle_max_combinations, &skipped);
  if (skipped) {
    auditor.count_oracle_skip();
    return;
  }

  if (!oracle.has_value()) {
    if (!found.empty()) {
      std::ostringstream why;
      why << "Alg.2: DP found a plan for task " << task.id
          << " but exhaustive enumeration finds the instance infeasible";
      auditor.fail(why.str());
    }
    return;
  }
  if (found.empty()) {
    std::ostringstream why;
    why << "Alg.2: DP declared task " << task.id
        << " infeasible but the oracle schedules it at cost " << *oracle;
    auditor.fail(why.str());
    return;
  }

  // The found plan must lie in the window, occupy one node per slot, and
  // complete the quantized work. (It is unfinalized here: only `run` is
  // set, so rates come straight from the task.)
  const Quantization q = quantize(task, cluster, config);
  Slot prev = -1;
  int units = 0;
  double found_cost = 0.0;
  for (const Assignment& a : found.run) {
    if (a.slot < start || a.slot > task.deadline || a.slot <= prev ||
        a.node < 0 || a.node >= cluster.node_count()) {
      std::ostringstream why;
      why << "Alg.2: DP plan for task " << task.id
          << " leaves the window or books two nodes in one slot";
      auditor.fail(why.str());
      return;
    }
    prev = a.slot;
    units += q.node_units[static_cast<std::size_t>(a.node)];
    const double s_norm =
        cluster.task_rate(task, a.node) / cluster.compute_capacity(a.node);
    const double r_norm = task.mem_gb / cluster.adapter_mem_capacity(a.node);
    found_cost += s_norm * duals.lambda(a.node, a.slot) +
                  r_norm * duals.phi(a.node, a.slot) +
                  energy.cost(task, cluster, a.node, a.slot);
  }
  if (units < q.total_units) {
    std::ostringstream why;
    why << "Alg.2: DP plan for task " << task.id << " completes only "
        << units << " of " << q.total_units << " work units";
    auditor.fail(why.str());
    return;
  }
  const double scale = std::max({1.0, std::abs(found_cost), std::abs(*oracle)});
  if (std::abs(found_cost - *oracle) > 1e-7 * scale) {
    std::ostringstream why;
    why << "Alg.2: DP plan for task " << task.id << " costs " << found_cost
        << " but the oracle achieves " << *oracle;
    auditor.fail(why.str());
  }
}

}  // namespace lorasched::audit
