// Paper-invariant audit layer — the always-verifiable encoding of pdFTSP's
// theory (DESIGN.md §9).
//
// The auditor is a process-wide registry of invariant checks hooked into the
// core policy, CapacityLedger, ScheduleDp, the simulation engine, and the
// AdmissionService. The hooks are compile-time gated: they exist only when
// the library is built with -DLORASCHED_AUDIT=ON (which defines the
// LORASCHED_AUDIT macro), so production builds pay nothing — not even a
// branch. The check *implementations* are always compiled, which keeps them
// honest under clang-tidy/-Werror in every configuration and lets the fuzz
// harnesses and unit tests drive them directly in non-audit builds.
//
// Invariant catalogue (equation references are to the source paper):
//   (a) eq. (7)/(8)  — dual prices λ_kt/φ_kt are non-decreasing and follow
//                      the multiplicative update exactly; untouched cells
//                      stay bit-identical.
//   (b) (4f)/(4g)    — per-(node, slot) committed compute/memory never
//                      exceeds capacity; ledger snapshot/restore conserves
//                      booked totals.
//   (c) Alg. 2       — the DP schedule matches a brute-force oracle on
//                      instances small enough to enumerate (audit/oracle.h).
//   (d) eq. (14)     — the payment of an admitted bid is built from the
//                      pre-update duals and satisfies p_i <= b_i (Thm. 4).
//   (e) eq. (10)     — admission is consistent with the sign of F(il).
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace lorasched::audit {

/// Thrown (in fail-fast mode) when an invariant check fails. Derives from
/// std::logic_error because a violation is by definition a programming bug,
/// never an input error.
class InvariantViolation final : public std::logic_error {
 public:
  explicit InvariantViolation(const std::string& what)
      : std::logic_error("audit invariant violated: " + what) {}
};

struct AuditConfig {
  /// Throw InvariantViolation on the first failed check. When false,
  /// violations are only counted (Auditor::violations()) — useful for
  /// surveying a run without aborting it.
  bool fail_fast = true;
  /// The brute-force Alg. 2 oracle enumerates at most this many node
  /// sequences ((usable nodes + 1)^window); larger DP calls skip the
  /// differential check (counted in oracle_skipped()).
  long long oracle_max_combinations = 50'000;
  /// Relative tolerance for monetary / resource-volume comparisons. The
  /// checks recompute sums of products of doubles in a different order than
  /// the audited code, so exact equality is only required where the audited
  /// code copies values verbatim.
  double rel_tol = 1e-9;
};

/// Process-wide audit state: configuration plus check/violation counters.
/// Counters are atomic so concurrently serving threads may audit in
/// parallel; the config is expected to be set once, before serving.
class Auditor {
 public:
  static Auditor& instance();

  [[nodiscard]] AuditConfig& config() noexcept { return config_; }
  [[nodiscard]] const AuditConfig& config() const noexcept { return config_; }

  [[nodiscard]] std::uint64_t checks() const noexcept {
    return checks_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t violations() const noexcept {
    return violations_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t oracle_skipped() const noexcept {
    return oracle_skipped_.load(std::memory_order_relaxed);
  }

  /// Zeroes all counters (config is untouched).
  void reset() noexcept {
    checks_.store(0, std::memory_order_relaxed);
    violations_.store(0, std::memory_order_relaxed);
    oracle_skipped_.store(0, std::memory_order_relaxed);
  }

  void count_check() noexcept {
    checks_.fetch_add(1, std::memory_order_relaxed);
  }
  void count_oracle_skip() noexcept {
    oracle_skipped_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Records a violation; throws InvariantViolation in fail-fast mode.
  void fail(const std::string& what);

 private:
  Auditor() = default;

  AuditConfig config_{};
  std::atomic<std::uint64_t> checks_{0};
  std::atomic<std::uint64_t> violations_{0};
  std::atomic<std::uint64_t> oracle_skipped_{0};
};

}  // namespace lorasched::audit
