#include "lorasched/audit/invariants.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <sstream>

#include "lorasched/core/pricing.h"
#include "lorasched/sim/validator.h"

namespace lorasched::audit {

namespace {

/// Relative money/volume comparison (both sides are sums of products of
/// well-scaled doubles computed in possibly different orders).
bool close(double a, double b, double rel_tol) {
  const double scale = std::max({1.0, std::abs(a), std::abs(b)});
  return std::abs(a - b) <= rel_tol * scale;
}

std::size_t grid_index(NodeId k, Slot t, Slot horizon) {
  return static_cast<std::size_t>(k) * static_cast<std::size_t>(horizon) +
         static_cast<std::size_t>(t);
}

}  // namespace

Auditor& Auditor::instance() {
  static Auditor auditor;
  return auditor;
}

void Auditor::fail(const std::string& what) {
  violations_.fetch_add(1, std::memory_order_relaxed);
  if (config_.fail_fast) throw InvariantViolation(what);
}

void check_dual_update(const Task& task, const Schedule& schedule,
                       const Cluster& cluster,
                       const std::vector<double>& pre_lambda,
                       const std::vector<double>& pre_phi,
                       const DualState& post, double alpha, double beta,
                       double welfare_unit) {
  Auditor& auditor = Auditor::instance();
  auditor.count_check();
  const double tol = auditor.config().rel_tol;

  const Slot horizon = post.horizon();
  const auto cells = static_cast<std::size_t>(post.node_count()) *
                     static_cast<std::size_t>(horizon);
  if (pre_lambda.size() != cells || pre_phi.size() != cells) {
    auditor.fail("eq.(7)/(8): pre-update dual grids have the wrong size");
    return;
  }

  // Replay eq. (7)/(8) over the run, sequentially (a cell booked twice is
  // updated twice, exactly as apply_update does).
  std::vector<double> expected_lambda = pre_lambda;
  std::vector<double> expected_phi = pre_phi;
  const double b_bar = std::max(1.0, unit_welfare(schedule) / welfare_unit);
  for (const Assignment& a : schedule.run) {
    const double s_norm = schedule_rate(schedule, task, cluster, a.node) /
                          cluster.compute_capacity(a.node);
    const double r_norm = task.mem_gb / cluster.adapter_mem_capacity(a.node);
    if (!(s_norm >= 0.0) || !std::isfinite(s_norm) || !(r_norm >= 0.0) ||
        !std::isfinite(r_norm)) {
      std::ostringstream why;
      why << "eq.(7)/(8): normalized loads for task " << task.id
          << " on node " << a.node << " are not finite non-negative (s~="
          << s_norm << ", r~=" << r_norm << ")";
      auditor.fail(why.str());
      return;
    }
    const std::size_t cell = grid_index(a.node, a.slot, horizon);
    expected_lambda[cell] =
        expected_lambda[cell] * (1.0 + s_norm) + alpha * b_bar * s_norm;
    expected_phi[cell] =
        expected_phi[cell] * (1.0 + r_norm) + beta * b_bar * r_norm;
  }

  for (NodeId k = 0; k < post.node_count(); ++k) {
    for (Slot t = 0; t < horizon; ++t) {
      const std::size_t cell = grid_index(k, t, horizon);
      const bool touched = expected_lambda[cell] != pre_lambda[cell] ||
                           expected_phi[cell] != pre_phi[cell];
      const double lambda = post.lambda(k, t);
      const double phi = post.phi(k, t);
      // Monotonicity: the update never lowers a price (eq. 7/8 have
      // non-negative increments), and untouched cells stay bit-identical.
      if (lambda < pre_lambda[cell] || phi < pre_phi[cell]) {
        std::ostringstream why;
        why << "eq.(7)/(8): dual price decreased at (" << k << ", " << t
            << ") after task " << task.id << ": lambda " << pre_lambda[cell]
            << " -> " << lambda << ", phi " << pre_phi[cell] << " -> " << phi;
        auditor.fail(why.str());
        return;
      }
      const bool ok =
          touched ? close(lambda, expected_lambda[cell], tol) &&
                        close(phi, expected_phi[cell], tol)
                  : lambda == pre_lambda[cell] && phi == pre_phi[cell];
      if (!ok) {
        std::ostringstream why;
        why << "eq.(7)/(8): dual update mismatch at (" << k << ", " << t
            << ") after task " << task.id << ": expected lambda "
            << expected_lambda[cell] << " got " << lambda << ", expected phi "
            << expected_phi[cell] << " got " << phi
            << (touched ? "" : " (cell not in the schedule's run)");
        auditor.fail(why.str());
        return;
      }
    }
  }
}

void check_ledger_reserve(const CapacityLedger& ledger, NodeId k, Slot t,
                          double pre_compute, double pre_mem, double compute,
                          double mem) {
  Auditor& auditor = Auditor::instance();
  auditor.count_check();

  // The booked amounts must have landed on exactly this cell. reserve()
  // performs the same single additions, so the comparison is exact.
  if (ledger.used_compute(k, t) != pre_compute + compute ||
      ledger.used_mem(k, t) != pre_mem + mem) {
    std::ostringstream why;
    why << "(4f)/(4g): reserve(" << k << ", " << t
        << ") did not book the requested amounts";
    auditor.fail(why.str());
    return;
  }
  // Capacity: remaining = cap - used may be a hair negative because the
  // ledger admits up to cap * (1 + 1e-9); allow twice that slack.
  const double comp_cap = ledger.remaining_compute(k, t) + ledger.used_compute(k, t);
  const double mem_cap = ledger.remaining_mem(k, t) + ledger.used_mem(k, t);
  const bool over_compute =
      ledger.remaining_compute(k, t) < -2e-9 * std::max(1.0, comp_cap);
  const bool over_mem =
      ledger.remaining_mem(k, t) < -2e-9 * std::max(1.0, mem_cap);
  if (over_compute || over_mem || ledger.tasks_on(k, t) < 1) {
    std::ostringstream why;
    why << "(4f)/(4g): cell (" << k << ", " << t
        << ") over capacity after reserve: compute " << ledger.used_compute(k, t)
        << "/" << comp_cap << ", mem " << ledger.used_mem(k, t) << "/"
        << mem_cap << ", tasks " << ledger.tasks_on(k, t);
    auditor.fail(why.str());
  }
}

void check_ledger_restore(const CapacityLedger& ledger,
                          const CapacityLedger::Snapshot& snapshot) {
  Auditor& auditor = Auditor::instance();
  auditor.count_check();

  double snap_compute = 0.0;
  double snap_mem = 0.0;
  double live_compute = 0.0;
  double live_mem = 0.0;
  for (NodeId k = 0; k < ledger.node_count(); ++k) {
    for (Slot t = 0; t < ledger.horizon(); ++t) {
      const std::size_t cell = grid_index(k, t, ledger.horizon());
      const double used_c = ledger.used_compute(k, t);
      const double used_m = ledger.used_mem(k, t);
      if (used_c != snapshot.used_compute[cell] ||
          used_m != snapshot.used_mem[cell] ||
          ledger.tasks_on(k, t) != snapshot.task_count[cell]) {
        std::ostringstream why;
        why << "snapshot/restore: cell (" << k << ", " << t
            << ") does not match the snapshot after restore";
        auditor.fail(why.str());
        return;
      }
      const double comp_cap = ledger.remaining_compute(k, t) + used_c;
      const double mem_cap = ledger.remaining_mem(k, t) + used_m;
      if (used_c < 0.0 || used_m < 0.0 || ledger.tasks_on(k, t) < 0 ||
          used_c > comp_cap * (1.0 + 2e-9) || used_m > mem_cap * (1.0 + 2e-9)) {
        std::ostringstream why;
        why << "snapshot/restore: cell (" << k << ", " << t
            << ") restored to an inconsistent booking: compute " << used_c
            << "/" << comp_cap << ", mem " << used_m << "/" << mem_cap
            << ", tasks " << ledger.tasks_on(k, t);
        auditor.fail(why.str());
        return;
      }
      snap_compute += snapshot.used_compute[cell];
      snap_mem += snapshot.used_mem[cell];
      live_compute += used_c;
      live_mem += used_m;
    }
  }
  // Totals are sums over bit-identical cells, accumulated in the same
  // order, so conservation must hold exactly.
  if (snap_compute != live_compute || snap_mem != live_mem) {
    auditor.fail(
        "snapshot/restore: booked totals not conserved across restore");
  }
}

void check_ledger_totals(const CapacityLedger& ledger, double booked_compute) {
  Auditor& auditor = Auditor::instance();
  auditor.count_check();

  double ledger_compute = 0.0;
  for (NodeId k = 0; k < ledger.node_count(); ++k) {
    for (Slot t = 0; t < ledger.horizon(); ++t) {
      ledger_compute += ledger.used_compute(k, t);
    }
  }
  if (std::abs(ledger_compute - booked_compute) >
      1e-6 * std::max(1.0, booked_compute)) {
    std::ostringstream why;
    why << "(4f): ledger books " << ledger_compute
        << " samples but admitted schedules sum to " << booked_compute;
    auditor.fail(why.str());
  }
}

void check_decision(const DecisionAudit& a, const Cluster& cluster) {
  Auditor& auditor = Auditor::instance();
  auditor.count_check();
  const double tol = auditor.config().rel_tol;
  const Task& task = a.task;

  if (a.schedule.empty()) {
    if (a.admitted || a.capacity_reject || a.payment != 0.0 ||
        a.objective != 0.0) {
      std::ostringstream why;
      why << "eq.(10): task " << task.id
          << " has no candidate but carries a decision (admitted="
          << a.admitted << ", payment=" << a.payment << ")";
      auditor.fail(why.str());
    }
    return;
  }

  // The best candidate must be a valid execution plan (4a)-(4e) whether or
  // not it was admitted.
  const std::string invalid =
      validate_schedule(task, a.schedule, cluster, a.ledger.horizon());
  if (!invalid.empty()) {
    std::ostringstream why;
    why << "Alg.2: candidate for task " << task.id
        << " violates the schedule constraints: " << invalid;
    auditor.fail(why.str());
    return;
  }

  // Recompute the candidate's economics from first principles at the
  // pre-update duals: volumes from the run, maxima from the grids.
  const Slot horizon = a.ledger.horizon();
  double norm_compute = 0.0;
  double norm_mem = 0.0;
  double max_lambda = 0.0;
  double max_phi = 0.0;
  for (const Assignment& cell : a.schedule.run) {
    const double rate = schedule_rate(a.schedule, task, cluster, cell.node);
    norm_compute += rate / cluster.compute_capacity(cell.node);
    norm_mem += task.mem_gb / cluster.adapter_mem_capacity(cell.node);
    const std::size_t idx = grid_index(cell.node, cell.slot, horizon);
    max_lambda = std::max(max_lambda, a.pre_lambda[idx]);
    max_phi = std::max(max_phi, a.pre_phi[idx]);
  }
  if (!close(norm_compute, a.schedule.norm_compute, 1e-7) ||
      !close(norm_mem, a.schedule.norm_mem, 1e-7)) {
    std::ostringstream why;
    why << "Alg.2: finalized volumes of task " << task.id
        << " do not match its run (compute " << a.schedule.norm_compute
        << " vs " << norm_compute << ", mem " << a.schedule.norm_mem << " vs "
        << norm_mem << ")";
    auditor.fail(why.str());
    return;
  }

  // (e) eq. (10): F(il) from the pre-update duals, and sign-consistent
  // admission.
  const double objective = a.schedule.welfare_gain -
                           max_lambda * norm_compute - max_phi * norm_mem;
  if (!close(objective, a.objective, 1e-7)) {
    std::ostringstream why;
    why << "eq.(10): F(il) mismatch for task " << task.id << ": policy "
        << a.objective << ", recomputed " << objective;
    auditor.fail(why.str());
    return;
  }
  if ((a.admitted || a.capacity_reject) && !(a.objective > 0.0)) {
    std::ostringstream why;
    why << "eq.(10): task " << task.id
        << " passed the sign test with F(il) = " << a.objective << " <= 0";
    auditor.fail(why.str());
    return;
  }
  if (!a.admitted && !a.capacity_reject && a.objective > 0.0) {
    std::ostringstream why;
    why << "eq.(10): task " << task.id << " rejected although F(il) = "
        << a.objective << " > 0 and capacity did not refuse";
    auditor.fail(why.str());
    return;
  }

  if (a.admitted) {
    // (d) eq. (14): payment from the pre-update duals, and Thm. 4
    // individual rationality 0 <= p_i <= b_i.
    const Money expected = payment_from_prices(a.schedule, max_lambda, max_phi);
    if (!close(a.payment, expected, 1e-7)) {
      std::ostringstream why;
      why << "eq.(14): payment for task " << task.id << " is " << a.payment
          << " but the pre-update duals price it at " << expected;
      auditor.fail(why.str());
      return;
    }
    const double money_scale = std::max(1.0, std::abs(task.bid));
    if (a.payment < -tol * money_scale ||
        a.payment > task.bid + 1e-7 * money_scale) {
      std::ostringstream why;
      why << "Thm.4: payment " << a.payment << " for task " << task.id
          << " is outside [0, b_i = " << task.bid << "]";
      auditor.fail(why.str());
      return;
    }
    // Alg. 1 line 8: every booked cell fits the ground truth (the decision
    // has not been committed yet when this check runs).
    for (const Assignment& cell : a.schedule.run) {
      const double rate = schedule_rate(a.schedule, task, cluster, cell.node);
      if (!a.ledger.fits(cell.node, cell.slot, rate, task.mem_gb,
                         a.schedule.exclusive)) {
        std::ostringstream why;
        why << "Alg.1: admitted task " << task.id
            << " does not fit the ledger at (" << cell.node << ", "
            << cell.slot << ")";
        auditor.fail(why.str());
        return;
      }
    }
  } else if (a.capacity_reject) {
    // Line 12 must have had a reason: some booked cell does not fit.
    bool blocked = false;
    for (const Assignment& cell : a.schedule.run) {
      const double rate = schedule_rate(a.schedule, task, cluster, cell.node);
      if (!a.ledger.fits(cell.node, cell.slot, rate, task.mem_gb,
                         a.schedule.exclusive)) {
        blocked = true;
        break;
      }
    }
    if (!blocked) {
      std::ostringstream why;
      why << "Alg.1: task " << task.id
          << " was capacity-rejected although every booked cell fits";
      auditor.fail(why.str());
      return;
    }
    if (a.payment != 0.0) {
      auditor.fail("eq.(14): capacity-rejected bid was charged");
    }
  } else if (a.payment != 0.0) {
    auditor.fail("eq.(14): rejected bid was charged");
  }
}

void check_outcome_accounting(const Task& task, const Decision& decision) {
  Auditor& auditor = Auditor::instance();
  auditor.count_check();

  if (decision.task != task.id) {
    std::ostringstream why;
    why << "accounting: decision for task " << decision.task
        << " paired with bid " << task.id;
    auditor.fail(why.str());
    return;
  }
  if (!std::isfinite(decision.payment)) {
    auditor.fail("accounting: payment is not finite");
    return;
  }
  if (decision.admit) {
    if (decision.schedule.empty() || decision.schedule.task != task.id ||
        decision.payment < -1e-9) {
      std::ostringstream why;
      why << "accounting: admitted task " << task.id
          << " carries an empty/foreign schedule or a negative payment";
      auditor.fail(why.str());
    }
  } else if (decision.payment != 0.0) {
    std::ostringstream why;
    why << "accounting: rejected task " << task.id << " charged "
        << decision.payment;
    auditor.fail(why.str());
  }
}

}  // namespace lorasched::audit
