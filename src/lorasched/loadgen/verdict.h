// SoakVerdict — the report writer that turns a SoakReport into the
// BENCH_soak.json artifact and the harness exit code (DESIGN.md §14).
//
// Verdict schema (one JSON object):
//   schema: "lorasched-soak-v1"
//   ok: bool — lost == out_of_order == duplicates == unknown == 0
//   offered / responded / admitted / rejected / shed /
//   lost / out_of_order / duplicates / unknown / reoffered: totals
//   elapsed_seconds, offered_per_second, responded_per_second: throughput
//   latency / admit_latency: { count, sum, mean, min, max,
//     p50, p90, p99, p999,
//     histogram: { min, max, buckets_per_octave, counts: [...] } }
//   throughput_timeline: responses per wall-clock second since start
//   sources: per-source rows of the same counter set
//
// The raw histogram bucket counts ride along precisely so partial verdicts
// from independent processes can be merged *exactly*: merge_verdicts() sums
// counters and bucket counts element-wise and re-derives the quantiles from
// the merged grid — no quantile-of-quantiles approximation. The firehose
// driver's fork-per-process mode leans on this.
#pragma once

#include <string>

#include "lorasched/loadgen/soak_metrics.h"
#include "lorasched/obs/json.h"

namespace lorasched::loadgen {

/// The full verdict document for a report.
[[nodiscard]] obs::Json verdict_json(const SoakReport& report);

/// Inverse of verdict_json for the fields merging needs; throws
/// std::invalid_argument on schema mismatch.
[[nodiscard]] SoakReport parse_verdict(const obs::Json& doc);

/// Exact element-wise merge of per-process partial reports: counters and
/// histogram bucket counts sum, per-source rows join on source id,
/// timelines align on the second index, elapsed takes the max.
[[nodiscard]] SoakReport merge_reports(const std::vector<SoakReport>& parts);

/// Writes verdict_json(report) to `path` atomically (tmp + rename).
/// Returns the process exit code: 0 when report.clean(), 1 otherwise.
int write_verdict(const SoakReport& report, const std::string& path);

}  // namespace lorasched::loadgen
