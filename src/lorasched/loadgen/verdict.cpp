#include "lorasched/loadgen/verdict.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <stdexcept>

namespace lorasched::loadgen {

namespace {

constexpr const char* kSchema = "lorasched-soak-v1";

obs::Json histogram_json(const obs::HistogramSnapshot& snap) {
  obs::Json::Array counts;
  counts.reserve(snap.counts.size());
  for (const std::uint64_t c : snap.counts) counts.emplace_back(c);
  obs::Json::Object hist;
  hist["min"] = snap.options.min;
  hist["max"] = snap.options.max;
  hist["buckets_per_octave"] = snap.options.buckets_per_octave;
  hist["counts"] = obs::Json(std::move(counts));

  obs::Json::Object out;
  out["count"] = snap.count;
  out["sum"] = snap.sum;
  out["mean"] = snap.mean();
  out["min"] = snap.min_seen;
  out["max"] = snap.max_seen;
  out["p50"] = snap.percentile(50.0);
  out["p90"] = snap.percentile(90.0);
  out["p99"] = snap.percentile(99.0);
  out["p999"] = snap.percentile(99.9);
  out["histogram"] = obs::Json(std::move(hist));
  return obs::Json(std::move(out));
}

obs::HistogramSnapshot parse_histogram(const obs::Json& doc) {
  obs::HistogramSnapshot snap;
  const obs::Json& hist = doc.at("histogram");
  snap.options.min = hist.at("min").as_number();
  snap.options.max = hist.at("max").as_number();
  snap.options.buckets_per_octave =
      static_cast<int>(hist.at("buckets_per_octave").as_number());
  for (const obs::Json& c : hist.at("counts").as_array()) {
    snap.counts.push_back(static_cast<std::uint64_t>(c.as_number()));
  }
  snap.count = static_cast<std::uint64_t>(doc.at("count").as_number());
  snap.sum = doc.at("sum").as_number();
  snap.min_seen = doc.at("min").as_number();
  snap.max_seen = doc.at("max").as_number();
  return snap;
}

void put_counters(obs::Json::Object& out, const SoakSourceReport& row) {
  out["offered"] = row.offered;
  out["responded"] = row.responded;
  out["admitted"] = row.admitted;
  out["rejected"] = row.rejected;
  out["shed"] = row.shed;
  out["lost"] = row.lost;
  out["out_of_order"] = row.out_of_order;
  out["duplicates"] = row.duplicates;
  out["unknown"] = row.unknown;
  out["reoffered"] = row.reoffered;
}

SoakSourceReport parse_counters(const obs::Json& doc) {
  SoakSourceReport row;
  row.offered = static_cast<std::uint64_t>(doc.at("offered").as_number());
  row.responded = static_cast<std::uint64_t>(doc.at("responded").as_number());
  row.admitted = static_cast<std::uint64_t>(doc.at("admitted").as_number());
  row.rejected = static_cast<std::uint64_t>(doc.at("rejected").as_number());
  row.shed = static_cast<std::uint64_t>(doc.at("shed").as_number());
  row.lost = static_cast<std::uint64_t>(doc.at("lost").as_number());
  row.out_of_order =
      static_cast<std::uint64_t>(doc.at("out_of_order").as_number());
  row.duplicates =
      static_cast<std::uint64_t>(doc.at("duplicates").as_number());
  row.unknown = static_cast<std::uint64_t>(doc.at("unknown").as_number());
  row.reoffered = static_cast<std::uint64_t>(doc.at("reoffered").as_number());
  return row;
}

void merge_histogram(obs::HistogramSnapshot& into,
                     const obs::HistogramSnapshot& from) {
  if (from.count == 0 && from.counts.empty()) return;
  if (into.counts.empty()) {
    into = from;
    return;
  }
  if (into.counts.size() != from.counts.size() ||
      into.options.min != from.options.min ||
      into.options.max != from.options.max ||
      into.options.buckets_per_octave != from.options.buckets_per_octave) {
    throw std::invalid_argument(
        "cannot merge soak histograms with different bucket grids");
  }
  for (std::size_t i = 0; i < into.counts.size(); ++i) {
    into.counts[i] += from.counts[i];
  }
  if (from.count > 0) {
    if (into.count == 0) {
      into.min_seen = from.min_seen;
      into.max_seen = from.max_seen;
    } else {
      into.min_seen = std::min(into.min_seen, from.min_seen);
      into.max_seen = std::max(into.max_seen, from.max_seen);
    }
  }
  into.count += from.count;
  into.sum += from.sum;
}

void accumulate(SoakSourceReport& into, const SoakSourceReport& from) {
  into.offered += from.offered;
  into.responded += from.responded;
  into.admitted += from.admitted;
  into.rejected += from.rejected;
  into.shed += from.shed;
  into.lost += from.lost;
  into.out_of_order += from.out_of_order;
  into.duplicates += from.duplicates;
  into.unknown += from.unknown;
  into.reoffered += from.reoffered;
}

}  // namespace

obs::Json verdict_json(const SoakReport& report) {
  obs::Json::Object out;
  out["schema"] = kSchema;
  out["ok"] = report.clean();
  put_counters(out, report.totals);
  out["elapsed_seconds"] = report.elapsed_seconds;
  const double elapsed =
      report.elapsed_seconds > 0.0 ? report.elapsed_seconds : 1.0;
  out["offered_per_second"] =
      static_cast<double>(report.totals.offered) / elapsed;
  out["responded_per_second"] =
      static_cast<double>(report.totals.responded) / elapsed;
  out["latency"] = histogram_json(report.latency);
  out["admit_latency"] = histogram_json(report.admit_latency);

  obs::Json::Array timeline;
  timeline.reserve(report.responses_per_second.size());
  for (const std::uint64_t n : report.responses_per_second) {
    timeline.emplace_back(n);
  }
  out["throughput_timeline"] = obs::Json(std::move(timeline));

  obs::Json::Array sources;
  sources.reserve(report.sources.size());
  for (const SoakSourceReport& row : report.sources) {
    obs::Json::Object src;
    src["source"] = row.source;
    put_counters(src, row);
    sources.emplace_back(std::move(src));
  }
  out["sources"] = obs::Json(std::move(sources));
  return obs::Json(std::move(out));
}

SoakReport parse_verdict(const obs::Json& doc) {
  const obs::Json* schema = doc.find("schema");
  if (schema == nullptr || schema->as_string() != kSchema) {
    throw std::invalid_argument("not a " + std::string(kSchema) +
                                " verdict document");
  }
  SoakReport report;
  report.totals = parse_counters(doc);
  report.elapsed_seconds = doc.at("elapsed_seconds").as_number();
  report.latency = parse_histogram(doc.at("latency"));
  report.admit_latency = parse_histogram(doc.at("admit_latency"));
  for (const obs::Json& n : doc.at("throughput_timeline").as_array()) {
    report.responses_per_second.push_back(
        static_cast<std::uint64_t>(n.as_number()));
  }
  for (const obs::Json& src : doc.at("sources").as_array()) {
    SoakSourceReport row = parse_counters(src);
    row.source = static_cast<std::uint32_t>(src.at("source").as_number());
    report.sources.push_back(row);
  }
  return report;
}

SoakReport merge_reports(const std::vector<SoakReport>& parts) {
  SoakReport merged;
  std::map<std::uint32_t, SoakSourceReport> by_source;
  for (const SoakReport& part : parts) {
    for (const SoakSourceReport& row : part.sources) {
      auto [it, inserted] = by_source.emplace(row.source, row);
      if (!inserted) {
        accumulate(it->second, row);
      }
    }
    merge_histogram(merged.latency, part.latency);
    merge_histogram(merged.admit_latency, part.admit_latency);
    if (part.responses_per_second.size() >
        merged.responses_per_second.size()) {
      merged.responses_per_second.resize(part.responses_per_second.size(), 0);
    }
    for (std::size_t i = 0; i < part.responses_per_second.size(); ++i) {
      merged.responses_per_second[i] += part.responses_per_second[i];
    }
    merged.elapsed_seconds =
        std::max(merged.elapsed_seconds, part.elapsed_seconds);
  }
  merged.sources.reserve(by_source.size());
  for (const auto& [source, row] : by_source) {
    accumulate(merged.totals, row);
    merged.sources.push_back(row);
  }
  return merged;
}

int write_verdict(const SoakReport& report, const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      throw std::runtime_error("cannot open " + tmp + " for writing");
    }
    verdict_json(report).write(out);
    out << '\n';
    if (!out.flush()) {
      throw std::runtime_error("failed writing " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("failed renaming " + tmp + " to " + path);
  }
  return report.clean() ? 0 : 1;
}

}  // namespace lorasched::loadgen
