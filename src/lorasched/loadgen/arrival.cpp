#include "lorasched/loadgen/arrival.h"

#include <cmath>
#include <stdexcept>

#include "lorasched/service/slot_clock.h"

namespace lorasched::loadgen {

const char* to_string(ArrivalMix mix) noexcept {
  switch (mix) {
    case ArrivalMix::kPoisson: return "poisson";
    case ArrivalMix::kBurst: return "burst";
    case ArrivalMix::kDiurnal: return "diurnal";
    case ArrivalMix::kMLaaS: return "mlaas";
    case ArrivalMix::kPhilly: return "philly";
    case ArrivalMix::kHelios: return "helios";
  }
  return "unknown";
}

ArrivalMix parse_arrival_mix(const std::string& name) {
  if (name == "poisson") return ArrivalMix::kPoisson;
  if (name == "burst") return ArrivalMix::kBurst;
  if (name == "diurnal") return ArrivalMix::kDiurnal;
  if (name == "mlaas") return ArrivalMix::kMLaaS;
  if (name == "philly") return ArrivalMix::kPhilly;
  if (name == "helios") return ArrivalMix::kHelios;
  throw std::invalid_argument(
      "unknown arrival mix \"" + name +
      "\" (want poisson|burst|diurnal|mlaas|philly|helios)");
}

std::vector<double> arrival_rates(ArrivalMix mix, Slot horizon,
                                  double base_rate, std::uint64_t seed) {
  if (horizon <= 0) {
    throw std::invalid_argument("arrival horizon must be positive");
  }
  if (base_rate < 0.0) {
    throw std::invalid_argument("arrival base rate must be non-negative");
  }
  const auto n = static_cast<std::size_t>(horizon);
  switch (mix) {
    case ArrivalMix::kPoisson:
      return std::vector<double>(n, base_rate);
    case ArrivalMix::kBurst: {
      // On/off square wave with period kBurstPeriod and duty kBurstDuty;
      // the on-rate is scaled so the mean over any whole cycle (and, up to
      // partial-cycle truncation, the horizon) is base_rate.
      const auto on_slots = static_cast<Slot>(
          std::ceil(kBurstDuty * static_cast<double>(kBurstPeriod)));
      const double on_rate = base_rate * static_cast<double>(kBurstPeriod) /
                             static_cast<double>(on_slots);
      std::vector<double> rates(n, 0.0);
      for (Slot t = 0; t < horizon; ++t) {
        if (t % kBurstPeriod < on_slots) {
          rates[static_cast<std::size_t>(t)] = on_rate;
        }
      }
      return rates;
    }
    case ArrivalMix::kDiurnal: {
      constexpr double kPi = 3.14159265358979323846;
      std::vector<double> rates(n, 0.0);
      double sum = 0.0;
      for (Slot t = 0; t < horizon; ++t) {
        const double phase =
            2.0 * kPi * static_cast<double>(t) / static_cast<double>(horizon);
        const double r = std::max(0.0, 1.0 + 0.8 * std::sin(phase));
        rates[static_cast<std::size_t>(t)] = r;
        sum += r;
      }
      // Renormalize the clamped shape so the mean is exactly base_rate.
      const double scale =
          sum > 0.0 ? base_rate * static_cast<double>(horizon) / sum : 0.0;
      for (double& r : rates) r *= scale;
      return rates;
    }
    case ArrivalMix::kMLaaS:
      return trace_rates(TraceKind::kMLaaS, horizon, base_rate, seed);
    case ArrivalMix::kPhilly:
      return trace_rates(TraceKind::kPhilly, horizon, base_rate, seed);
    case ArrivalMix::kHelios:
      return trace_rates(TraceKind::kHelios, horizon, base_rate, seed);
  }
  throw std::invalid_argument("unknown arrival mix");
}

std::size_t pace_bids(const std::vector<Task>& bids,
                      std::chrono::nanoseconds period,
                      const std::function<void(const Task&)>& emit,
                      const std::function<void(Slot)>& on_slot_end) {
  if (!emit) throw std::invalid_argument("pace_bids needs an emit sink");
  const service::SlotClock clock(period);
  std::size_t next = 0;
  Slot now = 0;
  while (next < bids.size()) {
    while (next < bids.size() && bids[next].arrival <= now) {
      emit(bids[next]);
      ++next;
    }
    if (on_slot_end) on_slot_end(now);
    if (next >= bids.size()) break;
    clock.wait_slot_end(now);
    ++now;
  }
  return next;
}

}  // namespace lorasched::loadgen
