#include "lorasched/loadgen/soak_metrics.h"

#include <algorithm>

#include "lorasched/loadgen/firehose.h"

namespace lorasched::loadgen {

namespace {

constexpr double kNsPerSecond = 1e9;

// Soak latencies span sub-microsecond (in-process seam) to seconds
// (backpressured wire runs); widen the default histogram floor accordingly.
obs::HistogramOptions latency_options() {
  obs::HistogramOptions options;
  options.min = 1e-7;
  options.max = 100.0;
  options.buckets_per_octave = 8;
  return options;
}

void accumulate(SoakSourceReport& into, const SoakSourceReport& from) {
  into.offered += from.offered;
  into.responded += from.responded;
  into.admitted += from.admitted;
  into.rejected += from.rejected;
  into.shed += from.shed;
  into.lost += from.lost;
  into.out_of_order += from.out_of_order;
  into.duplicates += from.duplicates;
  into.unknown += from.unknown;
  into.reoffered += from.reoffered;
}

}  // namespace

const char* to_string(SoakStatus status) noexcept {
  switch (status) {
    case SoakStatus::kAdmitted: return "admitted";
    case SoakStatus::kRejected: return "rejected";
    case SoakStatus::kShedFull: return "shed_full";
    case SoakStatus::kShedClosed: return "shed_closed";
  }
  return "unknown";
}

SoakMetrics::SoakMetrics()
    : offered_(registry_.counter("loadgen_bids_offered_total",
                                 "Bids sent by the firehose sources")),
      responded_(registry_.counter("loadgen_bids_responded_total",
                                   "Responses that resolved an offered bid")),
      admitted_(registry_.counter("loadgen_bids_admitted_total",
                                  "Offered bids the service admitted")),
      rejected_(registry_.counter("loadgen_bids_rejected_total",
                                  "Offered bids the service rejected")),
      shed_(registry_.counter("loadgen_bids_shed_total",
                              "Offered bids shed at the ingest edge")),
      lost_gaps_(registry_.counter(
          "loadgen_sequence_anomalies_total",
          "Out-of-order, duplicate, and unknown responses")),
      latency_(registry_.histogram("loadgen_e2e_latency_seconds",
                                   latency_options(),
                                   "Send-to-decision latency, all decisions")),
      admit_latency_(registry_.histogram(
          "loadgen_admit_latency_seconds", latency_options(),
          "Send-to-decision latency, admitted bids only")),
      epoch_ns_(now_ns()) {}

std::int64_t SoakMetrics::now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             util::MonoClock::now().time_since_epoch())
      .count();
}

SoakMetrics::SourceState& SoakMetrics::state(std::uint32_t source) {
  auto it = sources_.find(source);
  if (it == sources_.end()) {
    it = sources_.emplace(source, SourceState{}).first;
    it->second.totals.source = source;
  }
  return it->second;
}

void SoakMetrics::bump_timeline(std::int64_t recv_ns) {
  const std::int64_t elapsed = recv_ns - epoch_ns_;
  const auto second = elapsed <= 0
                          ? std::size_t{0}
                          : static_cast<std::size_t>(
                                elapsed / static_cast<std::int64_t>(1e9));
  if (per_second_.size() <= second) per_second_.resize(second + 1, 0);
  ++per_second_[second];
}

void SoakMetrics::record_offered(std::uint32_t source, std::uint64_t seq,
                                 std::int64_t send_ns) {
  util::MutexLock lock(mutex_);
  SourceState& src = state(source);
  ++src.totals.offered;
  const auto [it, inserted] = src.outstanding.emplace(seq, send_ns);
  if (!inserted) {
    // A sender re-using a live seq would corrupt the accounting; keep the
    // first send time and flag it.
    ++src.totals.reoffered;
  }
  offered_.add(1);
}

void SoakMetrics::record_response(std::uint32_t source, std::uint64_t seq,
                                  SoakStatus status, std::int64_t recv_ns) {
  util::MutexLock lock(mutex_);
  SourceState& src = state(source);
  const bool is_decision =
      status == SoakStatus::kAdmitted || status == SoakStatus::kRejected;
  const auto it = src.outstanding.find(seq);
  if (it == src.outstanding.end()) {
    // Not outstanding: a replay of an already-resolved seq is a duplicate
    // (a restarted sender re-walking its sequence space shows up here);
    // anything else was never offered at all.
    if (src.any_decided && seq <= src.max_decided) {
      ++src.totals.duplicates;
    } else {
      ++src.totals.unknown;
    }
    lost_gaps_.add(1);
    return;
  }
  const std::int64_t send_ns = it->second;
  src.outstanding.erase(it);
  ++src.totals.responded;
  responded_.add(1);
  bump_timeline(recv_ns);
  const double seconds =
      static_cast<double>(recv_ns - send_ns) / kNsPerSecond;
  switch (status) {
    case SoakStatus::kAdmitted:
      ++src.totals.admitted;
      admitted_.add(1);
      latency_.record(seconds);
      admit_latency_.record(seconds);
      break;
    case SoakStatus::kRejected:
      ++src.totals.rejected;
      rejected_.add(1);
      latency_.record(seconds);
      break;
    case SoakStatus::kShedFull:
    case SoakStatus::kShedClosed:
      ++src.totals.shed;
      shed_.add(1);
      break;
  }
  if (is_decision) {
    // Order check, decisions only: shed replies return straight from the
    // ingest edge and may legitimately out-race queued decisions.
    if (src.any_decided && seq < src.max_decided) {
      ++src.totals.out_of_order;
      lost_gaps_.add(1);
    }
    if (!src.any_decided || seq > src.max_decided) {
      src.max_decided = seq;
    }
    src.any_decided = true;
  }
}

void SoakMetrics::on_admitted(const TaskOutcome& outcome,
                              const Schedule& schedule) {
  (void)schedule;
  record_response(bid_source(outcome.task), bid_seq(outcome.task),
                  SoakStatus::kAdmitted, now_ns());
}

void SoakMetrics::on_rejected(const TaskOutcome& outcome) {
  record_response(bid_source(outcome.task), bid_seq(outcome.task),
                  SoakStatus::kRejected, now_ns());
}

std::uint64_t SoakMetrics::outstanding() const {
  util::MutexLock lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [source, src] : sources_) {
    total += src.outstanding.size();
  }
  return total;
}

SoakReport SoakMetrics::report() const {
  util::MutexLock lock(mutex_);
  SoakReport out;
  out.sources.reserve(sources_.size());
  for (const auto& [source, src] : sources_) {
    SoakSourceReport row = src.totals;
    row.lost = src.outstanding.size();
    accumulate(out.totals, row);
    out.sources.push_back(row);
  }
  out.totals.source = 0;
  out.latency = latency_.snapshot();
  out.admit_latency = admit_latency_.snapshot();
  out.responses_per_second = per_second_;
  out.elapsed_seconds =
      static_cast<double>(now_ns() - epoch_ns_) / kNsPerSecond;
  return out;
}

}  // namespace lorasched::loadgen
