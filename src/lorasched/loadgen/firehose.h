// BidFirehose — seeded, deterministic per-source bid-stream generation for
// the soak subsystem (DESIGN.md §14).
//
// Each firehose *source* models one independent bid origin (think: one
// tenant frontend). A source draws its arrival counts from a seeded
// arrival mix (loadgen/arrival.h) and its task bodies from the same
// TaskGenerator the scenario assembler uses, so soak bids are
// distributionally indistinguishable from paper-scale trace bids. Every
// bid is stamped with
//  * a task id that packs (source, per-source sequence number) — the
//    monotone sequence the SoakMetrics consumer accounts loss /
//    out-of-order / duplicates against; and
//  * (at send time, by the driver) a send timestamp on the sender's
//    monotonic clock, carried out-of-band (wire echo or the SoakMetrics
//    offered map), never inside the Task — decisions stay a pure function
//    of the bid stream.
//
// Determinism contract: generate() is a pure function of
// (config, cluster, energy, market) — same seed, same stream, bit for bit.
// tests/test_loadgen.cpp pins this; the acceptance soak relies on it to
// reproduce identical offered streams across runs.
#pragma once

#include <cstdint>
#include <vector>

#include "lorasched/cluster/cluster.h"
#include "lorasched/cluster/energy.h"
#include "lorasched/loadgen/arrival.h"
#include "lorasched/types.h"
#include "lorasched/workload/task.h"
#include "lorasched/workload/taskgen.h"
#include "lorasched/workload/vendor.h"

namespace lorasched::loadgen {

/// TaskId bit split: TaskId is a signed 32-bit int, so ids pack the source
/// into bits [24, 30] and the sequence number into bits [0, 24) — up to
/// 127 sources with ~16.7M bids each per run, all ids non-negative and
/// source-major ordered (a slot batch sorted by task id is sorted by
/// (source, seq), which is what keeps per-source decisions in order).
inline constexpr int kBidSeqBits = 24;
inline constexpr std::uint64_t kMaxBidSeq =
    (std::uint64_t{1} << kBidSeqBits) - 1;
inline constexpr std::uint32_t kMaxBidSource = 126;

/// Packs (source, seq) into a TaskId; throws std::invalid_argument past
/// the limits above.
[[nodiscard]] TaskId encode_bid_id(std::uint32_t source, std::uint64_t seq);
[[nodiscard]] std::uint32_t bid_source(TaskId id) noexcept;
[[nodiscard]] std::uint64_t bid_seq(TaskId id) noexcept;

struct FirehoseConfig {
  /// This source's identity: substream seed, id prefix, accounting key.
  std::uint32_t source = 0;
  /// Shared run seed; each source derives an independent substream from
  /// (seed, source), so a fleet of sources is reproducible from one seed.
  std::uint64_t seed = 42;
  ArrivalMix mix = ArrivalMix::kPoisson;
  /// Mean bid arrivals per slot for this source.
  double rate_per_slot = 50.0;
  /// Service horizon the arrival slots are generated against.
  Slot horizon = 144;
  /// Arrivals are confined to [0, arrival_window) so the tail of the
  /// horizon can drain every queued bid (zero-loss soak runs need the
  /// service to reach every bid before done()). 0 means horizon.
  Slot arrival_window = 0;
  TaskGenConfig taskgen{};
};

class BidFirehose {
 public:
  /// The cluster/energy/market references are borrowed for the generator's
  /// lifetime (they calibrate bids exactly like make_instance does).
  BidFirehose(FirehoseConfig config, const Cluster& cluster,
              const EnergyModel& energy, const Marketplace& market);

  /// The full sequenced stream for this source, sorted by (arrival, seq)
  /// with seq dense from 0. Deterministic in the constructor arguments.
  [[nodiscard]] std::vector<Task> generate();

  [[nodiscard]] const FirehoseConfig& config() const noexcept {
    return config_;
  }

 private:
  FirehoseConfig config_;
  TaskGenerator taskgen_;
  std::uint64_t stream_seed_ = 0;
};

/// The per-source substream seed (splitmix64 over seed and source) — shared
/// with tests so expectations can be derived independently.
[[nodiscard]] std::uint64_t firehose_stream_seed(std::uint64_t seed,
                                                 std::uint32_t source) noexcept;

}  // namespace lorasched::loadgen
