// SoakMetrics — the consumer half of the load-generation subsystem
// (DESIGN.md §14): per-source sequence/loss accounting plus end-to-end
// admission-latency CDFs over the decision stream a soak run gets back.
//
// Accounting model (per source):
//  * record_offered(source, seq, send_ns) when a bid leaves the sender;
//    the (seq -> send time) entry joins the source's outstanding map.
//  * record_response(source, seq, status, recv_ns) when the matching
//    response arrives. An outstanding seq resolves: its end-to-end latency
//    (recv - send, one monotonic clock — the sender's) lands in the
//    latency histograms and the seq leaves the outstanding map. Decision
//    responses (admit/reject) also run the order check: a seq below the
//    source's highest decided seq counts as out-of-order (in a healthy
//    run the service decides each source's bids in seq order — arrivals
//    are monotone per source and slot batches sort by task id, which is
//    (source, seq)-major). Shed responses (queue full/closed) return
//    immediately from the ingestion edge on another thread, so they are
//    accounted but exempt from the order check.
//  * A response whose seq is not outstanding is a duplicate when the seq
//    was already decided (seq <= the source's max decided — this is also
//    how a restarted, re-sequenced sender shows up) and unknown otherwise
//    (a response for a bid never offered: a protocol error).
//  * Loss is what remains: offered bids whose seq is still outstanding
//    when report() runs. A clean soak ends with lost == out_of_order ==
//    duplicates == unknown == 0.
//
// The class is thread-safe (senders record offers, a reader thread records
// responses) and doubles as a service::DecisionSubscriber so an in-process
// service can feed it directly — outcomes decode (source, seq) from the
// firehose task-id packing.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "lorasched/obs/registry.h"
#include "lorasched/service/subscriber.h"
#include "lorasched/types.h"
#include "lorasched/util/mutex.h"
#include "lorasched/util/thread_annotations.h"
#include "lorasched/util/timing.h"

namespace lorasched::loadgen {

/// Terminal state of one offered bid, as seen by the soak consumer.
enum class SoakStatus : std::uint8_t {
  kAdmitted = 0,
  kRejected = 1,
  /// Shed at the ingest queue (BackpressureMode::kReject, queue full).
  kShedFull = 2,
  /// Shed because the service stopped accepting bids.
  kShedClosed = 3,
};

[[nodiscard]] const char* to_string(SoakStatus status) noexcept;

/// One source's accounting totals.
struct SoakSourceReport {
  std::uint32_t source = 0;
  std::uint64_t offered = 0;
  /// Responses that resolved an outstanding seq (decisions + sheds).
  std::uint64_t responded = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t shed = 0;
  /// Offered but never responded (outstanding at report time).
  std::uint64_t lost = 0;
  /// Decision responses that regressed below the source's max decided seq.
  std::uint64_t out_of_order = 0;
  /// Responses for a seq that was already resolved (includes a restarted
  /// sender replaying its sequence space).
  std::uint64_t duplicates = 0;
  /// Responses for a seq never offered.
  std::uint64_t unknown = 0;
  /// Offers that re-used an outstanding seq (sender-side anomaly).
  std::uint64_t reoffered = 0;
};

struct SoakReport {
  std::vector<SoakSourceReport> sources;  // sorted by source id
  SoakSourceReport totals;                // source field meaningless
  /// End-to-end latency over decision responses (admit + reject), seconds.
  obs::HistogramSnapshot latency;
  /// Admitted-only latency.
  obs::HistogramSnapshot admit_latency;
  /// Responses per wall-clock second since construction (timeline).
  std::vector<std::uint64_t> responses_per_second;
  double elapsed_seconds = 0.0;

  /// The soak verdict: every offered bid resolved exactly once, in order.
  [[nodiscard]] bool clean() const noexcept {
    return totals.lost == 0 && totals.out_of_order == 0 &&
           totals.duplicates == 0 && totals.unknown == 0;
  }
};

class SoakMetrics final : public service::DecisionSubscriber {
 public:
  SoakMetrics();

  SoakMetrics(const SoakMetrics&) = delete;
  SoakMetrics& operator=(const SoakMetrics&) = delete;

  /// Sender side, thread-safe. `send_ns` is nanoseconds on util::MonoClock
  /// (use now_ns()).
  void record_offered(std::uint32_t source, std::uint64_t seq,
                      std::int64_t send_ns) EXCLUDES(mutex_);

  /// Response side, thread-safe.
  void record_response(std::uint32_t source, std::uint64_t seq,
                       SoakStatus status, std::int64_t recv_ns)
      EXCLUDES(mutex_);

  /// In-process seam: outcomes from a service this object subscribes to,
  /// stamped with the receive time here. Task ids must use the firehose
  /// (source, seq) packing.
  void on_admitted(const TaskOutcome& outcome,
                   const Schedule& schedule) override;
  void on_rejected(const TaskOutcome& outcome) override;

  /// Bids still awaiting a response (drain polling).
  [[nodiscard]] std::uint64_t outstanding() const EXCLUDES(mutex_);
  [[nodiscard]] std::uint64_t responses() const noexcept {
    return responded_.value();
  }

  /// Point-in-time accounting rollup; outstanding bids count as lost.
  [[nodiscard]] SoakReport report() const EXCLUDES(mutex_);

  /// The registry backing the latency histograms and counters (scrapeable
  /// alongside a service registry).
  [[nodiscard]] obs::MetricsRegistry& registry() noexcept { return registry_; }

  /// Nanoseconds on the shared monotonic clock.
  [[nodiscard]] static std::int64_t now_ns() noexcept;

 private:
  struct SourceState {
    std::map<std::uint64_t, std::int64_t> outstanding;  // seq -> send_ns
    SoakSourceReport totals;
    bool any_decided = false;
    std::uint64_t max_decided = 0;
  };

  SourceState& state(std::uint32_t source) REQUIRES(mutex_);
  void bump_timeline(std::int64_t recv_ns) REQUIRES(mutex_);

  obs::MetricsRegistry registry_;  // must precede the metric references
  obs::Counter& offered_;
  obs::Counter& responded_;
  obs::Counter& admitted_;
  obs::Counter& rejected_;
  obs::Counter& shed_;
  obs::Counter& lost_gaps_;  // out-of-order + duplicate + unknown events
  obs::Histogram& latency_;
  obs::Histogram& admit_latency_;

  mutable util::Mutex mutex_;
  std::map<std::uint32_t, SourceState> sources_ GUARDED_BY(mutex_);
  std::vector<std::uint64_t> per_second_ GUARDED_BY(mutex_);
  const std::int64_t epoch_ns_;
};

}  // namespace lorasched::loadgen
