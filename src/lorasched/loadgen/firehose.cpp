#include "lorasched/loadgen/firehose.h"

#include <stdexcept>
#include <string>

#include "lorasched/util/rng.h"

namespace lorasched::loadgen {

TaskId encode_bid_id(std::uint32_t source, std::uint64_t seq) {
  if (source > kMaxBidSource) {
    throw std::invalid_argument("firehose source " + std::to_string(source) +
                                " exceeds the id-packing limit of " +
                                std::to_string(kMaxBidSource));
  }
  if (seq > kMaxBidSeq) {
    throw std::invalid_argument("firehose sequence " + std::to_string(seq) +
                                " exceeds the id-packing limit of " +
                                std::to_string(kMaxBidSeq));
  }
  return static_cast<TaskId>((static_cast<std::uint64_t>(source)
                              << kBidSeqBits) |
                             seq);
}

std::uint32_t bid_source(TaskId id) noexcept {
  return static_cast<std::uint32_t>(static_cast<std::uint32_t>(id) >>
                                    kBidSeqBits);
}

std::uint64_t bid_seq(TaskId id) noexcept {
  return static_cast<std::uint64_t>(id) & kMaxBidSeq;
}

std::uint64_t firehose_stream_seed(std::uint64_t seed,
                                   std::uint32_t source) noexcept {
  // splitmix64 over (seed, source) — sources get independent substreams
  // and the map is stable across platforms.
  std::uint64_t state = seed + 0x9e3779b97f4a7c15ull * (source + 1);
  return util::splitmix64(state);
}

BidFirehose::BidFirehose(FirehoseConfig config, const Cluster& cluster,
                         const EnergyModel& energy, const Marketplace& market)
    : config_(config),
      taskgen_(config.taskgen, cluster, energy, market,
               firehose_stream_seed(config.seed, config.source)),
      stream_seed_(firehose_stream_seed(config.seed, config.source)) {
  if (config_.source > kMaxBidSource) {
    throw std::invalid_argument("firehose source id out of range");
  }
  if (config_.horizon <= 0) {
    throw std::invalid_argument("firehose horizon must be positive");
  }
  if (config_.arrival_window < 0 || config_.arrival_window > config_.horizon) {
    throw std::invalid_argument(
        "firehose arrival window must lie within [0, horizon]");
  }
  if (config_.rate_per_slot < 0.0) {
    throw std::invalid_argument("firehose rate must be non-negative");
  }
}

std::vector<Task> BidFirehose::generate() {
  const Slot window = config_.arrival_window == 0 ? config_.horizon
                                                  : config_.arrival_window;
  const std::vector<double> rates =
      arrival_rates(config_.mix, window, config_.rate_per_slot, stream_seed_);
  // A dedicated substream for the arrival counts keeps them independent of
  // the task-body draws (which TaskGenerator keys off the task id).
  util::Rng arrivals(stream_seed_ ^ 0xa5a5a5a5a5a5a5a5ull);
  std::vector<Task> bids;
  std::uint64_t seq = 0;
  for (Slot t = 0; t < window; ++t) {
    const int count = arrivals.poisson(rates[static_cast<std::size_t>(t)]);
    for (int i = 0; i < count; ++i) {
      if (seq > kMaxBidSeq) {
        throw std::length_error(
            "firehose source exhausted its 2^24 sequence space");
      }
      bids.push_back(taskgen_.draw(encode_bid_id(config_.source, seq), t,
                                   config_.horizon));
      ++seq;
    }
  }
  return bids;
}

}  // namespace lorasched::loadgen
