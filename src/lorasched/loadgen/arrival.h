// Arrival shaping for the load-generation subsystem (DESIGN.md §14).
//
// Two concerns live here because every bid emitter in the repo needs both:
//  * arrival_rates() — seeded, deterministic per-slot Poisson rates for the
//    soak harness's workload mixes: constant-rate, on/off burst, diurnal
//    sinusoid, and the three Fig. 7 trace shapes (delegated to
//    workload/traces). Every mix is normalized so the mean per-slot rate
//    equals `base_rate`, making mixes comparable at equal offered load.
//  * pace_bids() — the one paced-emission loop shared by lorasched_feed
//    (line-delimited stdout), lorasched_firehose (framed wire submits), and
//    any future emitter: walk an arrival-sorted bid stream on a SlotClock
//    and hand each bid to a sink during its arrival slot. A zero period
//    degenerates to an immediate ordered replay.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "lorasched/types.h"
#include "lorasched/workload/task.h"
#include "lorasched/workload/traces.h"

namespace lorasched::loadgen {

/// Workload arrival mixes for the bid firehose. The trace-shaped entries
/// reuse the Fig. 7 shape generators (workload/traces.h).
enum class ArrivalMix {
  /// Homogeneous Poisson at base_rate per slot.
  kPoisson,
  /// On/off square wave: kBurstDuty of the slots carry base_rate/kBurstDuty,
  /// the rest are silent (mean = base_rate). Stresses queue backpressure.
  kBurst,
  /// Sinusoidal day shape: rate(t) = base * (1 + 0.8 sin(2πt/horizon)),
  /// clamped at 0 and renormalized to mean base_rate.
  kDiurnal,
  kMLaaS,
  kPhilly,
  kHelios,
};

/// Burst mix duty cycle: fraction of slots that are "on".
inline constexpr double kBurstDuty = 0.25;
/// Burst mix period in slots (one on/off cycle).
inline constexpr Slot kBurstPeriod = 12;

[[nodiscard]] const char* to_string(ArrivalMix mix) noexcept;
/// Parses "poisson|burst|diurnal|mlaas|philly|helios"; throws
/// std::invalid_argument on anything else.
[[nodiscard]] ArrivalMix parse_arrival_mix(const std::string& name);

/// Per-slot Poisson arrival rates for the mix; deterministic in every
/// argument and with mean ≈ base_rate over the horizon. `seed` only
/// matters for the trace shapes (their spike placement is seeded).
[[nodiscard]] std::vector<double> arrival_rates(ArrivalMix mix, Slot horizon,
                                                double base_rate,
                                                std::uint64_t seed);

/// Paced emission: walks `bids` (must be sorted by arrival slot) and calls
/// `emit` for each bid during its arrival slot, sleeping on an absolute
/// slot clock between slots (`period` zero = no sleeping, one ordered
/// burst). `on_slot_end`, when set, fires after each slot's bids were
/// emitted (feed uses it to flush the pipe once per slot). Returns the
/// number of bids emitted.
std::size_t pace_bids(const std::vector<Task>& bids,
                      std::chrono::nanoseconds period,
                      const std::function<void(const Task&)>& emit,
                      const std::function<void(Slot)>& on_slot_end = {});

}  // namespace lorasched::loadgen
