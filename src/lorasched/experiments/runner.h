// Multi-policy experiment runner: executes pdFTSP and the three baselines
// on an instance (or on several seeds in parallel) and reports welfare
// normalized to the best algorithm — the format of the paper's Figs. 4-9.
#pragma once

#include <string>
#include <vector>

#include "lorasched/experiments/scenario.h"
#include "lorasched/sim/engine.h"

namespace lorasched {

struct PolicyResult {
  std::string policy;
  Metrics metrics;
  /// Social welfare / best social welfare across compared policies.
  double normalized_welfare = 0.0;
  /// Per-task decision-time samples (seconds) — Fig. 13's raw data.
  std::vector<double> decide_seconds;
};

/// Which algorithms to run; all four by default.
struct RunSet {
  bool pdftsp = true;
  bool titan = true;
  bool eft = true;
  bool ntm = true;
};

/// Runs the selected policies on one instance. The same instance (tasks,
/// quotes, costs) is shared; each policy gets a fresh ledger.
[[nodiscard]] std::vector<PolicyResult> compare_policies(
    const Instance& instance, RunSet set = {},
    std::uint64_t baseline_seed = 1);

/// Averages `compare_policies` welfare across `seeds` scenario seeds
/// (scenario.seed is replaced per run); normalization is applied to the
/// averaged welfare. Runs seeds across the thread pool.
[[nodiscard]] std::vector<PolicyResult> compare_policies_averaged(
    ScenarioConfig scenario, const std::vector<std::uint64_t>& seeds,
    RunSet set = {});

}  // namespace lorasched
