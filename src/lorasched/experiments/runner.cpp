#include "lorasched/experiments/runner.h"

#include <algorithm>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "lorasched/baselines/eft.h"
#include "lorasched/baselines/ntm.h"
#include "lorasched/baselines/titan.h"
#include "lorasched/util/threadpool.h"

namespace lorasched {

namespace {

void normalize(std::vector<PolicyResult>& results) {
  double best = 0.0;
  for (const PolicyResult& r : results) {
    best = std::max(best, r.metrics.social_welfare);
  }
  for (PolicyResult& r : results) {
    r.normalized_welfare =
        best > 0.0 ? std::max(0.0, r.metrics.social_welfare) / best : 0.0;
  }
}

std::vector<std::unique_ptr<Policy>> build_policies(const Instance& instance,
                                                    const RunSet& set,
                                                    std::uint64_t seed) {
  std::vector<std::unique_ptr<Policy>> policies;
  if (set.pdftsp) {
    policies.push_back(std::make_unique<Pdftsp>(pdftsp_config_for(instance),
                                                instance.cluster,
                                                instance.energy,
                                                instance.horizon));
  }
  if (set.titan) {
    policies.push_back(std::make_unique<TitanPolicy>(TitanConfig{}, seed));
  }
  if (set.eft) policies.push_back(std::make_unique<EftPolicy>());
  if (set.ntm) policies.push_back(std::make_unique<NtmPolicy>(seed));
  return policies;
}

}  // namespace

std::vector<PolicyResult> compare_policies(const Instance& instance,
                                           RunSet set,
                                           std::uint64_t baseline_seed) {
  std::vector<PolicyResult> results;
  for (auto& policy : build_policies(instance, set, baseline_seed)) {
    const SimResult sim = run_simulation(instance, *policy);
    PolicyResult r;
    r.policy = std::string(policy->name());
    r.metrics = sim.metrics;
    r.decide_seconds.reserve(sim.outcomes.size());
    for (const TaskOutcome& o : sim.outcomes) {
      r.decide_seconds.push_back(o.decide_seconds);
    }
    results.push_back(std::move(r));
  }
  normalize(results);
  return results;
}

std::vector<PolicyResult> compare_policies_averaged(
    ScenarioConfig scenario, const std::vector<std::uint64_t>& seeds,
    RunSet set) {
  if (seeds.empty()) throw std::invalid_argument("need at least one seed");
  std::vector<std::vector<PolicyResult>> per_seed(seeds.size());
  util::ThreadPool pool;
  std::mutex failure_mutex;
  std::string failure;
  util::parallel_for(pool, 0, seeds.size(), [&](std::size_t i) {
    try {
      ScenarioConfig local = scenario;
      local.seed = seeds[i];
      const Instance instance = make_instance(local);
      per_seed[i] = compare_policies(instance, set, seeds[i] + 1);
    } catch (const std::exception& e) {
      const std::lock_guard<std::mutex> lock(failure_mutex);
      if (failure.empty()) failure = e.what();
    }
  });
  if (!failure.empty()) {
    throw std::runtime_error("seed run failed: " + failure);
  }

  // Average the metrics per policy (policies appear in identical order).
  std::vector<PolicyResult> averaged = per_seed.front();
  for (std::size_t s = 1; s < per_seed.size(); ++s) {
    if (per_seed[s].size() != averaged.size()) {
      throw std::logic_error("inconsistent policy sets across seeds");
    }
    for (std::size_t p = 0; p < averaged.size(); ++p) {
      Metrics& acc = averaged[p].metrics;
      const Metrics& add = per_seed[s][p].metrics;
      acc.social_welfare += add.social_welfare;
      acc.provider_utility += add.provider_utility;
      acc.user_utility += add.user_utility;
      acc.total_bids_admitted += add.total_bids_admitted;
      acc.total_payments += add.total_payments;
      acc.total_vendor_cost += add.total_vendor_cost;
      acc.total_energy_cost += add.total_energy_cost;
      acc.admitted += add.admitted;
      acc.rejected += add.rejected;
      acc.utilization += add.utilization;
      averaged[p].decide_seconds.insert(averaged[p].decide_seconds.end(),
                                        per_seed[s][p].decide_seconds.begin(),
                                        per_seed[s][p].decide_seconds.end());
    }
  }
  const double inv = 1.0 / static_cast<double>(per_seed.size());
  for (PolicyResult& r : averaged) {
    r.metrics.social_welfare *= inv;
    r.metrics.provider_utility *= inv;
    r.metrics.user_utility *= inv;
    r.metrics.total_bids_admitted *= inv;
    r.metrics.total_payments *= inv;
    r.metrics.total_vendor_cost *= inv;
    r.metrics.total_energy_cost *= inv;
    r.metrics.utilization *= inv;
  }
  normalize(averaged);
  return averaged;
}

}  // namespace lorasched
