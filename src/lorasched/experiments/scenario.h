// Experiment scenario assembly: turns a small declarative config into a
// full Instance (cluster + energy + marketplace + task arrivals) matching
// the paper's evaluation settings (§5.1), and derives the pdFTSP
// alpha/beta parameters per Lemma 2.
#pragma once

#include <cstdint>
#include <optional>

#include "lorasched/cluster/gpu_profile.h"
#include "lorasched/core/pdftsp.h"
#include "lorasched/sim/instance.h"
#include "lorasched/workload/deadlines.h"
#include "lorasched/workload/taskgen.h"
#include "lorasched/workload/traces.h"

namespace lorasched {

struct ScenarioConfig {
  int nodes = 50;
  FleetKind fleet = FleetKind::kHybrid;
  /// One day of 10-minute slots by default.
  Slot horizon = 144;
  /// Mean task arrivals per slot (paper: light/medium/high = 30/50/80 with
  /// 50-200 nodes; scale rate and nodes together to keep the load ratio).
  double arrival_rate = 10.0;
  /// When set, arrivals follow the trace shape instead of constant-rate.
  std::optional<TraceKind> trace;
  DeadlineKind deadline = DeadlineKind::kMedium;
  int vendors = 5;
  double prep_probability = 0.4;
  /// r_b — the shared pre-trained model's memory footprint (GB).
  double base_model_gb = 6.0;
  /// Failure injection: number of random node-outage windows to draw.
  int outages = 0;
  /// Length of each outage window in slots.
  Slot outage_duration = 12;
  std::uint64_t seed = 42;
  TaskGenConfig taskgen{};
  EnergyModel::Config energy{};
  Marketplace::Config market{};
};

/// Builds the complete instance; deterministic in the config.
[[nodiscard]] Instance make_instance(const ScenarioConfig& config);

/// Default dual-price scale for experiments. Lemma 2's alpha/beta are the
/// *worst-case* capacity-control constants; run at full strength they
/// reserve so much headroom for hypothetical top bids that average welfare
/// collapses (the paper does not state its experimental constants). The
/// default is calibrated so pdFTSP exhibits the paper's reported advantage;
/// bench/micro_core and the price-scale ablation in fig08 sweep it.
inline constexpr double kDefaultPriceScale = 0.01;

/// pdFTSP configuration for an instance: alpha/beta per Lemma 2 over the
/// instance's task population, scaled by `price_scale` (see above), plus
/// the welfare-unit money normalization.
[[nodiscard]] PdftspConfig pdftsp_config_for(
    const Instance& instance, double price_scale = kDefaultPriceScale);

}  // namespace lorasched
