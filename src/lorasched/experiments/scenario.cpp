#include "lorasched/experiments/scenario.h"

namespace lorasched {

Instance make_instance(const ScenarioConfig& config) {
  Cluster cluster(make_fleet(config.fleet, config.nodes),
                  config.base_model_gb);
  EnergyModel energy(config.energy);

  Marketplace::Config market_config = config.market;
  market_config.vendor_count = config.vendors;
  Marketplace market(market_config, config.seed ^ 0x6d61726b6574ull);

  TaskGenConfig gen_config = config.taskgen;
  gen_config.prep_probability = config.prep_probability;
  gen_config.deadline.kind = config.deadline;
  TaskGenerator generator(gen_config, cluster, energy, market,
                          config.seed ^ 0x7461736b73ull);

  std::vector<Task> tasks;
  if (config.trace.has_value()) {
    const auto rates = trace_rates(*config.trace, config.horizon,
                                   config.arrival_rate, config.seed);
    tasks = generator.generate(rates, config.horizon);
  } else {
    tasks = generator.generate_poisson(config.arrival_rate, config.horizon);
  }
  Instance instance(std::move(cluster), std::move(energy), std::move(market),
                    config.horizon, std::move(tasks));
  if (config.outages > 0) {
    util::Rng rng(config.seed ^ 0x6f757461676573ull);
    for (int i = 0; i < config.outages; ++i) {
      Outage outage;
      outage.node = static_cast<NodeId>(
          rng.uniform_int(0, instance.cluster.node_count() - 1));
      outage.from = static_cast<Slot>(rng.uniform_int(0, config.horizon - 1));
      outage.to = std::min<Slot>(config.horizon,
                                 outage.from + config.outage_duration);
      instance.outages.push_back(outage);
    }
  }
  return instance;
}

PdftspConfig pdftsp_config_for(const Instance& instance, double price_scale) {
  PdftspConfig config;
  config.alpha = std::max(
      1e-12, price_scale * alpha_bound(instance.tasks, instance.cluster));
  config.beta = std::max(
      1e-12, price_scale * beta_bound(instance.tasks, instance.cluster));
  config.welfare_unit =
      welfare_unit_estimate(instance.tasks, instance.cluster);
  return config;
}

}  // namespace lorasched
