// Shared primitive aliases used across all lorasched modules.
#pragma once

#include <cstdint>

namespace lorasched {

/// Discrete time slot index (the paper: 144 x 10-minute slots per day).
using Slot = std::int32_t;
/// Task (bid) identifier, dense from 0.
using TaskId = std::int32_t;
/// Compute-node identifier, dense from 0.
using NodeId = std::int32_t;
/// Labor-vendor index, dense from 0; -1 means "no vendor".
using VendorId = std::int32_t;
/// Monetary amounts (bids, payments, costs) in abstract currency units.
using Money = double;

inline constexpr VendorId kNoVendor = -1;

}  // namespace lorasched
