#include "lorasched/workload/taskgen.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lorasched {

TaskGenerator::TaskGenerator(TaskGenConfig config, const Cluster& cluster,
                             const EnergyModel& energy,
                             const Marketplace& market, std::uint64_t seed)
    : config_(std::move(config)),
      cluster_(cluster),
      energy_(energy),
      market_(market),
      rng_(seed) {
  if (config_.dataset_lo <= 0.0 || config_.dataset_hi < config_.dataset_lo) {
    throw std::invalid_argument("dataset bounds must satisfy 0 < lo <= hi");
  }
  if (config_.epochs_lo < 1 || config_.epochs_hi < config_.epochs_lo) {
    throw std::invalid_argument("epoch bounds must satisfy 1 <= lo <= hi");
  }
  if (config_.share_choices.empty()) {
    throw std::invalid_argument("need at least one compute-share choice");
  }
}

Money TaskGenerator::reference_cost(const Task& task) const {
  // Cheapest node in $/sample at the mid time-of-use multiplier.
  double best_cost = std::numeric_limits<double>::infinity();
  const double tou_mid = 0.5 * (energy_.config().off_peak_multiplier +
                                energy_.config().peak_multiplier);
  for (NodeId k = 0; k < cluster_.node_count(); ++k) {
    const auto& prof = cluster_.profile(k);
    // Cost attribution is proportional to the consumed share, so $/sample is
    // independent of the share: hourly_cost * hours_per_slot / C_kp.
    const double per_sample =
        prof.hourly_cost * tou_mid * energy_.config().hours_per_slot /
        prof.compute_per_slot;
    best_cost = std::min(best_cost, per_sample);
  }
  Money cost = best_cost * task.work;
  if (task.needs_prep) cost += market_.mean_price(task.dataset_samples);
  return cost;
}

Task TaskGenerator::draw(TaskId id, Slot arrival, Slot horizon) {
  util::Rng rng = rng_.substream(static_cast<std::uint64_t>(id));
  Task task;
  task.id = id;
  task.arrival = arrival;
  task.dataset_samples = rng.uniform(config_.dataset_lo, config_.dataset_hi);
  task.epochs = static_cast<int>(
      rng.uniform_int(config_.epochs_lo, config_.epochs_hi));
  task.work = task.dataset_samples * task.epochs;
  task.mem_gb = rng.uniform(config_.mem_lo_gb, config_.mem_hi_gb);
  task.compute_share = config_.share_choices[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(config_.share_choices.size()) - 1))];
  task.needs_prep = rng.bernoulli(config_.prep_probability);
  task.deadline = config_.deadline.draw(task, cluster_, horizon, rng);
  const double margin =
      rng.uniform(config_.value_margin_lo, config_.value_margin_hi);
  task.true_value = reference_cost(task) * margin;
  task.bid = task.true_value;
  return task;
}

std::vector<Task> TaskGenerator::generate_poisson(double rate_per_slot,
                                                  Slot horizon) {
  return generate(std::vector<double>(static_cast<std::size_t>(horizon),
                                      rate_per_slot),
                  horizon);
}

std::vector<Task> TaskGenerator::generate(const std::vector<double>& rates,
                                          Slot horizon) {
  if (static_cast<Slot>(rates.size()) != horizon) {
    throw std::invalid_argument("rate vector must cover the horizon");
  }
  std::vector<Task> tasks;
  TaskId next_id = 0;
  for (Slot t = 0; t < horizon; ++t) {
    const int count = rng_.poisson(rates[static_cast<std::size_t>(t)]);
    for (int j = 0; j < count; ++j) {
      tasks.push_back(draw(next_id++, t, horizon));
    }
  }
  return tasks;
}

namespace {

/// Fewest slots any single node needs for the task's work.
int min_slots(const Task& task, const Cluster& cluster) {
  double best_rate = 0.0;
  for (NodeId k = 0; k < cluster.node_count(); ++k) {
    best_rate = std::max(best_rate, cluster.task_rate(task, k));
  }
  if (best_rate <= 0.0) return 0;
  return static_cast<int>(std::ceil(task.work / best_rate));
}

}  // namespace

double alpha_bound(const std::vector<Task>& tasks, const Cluster& cluster) {
  double alpha = 0.0;
  for (const Task& task : tasks) {
    const int slots = min_slots(task, cluster);
    const double min_volume = slots * task.compute_share;
    if (min_volume > 0.0) alpha = std::max(alpha, task.bid / min_volume);
  }
  return alpha;
}

double beta_bound(const std::vector<Task>& tasks, const Cluster& cluster) {
  double cap_max = 0.0;
  for (NodeId k = 0; k < cluster.node_count(); ++k) {
    cap_max = std::max(cap_max, cluster.adapter_mem_capacity(k));
  }
  double beta = 0.0;
  for (const Task& task : tasks) {
    const int slots = min_slots(task, cluster);
    // Run-volume memory density (symmetric to alpha_bound). Lemma 2's
    // single-slot constant (slots = 1) is only needed for the worst-case
    // proof and over-prices memory by the run length in practice; hard
    // capacity is enforced by Alg. 1 line 8 regardless. See DESIGN.md §5.
    const double min_volume = slots * task.mem_gb / cap_max;
    if (min_volume > 0.0) beta = std::max(beta, task.bid / min_volume);
  }
  return beta;
}

double welfare_unit_estimate(const std::vector<Task>& tasks,
                             const Cluster& cluster) {
  double cap_min = std::numeric_limits<double>::infinity();
  for (NodeId k = 0; k < cluster.node_count(); ++k) {
    cap_min = std::min(cap_min, cluster.adapter_mem_capacity(k));
  }
  std::vector<double> densities;
  densities.reserve(tasks.size());
  for (const Task& task : tasks) {
    const int slots = min_slots(task, cluster);
    const double volume =
        slots * (task.compute_share + task.mem_gb / cap_min);
    if (volume > 0.0 && task.bid > 0.0) {
      densities.push_back(task.bid / volume);
    }
  }
  if (densities.empty()) return 1.0;
  std::nth_element(densities.begin(),
                   densities.begin() + static_cast<std::ptrdiff_t>(
                                           densities.size() / 4),
                   densities.end());
  // First-quartile density: schedules denser than this see b̄/κ >= 1; the
  // sparse tail is handled by the clamp in DualState::apply_update.
  return std::max(1e-9, densities[densities.size() / 4]);
}

}  // namespace lorasched
