#include "lorasched/workload/vendor.h"

#include <algorithm>
#include <stdexcept>

namespace lorasched {

Marketplace::Marketplace(Config config, std::uint64_t seed)
    : config_(config), base_rng_(seed) {
  if (config_.vendor_count <= 0) {
    throw std::invalid_argument("marketplace needs at least one vendor");
  }
  if (config_.price_lo < 0.0 || config_.price_hi < config_.price_lo) {
    throw std::invalid_argument("vendor prices must satisfy 0 <= lo <= hi");
  }
  if (config_.delay_lo < 0 || config_.delay_hi < config_.delay_lo) {
    throw std::invalid_argument("vendor delays must satisfy 0 <= lo <= hi");
  }
}

std::vector<VendorQuote> Marketplace::quotes(const Task& task) const {
  std::vector<VendorQuote> result;
  if (!task.needs_prep) return result;
  result.reserve(static_cast<std::size_t>(config_.vendor_count));
  util::Rng rng = base_rng_.substream(static_cast<std::uint64_t>(task.id));
  const int n = config_.vendor_count;
  for (int v = 0; v < n; ++v) {
    // Vendor v's position on the price/delay tradeoff: v=0 cheapest+slowest.
    const double pos = n == 1 ? 0.5 : static_cast<double>(v) / (n - 1);
    const double rate =
        config_.price_lo + pos * (config_.price_hi - config_.price_lo);
    const double jitter =
        1.0 + config_.price_jitter * (rng.uniform() * 2.0 - 1.0);
    const double delay_span = static_cast<double>(config_.delay_hi - config_.delay_lo);
    const Slot delay = config_.delay_lo +
                       static_cast<Slot>((1.0 - pos) * delay_span + 0.5) +
                       static_cast<Slot>(rng.uniform_int(0, 1));
    VendorQuote quote;
    quote.price = std::max(0.0, rate * (task.dataset_samples / 1000.0) * jitter);
    quote.delay = delay;
    result.push_back(quote);
  }
  return result;
}

Money Marketplace::mean_price(double dataset_samples) const noexcept {
  const double mid_rate = 0.5 * (config_.price_lo + config_.price_hi);
  return mid_rate * dataset_samples / 1000.0;
}

}  // namespace lorasched
