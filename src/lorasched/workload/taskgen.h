// Fine-tuning task generator.
//
// Mirrors the paper's evaluation settings (§5.1): datasets uniform in
// [5k, 20k] samples (Samsum-like), 1-5 epochs, per-task adapter memory, and
// bids calibrated against the cheapest achievable operational cost so that
// the admission decision is economically non-trivial (some bids are below
// cost and *should* lose the auction).
#pragma once

#include <cstdint>
#include <vector>

#include "lorasched/cluster/cluster.h"
#include "lorasched/cluster/energy.h"
#include "lorasched/types.h"
#include "lorasched/util/rng.h"
#include "lorasched/workload/deadlines.h"
#include "lorasched/workload/task.h"
#include "lorasched/workload/vendor.h"

namespace lorasched {

struct TaskGenConfig {
  double dataset_lo = 5000.0;
  double dataset_hi = 20000.0;
  int epochs_lo = 1;
  int epochs_hi = 5;
  double mem_lo_gb = 2.0;
  double mem_hi_gb = 8.0;
  /// Batch-size-derived node shares tasks can request; s_ik = share * C_kp.
  std::vector<double> share_choices = {0.125, 0.25, 0.5};
  /// P(task needs data pre-processing) — f_i.
  double prep_probability = 0.4;
  /// Bid = reference cost * margin, margin ~ U[lo, hi]; margins below 1
  /// produce bids that should be rejected on economics alone.
  double value_margin_lo = 0.7;
  double value_margin_hi = 3.2;
  DeadlineModel deadline{};
};

class TaskGenerator {
 public:
  TaskGenerator(TaskGenConfig config, const Cluster& cluster,
                const EnergyModel& energy, const Marketplace& market,
                std::uint64_t seed);

  /// One task arriving at `arrival`; deterministic in (seed, id).
  [[nodiscard]] Task draw(TaskId id, Slot arrival, Slot horizon);

  /// Homogeneous Poisson arrivals with the given per-slot rate.
  [[nodiscard]] std::vector<Task> generate_poisson(double rate_per_slot,
                                                   Slot horizon);

  /// Inhomogeneous Poisson arrivals with per-slot rates (e.g. trace shapes).
  [[nodiscard]] std::vector<Task> generate(const std::vector<double>& rates,
                                           Slot horizon);

  /// Cheapest plausible cost of serving the task (fastest node, mid
  /// time-of-use price, mean vendor quote if prep is needed); the bid
  /// anchor.
  [[nodiscard]] Money reference_cost(const Task& task) const;

 private:
  TaskGenConfig config_;
  const Cluster& cluster_;
  const EnergyModel& energy_;
  const Marketplace& market_;
  util::Rng rng_;
};

/// Lemma 2's capacity-control parameters over a concrete task population,
/// in the normalized resource units the dual state uses (see duals.h):
///  * alpha = max_i b_i / S̃_i, where S̃_i = ceil(M_i / max_k s_ik) * share_i
///    is the smallest normalized compute volume any schedule of task i can
///    book — once λ_kt >= alpha, no schedule touching (k, t) has F > 0;
///  * beta = max_i b_i / r̃_i, where r̃_i = r_i / max_k (C_km − r_b) is the
///    smallest normalized memory volume (a single slot on the roomiest
///    node).
[[nodiscard]] double alpha_bound(const std::vector<Task>& tasks,
                                 const Cluster& cluster);
[[nodiscard]] double beta_bound(const std::vector<Task>& tasks,
                                const Cluster& cluster);

/// Money normalization κ for the dual update: a low quantile of the task
/// population's unit-welfare densities, so that b̄/κ >= 1 for almost every
/// schedule the algorithm admits (Lemma 2's scaled-units assumption).
[[nodiscard]] double welfare_unit_estimate(const std::vector<Task>& tasks,
                                           const Cluster& cluster);

}  // namespace lorasched
