#include "lorasched/workload/traces.h"

#include <cmath>
#include <stdexcept>

#include "lorasched/util/rng.h"

namespace lorasched {

std::string to_string(TraceKind kind) {
  switch (kind) {
    case TraceKind::kMLaaS: return "MLaaS";
    case TraceKind::kPhilly: return "Philly";
    case TraceKind::kHelios: return "Helios";
  }
  throw std::logic_error("unknown TraceKind");
}

namespace {

constexpr double kTwoPi = 2.0 * 3.14159265358979323846;

/// Fraction of the day for slot t when the horizon covers one day.
double day_fraction(Slot t, Slot horizon) {
  return static_cast<double>(t) / static_cast<double>(horizon);
}

void normalize_to_mean(std::vector<double>& rates, double target_mean) {
  double total = 0.0;
  for (double r : rates) total += r;
  if (total <= 0.0) throw std::logic_error("trace produced a zero rate curve");
  const double scale =
      target_mean * static_cast<double>(rates.size()) / total;
  for (double& r : rates) r *= scale;
}

}  // namespace

std::vector<double> trace_rates(TraceKind kind, Slot horizon, double base_rate,
                                std::uint64_t seed) {
  if (horizon <= 0) throw std::invalid_argument("horizon must be positive");
  if (base_rate < 0.0) throw std::invalid_argument("negative base rate");
  std::vector<double> rates(static_cast<std::size_t>(horizon), 0.0);
  util::Rng rng(seed ^ 0x7261746573ull);

  switch (kind) {
    case TraceKind::kMLaaS: {
      // Heavy steady floor with a mild afternoon swell and light noise.
      for (Slot t = 0; t < horizon; ++t) {
        const double day = day_fraction(t, horizon);
        const double diurnal = 1.0 + 0.25 * std::sin(kTwoPi * (day - 0.3));
        rates[static_cast<std::size_t>(t)] =
            diurnal * (0.9 + 0.2 * rng.uniform());
      }
      break;
    }
    case TraceKind::kPhilly: {
      // Business-hours peak: two Gaussian bumps (10:00 and 15:30) on a low
      // overnight floor.
      for (Slot t = 0; t < horizon; ++t) {
        const double day = day_fraction(t, horizon);
        auto bump = [day](double center, double width, double height) {
          const double d = (day - center) / width;
          return height * std::exp(-0.5 * d * d);
        };
        rates[static_cast<std::size_t>(t)] =
            (0.25 + bump(10.0 / 24.0, 0.07, 1.8) +
             bump(15.5 / 24.0, 0.09, 1.5)) *
            (0.9 + 0.2 * rng.uniform());
      }
      break;
    }
    case TraceKind::kHelios: {
      // Moderate floor plus seeded submission bursts (3-5x for 2-4 slots).
      for (Slot t = 0; t < horizon; ++t) {
        rates[static_cast<std::size_t>(t)] = 0.6 + 0.1 * rng.uniform();
      }
      const int bursts = static_cast<int>(rng.uniform_int(6, 10));
      for (int b = 0; b < bursts; ++b) {
        const Slot start = static_cast<Slot>(rng.uniform_int(0, horizon - 1));
        const Slot len = static_cast<Slot>(rng.uniform_int(2, 4));
        const double height = rng.uniform(3.0, 5.0);
        for (Slot t = start; t < std::min<Slot>(horizon, start + len); ++t) {
          rates[static_cast<std::size_t>(t)] += height;
        }
      }
      break;
    }
  }
  normalize_to_mean(rates, base_rate);
  return rates;
}

}  // namespace lorasched
