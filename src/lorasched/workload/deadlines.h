// Deadline generation (paper Fig. 9: tight / medium / slack).
//
// A task's minimum runtime is ceil(M_i / max_k s_ik) slots; the deadline is
// arrival + prep allowance + slack_factor * minimum runtime (+ jitter),
// clamped to the horizon. Tight deadlines force execution at whatever the
// current operational cost is; slack deadlines let the scheduler chase
// off-peak slots.
#pragma once

#include <string>

#include "lorasched/cluster/cluster.h"
#include "lorasched/types.h"
#include "lorasched/util/rng.h"
#include "lorasched/workload/task.h"

namespace lorasched {

enum class DeadlineKind { kTight, kMedium, kSlack };

[[nodiscard]] std::string to_string(DeadlineKind kind);

struct DeadlineModel {
  DeadlineKind kind = DeadlineKind::kMedium;
  /// Extra slots budgeted for possible data pre-processing.
  Slot prep_allowance = 8;

  [[nodiscard]] double slack_factor() const noexcept;

  /// Minimum number of slots the task needs on its fastest node.
  [[nodiscard]] static Slot min_runtime_slots(const Task& task,
                                              const Cluster& cluster);

  /// Draws a deadline for the task (requires arrival/work/compute_share to
  /// be set); result is clamped to [arrival + 1, horizon - 1].
  [[nodiscard]] Slot draw(const Task& task, const Cluster& cluster,
                          Slot horizon, util::Rng& rng) const;
};

}  // namespace lorasched
