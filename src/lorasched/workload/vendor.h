// Data pre-processing marketplace.
//
// When an admitted task has f_i = 1, the provider must select exactly one
// labor vendor n, pay its price q_in, and wait h_in slots before fine-tuning
// can start (paper constraints (4a) and (4c)). Vendors quote per task:
// cheap vendors are slow, fast vendors are expensive, so vendor choice
// interacts with deadlines and with time-of-use energy prices.
#pragma once

#include <vector>

#include "lorasched/types.h"
#include "lorasched/util/rng.h"
#include "lorasched/workload/task.h"

namespace lorasched {

/// One vendor's offer for one task: price q_in and delay h_in.
struct VendorQuote {
  Money price = 0.0;
  Slot delay = 0;
};

class Marketplace {
 public:
  struct Config {
    int vendor_count = 5;
    /// Vendor base price per 1000 dataset samples, spread across vendors
    /// between `price_lo` (slowest vendor) and `price_hi` (fastest vendor).
    double price_lo = 0.05;
    double price_hi = 0.18;
    /// Delay in slots, spread from `delay_hi` (cheapest) down to `delay_lo`.
    Slot delay_lo = 1;
    Slot delay_hi = 8;
    /// Multiplicative jitter applied per (task, vendor) quote.
    double price_jitter = 0.2;
  };

  Marketplace(Config config, std::uint64_t seed);

  [[nodiscard]] int vendor_count() const noexcept { return config_.vendor_count; }

  /// Quotes for all vendors for this task; deterministic in (seed, task.id).
  /// Empty when the task needs no pre-processing.
  [[nodiscard]] std::vector<VendorQuote> quotes(const Task& task) const;

  /// Mean quoted price for a task of the given dataset size (used for bid
  /// calibration by the task generator).
  [[nodiscard]] Money mean_price(double dataset_samples) const noexcept;

  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  Config config_;
  util::Rng base_rng_;
};

}  // namespace lorasched
