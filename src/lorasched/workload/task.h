// The fine-tuning task (bid) record — the paper's {a_i, d_i, D_i, r_i, M_i,
// f_i, b_i} tuple plus the batch-derived compute share used to derive the
// per-node rate s_ik.
#pragma once

#include "lorasched/types.h"

namespace lorasched {

struct Task {
  TaskId id = 0;
  /// Arrival slot a_i; the provider must decide at this slot.
  Slot arrival = 0;
  /// Deadline slot d_i (inclusive); all execution must satisfy t <= d_i.
  Slot deadline = 0;
  /// |D_i| — number of training samples in the task's dataset.
  double dataset_samples = 0.0;
  /// Number of fine-tuning epochs (paper: uniform in {1..5}).
  int epochs = 1;
  /// M_i — total computation demand in samples (dataset_samples * epochs).
  double work = 0.0;
  /// r_i — GPU memory the task's LoRA adapter state needs, in GB.
  double mem_gb = 0.0;
  /// Fraction of a node's per-slot sample throughput this task consumes when
  /// running (set by the task's batch size); s_ik = compute_share * C_kp.
  double compute_share = 0.25;
  /// f_i — whether the dataset must be pre-processed by a labor vendor first.
  bool needs_prep = false;
  /// Which pre-trained model the task fine-tunes (paper §2.1: tasks for
  /// different base models run in different cluster "zones"). Index into
  /// the MultiZoneAuction's zone list; single-zone setups leave it 0.
  int model = 0;
  /// b_i — the bidding price submitted with the task.
  Money bid = 0.0;
  /// v_i — the user's true valuation. Under truthful bidding bid == value;
  /// the truthfulness experiments perturb `bid` while keeping `true_value`.
  Money true_value = 0.0;
};

}  // namespace lorasched
