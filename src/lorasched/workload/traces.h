// Arrival-rate shapes for the Fig. 7 trace experiments.
//
// The paper replays per-slot arrival counts from three public cluster
// traces: MLaaS (Alibaba), Philly (Microsoft) and Helios (SenseTime). The
// raw traces are not redistributable, so we substitute shape generators
// reproducing each trace's published diurnal character (see DESIGN.md §3):
//   * MLaaS  — high volume, mild diurnality, steady submission floor;
//   * Philly — pronounced business-hours peak, quiet nights;
//   * Helios — bursty: a moderate floor punctuated by submission spikes.
// Every generator is normalized so the mean per-slot rate equals
// `base_rate`, making the three traces comparable at equal load.
#pragma once

#include <string>
#include <vector>

#include "lorasched/types.h"

namespace lorasched {

enum class TraceKind { kMLaaS, kPhilly, kHelios };

[[nodiscard]] std::string to_string(TraceKind kind);

/// Per-slot Poisson arrival rates for the trace shape; deterministic in
/// (kind, horizon, base_rate, seed) and with mean ≈ base_rate.
[[nodiscard]] std::vector<double> trace_rates(TraceKind kind, Slot horizon,
                                              double base_rate,
                                              std::uint64_t seed);

}  // namespace lorasched
