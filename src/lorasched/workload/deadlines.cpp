#include "lorasched/workload/deadlines.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lorasched {

std::string to_string(DeadlineKind kind) {
  switch (kind) {
    case DeadlineKind::kTight: return "tight";
    case DeadlineKind::kMedium: return "medium";
    case DeadlineKind::kSlack: return "slack";
  }
  throw std::logic_error("unknown DeadlineKind");
}

double DeadlineModel::slack_factor() const noexcept {
  switch (kind) {
    case DeadlineKind::kTight: return 1.3;
    case DeadlineKind::kMedium: return 2.5;
    case DeadlineKind::kSlack: return 5.0;
  }
  return 2.5;
}

Slot DeadlineModel::min_runtime_slots(const Task& task, const Cluster& cluster) {
  double best_rate = 0.0;
  for (NodeId k = 0; k < cluster.node_count(); ++k) {
    best_rate = std::max(best_rate, cluster.task_rate(task, k));
  }
  if (best_rate <= 0.0) throw std::invalid_argument("task has zero rate");
  return static_cast<Slot>(std::ceil(task.work / best_rate));
}

Slot DeadlineModel::draw(const Task& task, const Cluster& cluster, Slot horizon,
                         util::Rng& rng) const {
  const Slot base = min_runtime_slots(task, cluster);
  const double factor = slack_factor() * rng.uniform(0.85, 1.15);
  Slot span = static_cast<Slot>(std::ceil(static_cast<double>(base) * factor));
  if (task.needs_prep) span += prep_allowance;
  Slot deadline = task.arrival + std::max<Slot>(1, span);
  return std::clamp<Slot>(deadline, task.arrival + 1, horizon - 1);
}

}  // namespace lorasched
