// ShardPlanner — partitions the heterogeneous node fleet into K disjoint
// shards, each served by its own independent pdFTSP instance (DESIGN.md
// §10). The planner balances two things at once:
//
//  * capacity — total compute per slot is spread as evenly as the node
//    granularity allows (greedy least-loaded assignment, largest classes
//    first), so no shard becomes the structural bottleneck;
//  * GPU-type mix — nodes are assigned class by class, so every shard gets
//    its proportional share of each GPU type and the per-shard schedule DP
//    sees the same speed/memory trade-offs the global DP would.
//
// Within a shard, nodes keep their *global* ascending id order. That makes
// the K=1 plan the identity partition: the shard's sub-cluster is the
// original cluster node for node, which is what lets a 1-shard
// ShardedService reproduce the monolithic engine bit-identically
// (tests/test_shard.cpp pins this).
#pragma once

#include <vector>

#include "lorasched/cluster/cluster.h"
#include "lorasched/types.h"

namespace lorasched::shard {

/// One partition of the fleet: shard s owns global nodes `nodes[s]`
/// (ascending, disjoint, covering every node exactly once).
struct ShardPlan {
  std::vector<std::vector<NodeId>> nodes;

  [[nodiscard]] int shard_count() const noexcept {
    return static_cast<int>(nodes.size());
  }
};

/// Static per-shard capability summary the router prices bids against:
/// which GPU classes a shard owns and what one node of each class can do.
/// Classes are indexed by the *global* cluster's class ids, so price-board
/// summaries from different shards line up.
struct ShardTopology {
  struct ClassInfo {
    /// C_kp of one node of this class (samples per slot).
    double compute_per_slot = 0.0;
    /// C_km − r_b of one node of this class (GB available to adapters).
    double adapter_mem_gb = 0.0;
  };
  /// Per global class, the representative node's capabilities.
  std::vector<ClassInfo> classes;
  /// [shard][class] -> number of nodes of that class in the shard.
  std::vector<std::vector<int>> shard_class_nodes;

  [[nodiscard]] int class_count() const noexcept {
    return static_cast<int>(classes.size());
  }
  [[nodiscard]] int shard_count() const noexcept {
    return static_cast<int>(shard_class_nodes.size());
  }
};

class ShardPlanner {
 public:
  /// Partitions `cluster` into `shards` non-empty shards. Throws
  /// std::invalid_argument unless 1 <= shards <= node_count. Deterministic
  /// in the cluster alone (no RNG): class by class (largest node count
  /// first, ties by class id), each node goes to the shard with the least
  /// assigned compute (ties: fewer nodes, then lower shard id).
  [[nodiscard]] static ShardPlan plan(const Cluster& cluster, int shards);

  /// The sub-cluster a shard serves: the selected nodes' profiles in the
  /// given order (ascending global id for planner output), same shared
  /// base-model footprint. Local NodeId i maps to global `nodes[i]`.
  [[nodiscard]] static Cluster sub_cluster(const Cluster& cluster,
                                           const std::vector<NodeId>& nodes);

  /// Router-facing summary of a plan (global class ids).
  [[nodiscard]] static ShardTopology topology(const Cluster& cluster,
                                              const ShardPlan& plan);
};

}  // namespace lorasched::shard
