#include "lorasched/shard/shard_planner.h"

#include <algorithm>
#include <stdexcept>

namespace lorasched::shard {

ShardPlan ShardPlanner::plan(const Cluster& cluster, int shards) {
  const int nodes = cluster.node_count();
  if (shards < 1 || shards > nodes) {
    throw std::invalid_argument(
        "shard count must be between 1 and the node count");
  }

  // Classes with more nodes are split first: they have the finest
  // granularity, so later (coarser) classes land on whatever imbalance is
  // left and the greedy stays near-optimal.
  std::vector<int> class_order(static_cast<std::size_t>(cluster.class_count()));
  for (std::size_t c = 0; c < class_order.size(); ++c) {
    class_order[c] = static_cast<int>(c);
  }
  std::stable_sort(class_order.begin(), class_order.end(), [&](int a, int b) {
    return cluster.class_nodes(a).size() > cluster.class_nodes(b).size();
  });

  ShardPlan plan;
  plan.nodes.resize(static_cast<std::size_t>(shards));
  std::vector<double> assigned_compute(static_cast<std::size_t>(shards), 0.0);
  std::vector<std::size_t> assigned_nodes(static_cast<std::size_t>(shards), 0);

  for (const int cls : class_order) {
    for (const NodeId k : cluster.class_nodes(cls)) {
      int target = 0;
      for (int s = 1; s < shards; ++s) {
        const auto si = static_cast<std::size_t>(s);
        const auto ti = static_cast<std::size_t>(target);
        if (assigned_compute[si] < assigned_compute[ti] ||
            (assigned_compute[si] == assigned_compute[ti] &&
             assigned_nodes[si] < assigned_nodes[ti])) {
          target = s;
        }
      }
      const auto ti = static_cast<std::size_t>(target);
      plan.nodes[ti].push_back(k);
      assigned_compute[ti] += cluster.compute_capacity(k);
      ++assigned_nodes[ti];
    }
  }

  // Global ascending id order inside each shard (K=1 => identity plan).
  for (auto& members : plan.nodes) {
    std::sort(members.begin(), members.end());
  }
  return plan;
}

Cluster ShardPlanner::sub_cluster(const Cluster& cluster,
                                  const std::vector<NodeId>& nodes) {
  if (nodes.empty()) {
    throw std::invalid_argument("shard sub-cluster needs at least one node");
  }
  std::vector<GpuProfile> profiles;
  profiles.reserve(nodes.size());
  for (const NodeId k : nodes) profiles.push_back(cluster.profile(k));
  return Cluster(std::move(profiles), cluster.base_model_gb());
}

ShardTopology ShardPlanner::topology(const Cluster& cluster,
                                     const ShardPlan& plan) {
  ShardTopology topo;
  topo.classes.resize(static_cast<std::size_t>(cluster.class_count()));
  for (int c = 0; c < cluster.class_count(); ++c) {
    const NodeId rep = cluster.class_representative(c);
    auto& info = topo.classes[static_cast<std::size_t>(c)];
    info.compute_per_slot = cluster.compute_capacity(rep);
    info.adapter_mem_gb = cluster.adapter_mem_capacity(rep);
  }
  topo.shard_class_nodes.assign(
      plan.nodes.size(),
      std::vector<int>(static_cast<std::size_t>(cluster.class_count()), 0));
  for (std::size_t s = 0; s < plan.nodes.size(); ++s) {
    for (const NodeId k : plan.nodes[s]) {
      ++topo.shard_class_nodes[s][static_cast<std::size_t>(
          cluster.node_class(k))];
    }
  }
  return topo;
}

}  // namespace lorasched::shard
