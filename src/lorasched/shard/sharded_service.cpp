#include "lorasched/shard/sharded_service.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "lorasched/obs/span.h"
#include "lorasched/service/slot_clock.h"
#include "lorasched/sim/validator.h"
#include "lorasched/util/timing.h"

namespace lorasched::shard {

namespace {

/// Rewrites a shard-local schedule onto fleet node ids.
Schedule to_fleet(Schedule schedule, const std::vector<NodeId>& to_global) {
  for (Assignment& a : schedule.run) {
    a.node = to_global[static_cast<std::size_t>(a.node)];
  }
  return schedule;
}

}  // namespace

HandleFactory local_handles(PolicyFactory factory) {
  return [factory = std::move(factory)](
             int shard_id, std::vector<NodeId> members,
             const ShardContext& ctx) -> std::unique_ptr<ShardHandle> {
    return std::make_unique<ShardRunner>(
        shard_id, ctx.fleet, std::move(members), ctx.energy, ctx.market,
        ctx.horizon, factory, ctx.board, ctx.config.inbox_capacity,
        ctx.config.time_decisions);
  };
}

ShardedService::ShardedService(const Instance& env,
                               const PolicyFactory& factory,
                               ShardedConfig config)
    : ShardedService(env, local_handles(factory), config) {}

ShardedService::ShardedService(const Instance& env,
                               const HandleFactory& handles,
                               ShardedConfig config)
    : cluster_(env.cluster),
      energy_(env.energy),
      market_(env.market),
      horizon_(env.horizon),
      config_(config),
      plan_(ShardPlanner::plan(cluster_, config.shards)),
      board_(config.shards, cluster_.class_count()),
      router_(RouterConfig{config.reroute_attempts, config.router_seed},
              ShardPlanner::topology(cluster_, plan_)),
      queue_(config.queue_capacity, config.backpressure) {
  if (horizon_ <= 0) {
    throw std::invalid_argument("service horizon must be positive");
  }
  init_shards(env, handles);
  reroutes_total_ = &metrics_.registry().counter(
      "lorasched_router_reroutes_total",
      "Bids the router re-offered to another shard at least once "
      "(second chance)");
  reroute_admits_total_ = &metrics_.registry().counter(
      "lorasched_router_reroute_admits_total",
      "Rerouted bids eventually admitted by a non-first-choice shard");
  failovers_total_ = &metrics_.registry().counter(
      "lorasched_router_failovers_total",
      "Bid offers moved off a dead shard (no reroute budget consumed)");
  reroute_ratio_ = &metrics_.registry().gauge(
      "lorasched_router_reroute_ratio",
      "Fraction of routed bids re-offered at least once, over the run");
  const obs::HistogramOptions phase_options{.min = 1e-6, .max = 10.0};
  phase_arm_ = &metrics_.registry().histogram(
      "lorasched_round_arm_seconds", phase_options,
      "Per re-offer round: arming every shard with work (begin_round)");
  phase_offer_ = &metrics_.registry().histogram(
      "lorasched_round_offer_seconds", phase_options,
      "Per re-offer round: feeding every armed shard's inbox");
  phase_decide_ = &metrics_.registry().histogram(
      "lorasched_round_decide_seconds", phase_options,
      "Per re-offer round: waiting out every shard's decisions");
  phase_publish_ = &metrics_.registry().histogram(
      "lorasched_round_publish_seconds", phase_options,
      "Per slot: refreshing prices of shards that sat the slot out");
  queue_.register_metrics(metrics_.registry());
}

void ShardedService::init_shards(const Instance& env,
                                 const HandleFactory& handles) {
  const ShardContext ctx{cluster_, energy_, market_,
                         horizon_,  board_,  config_};
  owner_.assign(static_cast<std::size_t>(cluster_.node_count()), {-1, -1});
  shards_.reserve(plan_.nodes.size());
  for (std::size_t s = 0; s < plan_.nodes.size(); ++s) {
    const std::vector<NodeId>& members = plan_.nodes[s];
    for (std::size_t local = 0; local < members.size(); ++local) {
      owner_[static_cast<std::size_t>(members[local])] = {
          static_cast<int>(s), static_cast<NodeId>(local)};
    }
    shards_.push_back(handles(static_cast<int>(s), members, ctx));
  }
  // Failure calendar, mapped into the owning shard's ledger — the union of
  // the shard ledgers is exactly the monolithic service's blocked set.
  for (const Outage& outage : env.outages) {
    const auto [shard, local] = owner_[static_cast<std::size_t>(outage.node)];
    for (Slot t = std::max<Slot>(0, outage.from);
         t < std::min<Slot>(horizon_, outage.to); ++t) {
      shards_[static_cast<std::size_t>(shard)]->block(local, t);
    }
  }
  // Seed the board so slot-0 routing sees real free capacity, not the
  // "nothing published" placeholder.
  for (const auto& shard : shards_) shard->publish(0);
  // Every shard registers the same DP cache-metric names, so hits/misses
  // aggregate fleet-wide in this service's registry.
  for (const auto& shard : shards_) {
    shard->register_dp_metrics(metrics_.registry());
  }
}

service::SubmitResult ShardedService::submit(const Task& bid) {
  dirty_.store(true, std::memory_order_relaxed);
  const service::SubmitResult result = queue_.submit(bid);
  if (result == service::SubmitResult::kAccepted) metrics_.record_ingest();
  return result;
}

void ShardedService::add_subscriber(service::DecisionSubscriber* subscriber) {
  if (subscriber != nullptr) subscribers_.push_back(subscriber);
}

void ShardedService::reject_late(const Task& bid) {
  TaskOutcome outcome;
  outcome.task = bid.id;
  outcome.bid = bid.bid;
  outcome.true_value = bid.true_value;
  outcome.arrival = bid.arrival;
  sim_metrics_.add_rejected();
  metrics_.record_rejected_late();
  outcomes_.push_back(outcome);
  schedules_.push_back(Schedule{});
  for (service::DecisionSubscriber* sub : subscribers_) {
    sub->on_rejected(outcome);
  }
}

void ShardedService::pump() {
  dirty_.store(true, std::memory_order_relaxed);
  for (Task& bid : queue_.drain()) {
    held_[bid.arrival].push_back(std::move(bid));
  }
}

void ShardedService::step() {
  if (finished_ || next_slot_ >= horizon_) {
    throw std::logic_error("sharded service stepped past its horizon");
  }
  LORASCHED_SPAN("shard/step");
  dirty_.store(true, std::memory_order_relaxed);
  const Slot now = next_slot_;

  const std::vector<Task> drained = queue_.drain();
  const std::size_t queue_depth = queue_.depth();

  // Identical batch assembly to AdmissionService::step() — a prerequisite
  // for the 1-shard bit-identity guarantee.
  std::vector<Task> batch;
  for (auto it = held_.begin(); it != held_.end() && it->first <= now;
       it = held_.erase(it)) {
    for (Task& bid : it->second) batch.push_back(std::move(bid));
  }
  for (const Task& bid : drained) {
    if (bid.arrival > now) {
      held_[bid.arrival].push_back(bid);
    } else {
      batch.push_back(bid);
    }
  }
  std::erase_if(batch, [&](const Task& bid) {
    if (bid.arrival >= now) return false;
    if (config_.late_bids == service::LateBidMode::kReject) {
      reject_late(bid);
      return true;
    }
    return false;
  });
  for (Task& bid : batch) bid.arrival = now;  // no-op except clamped bids

  std::stable_sort(batch.begin(), batch.end(),
                   [](const Task& a, const Task& b) { return a.id < b.id; });

  decide_batch(now, batch, drained.size(), queue_depth);
  ++next_slot_;
}

void ShardedService::decide_batch(Slot now, std::vector<Task>& batch,
                                  std::size_t drained,
                                  std::size_t queue_depth) {
  const std::uint64_t rerouted_before = rerouted_bids_;
  const std::uint64_t admits_before = reroute_admits_;
  const std::uint64_t failovers_before = failover_bids_;
  double batch_seconds = 0.0;
  if (!batch.empty()) {
    const int shards = shard_count();
    const util::Stopwatch watch;

    // One consistent price read per slot; every ranking this slot uses it.
    std::vector<PriceSnapshot> prices;
    prices.reserve(static_cast<std::size_t>(shards));
    for (int s = 0; s < shards; ++s) prices.push_back(board_.read(s));

    struct Item {
      Task task;
      std::vector<int> ranking;
      std::size_t choice = 0;  // index into ranking of the current offer
      /// Ranking steps taken because the shard was dead, not because it
      /// rejected — they don't consume the second-chance budget, so a
      /// healthy run (credits always 0) behaves exactly as before.
      std::size_t credits = 0;
      double decide_seconds = 0.0;
    };
    std::vector<Item> items;
    items.reserve(batch.size());
    for (Task& task : batch) {
      Item item;
      item.ranking = router_.rank(task, prices);
      item.task = std::move(task);
      items.push_back(std::move(item));
    }
    routed_bids_ += items.size();

    // Advances the item's choice past dead shards, free of budget.
    const auto skip_dead = [&](Item& item) {
      while (item.choice < item.ranking.size() &&
             !shards_[static_cast<std::size_t>(
                          item.ranking[item.choice])]
                  ->alive()) {
        ++item.choice;
        ++item.credits;
      }
    };

    struct Final {
      std::size_t item = 0;
      int shard = -1;  // admitting shard; -1 = final reject
      Decision decision;
    };
    std::vector<Final> finals;
    finals.reserve(items.size());

    // offers[s] = item indices this round, ascending (== ascending task id,
    // the monolithic batch order within each shard's sub-batch).
    std::vector<std::vector<std::size_t>> offers(
        static_cast<std::size_t>(shards));
    std::vector<char> touched(static_cast<std::size_t>(shards), 0);
    for (std::size_t i = 0; i < items.size(); ++i) {
      skip_dead(items[i]);
      if (items[i].choice < items[i].ranking.size()) {
        offers[static_cast<std::size_t>(items[i].ranking[items[i].choice])]
            .push_back(i);
      } else {
        finals.push_back(Final{i, -1, Decision{}});  // no live shard left
      }
    }

    for (;;) {
      bool any = false;
      for (const auto& sub : offers) any = any || !sub.empty();
      if (!any) break;

      // Arm every shard with work *before* feeding any inbox: the runners
      // drain concurrently, so sub-batches larger than the inbox capacity
      // cannot deadlock, and the shards decide this round in parallel. A
      // shard dying at any point this round (arm, feed, or wait) fails over
      // its whole sub-batch instead of failing the slot.
      std::vector<char> down(static_cast<std::size_t>(shards), 0);
      const util::Stopwatch arm_watch;
      for (int s = 0; s < shards; ++s) {
        const auto& sub = offers[static_cast<std::size_t>(s)];
        if (sub.empty()) continue;
        try {
          shards_[static_cast<std::size_t>(s)]->begin_round(now, sub.size());
          touched[static_cast<std::size_t>(s)] = 1;
        } catch (const ShardUnavailable&) {
          down[static_cast<std::size_t>(s)] = 1;
        }
      }
      phase_arm_->record(arm_watch.seconds());
      const util::Stopwatch offer_watch;
      for (int s = 0; s < shards; ++s) {
        if (down[static_cast<std::size_t>(s)] != 0) continue;
        try {
          for (const std::size_t i : offers[static_cast<std::size_t>(s)]) {
            shards_[static_cast<std::size_t>(s)]->offer(items[i].task);
          }
        } catch (const ShardUnavailable&) {
          down[static_cast<std::size_t>(s)] = 1;
        }
      }
      phase_offer_->record(offer_watch.seconds());

      std::vector<std::vector<std::size_t>> next(
          static_cast<std::size_t>(shards));
      // A reject (or dead shard) moves the bid to the next live shard in
      // its ranking; only rejects consume the reroute budget.
      const auto reoffer_or_reject = [&](std::size_t i,
                                         const Decision& decision,
                                         bool budget) {
        Item& item = items[i];
        ++item.choice;
        if (!budget) ++item.credits;
        skip_dead(item);
        const bool more =
            item.choice - item.credits <=
                static_cast<std::size_t>(config_.reroute_attempts) &&
            item.choice < item.ranking.size();
        if (more) {
          if (item.choice - item.credits == 1 && budget) ++rerouted_bids_;
          next[static_cast<std::size_t>(item.ranking[item.choice])]
              .push_back(i);
        } else {
          finals.push_back(Final{i, -1, decision});
        }
      };

      double round_critical = 0.0;
      const util::Stopwatch decide_watch;
      for (int s = 0; s < shards; ++s) {
        const auto& sub = offers[static_cast<std::size_t>(s)];
        if (sub.empty()) continue;
        const std::vector<RoundResult>* results = nullptr;
        if (down[static_cast<std::size_t>(s)] == 0) {
          try {
            results = &shards_[static_cast<std::size_t>(s)]->wait_round();
          } catch (const ShardUnavailable&) {
            results = nullptr;
          }
        }
        if (results == nullptr) {
          // The shard died mid-round; none of its decisions happened.
          failover_bids_ += sub.size();
          for (const std::size_t i : sub) {
            reoffer_or_reject(i, Decision{}, /*budget=*/false);
          }
          continue;
        }
        double shard_seconds = 0.0;
        for (std::size_t j = 0; j < results->size(); ++j) {
          const RoundResult& r = (*results)[j];
          shard_seconds += r.decide_seconds;
          Item& item = items[sub[j]];
          item.decide_seconds += r.decide_seconds;
          if (r.decision.admit) {
            if (item.choice > item.credits) ++reroute_admits_;
            finals.push_back(Final{sub[j], s, r.decision});
          } else {
            reoffer_or_reject(sub[j], r.decision, /*budget=*/true);
          }
        }
        round_critical = std::max(round_critical, shard_seconds);
      }
      phase_decide_->record(decide_watch.seconds());
      critical_seconds_ += round_critical;
      offers.swap(next);
    }
    batch_seconds = watch.seconds();

    // The service's irrevocable decision order: ascending task id within
    // the slot, exactly the monolithic batch order.
    std::sort(finals.begin(), finals.end(), [&](const Final& a,
                                                const Final& b) {
      return items[a.item].task.id < items[b.item].task.id;
    });

    for (Final& f : finals) {
      const Item& item = items[f.item];
      const Task& task = item.task;
      TaskOutcome outcome;
      outcome.task = task.id;
      outcome.bid = task.bid;
      outcome.true_value = task.true_value;
      outcome.arrival = task.arrival;
      outcome.decide_seconds = item.decide_seconds;
      if (f.shard >= 0) {
        Schedule schedule = to_fleet(
            std::move(f.decision.schedule),
            shards_[static_cast<std::size_t>(f.shard)]->to_global());
        // The runner validated against its sub-cluster; re-check against
        // the fleet to pin the id remap (profiles are identical copies, so
        // a correct remap can never fail here).
        require_valid_schedule(task, schedule, cluster_, horizon_);
        outcome.admitted = true;
        outcome.payment = f.decision.payment;
        outcome.vendor = schedule.vendor;
        outcome.vendor_cost = schedule.vendor_price;
        outcome.energy_cost = schedule.energy_cost;
        outcome.completion = schedule.completion_slot();
        outcome.slots_used = static_cast<int>(schedule.run.size());
        for (std::size_t r = 1; r < schedule.run.size(); ++r) {
          if (schedule.run[r].slot != schedule.run[r - 1].slot + 1) {
            ++outcome.preemptions;
          }
        }
        booked_compute_ += schedule.total_compute;
        sim_metrics_.add_admitted(outcome);
        metrics_.record_admitted();
        for (service::DecisionSubscriber* sub : subscribers_) {
          sub->on_admitted(outcome, schedule);
          sub->on_payment(task.id, f.decision.payment);
        }
        outcomes_.push_back(outcome);
        schedules_.push_back(std::move(schedule));
      } else {
        sim_metrics_.add_rejected();
        metrics_.record_rejected();
        for (service::DecisionSubscriber* sub : subscribers_) {
          sub->on_rejected(outcome);
        }
        outcomes_.push_back(outcome);
        schedules_.push_back(Schedule{});
      }
    }

    // Shards that sat the slot out republish under the leader, so the
    // board's content after every slot is a pure function of decision
    // history — a restored service reproduces it exactly. Dead shards keep
    // their last published summary (the router already skips them).
    const util::Stopwatch publish_watch;
    for (int s = 0; s < shards; ++s) {
      if (touched[static_cast<std::size_t>(s)] != 0) continue;
      if (!shards_[static_cast<std::size_t>(s)]->alive()) continue;
      try {
        shards_[static_cast<std::size_t>(s)]->publish(now + 1);
      } catch (const ShardUnavailable&) {
        // Died between the liveness check and the publish; degrade.
      }
    }
    phase_publish_->record(publish_watch.seconds());
  }

  reroutes_total_->add(rerouted_bids_ - rerouted_before);
  reroute_admits_total_->add(reroute_admits_ - admits_before);
  failovers_total_->add(failover_bids_ - failovers_before);
  reroute_ratio_->set(routed_bids_ == 0
                          ? 0.0
                          : static_cast<double>(rerouted_bids_) /
                                static_cast<double>(routed_bids_));

  service::SlotReport report;
  report.slot = now;
  report.drained = drained;
  report.batch = batch.size();
  std::size_t held = 0;
  for (const auto& [slot, bids] : held_) held += bids.size();
  report.pending = held;
  report.queue_depth = queue_depth;
  report.decide_seconds = batch_seconds;
  metrics_.record_slot(report, batch.empty() || !config_.time_decisions
                                   ? 0.0
                                   : batch_seconds /
                                         static_cast<double>(batch.size()));
  for (service::DecisionSubscriber* sub : subscribers_) {
    sub->on_slot_end(report);
  }
}

void ShardedService::run(std::chrono::nanoseconds slot_period) {
  const service::SlotClock clock(slot_period);
  while (next_slot_ < horizon_) {
    if (!idle()) clock.wait_slot_end(next_slot_);
    step();
  }
}

SimResult ShardedService::finish() {
  if (!done()) {
    throw std::logic_error("finish() before the horizon completed");
  }
  if (finished_) {
    throw std::logic_error("finish() called twice");
  }
  finished_ = true;

  // Conservation, twice: each shard's ledger against its own bookings, and
  // the shard sum against the service's aggregate. A dead shard has no
  // ledger to read — its leader-side booked sum (every admission the leader
  // actually applied) stands in, so the aggregate check still holds.
  double ledger_compute = 0.0;
  for (const auto& shard : shards_) {
    double shard_compute = 0.0;
    bool have_ledger = false;
    if (shard->alive()) {
      try {
        // Snapshot order is node-major, slot-minor — the same accumulation
        // order as iterating used_compute(k, t), so the sum is bit-equal to
        // the pre-snapshot formulation.
        const ShardState state = shard->state();
        for (const double used : state.ledger.used_compute) {
          shard_compute += used;
        }
        have_ledger = true;
      } catch (const ShardUnavailable&) {
        have_ledger = false;
      }
    }
    if (!have_ledger) {
      ledger_compute += shard->booked_compute();
      continue;
    }
    if (std::abs(shard_compute - shard->booked_compute()) >
        1e-6 * std::max(1.0, shard->booked_compute())) {
      throw std::logic_error(
          "shard ledger bookings do not match admitted schedules "
          "(policy bug)");
    }
    ledger_compute += shard_compute;
  }
  if (std::abs(ledger_compute - booked_compute_) >
      1e-6 * std::max(1.0, booked_compute_)) {
    throw std::logic_error(
        "aggregate ledger bookings do not match admitted schedules");
  }

  SimResult result;
  result.metrics = sim_metrics_;
  double used = 0.0;
  double cap = 0.0;
  for (const auto& shard : shards_) {
    try {
      shard->accumulate_utilization(used, cap);
    } catch (const ShardUnavailable&) {
      // A dead shard's grid is unreadable; utilization covers the shards
      // that survived.
    }
  }
  result.metrics.utilization = cap > 0.0 ? used / cap : 0.0;
  result.outcomes = std::move(outcomes_);
  result.schedules = std::move(schedules_);
  return result;
}

ShardedCheckpoint ShardedService::checkpoint() const {
  ShardedCheckpoint cp;
  cp.next_slot = next_slot_;
  cp.horizon = horizon_;
  cp.shards = shard_count();
  cp.router_seed = config_.router_seed;
  cp.reroute_attempts = config_.reroute_attempts;
  cp.booked_compute = booked_compute_;
  cp.shard_states.reserve(shards_.size());
  for (const auto& shard : shards_) {
    cp.shard_states.push_back(shard->state());
  }
  for (const auto& [slot, bids] : held_) {
    cp.pending.insert(cp.pending.end(), bids.begin(), bids.end());
  }
  const std::vector<Task> queued = queue_.peek();
  cp.pending.insert(cp.pending.end(), queued.begin(), queued.end());
  cp.outcomes = outcomes_;
  cp.schedules = schedules_;
  cp.metrics = sim_metrics_;
  return cp;
}

void ShardedService::restore(const ShardedCheckpoint& checkpoint) {
  if (dirty_.load(std::memory_order_relaxed) || finished_) {
    throw std::logic_error("restore() requires a fresh service");
  }
  if (checkpoint.horizon != horizon_) {
    throw std::invalid_argument("checkpoint horizon mismatch");
  }
  if (checkpoint.next_slot < 0 || checkpoint.next_slot > horizon_) {
    throw std::invalid_argument("checkpoint slot out of range");
  }
  if (checkpoint.shards != shard_count() ||
      checkpoint.shard_states.size() != shards_.size()) {
    throw std::invalid_argument("checkpoint shard count mismatch");
  }
  if (checkpoint.router_seed != config_.router_seed ||
      checkpoint.reroute_attempts != config_.reroute_attempts) {
    throw std::invalid_argument("checkpoint router config mismatch");
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    shards_[s]->restore_state(checkpoint.shard_states[s]);
  }
  next_slot_ = checkpoint.next_slot;
  booked_compute_ = checkpoint.booked_compute;
  sim_metrics_ = checkpoint.metrics;
  outcomes_ = checkpoint.outcomes;
  schedules_ = checkpoint.schedules;
  held_.clear();
  for (const Task& bid : checkpoint.pending) {
    held_[bid.arrival].push_back(bid);
  }
  // Re-publish the board exactly as the original service last did (its
  // final act of slot next_slot-1 published from = next_slot everywhere).
  for (const auto& shard : shards_) shard->publish(next_slot_);
}

}  // namespace lorasched::shard
