// ShardHandle — the leader's view of one scheduling shard, abstracted over
// *where* the shard runs. ShardRunner implements it in-process (the shard's
// decision thread lives in this address space); net::RemoteShardHandle
// implements it over the wire protocol (the shard lives inside a
// lorasched_host_agent process). ShardedService drives the slot-synchronous
// round protocol purely through this interface, so local and distributed
// deployments share every line of routing, re-offer, accounting, and
// checkpoint logic — which is what makes the bit-identity guarantee between
// the two modes a property of one code path instead of two parallel ones.
//
// Liveness: alive() is true until the shard becomes unreachable (only the
// remote implementation can ever turn false). Once a handle is dead, the
// round-protocol and state methods throw ShardUnavailable; the service
// degrades by routing around the shard instead of crashing or hanging.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "lorasched/obs/registry.h"
#include "lorasched/shard/sharded_checkpoint.h"
#include "lorasched/sim/policy.h"
#include "lorasched/types.h"
#include "lorasched/workload/task.h"

namespace lorasched::shard {

/// One bid's outcome from a decision round. Schedule node ids are
/// shard-local (0..members-1); the service remaps through to_global().
struct RoundResult {
  Task task;
  Decision decision;
  double decide_seconds = 0.0;
};

/// The shard cannot be reached (host-agent crashed, link failed, round
/// timed out). Distinct from std::logic_error — a contract violation is a
/// bug and propagates; unavailability is an operational condition the
/// service survives by degrading.
class ShardUnavailable : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class ShardHandle {
 public:
  virtual ~ShardHandle() = default;

  [[nodiscard]] virtual int id() const noexcept = 0;
  /// Shard-local node id -> fleet node id, ascending.
  [[nodiscard]] virtual const std::vector<NodeId>& to_global()
      const noexcept = 0;
  /// False once the shard became unreachable (remote only). A dead shard
  /// stays dead for the rest of the run.
  [[nodiscard]] virtual bool alive() const noexcept = 0;

  /// Pre-blocks a shard-local node-slot (outage calendar). Call before the
  /// first round or between rounds.
  virtual void block(NodeId local_node, Slot t) = 0;
  /// Wires the shard policy's DP-cache metrics into `registry` (no-op when
  /// the policy has none, or when the counters live in another process).
  virtual void register_dp_metrics(obs::MetricsRegistry& registry) const = 0;

  // --- Round protocol (leader thread) -------------------------------------

  /// Arms a decision round at `slot` expecting exactly `expected` bids.
  virtual void begin_round(Slot slot, std::size_t expected) = 0;
  /// Feeds one bid into the armed round.
  virtual void offer(Task bid) = 0;
  /// Blocks until the armed round completes; one result per offered bid, in
  /// offer order. The reference stays valid until the next begin_round().
  /// Throws ShardUnavailable when the shard died mid-round.
  [[nodiscard]] virtual const std::vector<RoundResult>& wait_round() = 0;
  /// Publishes the shard's price summary as of `from` to the leader's
  /// board. Only safe while the shard is parked (between rounds).
  virtual void publish(Slot from) = 0;

  // --- Parked-state access (leader thread, between rounds only) -----------

  /// Running sum of admitted schedules' compute — tracked leader-side even
  /// for remote shards, so it stays readable after the shard dies.
  [[nodiscard]] virtual double booked_compute() const noexcept = 0;
  /// Full decision state (policy dump + ledger + booked compute) — the
  /// checkpoint unit. Throws ShardUnavailable for a dead remote shard.
  [[nodiscard]] virtual ShardState state() const = 0;
  /// Overwrites the shard's decision state from a checkpoint.
  virtual void restore_state(const ShardState& state) = 0;

  /// Adds this shard's reserved compute and total capacity to the running
  /// sums, in exactly CapacityLedger::compute_utilization()'s accumulation
  /// order (node-major, slot-minor) — so a 1-shard service reproduces the
  /// monolithic utilization float for float. Throws ShardUnavailable for a
  /// dead remote shard.
  virtual void accumulate_utilization(double& used, double& cap) const = 0;
};

}  // namespace lorasched::shard
