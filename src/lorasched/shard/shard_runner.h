// ShardRunner — one scheduling shard: a private policy instance (its own
// dual grids), a private CapacityLedger over the shard's sub-cluster, and a
// decision thread fed through a bounded BidQueue inbox (DESIGN.md §10).
//
// The runner speaks a slot-synchronous round protocol with the service's
// leader thread:
//
//   leader:  begin_round(slot, n)  →  offer() × n  →  wait_round()
//   runner:  drain inbox until n bids collected → policy->on_slot(batch)
//            → validate/book exactly like AdmissionService::decide_batch
//            → publish fresh price summary → park
//
// begin_round() is called *before* the bids are fed, so a batch larger than
// the inbox capacity cannot deadlock: the runner is already draining while
// the leader is still offering. Between wait_round() and the next
// begin_round() the runner is parked and the leader may freely read or
// restore the shard's state (checkpointing, price re-publication).
//
// Lock discipline (DESIGN.md §13): the worker holds mutex_ for the whole
// decision round, so every piece of decision state (ledger, policy duals,
// bookings, results) is mutex_-guarded and the "parked leader access" rule
// is provable instead of conventional — a leader accessor called mid-round
// blocks until the round ends rather than racing it. The leader never
// blocks the worker: offers flow through the inbox's own lock, and
// wait_round() waiting on mutex_ is exactly the wait it wanted. Lock
// order: mutex_ before the inbox's internal lock (worker drains while
// armed); the leader takes them one at a time, never nested.
//
// Node ids inside the runner are shard-local (0..members-1); to_global()
// maps them back to the fleet's ids. Decisions returned from a round still
// carry local ids — the service remaps when it builds outcomes.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "lorasched/cluster/capacity_ledger.h"
#include "lorasched/cluster/cluster.h"
#include "lorasched/cluster/energy.h"
#include "lorasched/core/pdftsp.h"
#include "lorasched/service/bid_queue.h"
#include "lorasched/shard/price_board.h"
#include "lorasched/shard/shard_handle.h"
#include "lorasched/sim/policy.h"
#include "lorasched/types.h"
#include "lorasched/util/mutex.h"
#include "lorasched/util/thread_annotations.h"
#include "lorasched/workload/task.h"
#include "lorasched/workload/vendor.h"

namespace lorasched::shard {

/// Builds one shard's policy over the shard's own sub-cluster. Invoked once
/// per shard; the cluster reference stays valid for the policy's lifetime.
using PolicyFactory = std::function<std::unique_ptr<Policy>(
    const Cluster& cluster, const EnergyModel& energy, Slot horizon)>;

/// The standard factory: an independent pdFTSP auction per shard, all with
/// the same pricing parameters. Per-shard duals evolve from each shard's
/// own admission stream.
[[nodiscard]] PolicyFactory make_pdftsp_factory(PdftspConfig config);

class ShardRunner : public ShardHandle {
 public:
  /// Schedule node ids are shard-local; remap through to_global().
  using RoundResult = shard::RoundResult;

  /// `members` are the shard's global node ids (ascending); the runner
  /// copies their profiles into a private sub-cluster. `board` outlives the
  /// runner; the runner publishes to entry `shard_id` only.
  ShardRunner(int shard_id, const Cluster& fleet, std::vector<NodeId> members,
              const EnergyModel& energy, const Marketplace& market,
              Slot horizon, const PolicyFactory& factory, PriceBoard& board,
              std::size_t inbox_capacity, bool time_decisions);
  ~ShardRunner();

  ShardRunner(const ShardRunner&) = delete;
  ShardRunner& operator=(const ShardRunner&) = delete;

  [[nodiscard]] int id() const noexcept override { return shard_id_; }
  [[nodiscard]] const Cluster& cluster() const noexcept { return cluster_; }
  [[nodiscard]] const std::vector<NodeId>& to_global()
      const noexcept override {
    return to_global_;
  }
  /// An in-process shard can never become unreachable.
  [[nodiscard]] bool alive() const noexcept override { return true; }

  /// Pre-blocks a shard-local node-slot (outage calendar). Call before the
  /// first round or between rounds.
  void block(NodeId local_node, Slot t) override EXCLUDES(mutex_);

  /// Wires the shard policy's schedule-DP price-cache metrics into
  /// `registry` (no-op for non-pdFTSP policies). Every shard registers the
  /// same metric names, so the counters aggregate fleet-wide. Call during
  /// setup, before the first round.
  void register_dp_metrics(obs::MetricsRegistry& registry) const override
      EXCLUDES(mutex_);

  // --- Round protocol (leader thread) -------------------------------------

  /// Arms the runner for a decision round at `slot` expecting exactly
  /// `expected` bids (> 0). Feed them with offer(), then wait_round().
  void begin_round(Slot slot, std::size_t expected) override EXCLUDES(mutex_);

  /// Feeds one bid into the armed round's inbox. May block briefly when the
  /// inbox is full — the runner is draining concurrently, so it always
  /// makes progress. Takes only the inbox's internal lock, never mutex_
  /// (the worker holds mutex_ for the whole round).
  void offer(Task bid) override;

  /// Blocks until the armed round completes; returns one result per offered
  /// bid, in offer order. The reference stays valid until the next
  /// begin_round().
  [[nodiscard]] const std::vector<RoundResult>& wait_round() override
      EXCLUDES(mutex_);

  /// Publishes the shard's price summary as of `from`: free capacity and
  /// mean duals over slots [from, horizon). The runner publishes
  /// automatically after every round (from = slot + 1); the leader calls
  /// this for shards that sat a slot out, so the board's content is a pure
  /// function of decision history — never of thread timing.
  void publish(Slot from) override EXCLUDES(mutex_);

  // --- Parked-state access (leader thread, between rounds only) -----------

  [[nodiscard]] double booked_compute() const noexcept override
      EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    return booked_;
  }
  [[nodiscard]] std::vector<double> policy_state() const EXCLUDES(mutex_);
  void restore_policy_state(const std::vector<double>& state)
      EXCLUDES(mutex_);
  [[nodiscard]] CapacityLedger::Snapshot ledger_snapshot() const
      EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    return ledger_.snapshot();
  }
  void restore_ledger(const CapacityLedger::Snapshot& snapshot, double booked)
      EXCLUDES(mutex_);

  [[nodiscard]] ShardState state() const override EXCLUDES(mutex_);
  void restore_state(const ShardState& state) override EXCLUDES(mutex_) {
    restore_policy_state(state.policy_state);
    restore_ledger(state.ledger, state.booked_compute);
  }

  /// Adds this shard's reserved compute and total capacity to the running
  /// sums, in exactly CapacityLedger::compute_utilization()'s accumulation
  /// order — so a 1-shard service reproduces the monolithic utilization
  /// float for float.
  void accumulate_utilization(double& used, double& cap) const override
      EXCLUDES(mutex_);

 private:
  void thread_main() EXCLUDES(mutex_);
  void decide_round(Slot slot, std::size_t expected) REQUIRES(mutex_);
  void publish_locked(Slot from) REQUIRES(mutex_);
  [[nodiscard]] std::vector<double> policy_state_locked() const
      REQUIRES(mutex_);

  enum class Command { kIdle, kDecide, kStop };

  const int shard_id_;
  const Slot horizon_;
  const bool time_decisions_;
  std::vector<NodeId> to_global_;
  std::vector<int> global_class_of_local_;  // local node -> fleet class id
  Cluster cluster_;                         // the shard's private sub-cluster
  const EnergyModel& energy_;
  const Marketplace& market_;
  PriceBoard& board_;
  service::BidQueue inbox_;

  mutable util::Mutex mutex_;
  util::CondVar command_cv_;
  util::CondVar done_cv_;
  CapacityLedger ledger_ GUARDED_BY(mutex_);
  std::unique_ptr<Policy> policy_ PT_GUARDED_BY(mutex_);
  /// Non-null iff the policy is a Pdftsp; same pointee as policy_.
  const Pdftsp* pdftsp_ PT_GUARDED_BY(mutex_) = nullptr;
  double booked_ GUARDED_BY(mutex_) = 0.0;
  Command command_ GUARDED_BY(mutex_) = Command::kIdle;
  Slot round_slot_ GUARDED_BY(mutex_) = 0;
  std::size_t round_expected_ GUARDED_BY(mutex_) = 0;
  bool round_done_ GUARDED_BY(mutex_) = false;
  /// A throw inside the round (policy/validation bug) parks here and is
  /// rethrown to the leader from wait_round().
  std::exception_ptr round_error_ GUARDED_BY(mutex_);
  std::vector<RoundResult> results_ GUARDED_BY(mutex_);
  std::thread worker_;
};

}  // namespace lorasched::shard
