// PriceBoard — each shard's published dual-price summary, the only state
// that crosses the shard boundary (DESIGN.md §10). After deciding a slot, a
// ShardRunner publishes a compact per-GPU-class digest of its pdFTSP dual
// grids (mean λ / mean φ over the remaining horizon) plus its free-capacity
// counts; the router reads these to estimate where an arriving bid would
// schedule cheapest.
//
// Publication is a seqlock-style snapshot: one atomic version counter per
// shard (odd while a write is in flight) over a fixed-size grid of relaxed
// atomic doubles. Writers (the shard's own decision thread) never block;
// readers retry the rare torn read. All cells are std::atomic, so the
// pattern is data-race-free under TSan, not just "benign".
//
// Thread-safety annotations (DESIGN.md §13): this class is the documented
// seqlock exemption — there is no mutex to GUARDED_BY. Correctness rests
// on the version protocol instead: publish() makes the version odd
// (acquire CAS is not needed; one writer per entry by contract), writes
// the cells, then bumps it even with release ordering; read() acquires
// the version, copies the cells, and retries unless the version was even
// and unchanged across the copy. tests/test_shard.cpp stresses exactly
// this invariant (no torn snapshot, even-on-read versions) under TSan.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "lorasched/types.h"

namespace lorasched::shard {

/// One GPU class's digest inside a shard's snapshot. Class indices are the
/// *global* cluster's class ids (see ShardTopology), so summaries from
/// different shards are comparable.
struct ClassPrice {
  /// Unreserved, unblocked compute (samples) over the remaining horizon.
  double free_compute = 0.0;
  /// Unreserved adapter memory (GB-slots) over the remaining horizon.
  double free_mem = 0.0;
  /// Mean λ_kt over the class's remaining (node, slot) cells.
  double mean_lambda = 0.0;
  /// Mean φ_kt over the class's remaining (node, slot) cells.
  double mean_phi = 0.0;
};

/// A consistent point-in-time copy of one shard's published summary.
struct PriceSnapshot {
  /// Slot the summary was computed after (-1 = initial, nothing decided).
  Slot published_slot = -1;
  /// Total unreserved compute across all the shard's classes.
  double free_compute = 0.0;
  std::vector<ClassPrice> classes;
};

class PriceBoard {
 public:
  /// `shards` entries, each summarizing `classes` global GPU classes.
  PriceBoard(int shards, int classes);

  PriceBoard(const PriceBoard&) = delete;
  PriceBoard& operator=(const PriceBoard&) = delete;

  [[nodiscard]] int shard_count() const noexcept {
    return static_cast<int>(entries_.size());
  }
  [[nodiscard]] int class_count() const noexcept { return classes_; }

  /// Publishes `snapshot` as shard `s`'s current summary. One writer per
  /// shard (its runner thread); never blocks readers.
  /// snapshot.classes.size() must equal class_count().
  void publish(int s, const PriceSnapshot& snapshot);

  /// Lock-free consistent read of shard `s`'s latest summary; retries while
  /// a publish is in flight.
  [[nodiscard]] PriceSnapshot read(int s) const;

  /// Test/observability hook: shard `s`'s current sequence number. Even =
  /// stable (exactly 2 × publishes so far), odd = a publish is in flight.
  /// read() only ever returns data captured between two identical even
  /// observations of this counter.
  [[nodiscard]] std::uint64_t version(int s) const {
    return entries_.at(static_cast<std::size_t>(s))
        .version.load(std::memory_order_acquire);
  }

 private:
  // Flat payload layout per shard entry:
  //   [0] published_slot  [1] free_compute
  //   then 4 doubles per class: free_compute, free_mem, mean_lambda, mean_phi
  [[nodiscard]] std::size_t payload_size() const noexcept {
    return 2 + 4 * static_cast<std::size_t>(classes_);
  }

  struct Entry {
    /// Even = stable, odd = publish in flight.
    std::atomic<std::uint64_t> version{0};
    std::unique_ptr<std::atomic<double>[]> values;
  };

  int classes_;
  std::vector<Entry> entries_;
};

}  // namespace lorasched::shard
