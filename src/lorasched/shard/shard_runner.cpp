#include "lorasched/shard/shard_runner.h"

#include <stdexcept>
#include <utility>

#include "lorasched/obs/span.h"
#include "lorasched/shard/shard_planner.h"
#include "lorasched/sim/validator.h"
#include "lorasched/util/timing.h"

#ifdef LORASCHED_AUDIT
#include "lorasched/audit/invariants.h"
#endif

namespace lorasched::shard {

PolicyFactory make_pdftsp_factory(PdftspConfig config) {
  return [config](const Cluster& cluster, const EnergyModel& energy,
                  Slot horizon) -> std::unique_ptr<Policy> {
    return std::make_unique<Pdftsp>(config, cluster, energy, horizon);
  };
}

ShardRunner::ShardRunner(int shard_id, const Cluster& fleet,
                         std::vector<NodeId> members, const EnergyModel& energy,
                         const Marketplace& market, Slot horizon,
                         const PolicyFactory& factory, PriceBoard& board,
                         std::size_t inbox_capacity, bool time_decisions)
    : shard_id_(shard_id),
      horizon_(horizon),
      time_decisions_(time_decisions),
      to_global_(std::move(members)),
      cluster_(ShardPlanner::sub_cluster(fleet, to_global_)),
      energy_(energy),
      market_(market),
      board_(board),
      inbox_(inbox_capacity, service::BackpressureMode::kBlock),
      ledger_(cluster_, horizon),
      policy_(factory(cluster_, energy_, horizon)),
      pdftsp_(dynamic_cast<const Pdftsp*>(policy_.get())) {
  if (policy_ == nullptr) {
    throw std::invalid_argument("policy factory returned null");
  }
  global_class_of_local_.reserve(to_global_.size());
  for (const NodeId g : to_global_) {
    global_class_of_local_.push_back(fleet.node_class(g));
  }
  worker_ = std::thread(&ShardRunner::thread_main, this);
}

ShardRunner::~ShardRunner() {
  {
    util::MutexLock lock(mutex_);
    command_ = Command::kStop;
  }
  command_cv_.notify_one();
  if (worker_.joinable()) worker_.join();
}

void ShardRunner::register_dp_metrics(obs::MetricsRegistry& registry) const {
  util::MutexLock lock(mutex_);
  if (pdftsp_ != nullptr) pdftsp_->register_metrics(registry);
}

void ShardRunner::block(NodeId local_node, Slot t) {
  util::MutexLock lock(mutex_);
  ledger_.block(local_node, t);
}

void ShardRunner::begin_round(Slot slot, std::size_t expected) {
  if (expected == 0) {
    throw std::invalid_argument("shard round needs at least one bid");
  }
  {
    util::MutexLock lock(mutex_);
    if (command_ != Command::kIdle) {
      throw std::logic_error("shard round already in flight");
    }
    round_slot_ = slot;
    round_expected_ = expected;
    round_done_ = false;
    command_ = Command::kDecide;
  }
  command_cv_.notify_one();
}

void ShardRunner::offer(Task bid) {
  const service::SubmitResult result = inbox_.submit(std::move(bid));
  if (result != service::SubmitResult::kAccepted) {
    throw std::logic_error("shard inbox refused a bid mid-round");
  }
}

const std::vector<ShardRunner::RoundResult>& ShardRunner::wait_round() {
  util::MutexLock lock(mutex_);
  while (!round_done_) done_cv_.wait(lock);
  if (round_error_ != nullptr) {
    const std::exception_ptr error = std::exchange(round_error_, nullptr);
    std::rethrow_exception(error);
  }
  return results_;
}

void ShardRunner::thread_main() {
  for (;;) {
    util::MutexLock lock(mutex_);
    while (command_ == Command::kIdle) command_cv_.wait(lock);
    if (command_ == Command::kStop) return;
    const Slot slot = round_slot_;
    const std::size_t expected = round_expected_;
    // The round runs with mutex_ held (see the header's lock-discipline
    // note): the leader only touches the inbox while a round is in
    // flight, so this serializes decision state against parked-state
    // accessors without ever blocking the offer path.
    std::exception_ptr error;
    try {
      decide_round(slot, expected);
    } catch (...) {
      error = std::current_exception();
    }
    round_error_ = error;
    command_ = Command::kIdle;
    round_done_ = true;
    lock.unlock();
    done_cv_.notify_all();
  }
}

void ShardRunner::decide_round(Slot slot, std::size_t expected) {
  LORASCHED_SPAN("shard/decide");
  std::vector<Task> batch;
  batch.reserve(expected);
  while (batch.size() < expected) {
    inbox_.wait_available();
    for (Task& bid : inbox_.drain()) batch.push_back(std::move(bid));
  }
  if (batch.size() != expected) {
    throw std::logic_error("shard inbox over-fed (leader protocol bug)");
  }

  const SlotContext ctx{slot, batch, cluster_, energy_, market_, ledger_};
  const util::Stopwatch watch;
  const std::vector<Decision> decisions = policy_->on_slot(ctx);
  const double batch_seconds = watch.seconds();
  if (decisions.size() != batch.size()) {
    throw std::logic_error("policy returned wrong number of decisions");
  }
  const double per_task_seconds =
      time_decisions_ ? batch_seconds / static_cast<double>(batch.size()) : 0.0;

  results_.clear();
  results_.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Task& task = batch[i];
    const Decision& d = decisions[i];
    if (d.task != task.id) {
      throw std::logic_error("policy decisions out of order");
    }
#ifdef LORASCHED_AUDIT
    audit::check_outcome_accounting(task, d);
#endif
    if (d.admit) {
      // Validated against the shard's own sub-cluster; the service re-maps
      // node ids to the fleet before anything escapes the shard boundary.
      require_valid_schedule(task, d.schedule, cluster_, horizon_);
      if (d.payment < -1e-9) {
        throw std::logic_error("negative payment");
      }
      booked_ += d.schedule.total_compute;
    }
    RoundResult result;
    result.task = task;
    result.decision = d;
    result.decide_seconds = per_task_seconds;
    results_.push_back(std::move(result));
  }
#ifdef LORASCHED_AUDIT
  // Per-shard conservation: this shard's ledger against its own bookings.
  audit::check_ledger_totals(ledger_, booked_);
#endif

  publish_locked(slot + 1);
}

void ShardRunner::publish(Slot from) {
  util::MutexLock lock(mutex_);
  publish_locked(from);
}

void ShardRunner::publish_locked(Slot from) {
  PriceSnapshot snapshot;
  snapshot.published_slot = from - 1;
  const int classes = board_.class_count();
  snapshot.classes.assign(static_cast<std::size_t>(classes), ClassPrice{});
  std::vector<double> cells(static_cast<std::size_t>(classes), 0.0);
  const DualState* duals = pdftsp_ != nullptr ? &pdftsp_->duals() : nullptr;

  for (NodeId k = 0; k < cluster_.node_count(); ++k) {
    const auto c =
        static_cast<std::size_t>(global_class_of_local_[static_cast<
            std::size_t>(k)]);
    ClassPrice& cls = snapshot.classes[c];
    for (Slot t = from; t < horizon_; ++t) {
      cells[c] += 1.0;
      if (!ledger_.is_blocked(k, t)) {
        cls.free_compute += ledger_.remaining_compute(k, t);
        cls.free_mem += ledger_.remaining_mem(k, t);
      }
      if (duals != nullptr) {
        cls.mean_lambda += duals->lambda(k, t);
        cls.mean_phi += duals->phi(k, t);
      }
    }
  }
  for (int c = 0; c < classes; ++c) {
    const auto ci = static_cast<std::size_t>(c);
    ClassPrice& cls = snapshot.classes[ci];
    if (cells[ci] > 0.0) {
      cls.mean_lambda /= cells[ci];
      cls.mean_phi /= cells[ci];
    }
    snapshot.free_compute += cls.free_compute;
  }
  board_.publish(shard_id_, snapshot);
}

std::vector<double> ShardRunner::policy_state() const {
  util::MutexLock lock(mutex_);
  return policy_state_locked();
}

std::vector<double> ShardRunner::policy_state_locked() const {
  const auto* state = dynamic_cast<const CheckpointableState*>(policy_.get());
  if (state == nullptr) {
    throw std::logic_error("shard policy does not implement CheckpointableState");
  }
  return state->checkpoint_state();
}

ShardState ShardRunner::state() const {
  util::MutexLock lock(mutex_);
  return ShardState{booked_, policy_state_locked(), ledger_.snapshot()};
}

void ShardRunner::restore_policy_state(const std::vector<double>& state) {
  util::MutexLock lock(mutex_);
  auto* target = dynamic_cast<CheckpointableState*>(policy_.get());
  if (target == nullptr) {
    throw std::logic_error("shard policy does not implement CheckpointableState");
  }
  target->restore_state(state);
}

void ShardRunner::restore_ledger(const CapacityLedger::Snapshot& snapshot,
                                 double booked) {
  util::MutexLock lock(mutex_);
  ledger_.restore(snapshot);
  booked_ = booked;
}

void ShardRunner::accumulate_utilization(double& used, double& cap) const {
  // Mirrors CapacityLedger::compute_utilization()'s accumulation order so a
  // 1-shard service reproduces the monolithic fraction bit for bit.
  util::MutexLock lock(mutex_);
  for (NodeId k = 0; k < cluster_.node_count(); ++k) {
    cap += cluster_.compute_capacity(k) * static_cast<double>(horizon_);
    for (Slot t = 0; t < horizon_; ++t) used += ledger_.used_compute(k, t);
  }
}

}  // namespace lorasched::shard
