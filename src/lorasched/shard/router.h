// Router — price-aware bid dispatch across pdFTSP shards (DESIGN.md §10).
//
// For each arriving bid the router estimates, per shard, what the shard's
// published dual prices would charge for the bid's cheapest feasible
// schedule shape (slots needed on the shard's best class × the class's mean
// λ/φ at the bid's normalized demand), and ranks shards by ascending
// estimate. Equal estimates — the common case while prices are still near
// zero — fall back to most-free-capacity-first, and exact residual ties
// break by a seeded hash of the task id, which both load-balances cold
// shards and makes every run reproducible from the router seed.
//
// Shards with no feasible class (memory or rate) rank last rather than
// being dropped: some shard always decides the bid, so a 1-shard router
// degenerates to a pure pass-through and the sharded service inherits the
// monolithic engine's decisions bit for bit.
//
// Second-chance re-routing is driven by the service: when a shard's pdFTSP
// rejects a bid, the service re-offers it to the next shard in this
// ranking, up to `reroute_attempts` alternatives, before the reject becomes
// final.
#pragma once

#include <cstdint>
#include <vector>

#include "lorasched/shard/price_board.h"
#include "lorasched/shard/shard_planner.h"
#include "lorasched/types.h"
#include "lorasched/workload/task.h"

namespace lorasched::shard {

struct RouterConfig {
  /// Additional shards a rejected bid is re-offered to before the reject
  /// becomes final (0 = single irrevocable offer, the paper's pdFTSP).
  int reroute_attempts = 1;
  /// Tie-break seed; two runs with equal seeds route identically.
  std::uint64_t seed = 0;
};

class Router {
 public:
  Router(RouterConfig config, ShardTopology topology);

  [[nodiscard]] const RouterConfig& config() const noexcept { return config_; }
  [[nodiscard]] int shard_count() const noexcept {
    return topology_.shard_count();
  }

  /// Full shard preference order for `bid` under the published prices:
  /// feasible shards by ascending estimated cost, infeasible ones last.
  /// `prices` must hold one snapshot per shard. Deterministic in
  /// (bid, prices, seed). Never empty.
  [[nodiscard]] std::vector<int> rank(
      const Task& bid, const std::vector<PriceSnapshot>& prices) const;

  /// The router's cost estimate for running `bid` on shard `s` (exposed for
  /// tests and the auction-explorer tooling). Infinity when no class of the
  /// shard can run the bid at all.
  [[nodiscard]] double estimate(const Task& bid, int s,
                                const PriceSnapshot& snapshot) const;

 private:
  RouterConfig config_;
  ShardTopology topology_;
};

}  // namespace lorasched::shard
