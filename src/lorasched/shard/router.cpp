#include "lorasched/shard/router.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace lorasched::shard {

namespace {

/// splitmix64 — deterministic, well-mixed tie-break hash.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

Router::Router(RouterConfig config, ShardTopology topology)
    : config_(config), topology_(std::move(topology)) {
  if (config_.reroute_attempts < 0) {
    throw std::invalid_argument("reroute_attempts must be non-negative");
  }
  if (topology_.shard_count() < 1 || topology_.class_count() < 1) {
    throw std::invalid_argument("router topology is empty");
  }
}

double Router::estimate(const Task& bid, int s,
                        const PriceSnapshot& snapshot) const {
  double best = std::numeric_limits<double>::infinity();
  const auto& owned = topology_.shard_class_nodes.at(static_cast<std::size_t>(s));
  for (int c = 0; c < topology_.class_count(); ++c) {
    const auto ci = static_cast<std::size_t>(c);
    if (owned[ci] == 0) continue;
    const ShardTopology::ClassInfo& info = topology_.classes[ci];
    if (bid.mem_gb > info.adapter_mem_gb) continue;
    const double rate = bid.compute_share * info.compute_per_slot;
    if (rate <= 0.0) continue;
    const double slots = std::ceil(bid.work / rate);
    // The published mean prices at the bid's normalized per-cell demand
    // (s̃ = compute share, r̃ = adapter-memory fraction) — the same units
    // eq. (10) charges a concrete schedule in, minus the energy term the
    // router cannot know without running the DP.
    const ClassPrice& price = snapshot.classes[ci];
    const double per_slot = price.mean_lambda * bid.compute_share +
                            price.mean_phi * (bid.mem_gb / info.adapter_mem_gb);
    best = std::min(best, slots * per_slot);
  }
  return best;
}

std::vector<int> Router::rank(const Task& bid,
                              const std::vector<PriceSnapshot>& prices) const {
  const int shards = topology_.shard_count();
  if (prices.size() != static_cast<std::size_t>(shards)) {
    throw std::invalid_argument("router needs one price snapshot per shard");
  }
  struct Scored {
    int shard = 0;
    double cost = 0.0;
    double free_compute = 0.0;
    std::uint64_t salt = 0;
  };
  std::vector<Scored> scored(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    auto& row = scored[static_cast<std::size_t>(s)];
    row.shard = s;
    row.cost = estimate(bid, s, prices[static_cast<std::size_t>(s)]);
    row.free_compute = prices[static_cast<std::size_t>(s)].free_compute;
    row.salt = mix(config_.seed ^
                   (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                        bid.id)) << 16U) ^
                   static_cast<std::uint64_t>(static_cast<std::uint32_t>(s)));
  }
  std::sort(scored.begin(), scored.end(), [](const Scored& a, const Scored& b) {
    // Infinity (no feasible class) sorts last through the cost compare;
    // NaN cannot occur (prices and demands are finite by construction).
    if (a.cost != b.cost) return a.cost < b.cost;
    if (a.free_compute != b.free_compute) {
      return a.free_compute > b.free_compute;
    }
    if (a.salt != b.salt) return a.salt < b.salt;
    return a.shard < b.shard;
  });
  std::vector<int> order(static_cast<std::size_t>(shards));
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = scored[i].shard;
  return order;
}

}  // namespace lorasched::shard
