// ShardedService — the sharded drop-in for service::AdmissionService
// (DESIGN.md §10): the same ingestion edge (BidQueue, backpressure,
// late-bid policy), the same DecisionSubscriber contract and SimResult
// accounting, but decisions are made by K independent pdFTSP shards, each
// with its own dual grids, capacity ledger, and decision thread.
//
// Per slot the leader (the thread calling step()/run()):
//   1. assembles the slot batch exactly like the monolithic service
//      (held-bid merge, late-bid policy, stable sort by task id);
//   2. reads every shard's published price summary once and ranks the
//      shards per bid (Router);
//   3. round 0: offers each bid to its first-choice shard; all shards with
//      work decide their sub-batches concurrently;
//   4. rounds 1..R: bids a shard rejected are re-offered to the next shard
//      in their ranking ("second chance") until admitted, out of
//      alternatives, or reroute_attempts is exhausted;
//   5. emits outcomes sorted by task id — schedules re-mapped to fleet node
//      ids — and publishes fresh prices for shards that sat the slot out.
//
// Determinism: routing uses only the previous slot's published prices, the
// bid, and the router seed; per-shard batches are decided sequentially on
// the shard's thread; price publication points are fixed by the protocol.
// Two runs with the same environment, bid stream, and config produce
// identical decisions regardless of thread scheduling — and a 1-shard
// service is bit-identical to the monolithic AdmissionService over the
// same policy configuration (pinned by test_shard).
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "lorasched/cluster/cluster.h"
#include "lorasched/cluster/energy.h"
#include "lorasched/obs/cluster_trace.h"
#include "lorasched/obs/registry.h"
#include "lorasched/service/admission_service.h"
#include "lorasched/service/bid_queue.h"
#include "lorasched/service/service_metrics.h"
#include "lorasched/service/subscriber.h"
#include "lorasched/shard/price_board.h"
#include "lorasched/shard/router.h"
#include "lorasched/shard/shard_handle.h"
#include "lorasched/shard/shard_planner.h"
#include "lorasched/shard/shard_runner.h"
#include "lorasched/shard/sharded_checkpoint.h"
#include "lorasched/sim/instance.h"
#include "lorasched/sim/metrics.h"
#include "lorasched/types.h"
#include "lorasched/workload/task.h"
#include "lorasched/workload/vendor.h"

namespace lorasched::shard {

struct ShardedConfig {
  /// Number of shards K (1..node count). K=1 reproduces the monolithic
  /// service bit for bit.
  int shards = 1;
  /// Second-chance budget: additional shards a rejected bid is re-offered
  /// to before the reject becomes final.
  int reroute_attempts = 1;
  /// Router tie-break seed (see RouterConfig::seed).
  std::uint64_t router_seed = 0;
  /// Ingestion edge, identical semantics to ServiceConfig.
  std::size_t queue_capacity = 1024;
  service::BackpressureMode backpressure = service::BackpressureMode::kBlock;
  service::LateBidMode late_bids = service::LateBidMode::kReject;
  bool time_decisions = true;
  /// Capacity of each shard's inbox; sub-batches larger than this still
  /// work (the runner drains while the leader feeds).
  std::size_t inbox_capacity = 1024;
  /// Optional cluster trace collector (DESIGN.md §12). Borrowed, not
  /// owned; observation-only — decisions are bit-identical with or
  /// without it. Remote handles stamp its round contexts on their Offer
  /// frames and feed agent spans back into it.
  obs::ClusterTraceCollector* tracer = nullptr;
};

/// What a HandleFactory may borrow from the service while building a
/// shard's handle. Every reference outlives the handles.
struct ShardContext {
  const Cluster& fleet;
  const EnergyModel& energy;
  const Marketplace& market;
  Slot horizon;
  PriceBoard& board;
  const ShardedConfig& config;
};

/// Builds the leader-side handle for shard `shard_id` over the given
/// global node ids — a ShardRunner in local mode, a net::RemoteShardHandle
/// in distributed mode. Invoked once per shard at construction.
using HandleFactory = std::function<std::unique_ptr<ShardHandle>(
    int shard_id, std::vector<NodeId> members, const ShardContext& ctx)>;

/// The in-process HandleFactory: one ShardRunner (own policy, ledger, and
/// decision thread) per shard.
[[nodiscard]] HandleFactory local_handles(PolicyFactory factory);

class ShardedService {
 public:
  /// Serves env's environment (cluster, energy, marketplace, horizon,
  /// outages — all copied; env.tasks is ignored, bids arrive via submit()).
  /// `factory` builds one policy per shard over the shard's sub-cluster.
  ShardedService(const Instance& env, const PolicyFactory& factory,
                 ShardedConfig config = {});

  /// Generalized constructor: `handles` builds each shard's ShardHandle —
  /// the distributed leader injects remote handles here and every other
  /// line of the service (routing, re-offers, accounting, checkpoints)
  /// runs unchanged.
  ShardedService(const Instance& env, const HandleFactory& handles,
                 ShardedConfig config = {});

  ShardedService(const ShardedService&) = delete;
  ShardedService& operator=(const ShardedService&) = delete;

  // --- Producer side (thread-safe) ----------------------------------------

  service::SubmitResult submit(const Task& bid);
  void close() { queue_.close(); }

  // --- Consumer side (single leader thread) --------------------------------

  /// Register before the first step (the slot loop reads the list
  /// unlocked). Callbacks fire on the leader thread, outcomes sorted by
  /// task id within each slot.
  void add_subscriber(service::DecisionSubscriber* subscriber);

  /// Decides the current slot across the shards, then advances it. Throws
  /// std::logic_error on policy contract violations (rethrown from the
  /// offending shard's thread) or when already past the horizon.
  void step();

  /// Absorbs queued bids into the held-bid map without deciding (offline
  /// replay of streams longer than the queue; see AdmissionService::pump).
  void pump();

  /// Drives step() to the horizon, pacing by `slot_period` (zero = as fast
  /// as possible); fast-forwards once closed and idle.
  void run(std::chrono::nanoseconds slot_period);

  [[nodiscard]] Slot current_slot() const noexcept { return next_slot_; }
  [[nodiscard]] Slot horizon() const noexcept { return horizon_; }
  [[nodiscard]] bool done() const noexcept { return next_slot_ >= horizon_; }
  [[nodiscard]] bool idle() const noexcept {
    return queue_.closed() && queue_.depth() == 0 && held_.empty();
  }

  /// Terminal accounting: per-shard and aggregate ledger-vs-bookings
  /// cross-checks, fleet utilization, accumulated SimResult. Requires
  /// done(); call once.
  [[nodiscard]] SimResult finish();

  // --- Checkpoint / restore ------------------------------------------------

  /// Snapshot of the full decision state of all K shards plus the service's
  /// accounting and undecided bids. Take it between slots on the leader
  /// thread (every runner is parked then).
  [[nodiscard]] ShardedCheckpoint checkpoint() const;

  /// Rewinds a *fresh* service (no submits, no steps) to the checkpointed
  /// state. The environment, policy factory, and sharding/router config
  /// must match; throws std::invalid_argument otherwise.
  void restore(const ShardedCheckpoint& checkpoint);

  // --- Introspection -------------------------------------------------------

  [[nodiscard]] const service::BidQueue& queue() const noexcept {
    return queue_;
  }
  [[nodiscard]] service::MetricsSnapshot metrics() const {
    return metrics_.snapshot();
  }
  [[nodiscard]] obs::MetricsRegistry& registry() noexcept {
    return metrics_.registry();
  }
  [[nodiscard]] const ShardPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] const Router& router() const noexcept { return router_; }
  [[nodiscard]] const PriceBoard& price_board() const noexcept {
    return board_;
  }
  [[nodiscard]] int shard_count() const noexcept {
    return static_cast<int>(shards_.size());
  }
  /// Shards whose handle reported dead (remote agent crashed). The service
  /// routes around them; their last known bookings still count.
  [[nodiscard]] int dead_shards() const noexcept {
    int dead = 0;
    for (const auto& shard : shards_) dead += shard->alive() ? 0 : 1;
    return dead;
  }

  /// Sum over slots and re-offer rounds of the slowest shard's decision
  /// time in that round — the decision latency a K-thread deployment pays
  /// per slot (shards within a round run concurrently; rounds are
  /// sequential). Requires time_decisions; bench/micro_shard reports
  /// throughput against this alongside wall clock, which on a single-core
  /// host serializes the shards and hides the parallel speedup.
  [[nodiscard]] double critical_path_seconds() const noexcept {
    return critical_seconds_;
  }

  /// Bids that were admitted by a shard other than their first choice —
  /// welfare the second chance recovered. Subset of rerouted_bids().
  [[nodiscard]] std::uint64_t reroute_admits() const noexcept {
    return reroute_admits_;
  }
  /// Bids re-offered at least once (second-chance budget consumed).
  [[nodiscard]] std::uint64_t rerouted_bids() const noexcept {
    return rerouted_bids_;
  }
  /// Bids moved off a dead shard (does not consume the reroute budget).
  [[nodiscard]] std::uint64_t failover_bids() const noexcept {
    return failover_bids_;
  }

 private:
  void init_shards(const Instance& env, const HandleFactory& handles);
  void decide_batch(Slot now, std::vector<Task>& batch, std::size_t drained,
                    std::size_t queue_depth);
  void reject_late(const Task& bid);

  Cluster cluster_;
  EnergyModel energy_;
  Marketplace market_;
  Slot horizon_;
  ShardedConfig config_;

  ShardPlan plan_;
  PriceBoard board_;
  Router router_;
  /// owner_[global node] = (shard, local id) — outage mapping.
  std::vector<std::pair<int, NodeId>> owner_;
  std::vector<std::unique_ptr<ShardHandle>> shards_;

  service::BidQueue queue_;
  service::ServiceMetrics metrics_;
  std::vector<service::DecisionSubscriber*> subscribers_;

  // Documented exemption (DESIGN.md §13): everything below is
  // leader-thread-only — producers touch only queue_ (internally locked)
  // and metrics_; shard state crosses threads exclusively through the
  // round protocol (each handle's own locks) and the seqlock board_.
  // dirty_ is the single cross-thread flag and stays an atomic.
  std::map<Slot, std::vector<Task>> held_;
  Slot next_slot_ = 0;
  bool finished_ = false;
  std::atomic<bool> dirty_{false};
  double booked_compute_ = 0.0;
  double critical_seconds_ = 0.0;
  std::uint64_t reroute_admits_ = 0;
  std::uint64_t rerouted_bids_ = 0;
  std::uint64_t routed_bids_ = 0;
  std::uint64_t failover_bids_ = 0;
  // Router reroute volume, exported through the service registry
  // (lorasched_router_* — see DESIGN.md §10).
  obs::Counter* reroutes_total_ = nullptr;
  obs::Counter* reroute_admits_total_ = nullptr;
  obs::Counter* failovers_total_ = nullptr;
  obs::Gauge* reroute_ratio_ = nullptr;
  // Round-phase latency histograms (arm/offer/decide per re-offer round,
  // publish per slot — DESIGN.md §12).
  obs::Histogram* phase_arm_ = nullptr;
  obs::Histogram* phase_offer_ = nullptr;
  obs::Histogram* phase_decide_ = nullptr;
  obs::Histogram* phase_publish_ = nullptr;

  Metrics sim_metrics_;
  std::vector<TaskOutcome> outcomes_;
  std::vector<Schedule> schedules_;
};

}  // namespace lorasched::shard
