#include "lorasched/shard/price_board.h"

#include <stdexcept>

namespace lorasched::shard {

PriceBoard::PriceBoard(int shards, int classes) : classes_(classes) {
  if (shards < 1 || classes < 1) {
    throw std::invalid_argument(
        "price board needs at least one shard and one class");
  }
  entries_ = std::vector<Entry>(static_cast<std::size_t>(shards));
  for (Entry& entry : entries_) {
    entry.values = std::make_unique<std::atomic<double>[]>(payload_size());
    for (std::size_t i = 0; i < payload_size(); ++i) {
      entry.values[i].store(0.0, std::memory_order_relaxed);
    }
    // Slot -1 marks "nothing published yet"; free capacity is zero until
    // the runner's first publish, so the router treats an unpublished
    // shard as cold rather than infinitely attractive.
    entry.values[0].store(-1.0, std::memory_order_relaxed);
  }
}

void PriceBoard::publish(int s, const PriceSnapshot& snapshot) {
  if (snapshot.classes.size() != static_cast<std::size_t>(classes_)) {
    throw std::invalid_argument("price snapshot has wrong class count");
  }
  Entry& entry = entries_.at(static_cast<std::size_t>(s));
  const std::uint64_t begin =
      entry.version.load(std::memory_order_relaxed) + 1;  // odd: in flight
  entry.version.store(begin, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  std::size_t i = 0;
  entry.values[i++].store(static_cast<double>(snapshot.published_slot),
                          std::memory_order_relaxed);
  entry.values[i++].store(snapshot.free_compute, std::memory_order_relaxed);
  for (const ClassPrice& cls : snapshot.classes) {
    entry.values[i++].store(cls.free_compute, std::memory_order_relaxed);
    entry.values[i++].store(cls.free_mem, std::memory_order_relaxed);
    entry.values[i++].store(cls.mean_lambda, std::memory_order_relaxed);
    entry.values[i++].store(cls.mean_phi, std::memory_order_relaxed);
  }
  entry.version.store(begin + 1, std::memory_order_release);  // even: stable
}

PriceSnapshot PriceBoard::read(int s) const {
  const Entry& entry = entries_.at(static_cast<std::size_t>(s));
  PriceSnapshot snapshot;
  snapshot.classes.resize(static_cast<std::size_t>(classes_));
  for (;;) {
    const std::uint64_t before = entry.version.load(std::memory_order_acquire);
    if (before % 2 != 0) continue;  // publish in flight
    std::size_t i = 0;
    snapshot.published_slot = static_cast<Slot>(
        entry.values[i++].load(std::memory_order_relaxed));
    snapshot.free_compute = entry.values[i++].load(std::memory_order_relaxed);
    for (ClassPrice& cls : snapshot.classes) {
      cls.free_compute = entry.values[i++].load(std::memory_order_relaxed);
      cls.free_mem = entry.values[i++].load(std::memory_order_relaxed);
      cls.mean_lambda = entry.values[i++].load(std::memory_order_relaxed);
      cls.mean_phi = entry.values[i++].load(std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (entry.version.load(std::memory_order_relaxed) == before) {
      return snapshot;
    }
  }
}

}  // namespace lorasched::shard
