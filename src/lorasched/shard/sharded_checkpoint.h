// Checkpoint of a running ShardedService — the K-shard analogue of
// service::Checkpoint. Restoring into a freshly constructed service over
// the same environment, the same policy factory, and the same ShardedConfig
// reproduces the original bit for bit: every shard's dual grids and ledger
// commitments round-trip independently, and the shard-count / router-seed
// fields are cross-checked on restore so a checkpoint cannot silently
// resume under a different partitioning (routing would diverge).
// io::write_sharded_checkpoint / io::read_sharded_checkpoint serialize it
// through a text stream with full double precision.
#pragma once

#include <cstdint>
#include <vector>

#include "lorasched/cluster/capacity_ledger.h"
#include "lorasched/core/schedule.h"
#include "lorasched/sim/metrics.h"
#include "lorasched/types.h"
#include "lorasched/workload/task.h"

namespace lorasched::shard {

/// One shard's private decision state.
struct ShardState {
  /// Sum of this shard's admitted schedules' compute (the shard-local
  /// conservation cross-check).
  double booked_compute = 0.0;
  /// Opaque policy dump (CheckpointableState::checkpoint_state()).
  std::vector<double> policy_state;
  CapacityLedger::Snapshot ledger;
};

struct ShardedCheckpoint {
  /// First slot the restored service will process.
  Slot next_slot = 0;
  Slot horizon = 0;
  /// Partitioning/routing identity — must match the restoring service's
  /// configuration exactly (the node partition is a deterministic function
  /// of cluster + shard count, so these three pin it).
  int shards = 0;
  std::uint64_t router_seed = 0;
  int reroute_attempts = 0;
  /// Aggregate booked compute across shards (equals the shard sum; stored
  /// for the monolithic-style finish() cross-check).
  double booked_compute = 0.0;
  std::vector<ShardState> shard_states;
  /// Bids accepted (queued or held for a future slot) but not yet decided.
  std::vector<Task> pending;
  /// Decisions made so far, in decision order, with aligned schedules
  /// (fleet node ids).
  std::vector<TaskOutcome> outcomes;
  std::vector<Schedule> schedules;
  Metrics metrics;
};

}  // namespace lorasched::shard
