#include "lorasched/core/pricing.h"

namespace lorasched {

Money payment(const Schedule& schedule, const DualState& pre_update_duals) {
  return payment_from_prices(schedule, pre_update_duals.max_lambda(schedule),
                             pre_update_duals.max_phi(schedule));
}

Money payment_from_prices(const Schedule& schedule, double max_lambda,
                          double max_phi) {
  return schedule.vendor_price + schedule.energy_cost +
         max_lambda * schedule.norm_compute + max_phi * schedule.norm_mem;
}

}  // namespace lorasched
