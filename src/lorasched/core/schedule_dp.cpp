#include "lorasched/core/schedule_dp.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "lorasched/obs/registry.h"
#include "lorasched/obs/span.h"

#ifdef LORASCHED_AUDIT
#include "lorasched/audit/oracle.h"
#endif

namespace lorasched {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr std::int16_t kSkip = -1;

std::uint64_t next_dp_uid() noexcept {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}
}  // namespace

// --- DpScratch ---------------------------------------------------------------

std::size_t DpScratch::bytes_reserved() const noexcept {
  std::size_t bytes = (prev_.capacity() + cur_.capacity() +
                       delta_.capacity()) *
                          sizeof(double) +
                      choice_.capacity() * sizeof(std::int16_t) +
                      row_active_.capacity() * sizeof(std::size_t) +
                      argpos_.capacity() * sizeof(std::int32_t) +
                      best_node_.capacity() * sizeof(NodeId) +
                      live_.capacity() * sizeof(LiveClass) +
                      live_start_.capacity() * sizeof(std::size_t) +
                      memo_.capacity() * sizeof(Quant);
  for (const Quant& q : memo_) {
    bytes += (q.class_rate.capacity() + q.class_s_norm.capacity()) *
                 sizeof(double) +
             q.class_units.capacity() * sizeof(int);
  }
  return bytes;
}

const DpScratch::Quant& DpScratch::quantize(std::uint64_t owner,
                                            const Task& task,
                                            const Cluster& cluster,
                                            const ScheduleDpConfig& config) {
  // The memo is valid for one (ScheduleDp instance, task work); entries are
  // keyed by compute share — every vendor/delay candidate of a bid at the
  // same share reuses one entry. Slots are recycled (memo_used_ marks the
  // live prefix) so steady-state bids allocate nothing here.
  if (owner != memo_owner_ || task.work != memo_work_) {
    memo_used_ = 0;
    memo_owner_ = owner;
    memo_work_ = task.work;
  }
  for (std::size_t i = 0; i < memo_used_; ++i) {
    if (memo_[i].share == task.compute_share) return memo_[i];
  }
  if (memo_used_ == memo_.size()) memo_.emplace_back();
  Quant& q = memo_[memo_used_++];
  q.share = task.compute_share;
  q.usable = false;
  q.unit = 0.0;
  q.total_units = 0;
  q.max_class_units = 0;

  const int classes = cluster.class_count();
  const auto cw = static_cast<std::size_t>(classes);
  q.class_rate.assign(cw, 0.0);
  q.class_s_norm.assign(cw, 0.0);
  q.class_units.assign(cw, 0);

  // Bit-identical to the legacy per-call quantization: unit u = (min usable
  // class rate) / granularity, rates rounded down, table capped at
  // max_units.
  double min_rate = kInf;
  for (int c = 0; c < classes; ++c) {
    const NodeId rep = cluster.class_representative(c);
    const double rate = cluster.task_rate(task, rep);
    q.class_rate[static_cast<std::size_t>(c)] = rate;
    q.class_s_norm[static_cast<std::size_t>(c)] =
        rate / cluster.compute_capacity(rep);
    if (rate > 0.0) min_rate = std::min(min_rate, rate);
  }
  if (!std::isfinite(min_rate)) return q;
  double unit = min_rate / config.granularity;
  int total_units = static_cast<int>(std::ceil(task.work / unit));
  if (total_units > config.max_units) {
    unit = task.work / static_cast<double>(config.max_units);
    total_units = config.max_units;
  }
  for (int c = 0; c < classes; ++c) {
    q.class_units[static_cast<std::size_t>(c)] = static_cast<int>(
        std::floor(q.class_rate[static_cast<std::size_t>(c)] / unit));
    q.max_class_units =
        std::max(q.max_class_units, q.class_units[static_cast<std::size_t>(c)]);
  }
  q.unit = unit;
  q.total_units = total_units;
  q.usable = q.max_class_units > 0;
  return q;
}

// --- ScheduleDp --------------------------------------------------------------

ScheduleDp::ScheduleDp(const Cluster& cluster, const EnergyModel& energy,
                       ScheduleDpConfig config)
    : cluster_(cluster),
      energy_(energy),
      config_(config),
      uid_(next_dp_uid()),
      kernel_(config.simd ? simd::active_kernel() : simd::Kernel::kScalar) {
  if (config_.granularity < 1.0) {
    throw std::invalid_argument("granularity must be >= 1");
  }
  if (config_.max_units < 1) {
    throw std::invalid_argument("max_units must be >= 1");
  }
}

std::size_t ScheduleDp::PriceSnapshot::bytes() const noexcept {
  return (lambda.capacity() + phi.capacity() + node_cost.capacity()) *
             sizeof(double) +
         node_of.capacity() * sizeof(NodeId) +
         (base.capacity() + size.capacity() + node_pos.capacity() +
          node_stride.capacity()) *
             sizeof(std::size_t) +
         sizeof(PriceSnapshot);
}

Schedule ScheduleDp::find(const Task& task, Slot start, const DualState& duals,
                          const void* filter_ctx, SlotFilter filter) const {
  thread_local DpScratch scratch;
  return find(task, start, duals, scratch, filter_ctx, filter);
}

Schedule ScheduleDp::find(const Task& task, Slot start, const DualState& duals,
                          DpScratch& scratch, const void* filter_ctx,
                          SlotFilter filter) const {
  Schedule schedule;
  find_into(schedule, task, start, duals, scratch, filter_ctx, filter);
  return schedule;
}

void ScheduleDp::find_into(Schedule& result, const Task& task, Slot start,
                           const DualState& duals, DpScratch& scratch,
                           const void* filter_ctx, SlotFilter filter) const {
  find_impl(result, task, start, duals, scratch, filter_ctx, filter);
  if (auto* gauge = scratch_gauge_.load(std::memory_order_relaxed)) {
    gauge->set_max(static_cast<double>(scratch.bytes_reserved()));
  }
  audit_result(task, start, duals, filter_ctx, filter, result);
}

void ScheduleDp::audit_result(const Task& task, Slot start,
                              const DualState& duals, const void* filter_ctx,
                              SlotFilter filter,
                              const Schedule& schedule) const {
#ifdef LORASCHED_AUDIT
  // Invariant (c): on instances small enough to enumerate, the DP result
  // must match the brute-force oracle (feasibility and optimal cost).
  audit::check_dp_schedule(task, start, duals, cluster_, energy_, config_,
                           filter_ctx, filter, schedule);
#else
  (void)task;
  (void)start;
  (void)duals;
  (void)filter_ctx;
  (void)filter;
  (void)schedule;
#endif
}

ScheduleDp::CacheStats ScheduleDp::cache_stats() const noexcept {
  return CacheStats{cache_hits_.load(std::memory_order_relaxed),
                    cache_misses_.load(std::memory_order_relaxed)};
}

void ScheduleDp::register_metrics(obs::MetricsRegistry& registry,
                                  std::string_view prefix) const {
  const std::string p(prefix);
  hits_counter_.store(
      &registry.counter(p + "_price_cache_hits_total",
                        "Schedule-DP calls served by the current dual-price "
                        "snapshot (prices unchanged since the last rebuild)"),
      std::memory_order_relaxed);
  misses_counter_.store(
      &registry.counter(p + "_price_cache_misses_total",
                        "Price-epoch movements (an admission updated eq. 7/8 "
                        "or first use): the snapshot is patched in place via "
                        "the dual-state dirty-cell journal, or rebuilt"),
      std::memory_order_relaxed);
  scratch_gauge_.store(
      &registry.gauge(p + "_scratch_bytes",
                      "High-water DP scratch-arena footprint in bytes"),
      std::memory_order_relaxed);
  snapshot_gauge_.store(
      &registry.gauge(p + "_snapshot_bytes",
                      "High-water dual-price snapshot footprint in bytes"),
      std::memory_order_relaxed);
  // Which min-plus kernel this instance actually dispatches to, so the
  // federation/soak planes can see the production arm (0=scalar, 1=avx2,
  // 2=neon — the simd::Kernel wire values).
  registry
      .gauge(p + "_simd_dispatch",
             "Active Alg. 2 min-plus row kernel (0=scalar, 1=avx2, 2=neon)")
      .set(static_cast<double>(kernel_));
}

std::shared_ptr<const ScheduleDp::PriceSnapshot> ScheduleDp::snapshot_for(
    const DualState& duals) const {
  util::MutexLock lock(cache_mutex_);
  if (cache_ != nullptr && cache_->uid == duals.uid() &&
      cache_->epoch == duals.epoch()) {
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
    if (auto* counter = hits_counter_.load(std::memory_order_relaxed)) {
      counter->add();
    }
    return cache_;
  }
  cache_misses_.fetch_add(1, std::memory_order_relaxed);
  if (auto* counter = misses_counter_.load(std::memory_order_relaxed)) {
    counter->add();
  }

  // Incremental path: same DualState, the journal covers every mutation
  // since our epoch, and no concurrent find() still holds the snapshot
  // (use_count == 1 under the mutex) — patch the dirty cells in place.
  // An admission (eq. 7/8) touches only its schedule's run, so this turns
  // the post-admission rebuild from O(nodes × horizon) into O(|run|).
  if (cache_ != nullptr && cache_->uid == duals.uid() &&
      cache_.use_count() == 1) {
    dirty_.clear();
    if (duals.dirty_cells_since(cache_->epoch, dirty_)) {
      auto* snap = const_cast<PriceSnapshot*>(cache_.get());
      const auto hz = static_cast<std::size_t>(snap->horizon);
      for (const std::uint32_t cell : dirty_) {
        const auto k = static_cast<NodeId>(cell / hz);
        const auto t = static_cast<Slot>(cell % hz);
        const std::size_t idx =
            snap->node_pos[static_cast<std::size_t>(k)] +
            static_cast<std::size_t>(t) *
                snap->node_stride[static_cast<std::size_t>(k)];
        snap->lambda[idx] = duals.lambda(k, t);
        snap->phi[idx] = duals.phi(k, t);
      }
      snap->epoch = duals.epoch();
      return cache_;
    }
  }

  auto snap = std::make_shared<PriceSnapshot>();
  snap->uid = duals.uid();
  snap->epoch = duals.epoch();
  snap->horizon = duals.horizon();
  const int classes = cluster_.class_count();
  const auto hz = static_cast<std::size_t>(snap->horizon);
  snap->base.resize(static_cast<std::size_t>(classes));
  snap->size.resize(static_cast<std::size_t>(classes));
  std::size_t total = 0;
  for (int c = 0; c < classes; ++c) {
    const auto& members = cluster_.class_nodes(c);
    snap->base[static_cast<std::size_t>(c)] = total;
    snap->size[static_cast<std::size_t>(c)] = members.size();
    total += members.size() * hz;
  }
  snap->lambda.resize(total);
  snap->phi.resize(total);
  snap->node_of.resize(total);
  snap->node_pos.resize(static_cast<std::size_t>(cluster_.node_count()));
  snap->node_stride.resize(static_cast<std::size_t>(cluster_.node_count()));
  for (int c = 0; c < classes; ++c) {
    const auto& members = cluster_.class_nodes(c);
    const std::size_t sz = members.size();
    const std::size_t base = snap->base[static_cast<std::size_t>(c)];
    for (std::size_t i = 0; i < sz; ++i) {
      const NodeId k = members[i];
      snap->node_pos[static_cast<std::size_t>(k)] = base + i;
      snap->node_stride[static_cast<std::size_t>(k)] = sz;
      for (std::size_t t = 0; t < hz; ++t) {
        const std::size_t idx = base + t * sz + i;
        snap->lambda[idx] = duals.lambda(k, static_cast<Slot>(t));
        snap->phi[idx] = duals.phi(k, static_cast<Slot>(t));
        snap->node_of[idx] = k;
      }
    }
  }
  // e_ikt factors as full_node_cost(k, t) * (s_ik / C_kp); the full-node
  // cost is task-independent and identical within a class, so one row per
  // class replaces the per-node trigonometry of the legacy Δ loop.
  snap->node_cost.resize(static_cast<std::size_t>(classes) * hz);
  for (int c = 0; c < classes; ++c) {
    const NodeId rep = cluster_.class_representative(c);
    for (std::size_t t = 0; t < hz; ++t) {
      snap->node_cost[static_cast<std::size_t>(c) * hz + t] =
          energy_.full_node_cost(cluster_, rep, static_cast<Slot>(t));
    }
  }

  cache_ = std::move(snap);
  if (auto* gauge = snapshot_gauge_.load(std::memory_order_relaxed)) {
    gauge->set_max(static_cast<double>(cache_->bytes()));
  }
  return cache_;
}

void ScheduleDp::find_impl(Schedule& result, const Task& task, Slot start,
                           const DualState& duals, DpScratch& scratch,
                           const void* filter_ctx, SlotFilter filter) const {
  if (config_.price_cache && duals.node_count() == cluster_.node_count()) {
    result.run.clear();  // keeps capacity — the steady state reuses it
    result.task = task.id;
    result.vendor = kNoVendor;
    result.vendor_price = 0.0;
    result.prep_delay = 0;
    result.total_compute = 0.0;
    result.total_mem = 0.0;
    result.norm_compute = 0.0;
    result.norm_mem = 0.0;
    result.energy_cost = 0.0;
    result.welfare_gain = 0.0;
    result.exclusive = false;
    result.share_override = 0.0;
    find_cached(result, task, start, duals, scratch, filter_ctx, filter);
  } else {
    result = find_legacy(task, start, duals, filter_ctx, filter);
  }
}


void ScheduleDp::find_cached(Schedule& result, const Task& task, Slot start,
                             const DualState& duals, DpScratch& scratch,
                             const void* filter_ctx, SlotFilter filter) const {
  LORASCHED_SPAN("dp/find");
  if (task.work <= 0.0) return;  // nothing to run
  if (start > task.deadline || start < 0 ||
      task.deadline >= duals.horizon()) {
    return;  // window empty or outside the horizon
  }

  const int classes = cluster_.class_count();
  const Slot window = task.deadline - start + 1;

  // --- Work quantization (memoized per bid, satellite of DESIGN.md §5) ----
  const DpScratch::Quant& q = scratch.quantize(uid_, task, cluster_, config_);
  if (!q.usable) return;  // no class can make progress
  // Quick infeasibility check: even the fastest class over every slot of
  // the window cannot reach the target.
  if (static_cast<long long>(q.max_class_units) * window < q.total_units) {
    return;
  }

  const auto snap = snapshot_for(duals);
  const auto hz = static_cast<std::size_t>(snap->horizon);

  // --- Per-slot class representatives (Δ_kt over the snapshot) ------------
  // Finite-Δ classes are compacted into per-slot LiveClass rows as they are
  // found; classes the filter kills (or with zero units) never reach the
  // DP's inner loop, and slots with no usable class skip their row
  // entirely.
  const auto tw = static_cast<std::size_t>(window);
  const auto cw = static_cast<std::size_t>(classes);
  scratch.best_node_.resize(tw * cw);  // stale entries are never read
  scratch.delta_.resize(cw * tw);      // dead-class cells are never read
  scratch.argpos_.resize(tw);
  // Class-outer sweep: the per-class invariants (representative, s̃, the
  // r̃ division) hoist out of the slot loop, and each class's snapshot rows
  // stream contiguously through the argmin kernel. Values are bit-identical
  // to the old slot-outer order — the same expressions over the same
  // operands, evaluation order only changes *across* independent (slot,
  // class) cells.
  for (int c = 0; c < classes; ++c) {
    const int units = q.class_units[static_cast<std::size_t>(c)];
    if (units == 0) continue;
    const NodeId rep = cluster_.class_representative(c);
    // Normalized per-slot loads are constant within the class (same
    // profile): s̃ = share, r̃ = r_i / adapter capacity.
    const double s_norm = q.class_s_norm[static_cast<std::size_t>(c)];
    const double r_norm = task.mem_gb / cluster_.adapter_mem_capacity(rep);
    const std::size_t sz = snap->size[static_cast<std::size_t>(c)];
    const double* node_cost =
        snap->node_cost.data() + static_cast<std::size_t>(c) * hz;
    const std::size_t row0 = snap->base[static_cast<std::size_t>(c)] +
                             static_cast<std::size_t>(start) * sz;
    double* delta_row =
        scratch.delta_.data() + static_cast<std::size_t>(c) * tw;
    if (filter == nullptr) {
      // Kernel-dispatched first-strict-minimum sweep over the whole window
      // (simd/minplus.h): consecutive slots of a class are contiguous rows
      // of the snapshot (stride sz), and the slot constant is the same
      // node_cost[t] * s̃ expression as the filtered branch — so every
      // (value, index) is bit- and tie-identical to the plain loop below.
      simd::cost_argmin_sweep(
          kernel_, snap->lambda.data() + row0, snap->phi.data() + row0, sz,
          tw, sz, s_norm, r_norm,
          node_cost + static_cast<std::size_t>(start), delta_row,
          scratch.argpos_.data());
      for (Slot rel = 0; rel < window; ++rel) {
        const auto pos = static_cast<std::size_t>(
            scratch.argpos_[static_cast<std::size_t>(rel)]);
        const NodeId* ids =
            snap->node_of.data() + row0 + static_cast<std::size_t>(rel) * sz;
        scratch.best_node_[static_cast<std::size_t>(rel) * cw +
                           static_cast<std::size_t>(c)] =
            pos < sz ? ids[pos] : -1;
      }
    } else {
      for (Slot rel = 0; rel < window; ++rel) {
        const Slot t = start + rel;
        // Bit-identical to energy_.cost(task, cluster_, k, t) for every
        // node k of the class: full_node_cost and the throughput share come
        // from the same expressions, and the class shares one profile.
        const double e_ct = node_cost[static_cast<std::size_t>(t)] * s_norm;
        const std::size_t row = row0 + static_cast<std::size_t>(rel) * sz;
        const double* lam = snap->lambda.data() + row;
        const double* phi = snap->phi.data() + row;
        const NodeId* ids = snap->node_of.data() + row;
        double best = kInf;
        NodeId best_k = -1;
        for (std::size_t i = 0; i < sz; ++i) {
          if (!filter(filter_ctx, ids[i], t)) continue;
          const double cost = s_norm * lam[i] + r_norm * phi[i] + e_ct;
          if (cost < best) {
            best = cost;
            best_k = ids[i];
          }
        }
        scratch.best_node_[static_cast<std::size_t>(rel) * cw +
                           static_cast<std::size_t>(c)] = best_k;
        delta_row[static_cast<std::size_t>(rel)] = best;
      }
    }
  }
  // Live rows are rebuilt slot-major in class order — the same LiveClass
  // sequence the old slot-outer loop pushed.
  scratch.live_.clear();
  scratch.live_start_.resize(tw + 1);
  for (Slot rel = 0; rel < window; ++rel) {
    scratch.live_start_[static_cast<std::size_t>(rel)] = scratch.live_.size();
    for (int c = 0; c < classes; ++c) {
      const int units = q.class_units[static_cast<std::size_t>(c)];
      if (units == 0) continue;
      const double best = scratch.delta_[static_cast<std::size_t>(c) * tw +
                                         static_cast<std::size_t>(rel)];
      if (best != kInf) {
        scratch.live_.push_back(DpScratch::LiveClass{
            best, static_cast<std::size_t>(units),
            static_cast<std::int16_t>(c)});
      }
    }
  }
  scratch.live_start_[tw] = scratch.live_.size();

  // --- DP over (slot, work units) -----------------------------------------
  const auto levels = static_cast<std::size_t>(q.total_units) + 1;
  scratch.prev_.assign(levels, kInf);
  scratch.cur_.assign(levels, kInf);
  scratch.prev_[0] = 0.0;
  scratch.choice_.resize(tw * levels);  // stale cells guarded by row_active_
  scratch.row_active_.resize(tw);
  double* prev = scratch.prev_.data();
  double* cur = scratch.cur_.data();
  // Reachability frontier: after processing row rel, every level above
  // Σ_{r<=rel} max-units(live classes of r) is provably +inf, so the row
  // kernel only touches [0, frontier] and the tail keeps the kInf the
  // buffers were initialized with (the frontier only grows, and a level is
  // first written in the row that reaches it). Choice cells at or above the
  // per-row active count are never written — row_active_ makes the
  // backtrack read them as kSkip, which is exactly what the full scan
  // computed for provably-+inf cells.
  std::size_t frontier = 0;
  for (Slot rel = 0; rel < window; ++rel) {
    std::int16_t* chrow =
        scratch.choice_.data() + static_cast<std::size_t>(rel) * levels;
    const DpScratch::LiveClass* lo =
        scratch.live_.data() +
        scratch.live_start_[static_cast<std::size_t>(rel)];
    const DpScratch::LiveClass* hi =
        scratch.live_.data() +
        scratch.live_start_[static_cast<std::size_t>(rel) + 1];
    if (lo == hi) {
      // No usable class this slot: the row is pure carry-over (the legacy
      // path copied prev into cur and swapped; skipping both is
      // value-identical and saves the O(levels · classes) dead pass).
      scratch.row_active_[static_cast<std::size_t>(rel)] = 0;
      continue;
    }
    std::size_t row_max = 0;
    for (const DpScratch::LiveClass* e = lo; e != hi; ++e) {
      if (e->units > row_max) row_max = e->units;
    }
    frontier = std::min(frontier + row_max, levels - 1);
    const std::size_t active = frontier + 1;
    scratch.row_active_[static_cast<std::size_t>(rel)] = active;
    // Min-plus relaxation of the row, dispatched to the active kernel
    // (scalar / AVX2 / NEON — bit- and tie-identical by the lane contract
    // of simd/minplus.h).
    simd::dp_row(kernel_, prev, cur, chrow, active, lo, hi);
    std::swap(prev, cur);
  }

  if (prev[levels - 1] == kInf) return;  // infeasible

  // --- Backtrack -----------------------------------------------------------
  std::size_t w = levels - 1;
  for (Slot rel = window - 1; rel >= 0; --rel) {
    const std::int16_t c =
        w < scratch.row_active_[static_cast<std::size_t>(rel)]
            ? scratch.choice_[static_cast<std::size_t>(rel) * levels + w]
            : kSkip;
    if (c == kSkip) continue;
    const NodeId k = scratch.best_node_[static_cast<std::size_t>(rel) * cw +
                                        static_cast<std::size_t>(c)];
    result.run.push_back({k, start + rel});
    const auto units =
        static_cast<std::size_t>(q.class_units[static_cast<std::size_t>(c)]);
    w = w > units ? w - units : 0;
  }
  std::reverse(result.run.begin(), result.run.end());
}

// The pre-overhaul hot path, kept verbatim as the price_cache = false arm:
// per-node dual lookups, per-node energy trigonometry, and freshly
// allocated DP tables every call. bench/micro_core A/Bs the cached path
// against this, and the differential tests prove both arms bit-identical.
Schedule ScheduleDp::find_legacy(const Task& task, Slot start,
                                 const DualState& duals,
                                 const void* filter_ctx,
                                 SlotFilter filter) const {
  LORASCHED_SPAN("dp/find");
  Schedule schedule;
  schedule.task = task.id;
  if (task.work <= 0.0) return schedule;  // nothing to run
  if (start > task.deadline || start < 0 ||
      task.deadline >= duals.horizon()) {
    return schedule;  // window empty or outside the horizon
  }

  const int classes = cluster_.class_count();
  const Slot window = task.deadline - start + 1;

  // --- Work quantization --------------------------------------------------
  // Unit u = (min usable class rate) / granularity; rates rounded down.
  double min_rate = kInf;
  std::vector<double> class_rate(static_cast<std::size_t>(classes));
  for (int c = 0; c < classes; ++c) {
    const double rate = cluster_.task_rate(task, cluster_.class_representative(c));
    class_rate[static_cast<std::size_t>(c)] = rate;
    if (rate > 0.0) min_rate = std::min(min_rate, rate);
  }
  if (!std::isfinite(min_rate)) return schedule;
  double unit = min_rate / config_.granularity;
  int total_units = static_cast<int>(std::ceil(task.work / unit));
  if (total_units > config_.max_units) {
    unit = task.work / static_cast<double>(config_.max_units);
    total_units = config_.max_units;
  }
  std::vector<int> class_units(static_cast<std::size_t>(classes), 0);
  int max_class_units = 0;
  for (int c = 0; c < classes; ++c) {
    class_units[static_cast<std::size_t>(c)] = static_cast<int>(
        std::floor(class_rate[static_cast<std::size_t>(c)] / unit));
    max_class_units =
        std::max(max_class_units, class_units[static_cast<std::size_t>(c)]);
  }
  if (max_class_units == 0) return schedule;  // no class can make progress
  // Quick infeasibility check: even the fastest class over every slot of the
  // window cannot reach the target.
  if (static_cast<long long>(max_class_units) * window < total_units) {
    return schedule;
  }

  // --- Per-slot class representatives (Δ_kt precompute) --------------------
  // delta[t][c]: cost increment of running slot (start + t) on the best node
  // of class c; best_node[t][c]: that node. Infinity when the class has no
  // admissible node at that slot.
  const auto tw = static_cast<std::size_t>(window);
  const auto cw = static_cast<std::size_t>(classes);
  std::vector<double> delta(tw * cw, kInf);
  std::vector<NodeId> best_node(tw * cw, -1);
  for (Slot rel = 0; rel < window; ++rel) {
    const Slot t = start + rel;
    for (int c = 0; c < classes; ++c) {
      if (class_units[static_cast<std::size_t>(c)] == 0) continue;
      // Normalized per-slot loads are constant within the class (same
      // profile): s̃ = share, r̃ = r_i / adapter capacity.
      const NodeId rep = cluster_.class_representative(c);
      const double s_norm = class_rate[static_cast<std::size_t>(c)] /
                            cluster_.compute_capacity(rep);
      const double r_norm = task.mem_gb / cluster_.adapter_mem_capacity(rep);
      double best = kInf;
      NodeId best_k = -1;
      for (NodeId k : cluster_.class_nodes(c)) {
        if (filter != nullptr && !filter(filter_ctx, k, t)) continue;
        const double cost = s_norm * duals.lambda(k, t) +
                            r_norm * duals.phi(k, t) +
                            energy_.cost(task, cluster_, k, t);
        if (cost < best) {
          best = cost;
          best_k = k;
        }
      }
      delta[static_cast<std::size_t>(rel) * cw + static_cast<std::size_t>(c)] =
          best;
      best_node[static_cast<std::size_t>(rel) * cw +
                static_cast<std::size_t>(c)] = best_k;
    }
  }

  // --- DP over (slot, work units) ------------------------------------------
  const auto levels = static_cast<std::size_t>(total_units) + 1;
  std::vector<double> prev(levels, kInf);
  std::vector<double> cur(levels, kInf);
  prev[0] = 0.0;
  // choice[rel][w]: class run during slot rel to reach work level w, or kSkip.
  std::vector<std::int16_t> choice(tw * levels, kSkip);

  for (Slot rel = 0; rel < window; ++rel) {
    const std::size_t row = static_cast<std::size_t>(rel) * levels;
    for (std::size_t w = 0; w < levels; ++w) {
      double best = prev[w];
      std::int16_t best_choice = kSkip;
      for (int c = 0; c < classes; ++c) {
        const int units = class_units[static_cast<std::size_t>(c)];
        if (units == 0) continue;
        const double d = delta[static_cast<std::size_t>(rel) * cw +
                               static_cast<std::size_t>(c)];
        if (d == kInf) continue;
        const std::size_t w_from =
            w > static_cast<std::size_t>(units) ? w - static_cast<std::size_t>(units) : 0;
        if (prev[w_from] == kInf) continue;
        const double cand = prev[w_from] + d;
        if (cand < best) {
          best = cand;
          best_choice = static_cast<std::int16_t>(c);
        }
      }
      cur[w] = best;
      choice[row + w] = best_choice;
    }
    std::swap(prev, cur);
  }

  if (prev[levels - 1] == kInf) return schedule;  // infeasible

  // --- Backtrack -----------------------------------------------------------
  std::size_t w = levels - 1;
  for (Slot rel = window - 1; rel >= 0; --rel) {
    const std::int16_t c =
        choice[static_cast<std::size_t>(rel) * levels + w];
    if (c == kSkip) continue;
    const NodeId k = best_node[static_cast<std::size_t>(rel) * cw +
                               static_cast<std::size_t>(c)];
    schedule.run.push_back({k, start + rel});
    const auto units =
        static_cast<std::size_t>(class_units[static_cast<std::size_t>(c)]);
    w = w > units ? w - units : 0;
  }
  std::reverse(schedule.run.begin(), schedule.run.end());
  return schedule;
}

}  // namespace lorasched
