#include "lorasched/core/schedule_dp.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "lorasched/obs/span.h"

#ifdef LORASCHED_AUDIT
#include "lorasched/audit/oracle.h"
#endif

namespace lorasched {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr std::int16_t kSkip = -1;
}  // namespace

ScheduleDp::ScheduleDp(const Cluster& cluster, const EnergyModel& energy,
                       ScheduleDpConfig config)
    : cluster_(cluster), energy_(energy), config_(config) {
  if (config_.granularity < 1.0) {
    throw std::invalid_argument("granularity must be >= 1");
  }
  if (config_.max_units < 1) {
    throw std::invalid_argument("max_units must be >= 1");
  }
}

Schedule ScheduleDp::find(const Task& task, Slot start, const DualState& duals,
                          const void* filter_ctx, SlotFilter filter) const {
  Schedule schedule = find_impl(task, start, duals, filter_ctx, filter);
#ifdef LORASCHED_AUDIT
  // Invariant (c): on instances small enough to enumerate, the DP result
  // must match the brute-force oracle (feasibility and optimal cost).
  audit::check_dp_schedule(task, start, duals, cluster_, energy_, config_,
                           filter_ctx, filter, schedule);
#endif
  return schedule;
}

Schedule ScheduleDp::find_impl(const Task& task, Slot start,
                               const DualState& duals, const void* filter_ctx,
                               SlotFilter filter) const {
  LORASCHED_SPAN("dp/find");
  Schedule schedule;
  schedule.task = task.id;
  if (task.work <= 0.0) return schedule;  // nothing to run
  if (start > task.deadline || start < 0 ||
      task.deadline >= duals.horizon()) {
    return schedule;  // window empty or outside the horizon
  }

  const int classes = cluster_.class_count();
  const Slot window = task.deadline - start + 1;

  // --- Work quantization --------------------------------------------------
  // Unit u = (min usable class rate) / granularity; rates rounded down.
  double min_rate = kInf;
  std::vector<double> class_rate(static_cast<std::size_t>(classes));
  for (int c = 0; c < classes; ++c) {
    const double rate = cluster_.task_rate(task, cluster_.class_representative(c));
    class_rate[static_cast<std::size_t>(c)] = rate;
    if (rate > 0.0) min_rate = std::min(min_rate, rate);
  }
  if (!std::isfinite(min_rate)) return schedule;
  double unit = min_rate / config_.granularity;
  int total_units = static_cast<int>(std::ceil(task.work / unit));
  if (total_units > config_.max_units) {
    unit = task.work / static_cast<double>(config_.max_units);
    total_units = config_.max_units;
  }
  std::vector<int> class_units(static_cast<std::size_t>(classes), 0);
  int max_class_units = 0;
  for (int c = 0; c < classes; ++c) {
    class_units[static_cast<std::size_t>(c)] = static_cast<int>(
        std::floor(class_rate[static_cast<std::size_t>(c)] / unit));
    max_class_units =
        std::max(max_class_units, class_units[static_cast<std::size_t>(c)]);
  }
  if (max_class_units == 0) return schedule;  // no class can make progress
  // Quick infeasibility check: even the fastest class over every slot of the
  // window cannot reach the target.
  if (static_cast<long long>(max_class_units) * window < total_units) {
    return schedule;
  }

  // --- Per-slot class representatives (Δ_kt precompute) --------------------
  // delta[t][c]: cost increment of running slot (start + t) on the best node
  // of class c; best_node[t][c]: that node. Infinity when the class has no
  // admissible node at that slot.
  const auto tw = static_cast<std::size_t>(window);
  const auto cw = static_cast<std::size_t>(classes);
  std::vector<double> delta(tw * cw, kInf);
  std::vector<NodeId> best_node(tw * cw, -1);
  for (Slot rel = 0; rel < window; ++rel) {
    const Slot t = start + rel;
    for (int c = 0; c < classes; ++c) {
      if (class_units[static_cast<std::size_t>(c)] == 0) continue;
      // Normalized per-slot loads are constant within the class (same
      // profile): s̃ = share, r̃ = r_i / adapter capacity.
      const NodeId rep = cluster_.class_representative(c);
      const double s_norm = class_rate[static_cast<std::size_t>(c)] /
                            cluster_.compute_capacity(rep);
      const double r_norm = task.mem_gb / cluster_.adapter_mem_capacity(rep);
      double best = kInf;
      NodeId best_k = -1;
      for (NodeId k : cluster_.class_nodes(c)) {
        if (filter != nullptr && !filter(filter_ctx, k, t)) continue;
        const double cost = s_norm * duals.lambda(k, t) +
                            r_norm * duals.phi(k, t) +
                            energy_.cost(task, cluster_, k, t);
        if (cost < best) {
          best = cost;
          best_k = k;
        }
      }
      delta[static_cast<std::size_t>(rel) * cw + static_cast<std::size_t>(c)] =
          best;
      best_node[static_cast<std::size_t>(rel) * cw +
                static_cast<std::size_t>(c)] = best_k;
    }
  }

  // --- DP over (slot, work units) ------------------------------------------
  const auto levels = static_cast<std::size_t>(total_units) + 1;
  std::vector<double> prev(levels, kInf);
  std::vector<double> cur(levels, kInf);
  prev[0] = 0.0;
  // choice[rel][w]: class run during slot rel to reach work level w, or kSkip.
  std::vector<std::int16_t> choice(tw * levels, kSkip);

  for (Slot rel = 0; rel < window; ++rel) {
    const std::size_t row = static_cast<std::size_t>(rel) * levels;
    for (std::size_t w = 0; w < levels; ++w) {
      double best = prev[w];
      std::int16_t best_choice = kSkip;
      for (int c = 0; c < classes; ++c) {
        const int units = class_units[static_cast<std::size_t>(c)];
        if (units == 0) continue;
        const double d = delta[static_cast<std::size_t>(rel) * cw +
                               static_cast<std::size_t>(c)];
        if (d == kInf) continue;
        const std::size_t w_from =
            w > static_cast<std::size_t>(units) ? w - static_cast<std::size_t>(units) : 0;
        if (prev[w_from] == kInf) continue;
        const double cand = prev[w_from] + d;
        if (cand < best) {
          best = cand;
          best_choice = static_cast<std::int16_t>(c);
        }
      }
      cur[w] = best;
      choice[row + w] = best_choice;
    }
    std::swap(prev, cur);
  }

  if (prev[levels - 1] == kInf) return schedule;  // infeasible

  // --- Backtrack -----------------------------------------------------------
  std::size_t w = levels - 1;
  for (Slot rel = window - 1; rel >= 0; --rel) {
    const std::int16_t c =
        choice[static_cast<std::size_t>(rel) * levels + w];
    if (c == kSkip) continue;
    const NodeId k = best_node[static_cast<std::size_t>(rel) * cw +
                               static_cast<std::size_t>(c)];
    schedule.run.push_back({k, start + rel});
    const auto units =
        static_cast<std::size_t>(class_units[static_cast<std::size_t>(c)]);
    w = w > units ? w - units : 0;
  }
  std::reverse(schedule.run.begin(), schedule.run.end());
  return schedule;
}

}  // namespace lorasched
