// A schedule l for task i — the paper's reformulation unit (§3.2): one
// concrete assignment of the decision variables {u_i, {x_ikt}, {z_in}}
// satisfying constraints (4a)-(4e). A schedule fixes the chosen labor
// vendor (if any) and the exact (node, slot) pairs the task executes on.
#pragma once

#include <vector>

#include "lorasched/cluster/cluster.h"
#include "lorasched/cluster/energy.h"
#include "lorasched/types.h"
#include "lorasched/workload/task.h"

namespace lorasched {

/// One executing slot: x_ikt = 1 for this (node, slot).
struct Assignment {
  NodeId node = -1;
  Slot slot = -1;

  friend bool operator==(const Assignment&, const Assignment&) = default;
};

struct Schedule {
  TaskId task = -1;
  /// Chosen labor vendor (z_in = 1), or kNoVendor when f_i = 0.
  VendorId vendor = kNoVendor;
  /// q_in of the chosen vendor (0 when no vendor).
  Money vendor_price = 0.0;
  /// h_in of the chosen vendor; execution starts at arrival + prep_delay.
  Slot prep_delay = 0;
  /// Executing (node, slot) pairs, strictly increasing in slot (one node per
  /// slot — constraint (4b)).
  std::vector<Assignment> run;
  /// Σ_{(k,t) ∈ l} s_kt(il) = Σ s_ik — total compute the schedule books, in
  /// samples.
  double total_compute = 0.0;
  /// Σ_{(k,t) ∈ l} r_kt(il) = |run| * r_i — total adapter-memory slot-GB.
  double total_mem = 0.0;
  /// Σ s_ik / C_kp — compute volume in *capacity-normalized* units
  /// (node-slot fractions). The primal-dual machinery (eq. 7/8/10/14) works
  /// in these units, per Lemma 2's unit-scaling assumption.
  double norm_compute = 0.0;
  /// Σ r_i / (C_km − r_b) — normalized adapter-memory volume.
  double norm_mem = 0.0;
  /// Σ e_ikt over the run.
  Money energy_cost = 0.0;
  /// b_il = b_i - q_in - Σ e_ikt — the social-welfare increment (§3.2).
  Money welfare_gain = 0.0;
  /// NTM semantics: the task occupies its node-slots exclusively and loads
  /// its own replica of the base model.
  bool exclusive = false;
  /// Batch-size co-adaptation (extension): when > 0, the provider runs the
  /// task at this compute share instead of the task's own — s_ik becomes
  /// share * C_kp for every slot of this schedule. 0 keeps the user's
  /// batch size.
  double share_override = 0.0;

  [[nodiscard]] bool empty() const noexcept { return run.empty(); }
  /// Last executing slot, or -1 for an empty schedule.
  [[nodiscard]] Slot completion_slot() const noexcept {
    return run.empty() ? -1 : run.back().slot;
  }
};

/// The rate the schedule actually runs the task at on node k (honours
/// share_override).
[[nodiscard]] double schedule_rate(const Schedule& schedule, const Task& task,
                                   const Cluster& cluster, NodeId k);

/// Recomputes total_compute / total_mem / energy_cost / welfare_gain from
/// the run, the vendor price and the task's bid. Call after building `run`.
void finalize_schedule(Schedule& schedule, const Task& task,
                       const Cluster& cluster, const EnergyModel& energy);

/// b̄_il — welfare gain per unit of booked resource per slot (paper §3.3),
/// measured over the capacity-normalized volumes. Zero for empty schedules.
[[nodiscard]] double unit_welfare(const Schedule& schedule) noexcept;

}  // namespace lorasched
