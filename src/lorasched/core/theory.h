// Theoretical performance constants from the paper's analysis (§4.4).
//
// Theorem 5: the online approach is γ-competitive with
//     γ = ρ (1 + max{α, β}),
// where ρ (Lemma 3) bounds the loss from "almost-feasible" admissions:
//     ρ = 1 + max{ (b̄max/b̄min)(s_max/s_min), (b̄max/b̄min)(r_max/r_min) },
// and α, β are the capacity-control constants of Lemma 2. This module
// evaluates those constants for a concrete instance so the Fig. 12 bench
// can print the *guarantee* next to the measured empirical ratio — the gap
// between the two is the usual worst-case-analysis slack.
#pragma once

#include "lorasched/sim/instance.h"

namespace lorasched {

struct CompetitiveBound {
  /// Lemma 3's almost-feasible/feasible gap factor.
  double rho = 0.0;
  /// Lemma 2's capacity-control constants (normalized units, unscaled).
  double alpha = 0.0;
  double beta = 0.0;
  /// Theorem 5's competitive ratio γ = ρ (1 + max{α, β}).
  double gamma = 0.0;
  // Ingredients, for reporting.
  double unit_welfare_max = 0.0;
  double unit_welfare_min = 0.0;
  double rate_max = 0.0;
  double rate_min = 0.0;
  double mem_max = 0.0;
  double mem_min = 0.0;
};

/// Evaluates the Theorem-5 constants over the instance's task population.
/// b̄ extremes are estimated from each task's minimal-volume schedule (the
/// same proxy the welfare-unit estimator uses). Requires at least one task
/// with positive work and bid.
[[nodiscard]] CompetitiveBound theoretical_bound(const Instance& instance);

}  // namespace lorasched
