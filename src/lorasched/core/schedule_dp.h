// Per-task optimal schedule search — Algorithm 2's `findSchedule`.
//
// Solves problem (12): place the task's M_i samples on (node, slot) pairs in
// the window [start, deadline] minimizing Σ x_ikt (s_ik λ_kt + r_i φ_kt +
// e_ikt) with at most one node per slot, via the dynamic program of eq. (13)
// over (slot, completed-work) states.
//
// Two implementation notes (DESIGN.md §5):
//  * Work is quantized to integer units u = min_class s / granularity with
//    rates rounded *down*, so any DP-complete plan also satisfies (4e) with
//    the true rates.
//  * Δ_kt does not depend on the work level, so the inner min over nodes is
//    pre-reduced to one representative node per GPU class per slot — exact,
//    and turns O(W T K) into O(T K + W T #classes).
#pragma once

#include "lorasched/cluster/cluster.h"
#include "lorasched/cluster/energy.h"
#include "lorasched/core/duals.h"
#include "lorasched/core/schedule.h"
#include "lorasched/types.h"
#include "lorasched/workload/task.h"

namespace lorasched {

struct ScheduleDpConfig {
  /// Work units per slot on the slowest node class (>= 1); higher values
  /// give finer plans at linear DP cost.
  double granularity = 2.0;
  /// Upper bound on the number of work units (guards DP table size).
  int max_units = 4096;
};

/// Optional per-(node, slot) admissibility filter; when set, the DP only
/// places work on (k, t) pairs the filter accepts (used by capacity-aware
/// baselines; pdFTSP itself runs unfiltered, prices do the steering).
using SlotFilter = bool (*)(const void* ctx, NodeId k, Slot t);

class ScheduleDp {
 public:
  ScheduleDp(const Cluster& cluster, const EnergyModel& energy,
             ScheduleDpConfig config = {});

  /// Finds the cost-minimal execution plan for `task` within
  /// [start, task.deadline]. Returns an *unfinalized* schedule: `run` is
  /// filled, vendor fields are left for the caller. Returns an empty run if
  /// no feasible plan exists. `filter_ctx`/`filter` optionally restrict the
  /// usable (node, slot) pairs.
  [[nodiscard]] Schedule find(const Task& task, Slot start,
                              const DualState& duals,
                              const void* filter_ctx = nullptr,
                              SlotFilter filter = nullptr) const;

  [[nodiscard]] const ScheduleDpConfig& config() const noexcept {
    return config_;
  }

 private:
  [[nodiscard]] Schedule find_impl(const Task& task, Slot start,
                                   const DualState& duals,
                                   const void* filter_ctx,
                                   SlotFilter filter) const;

  const Cluster& cluster_;  // must outlive the ScheduleDp
  EnergyModel energy_;      // by value: cheap, and callers often pass rvalues
  ScheduleDpConfig config_;
};

}  // namespace lorasched
