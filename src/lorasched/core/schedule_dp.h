// Per-task optimal schedule search — Algorithm 2's `findSchedule`.
//
// Solves problem (12): place the task's M_i samples on (node, slot) pairs in
// the window [start, deadline] minimizing Σ x_ikt (s_ik λ_kt + r_i φ_kt +
// e_ikt) with at most one node per slot, via the dynamic program of eq. (13)
// over (slot, completed-work) states.
//
// Implementation notes (DESIGN.md §5):
//  * Work is quantized to integer units u = min_class s / granularity with
//    rates rounded *down*, so any DP-complete plan also satisfies (4e) with
//    the true rates.
//  * Δ_kt does not depend on the work level, so the inner min over nodes is
//    pre-reduced to one representative node per GPU class per slot — exact,
//    and turns O(W T K) into O(T K + W T #classes).
//  * The default hot path is the *price-epoch cached* one: because the
//    duals only move when a task is admitted (eq. 7/8), the λ/φ grids are
//    snapshotted into class-major contiguous rows keyed on
//    (DualState::uid(), DualState::epoch()) and every find() between two
//    admissions reuses the snapshot; all DP tables live in a reusable
//    DpScratch arena, so steady-state find() calls allocate nothing.
//    `ScheduleDpConfig::price_cache = false` selects the original per-call
//    path (per-node dual lookups, freshly allocated tables) — decisions are
//    bit-identical either way, which the golden-fingerprint tests pin.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "lorasched/cluster/cluster.h"
#include "lorasched/cluster/energy.h"
#include "lorasched/core/duals.h"
#include "lorasched/core/schedule.h"
#include "lorasched/core/simd/minplus.h"
#include "lorasched/types.h"
#include "lorasched/util/mutex.h"
#include "lorasched/util/thread_annotations.h"
#include "lorasched/workload/task.h"

namespace lorasched {

namespace obs {
class Counter;
class Gauge;
class MetricsRegistry;
}  // namespace obs

struct ScheduleDpConfig {
  /// Work units per slot on the slowest node class (>= 1); higher values
  /// give finer plans at linear DP cost.
  double granularity = 2.0;
  /// Upper bound on the number of work units (guards DP table size).
  int max_units = 4096;
  /// Price-epoch Δ-cache: true (default) runs the allocation-free cached
  /// path described in the header comment; false runs the legacy per-call
  /// path. Bit-identical results; the knob exists for A/B benchmarking
  /// (bench/micro_core --json-out) and as an escape hatch.
  bool price_cache = true;
  /// SIMD min-plus row kernel (DESIGN.md §5c): true (default) dispatches
  /// the cached path's inner loops to the best runtime-detected vector arm
  /// (AVX2/NEON, cpuid-checked, scalar everywhere else); false pins the
  /// scalar reference. Results are bit-identical either way — the lane
  /// order is pinned (simd/minplus.h) and the differential tests enforce
  /// it; the knob exists for A/B benchmarking and as an escape hatch, and
  /// the LORASCHED_DP_SIMD environment variable can force an arm
  /// process-wide underneath it.
  bool simd = true;
};

/// Optional per-(node, slot) admissibility filter; when set, the DP only
/// places work on (k, t) pairs the filter accepts (used by capacity-aware
/// baselines; pdFTSP itself runs unfiltered, prices do the steering).
using SlotFilter = bool (*)(const void* ctx, NodeId k, Slot t);

/// Reusable DP work area: the delta/best-node/DP-row/choice tables plus the
/// per-bid quantization memo. One scratch serves any number of sequential
/// find() calls (buffers grow to the high-water mark and stay); concurrent
/// calls need one scratch per thread — the scratch-less find() overload
/// manages a thread_local one automatically.
class DpScratch {
 public:
  DpScratch() = default;
  DpScratch(const DpScratch&) = delete;
  DpScratch& operator=(const DpScratch&) = delete;

  /// Bytes currently reserved across all buffers (the arena's high-water
  /// footprint; exposed as a gauge via ScheduleDp::register_metrics).
  [[nodiscard]] std::size_t bytes_reserved() const noexcept;

 private:
  friend class ScheduleDp;

  /// One usable class at one slot of the window (finite Δ only — classes
  /// the filter kills or that cannot progress never reach the DP rows).
  /// The layout is the SIMD kernels' row-class descriptor so the live rows
  /// feed simd::dp_row without repacking.
  using LiveClass = simd::MinPlusClass;

  /// Work quantization for one (task work, compute share) — identical for
  /// every vendor/delay candidate of a bid, so it is computed once per
  /// share and memoized (keyed by the owning ScheduleDp's uid so a
  /// thread_local scratch can serve many instances safely).
  struct Quant {
    double share = 0.0;  // memo key within (owner, work)
    double unit = 0.0;
    int total_units = 0;
    int max_class_units = 0;
    bool usable = false;  // some class makes progress at a finite rate
    std::vector<double> class_rate;    // s_ik of the class representative
    std::vector<double> class_s_norm;  // class_rate / C_kp
    std::vector<int> class_units;      // floor(class_rate / unit)
  };

  const DpScratch::Quant& quantize(std::uint64_t owner, const Task& task,
                                   const Cluster& cluster,
                                   const ScheduleDpConfig& config);

  std::vector<double> prev_;
  std::vector<double> cur_;
  std::vector<std::int16_t> choice_;
  // Valid choice prefix per window row: cells at w >= row_active_[rel] were
  // provably +inf carry-overs (above the reachability frontier), so the DP
  // never writes them and the backtrack reads them as kSkip implicitly.
  std::vector<std::size_t> row_active_;
  std::vector<double> delta_;       // class-major: delta_[c*window + rel]
  std::vector<std::int32_t> argpos_;  // per-class sweep argmin positions
  std::vector<NodeId> best_node_;
  std::vector<LiveClass> live_;
  std::vector<std::size_t> live_start_;

  std::uint64_t memo_owner_ = 0;
  double memo_work_ = -1.0;
  std::size_t memo_used_ = 0;  // live prefix of memo_; slots beyond it are
                               // recycled capacity, never cleared
  std::vector<Quant> memo_;
};

class ScheduleDp {
 public:
  ScheduleDp(const Cluster& cluster, const EnergyModel& energy,
             ScheduleDpConfig config = {});

  // The cache members (mutex, snapshot, counters) make copies meaningless.
  ScheduleDp(const ScheduleDp&) = delete;
  ScheduleDp& operator=(const ScheduleDp&) = delete;

  /// Finds the cost-minimal execution plan for `task` within
  /// [start, task.deadline]. Returns an *unfinalized* schedule: `run` is
  /// filled, vendor fields are left for the caller. Returns an empty run if
  /// no feasible plan exists. `filter_ctx`/`filter` optionally restrict the
  /// usable (node, slot) pairs. Safe to call concurrently from any number
  /// of threads as long as nobody mutates `duals` meanwhile.
  [[nodiscard]] Schedule find(const Task& task, Slot start,
                              const DualState& duals,
                              const void* filter_ctx = nullptr,
                              SlotFilter filter = nullptr) const;

  /// As above with an explicit work area (instead of the thread_local one).
  [[nodiscard]] Schedule find(const Task& task, Slot start,
                              const DualState& duals, DpScratch& scratch,
                              const void* filter_ctx = nullptr,
                              SlotFilter filter = nullptr) const;

  /// Allocation-free steady state: fills `result` in place, reusing its
  /// run-vector capacity. After the arena and the result have grown to the
  /// workload's high-water mark, a cached-path call performs zero heap
  /// allocations (bench/micro_core pins this with an allocation hook).
  void find_into(Schedule& result, const Task& task, Slot start,
                 const DualState& duals, DpScratch& scratch,
                 const void* filter_ctx = nullptr,
                 SlotFilter filter = nullptr) const;

  struct CacheStats {
    std::uint64_t hits = 0;    // find() served by the current snapshot
    std::uint64_t misses = 0;  // snapshot rebuilt (epoch moved / first use)
  };
  [[nodiscard]] CacheStats cache_stats() const noexcept;

  /// Wires the price-cache hit/miss counters and the arena/snapshot
  /// footprint gauges into `registry` (names `<prefix>_price_cache_hits_total`,
  /// `..._misses_total`, `<prefix>_scratch_bytes`, `<prefix>_snapshot_bytes`),
  /// plus the `<prefix>_simd_dispatch` gauge reporting this instance's
  /// min-plus kernel (0=scalar, 1=avx2, 2=neon). Several ScheduleDp
  /// instances may share one registry — the counters aggregate. Call during
  /// setup, before concurrent find() traffic.
  void register_metrics(obs::MetricsRegistry& registry,
                        std::string_view prefix = "lorasched_dp") const;

  /// The min-plus kernel this instance dispatches to (config.simd ∧ the
  /// process-wide simd::active_kernel detection).
  [[nodiscard]] simd::Kernel kernel() const noexcept { return kernel_; }

  [[nodiscard]] const ScheduleDpConfig& config() const noexcept {
    return config_;
  }

 private:
  /// Class-major contiguous copy of one dual-price state: for class c the
  /// values of slot t occupy [base[c] + t*size[c], +size[c]) — the per-slot
  /// class argmin scans one cache line instead of gathering node-major
  /// cells horizon*8 bytes apart. `node_cost` is the task-independent
  /// full-node energy cost per (class, slot), laid out c*horizon + t.
  struct PriceSnapshot {
    std::uint64_t uid = 0;
    std::uint64_t epoch = 0;
    Slot horizon = 0;
    std::vector<std::size_t> base;
    std::vector<std::size_t> size;
    std::vector<double> lambda;
    std::vector<double> phi;
    std::vector<NodeId> node_of;
    std::vector<double> node_cost;
    // Node k's slot-t cell sits at node_pos[k] + t * node_stride[k] — the
    // inverse of the class-major layout, used to patch the dirty cells of
    // an admission in place instead of rebuilding the whole snapshot.
    std::vector<std::size_t> node_pos;
    std::vector<std::size_t> node_stride;

    [[nodiscard]] std::size_t bytes() const noexcept;
  };

  void find_impl(Schedule& result, const Task& task, Slot start,
                 const DualState& duals, DpScratch& scratch,
                 const void* filter_ctx, SlotFilter filter) const;
  void find_cached(Schedule& result, const Task& task, Slot start,
                   const DualState& duals, DpScratch& scratch,
                   const void* filter_ctx, SlotFilter filter) const;
  [[nodiscard]] Schedule find_legacy(const Task& task, Slot start,
                                     const DualState& duals,
                                     const void* filter_ctx,
                                     SlotFilter filter) const;
  [[nodiscard]] std::shared_ptr<const PriceSnapshot> snapshot_for(
      const DualState& duals) const EXCLUDES(cache_mutex_);
  void audit_result(const Task& task, Slot start, const DualState& duals,
                    const void* filter_ctx, SlotFilter filter,
                    const Schedule& schedule) const;

  const Cluster& cluster_;  // must outlive the ScheduleDp
  EnergyModel energy_;      // by value: cheap, and callers often pass rvalues
  ScheduleDpConfig config_;
  std::uint64_t uid_;  // keys the thread_local scratch's quantization memo
  simd::Kernel kernel_ = simd::Kernel::kScalar;  // resolved at construction

  mutable util::Mutex cache_mutex_;
  mutable std::shared_ptr<const PriceSnapshot> cache_
      GUARDED_BY(cache_mutex_);
  mutable std::vector<std::uint32_t> dirty_ GUARDED_BY(cache_mutex_);
  mutable std::atomic<std::uint64_t> cache_hits_{0};
  mutable std::atomic<std::uint64_t> cache_misses_{0};
  // Optional obs wiring (register_metrics); null until registered.
  mutable std::atomic<obs::Counter*> hits_counter_{nullptr};
  mutable std::atomic<obs::Counter*> misses_counter_{nullptr};
  mutable std::atomic<obs::Gauge*> scratch_gauge_{nullptr};
  mutable std::atomic<obs::Gauge*> snapshot_gauge_{nullptr};
};

}  // namespace lorasched
