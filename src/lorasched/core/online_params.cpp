#include "lorasched/core/online_params.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lorasched {

namespace {

/// Fewest slots any single node needs for the task's work.
int min_slots(const Task& task, const Cluster& cluster) {
  double best_rate = 0.0;
  for (NodeId k = 0; k < cluster.node_count(); ++k) {
    best_rate = std::max(best_rate, cluster.task_rate(task, k));
  }
  if (best_rate <= 0.0) return 0;
  return static_cast<int>(std::ceil(task.work / best_rate));
}

}  // namespace

OnlineParamEstimator::OnlineParamEstimator(Config config,
                                           const Cluster& cluster)
    : config_(config), cluster_(cluster) {
  if (config_.price_scale <= 0.0) {
    throw std::invalid_argument("price_scale must be positive");
  }
  if (config_.kappa_quantile <= 0.0 || config_.kappa_quantile >= 1.0) {
    throw std::invalid_argument("kappa_quantile must be in (0, 1)");
  }
  if (config_.reservoir == 0) {
    throw std::invalid_argument("reservoir must be non-empty");
  }
  cap_max_ = 0.0;
  cap_min_ = cluster.adapter_mem_capacity(0);
  for (NodeId k = 0; k < cluster.node_count(); ++k) {
    cap_max_ = std::max(cap_max_, cluster.adapter_mem_capacity(k));
    cap_min_ = std::min(cap_min_, cluster.adapter_mem_capacity(k));
  }
}

void OnlineParamEstimator::observe(const Task& task) {
  ++observed_;
  const int slots = min_slots(task, cluster_);
  if (slots <= 0 || task.bid <= 0.0) return;
  const double compute_volume = slots * task.compute_share;
  if (compute_volume > 0.0) {
    max_compute_density_ =
        std::max(max_compute_density_, task.bid / compute_volume);
  }
  const double mem_volume = slots * task.mem_gb / cap_max_;
  if (mem_volume > 0.0) {
    max_mem_density_ = std::max(max_mem_density_, task.bid / mem_volume);
  }
  const double total_volume =
      slots * (task.compute_share + task.mem_gb / cap_min_);
  if (total_volume > 0.0) {
    const double density = task.bid / total_volume;
    if (densities_.size() < config_.reservoir) {
      densities_.push_back(density);
    } else {
      // Deterministic reservoir replacement keyed on the task id: keeps the
      // sample fresh without a private RNG.
      densities_[static_cast<std::size_t>(task.id) % config_.reservoir] =
          density;
    }
  }
}

double OnlineParamEstimator::alpha() const noexcept {
  return std::max(1e-12, config_.price_scale * max_compute_density_);
}

double OnlineParamEstimator::beta() const noexcept {
  return std::max(1e-12, config_.price_scale * max_mem_density_);
}

double OnlineParamEstimator::welfare_unit() const {
  if (densities_.empty()) return 1.0;
  std::vector<double> sorted = densities_;
  const auto index = static_cast<std::ptrdiff_t>(
      config_.kappa_quantile * static_cast<double>(sorted.size()));
  std::nth_element(sorted.begin(), sorted.begin() + index, sorted.end());
  return std::max(1e-9, sorted[static_cast<std::size_t>(index)]);
}

std::vector<double> OnlineParamEstimator::checkpoint_state() const {
  std::vector<double> state;
  state.reserve(4 + densities_.size());
  state.push_back(static_cast<double>(observed_));
  state.push_back(max_compute_density_);
  state.push_back(max_mem_density_);
  state.push_back(static_cast<double>(densities_.size()));
  state.insert(state.end(), densities_.begin(), densities_.end());
  return state;
}

void OnlineParamEstimator::restore_state(const std::vector<double>& state) {
  if (state.size() < 4) {
    throw std::invalid_argument("estimator state dump too short");
  }
  const auto reservoir = static_cast<std::size_t>(state[3]);
  if (state.size() != 4 + reservoir || reservoir > config_.reservoir) {
    throw std::invalid_argument("estimator state dump has wrong size");
  }
  observed_ = static_cast<std::size_t>(state[0]);
  max_compute_density_ = state[1];
  max_mem_density_ = state[2];
  densities_.assign(state.begin() + 4, state.end());
}

AdaptivePdftsp::AdaptivePdftsp(OnlineParamEstimator::Config config,
                               const Cluster& cluster,
                               const EnergyModel& energy, Slot horizon,
                               ScheduleDpConfig dp)
    : estimator_(config, cluster),
      inner_(PdftspConfig{.alpha = 1e-12, .beta = 1e-12, .welfare_unit = 1.0,
                          .dp = dp},
             cluster, energy, horizon) {}

std::vector<double> AdaptivePdftsp::checkpoint_state() const {
  std::vector<double> state = estimator_.checkpoint_state();
  const std::vector<double> inner = inner_.checkpoint_state();
  state.insert(state.end(), inner.begin(), inner.end());
  return state;
}

void AdaptivePdftsp::restore_state(const std::vector<double>& state) {
  if (state.size() < 4) {
    throw std::invalid_argument("adaptive pdFTSP state dump too short");
  }
  const auto reservoir = static_cast<std::size_t>(state[3]);
  const std::size_t split = 4 + reservoir;
  if (state.size() < split) {
    throw std::invalid_argument("adaptive pdFTSP state dump truncated");
  }
  estimator_.restore_state(
      std::vector<double>(state.begin(), state.begin() + split));
  inner_.restore_state(
      std::vector<double>(state.begin() + split, state.end()));
}

std::vector<Decision> AdaptivePdftsp::on_slot(const SlotContext& ctx) {
  std::vector<Decision> decisions;
  decisions.reserve(ctx.arrivals.size());
  for (const Task& task : ctx.arrivals) {
    estimator_.observe(task);
    inner_.set_pricing(estimator_.alpha(), estimator_.beta(),
                       estimator_.welfare_unit());
    Decision d = inner_.handle_task(task, ctx.market.quotes(task), ctx.ledger);
    commit_decision(ctx.ledger, ctx.cluster, task, d);
    decisions.push_back(std::move(d));
  }
  return decisions;
}

}  // namespace lorasched
