#include "lorasched/core/theory.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "lorasched/workload/taskgen.h"

namespace lorasched {

CompetitiveBound theoretical_bound(const Instance& instance) {
  const Cluster& cluster = instance.cluster;
  CompetitiveBound bound;
  bound.unit_welfare_min = std::numeric_limits<double>::infinity();
  bound.rate_min = std::numeric_limits<double>::infinity();
  bound.mem_min = std::numeric_limits<double>::infinity();

  double cap_min = std::numeric_limits<double>::infinity();
  for (NodeId k = 0; k < cluster.node_count(); ++k) {
    cap_min = std::min(cap_min, cluster.adapter_mem_capacity(k));
  }

  bool any = false;
  for (const Task& task : instance.tasks) {
    if (task.work <= 0.0 || task.bid <= 0.0) continue;
    double best_rate = 0.0;
    for (NodeId k = 0; k < cluster.node_count(); ++k) {
      const double rate = cluster.task_rate(task, k);
      bound.rate_max = std::max(bound.rate_max, rate);
      bound.rate_min = std::min(bound.rate_min, rate);
      best_rate = std::max(best_rate, rate);
    }
    bound.mem_max = std::max(bound.mem_max, task.mem_gb);
    bound.mem_min = std::min(bound.mem_min, task.mem_gb);
    const int slots = static_cast<int>(std::ceil(task.work / best_rate));
    const double volume = slots * (task.compute_share + task.mem_gb / cap_min);
    if (volume <= 0.0) continue;
    const double density = task.bid / volume;
    bound.unit_welfare_max = std::max(bound.unit_welfare_max, density);
    bound.unit_welfare_min = std::min(bound.unit_welfare_min, density);
    any = true;
  }
  if (!any) {
    throw std::invalid_argument(
        "theoretical bound needs a task with positive work and bid");
  }

  const double welfare_spread = bound.unit_welfare_max / bound.unit_welfare_min;
  bound.rho = 1.0 + std::max(welfare_spread * bound.rate_max / bound.rate_min,
                             welfare_spread * bound.mem_max / bound.mem_min);
  bound.alpha = alpha_bound(instance.tasks, cluster);
  bound.beta = beta_bound(instance.tasks, cluster);
  // γ is evaluated with money normalized by the welfare unit (Lemma 2's
  // b̄ >= 1 scaling), which makes α, β dimensionless as the theorem expects.
  const double kappa = welfare_unit_estimate(instance.tasks, cluster);
  bound.gamma =
      bound.rho * (1.0 + std::max(bound.alpha, bound.beta) / kappa);
  return bound;
}

}  // namespace lorasched
