// pdFTSP — the paper's Online Task Scheduling Algorithm (Alg. 1) plus the
// per-task schedule selection (Alg. 2) and the payment rule (eq. 14).
//
// On each arriving task the policy:
//  1. collects vendor quotes (if f_i = 1) and, per vendor candidate, runs
//     the schedule DP under the current dual prices (Alg. 2);
//  2. picks the candidate maximizing F(il) (eq. 9/10);
//  3. if F(il) <= 0, rejects; otherwise updates the duals (eq. 7/8) and
//     admits iff the schedule still fits the ground-truth capacities
//     (Alg. 1 lines 6-13), charging the payment of eq. (14) computed from
//     the pre-update duals.
#pragma once

#include <atomic>
#include <memory>
#include <string_view>
#include <vector>

#include "lorasched/cluster/capacity_ledger.h"
#include "lorasched/cluster/cluster.h"
#include "lorasched/cluster/energy.h"
#include "lorasched/core/duals.h"
#include "lorasched/core/schedule_dp.h"
#include "lorasched/obs/trace.h"
#include "lorasched/sim/policy.h"
#include "lorasched/types.h"

namespace lorasched {

namespace util {
class ThreadPool;
}  // namespace util

namespace obs {
class Histogram;
}  // namespace obs

struct PdftspConfig {
  /// Lemma 2's capacity-control parameters in normalized units:
  /// alpha >= max_i b_i / S̃_i (S̃_i = the task's minimal normalized compute
  /// volume) and beta >= max_i b_i / r̃_i guarantee no node-slot is
  /// over-booked by more than one task. Use alpha_bound()/beta_bound() from
  /// taskgen.h, or the provider's price book.
  double alpha = 1.0;
  double beta = 1.0;
  /// Money normalization κ for the dual update (duals.h): roughly the
  /// smallest plausible unit welfare b̄ in the task population, so that
  /// b̄/κ >= 1. Use welfare_unit_estimate() from taskgen.h.
  double welfare_unit = 1.0;
  /// Batch-size co-adaptation (extension; empty = off): additional compute
  /// shares Algorithm 2 may run the task at, besides the user's own batch
  /// size. The best (vendor, share) candidate by F(il) wins; the chosen
  /// share is recorded as Schedule::share_override.
  std::vector<double> share_options{};
  /// Candidate-level parallelism for Alg. 2 (0 or 1 = serial, the default):
  /// with a value > 1, each bid's vendor/delay/share candidate DPs run
  /// concurrently on a private pool of that many workers. The best-of
  /// reduction stays sequential in candidate order, so decisions, payments,
  /// and traces are bit-identical to the serial path (the differential
  /// tests pin this). Pays off when vendors × shares is large; a lone
  /// candidate always runs inline.
  int parallel_candidates = 0;
  /// Epoch-batched admission (0 or 1 = off, the default): on_slot decides
  /// arrivals in micro-batches of up to this many bids per price epoch. The
  /// Alg. 2 searches of a batch are *speculated* against the frozen duals
  /// (the epoch only moves on an F(il) > 0 commit), then committed strictly
  /// in arrival order; any speculation whose epoch was invalidated by an
  /// earlier commit is transparently re-run. Decisions, payments, duals,
  /// and traces are bit-identical to one-at-a-time processing — the batch
  /// trace-equality tests pin this.
  int admission_batch = 0;
  /// Workers for the speculative Alg. 2 searches of a batch (0 or 1 =
  /// speculate inline on the caller thread). With a value > 1 a private
  /// pool runs the batch's searches concurrently; candidate-level
  /// parallelism (parallel_candidates) is suppressed inside pooled
  /// speculations so the two pools never nest.
  int batch_workers = 0;
  ScheduleDpConfig dp{};
};

class Pdftsp final : public Policy,
                     public CheckpointableState,
                     public obs::Traceable {
 public:
  Pdftsp(PdftspConfig config, const Cluster& cluster, const EnergyModel& energy,
         Slot horizon);
  ~Pdftsp() override;

  [[nodiscard]] std::string_view name() const override { return "pdFTSP"; }
  [[nodiscard]] std::vector<Decision> on_slot(const SlotContext& ctx) override;

  /// Handles one task exactly as Alg. 1's loop body; exposed for the
  /// truthfulness/rationality experiments and unit tests. Mutates the dual
  /// state iff F(il) > 0.
  [[nodiscard]] Decision handle_task(const Task& task,
                                     const std::vector<VendorQuote>& quotes,
                                     const CapacityLedger& ledger);

  /// Best candidate (schedule, F(il)) across vendors *without* touching the
  /// dual state — Alg. 2's outer loop. The schedule is finalized; empty run
  /// means no feasible candidate. When a ledger is supplied, node-slots
  /// blocked by outages are excluded from the DP (the outage calendar is
  /// the provider's own knowledge; residual *capacity* is still never
  /// consulted — prices do that steering, per the paper).
  struct Candidate {
    Schedule schedule;
    double objective = 0.0;  // F(il)
    /// Index into the trace-candidate list of the winner (-1 when no
    /// feasible candidate, or when no list was collected).
    int trace_index = -1;
  };
  [[nodiscard]] Candidate select_schedule(
      const Task& task, const std::vector<VendorQuote>& quotes,
      const CapacityLedger* ledger = nullptr,
      std::vector<obs::CandidateTrace>* candidates = nullptr) const;

  [[nodiscard]] const DualState& duals() const noexcept { return duals_; }
  [[nodiscard]] const PdftspConfig& config() const noexcept { return config_; }

  /// Wires the schedule-DP price-cache counters, arena gauges, and the
  /// `<prefix>_simd_dispatch` kernel gauge into `registry` (forwards to
  /// ScheduleDp::register_metrics), plus the policy-level
  /// `lorasched_admission_batch_size` histogram recording the micro-batch
  /// size of every on_slot admission round (1 when epoch batching is off).
  /// Services call this during setup so everything shows up in /metrics.
  void register_metrics(obs::MetricsRegistry& registry,
                        std::string_view prefix = "lorasched_dp") const;
  [[nodiscard]] ScheduleDp::CacheStats dp_cache_stats() const noexcept {
    return dp_.cache_stats();
  }

  /// Re-points the pricing parameters; used by AdaptivePdftsp, whose
  /// estimates tighten as bids are observed. Values must be positive.
  void set_pricing(double alpha, double beta, double welfare_unit);

  /// Observation-only decision tracing (obs::Traceable): with a sink
  /// attached, every handle_task() emits one DecisionTraceRecord; decisions
  /// are bit-identical with and without a sink. nullptr detaches.
  void set_trace_sink(obs::DecisionTraceSink* sink) noexcept override {
    trace_ = sink;
  }

  /// CheckpointableState: [alpha, beta, welfare_unit, λ grid, φ grid] — the
  /// complete mutable state of Alg. 1 (the DP and cluster are config).
  [[nodiscard]] std::vector<double> checkpoint_state() const override;
  void restore_state(const std::vector<double>& state) override;

 private:
  void emit_trace(const Task& task, const Candidate& best,
                  std::vector<obs::CandidateTrace>&& candidates,
                  const std::vector<obs::DualCellSample>& cells,
                  double max_lambda, double max_phi, bool admitted,
                  bool capacity_reject) const;
  /// select_schedule body with an explicit pool opt-out: pooled batch
  /// speculations pass allow_pool = false so the candidate pool is never
  /// driven from multiple threads (ThreadPool::wait_idle is pool-global).
  [[nodiscard]] Candidate select_schedule_impl(
      const Task& task, const std::vector<VendorQuote>& quotes,
      const CapacityLedger* ledger,
      std::vector<obs::CandidateTrace>* candidates, bool allow_pool) const;
  /// Alg. 1 lines 5-13 given an already-selected best candidate: the sign
  /// test, eq. 14 payment from pre-update duals, the eq. 7/8 update, and
  /// the ground-truth capacity check. handle_task = select_schedule +
  /// decide_with; the batched on_slot speculates the former and serializes
  /// the latter.
  [[nodiscard]] Decision decide_with(
      const Task& task, Candidate&& best,
      std::vector<obs::CandidateTrace>&& cand_trace,
      const CapacityLedger& ledger);

  PdftspConfig config_;
  const Cluster& cluster_;  // must outlive the policy
  EnergyModel energy_;
  ScheduleDp dp_;
  DualState duals_;
  /// Private pool for parallel_candidates > 1 (null when serial). Private
  /// because ThreadPool::wait_idle() is pool-global — sharing one pool with
  /// other subsystems would make select_schedule wait on their jobs.
  std::unique_ptr<util::ThreadPool> pool_;
  /// Private pool for batch_workers > 1 speculative searches (null
  /// otherwise); separate from pool_ for the same wait_idle reason.
  std::unique_ptr<util::ThreadPool> batch_pool_;
  obs::DecisionTraceSink* trace_ = nullptr;
  // Optional obs wiring (register_metrics); null until registered.
  mutable std::atomic<obs::Histogram*> batch_hist_{nullptr};
};

}  // namespace lorasched
