// Multi-model operation via cluster zones.
//
// The paper focuses on one pre-trained model and notes (§2.1) that
// "different zones within the cloud data center can be set up for tasks
// fine-tuning different pre-trained models". This module implements that
// extension: each zone owns a node partition, its own base-model replica
// size r_b, its own dual-price state, and its own ground-truth ledger.
// Tasks route by Task::model; zones are economically isolated (one zone's
// load never moves another zone's prices), which the tests verify.
//
// Pricing parameters are estimated online per zone (OnlineParamEstimator),
// since each model's bid population differs.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "lorasched/cluster/capacity_ledger.h"
#include "lorasched/cluster/cluster.h"
#include "lorasched/cluster/energy.h"
#include "lorasched/core/online_params.h"
#include "lorasched/core/pdftsp.h"
#include "lorasched/sim/metrics.h"
#include "lorasched/types.h"
#include "lorasched/workload/vendor.h"

namespace lorasched {

struct ZoneConfig {
  /// Human-readable base-model name ("gpt2", "llama-7b", ...).
  std::string model_name;
  /// r_b of this zone's pre-trained model, in GB.
  double base_model_gb = 6.0;
  /// The zone's nodes.
  std::vector<GpuProfile> nodes;
  OnlineParamEstimator::Config pricing{};
  ScheduleDpConfig dp{};
};

class MultiZoneAuction {
 public:
  MultiZoneAuction(std::vector<ZoneConfig> zones, EnergyModel energy,
                   Slot horizon);

  /// Auctions one task in its model's zone (Alg. 1 end to end: estimate,
  /// price, schedule, capacity-check, pay). The admitted schedule is
  /// validated and booked into the zone's ledger before returning.
  /// Throws std::out_of_range for an unknown Task::model.
  [[nodiscard]] Decision submit(const Task& task,
                                const std::vector<VendorQuote>& quotes);

  [[nodiscard]] int zone_count() const noexcept {
    return static_cast<int>(zones_.size());
  }
  [[nodiscard]] const std::string& zone_name(int zone) const {
    return zones_.at(static_cast<std::size_t>(zone))->name;
  }
  [[nodiscard]] const Cluster& zone_cluster(int zone) const {
    return zones_.at(static_cast<std::size_t>(zone))->cluster;
  }
  [[nodiscard]] const Pdftsp& zone_policy(int zone) const {
    return zones_.at(static_cast<std::size_t>(zone))->policy;
  }
  [[nodiscard]] const CapacityLedger& zone_ledger(int zone) const {
    return zones_.at(static_cast<std::size_t>(zone))->ledger;
  }
  /// Welfare/utility accounting for one zone.
  [[nodiscard]] const Metrics& zone_metrics(int zone) const {
    return zones_.at(static_cast<std::size_t>(zone))->metrics;
  }
  /// Aggregate accounting across zones.
  [[nodiscard]] Metrics total_metrics() const;

 private:
  struct Zone {
    Zone(const ZoneConfig& config, const EnergyModel& energy, Slot horizon);

    std::string name;
    Cluster cluster;
    OnlineParamEstimator estimator;
    Pdftsp policy;
    CapacityLedger ledger;
    Metrics metrics;
  };

  // unique_ptr: Zone holds a Cluster that internal references point into,
  // so zones must never relocate.
  std::vector<std::unique_ptr<Zone>> zones_;
  EnergyModel energy_;
  Slot horizon_;
};

}  // namespace lorasched
