#include "lorasched/core/multizone.h"

#include <stdexcept>

#include "lorasched/sim/validator.h"

namespace lorasched {

MultiZoneAuction::Zone::Zone(const ZoneConfig& config,
                             const EnergyModel& energy, Slot horizon)
    : name(config.model_name),
      cluster(config.nodes, config.base_model_gb),
      estimator(config.pricing, cluster),
      policy(PdftspConfig{.alpha = 1e-12, .beta = 1e-12, .welfare_unit = 1.0,
                          .dp = config.dp},
             cluster, energy, horizon),
      ledger(cluster, horizon) {}

MultiZoneAuction::MultiZoneAuction(std::vector<ZoneConfig> zones,
                                   EnergyModel energy, Slot horizon)
    : energy_(energy), horizon_(horizon) {
  if (zones.empty()) throw std::invalid_argument("need at least one zone");
  zones_.reserve(zones.size());
  for (const ZoneConfig& config : zones) {
    zones_.push_back(std::make_unique<Zone>(config, energy_, horizon));
  }
}

Decision MultiZoneAuction::submit(const Task& task,
                                  const std::vector<VendorQuote>& quotes) {
  if (task.model < 0 || task.model >= zone_count()) {
    throw std::out_of_range("task references an unknown model zone");
  }
  Zone& zone = *zones_[static_cast<std::size_t>(task.model)];
  zone.estimator.observe(task);
  zone.policy.set_pricing(zone.estimator.alpha(), zone.estimator.beta(),
                          zone.estimator.welfare_unit());
  Decision decision = zone.policy.handle_task(task, quotes, zone.ledger);
  if (decision.admit) {
    require_valid_schedule(task, decision.schedule, zone.cluster, horizon_);
    commit_decision(zone.ledger, zone.cluster, task, decision);
    TaskOutcome outcome;
    outcome.task = task.id;
    outcome.admitted = true;
    outcome.bid = task.bid;
    outcome.true_value = task.true_value;
    outcome.payment = decision.payment;
    outcome.vendor = decision.schedule.vendor;
    outcome.vendor_cost = decision.schedule.vendor_price;
    outcome.energy_cost = decision.schedule.energy_cost;
    outcome.arrival = task.arrival;
    outcome.completion = decision.schedule.completion_slot();
    outcome.slots_used = static_cast<int>(decision.schedule.run.size());
    zone.metrics.add_admitted(outcome);
  } else {
    zone.metrics.add_rejected();
  }
  return decision;
}

Metrics MultiZoneAuction::total_metrics() const {
  Metrics total;
  for (const auto& zone : zones_) {
    const Metrics& m = zone->metrics;
    total.social_welfare += m.social_welfare;
    total.provider_utility += m.provider_utility;
    total.user_utility += m.user_utility;
    total.total_bids_admitted += m.total_bids_admitted;
    total.total_payments += m.total_payments;
    total.total_vendor_cost += m.total_vendor_cost;
    total.total_energy_cost += m.total_energy_cost;
    total.admitted += m.admitted;
    total.rejected += m.rejected;
  }
  return total;
}

}  // namespace lorasched
