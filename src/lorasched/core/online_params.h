// Online estimation of pdFTSP's pricing parameters.
//
// Lemma 2 defines alpha/beta as maxima over the *whole* task population —
// offline knowledge the provider may not have. This estimator maintains the
// same quantities as running statistics over the tasks observed so far
// (max normalized bid densities for alpha/beta, a low running quantile for
// the welfare unit κ), so pdFTSP can be deployed with no prior calibration:
// prices start permissive and tighten as the bid distribution reveals
// itself. AdaptivePdftsp wires the estimator into the policy loop.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "lorasched/cluster/cluster.h"
#include "lorasched/core/pdftsp.h"
#include "lorasched/sim/policy.h"
#include "lorasched/types.h"
#include "lorasched/workload/task.h"

namespace lorasched {

class OnlineParamEstimator {
 public:
  struct Config {
    /// Multiplier applied to the estimated Lemma-2 maxima (the same knob as
    /// pdftsp_config_for's price_scale; see DESIGN.md §4b).
    double price_scale = 0.01;
    /// Quantile of observed unit-welfare densities used for κ.
    double kappa_quantile = 0.25;
    /// Reservoir size for the quantile estimate.
    std::size_t reservoir = 512;
  };

  OnlineParamEstimator(Config config, const Cluster& cluster);

  /// Folds one observed task (bid + resource demands) into the estimates.
  void observe(const Task& task);

  /// Current parameter estimates; safe before any observation (permissive
  /// defaults so the first bids are priced like a cold-started pdFTSP).
  [[nodiscard]] double alpha() const noexcept;
  [[nodiscard]] double beta() const noexcept;
  [[nodiscard]] double welfare_unit() const;

  [[nodiscard]] std::size_t observed() const noexcept { return observed_; }

  /// Flat dump/restore of the estimator's mutable state (running maxima and
  /// the κ reservoir); the service checkpoint path concatenates this with
  /// the inner pdFTSP state.
  [[nodiscard]] std::vector<double> checkpoint_state() const;
  void restore_state(const std::vector<double>& state);

 private:
  Config config_;
  const Cluster& cluster_;
  double cap_max_ = 0.0;  // largest adapter-memory capacity
  double cap_min_ = 0.0;  // smallest adapter-memory capacity
  double max_compute_density_ = 0.0;
  double max_mem_density_ = 0.0;
  std::vector<double> densities_;  // reservoir for the κ quantile
  std::size_t observed_ = 0;
};

/// pdFTSP with self-calibrating prices: every arriving task first updates
/// the estimator, then is auctioned under the current parameter estimates.
class AdaptivePdftsp final : public Policy,
                             public CheckpointableState,
                             public obs::Traceable {
 public:
  AdaptivePdftsp(OnlineParamEstimator::Config config, const Cluster& cluster,
                 const EnergyModel& energy, Slot horizon,
                 ScheduleDpConfig dp = {});

  [[nodiscard]] std::string_view name() const override {
    return "pdFTSP-adaptive";
  }
  [[nodiscard]] std::vector<Decision> on_slot(const SlotContext& ctx) override;

  [[nodiscard]] const OnlineParamEstimator& estimator() const noexcept {
    return estimator_;
  }
  [[nodiscard]] const Pdftsp& inner() const noexcept { return inner_; }

  /// Decision tracing rides on the inner pdFTSP (observation-only).
  void set_trace_sink(obs::DecisionTraceSink* sink) noexcept override {
    inner_.set_trace_sink(sink);
  }

  /// CheckpointableState: estimator dump followed by the inner pdFTSP dump.
  [[nodiscard]] std::vector<double> checkpoint_state() const override;
  void restore_state(const std::vector<double>& state) override;

 private:
  OnlineParamEstimator estimator_;
  Pdftsp inner_;
};

}  // namespace lorasched
