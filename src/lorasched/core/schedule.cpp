#include "lorasched/core/schedule.h"

#include <stdexcept>

namespace lorasched {

double schedule_rate(const Schedule& schedule, const Task& task,
                     const Cluster& cluster, NodeId k) {
  if (schedule.share_override <= 0.0) return cluster.task_rate(task, k);
  return schedule.share_override * cluster.compute_capacity(k);
}

void finalize_schedule(Schedule& schedule, const Task& task,
                       const Cluster& cluster, const EnergyModel& energy) {
  // Batch-size co-adaptation: all rate- and energy-accounting below runs at
  // the effective share.
  Task effective = task;
  if (schedule.share_override > 0.0) {
    effective.compute_share = schedule.share_override;
  }
  schedule.task = task.id;
  schedule.total_compute = 0.0;
  schedule.total_mem = 0.0;
  schedule.norm_compute = 0.0;
  schedule.norm_mem = 0.0;
  schedule.energy_cost = 0.0;
  Slot prev_slot = -1;
  for (const Assignment& a : schedule.run) {
    if (a.slot <= prev_slot) {
      throw std::invalid_argument("schedule slots must be strictly increasing");
    }
    prev_slot = a.slot;
    const double rate = cluster.task_rate(effective, a.node);
    schedule.total_compute += rate;
    schedule.total_mem += task.mem_gb;
    schedule.norm_compute += rate / cluster.compute_capacity(a.node);
    schedule.norm_mem += task.mem_gb / cluster.adapter_mem_capacity(a.node);
    schedule.energy_cost += energy.cost(effective, cluster, a.node, a.slot);
  }
  schedule.welfare_gain =
      task.bid - schedule.vendor_price - schedule.energy_cost;
}

double unit_welfare(const Schedule& schedule) noexcept {
  const double booked = schedule.norm_compute + schedule.norm_mem;
  if (booked <= 0.0) return 0.0;
  return schedule.welfare_gain / booked;
}

}  // namespace lorasched
