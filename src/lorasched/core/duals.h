// Dual variables λ_kt (compute price) and φ_kt (memory price) and their
// multiplicative updates — equations (7) and (8) of the paper.
//
// The duals act as posted per-(node, slot) resource prices: they start at
// zero, grow multiplicatively with booked load, and once the cumulative
// booking reaches capacity they exceed Lemma 2's thresholds, making
// F(il) < 0 for every schedule touching that node-slot.
//
// Units. Lemma 2 assumes b̄_il >= 1 ("we can scale the units of b, s, r").
// We implement that scaling explicitly: resources are measured in
// capacity-normalized units (s_kt/C_kp and r_kt/(C_km − r_b), so every cell
// has capacity 1), and the dual update divides b̄ by a money normalization
// `welfare_unit` (κ ≈ the smallest plausible unit welfare in the task
// population) so that b̄/κ >= 1. With this pacing the prices reach the
// blocking thresholds α, β just as the physical capacity fills — the
// behaviour the paper's analysis (and its experiments) rely on.
#pragma once

#include <cstdint>
#include <vector>

#include "lorasched/cluster/cluster.h"
#include "lorasched/core/schedule.h"
#include "lorasched/types.h"
#include "lorasched/workload/task.h"

namespace lorasched {

class DualState {
 public:
  DualState(int nodes, Slot horizon);

  // Copies and moves carry the price grids but receive a fresh identity:
  // ScheduleDp's price-epoch cache keys snapshots on (uid, epoch), so two
  // distinct live objects must never share a stamp (a cache built against
  // the original would otherwise serve stale prices for the copy).
  DualState(const DualState& other);
  DualState(DualState&& other) noexcept;
  DualState& operator=(const DualState& other);
  DualState& operator=(DualState&& other) noexcept;

  [[nodiscard]] int node_count() const noexcept { return nodes_; }
  [[nodiscard]] Slot horizon() const noexcept { return horizon_; }

  /// Process-unique identity of this object (fresh per construction, copy,
  /// and move). Together with epoch() it stamps the exact price state.
  [[nodiscard]] std::uint64_t uid() const noexcept { return uid_; }
  /// Monotone per-object mutation counter: bumped by apply_update(),
  /// load(), set_lambda(), and set_phi(). Consumers (the ScheduleDp
  /// price-epoch cache) compare it to decide whether their snapshot of the
  /// grids is still current — prices only move on admission (eq. 7/8), so
  /// runs of rejected bids between admissions share one epoch. Mutation
  /// requires external synchronization; epoch() is safe to read wherever
  /// lambda()/phi() are.
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

  [[nodiscard]] double lambda(NodeId k, Slot t) const {
    return lambda_[index(k, t)];
  }
  [[nodiscard]] double phi(NodeId k, Slot t) const { return phi_[index(k, t)]; }

  /// max_{(k,t) ∈ l} λ_kt over the schedule's run (0 for empty schedules).
  [[nodiscard]] double max_lambda(const Schedule& schedule) const;
  /// max_{(k,t) ∈ l} φ_kt over the schedule's run.
  [[nodiscard]] double max_phi(const Schedule& schedule) const;

  /// Direct assignment — used when lifting LP duals into a DualState for
  /// the offline column-generation pricing subproblem. Values must be in
  /// normalized-resource units ($ per node-slot fraction).
  void set_lambda(NodeId k, Slot t, double value) {
    lambda_[index(k, t)] = value;
    ++epoch_;
    journal_one(index(k, t));
  }
  void set_phi(NodeId k, Slot t, double value) {
    phi_[index(k, t)] = value;
    ++epoch_;
    journal_one(index(k, t));
  }

  /// Incremental-snapshot support: appends to `out` the index() of every
  /// cell mutated in epochs (since_epoch, epoch()] and returns true, or
  /// returns false when the journal cannot cover that range (wholesale
  /// mutation via load(), journal overflow, or since_epoch predating the
  /// journal) — the caller must then treat every cell as dirty. Cells may
  /// repeat; both grids share one index space (a logged cell means λ, φ, or
  /// both moved there).
  bool dirty_cells_since(std::uint64_t since_epoch,
                         std::vector<std::uint32_t>& out) const;

  // --- Snapshot access (service checkpoint/restore) -----------------------
  // The flat price grids in (node-major, slot-minor) order. load() restores
  // a grid pair previously read through these accessors; sizes must match
  // nodes * horizon exactly.

  [[nodiscard]] const std::vector<double>& lambda_values() const noexcept {
    return lambda_;
  }
  [[nodiscard]] const std::vector<double>& phi_values() const noexcept {
    return phi_;
  }
  /// Overwrites both grids. Throws std::invalid_argument on size mismatch.
  void load(std::vector<double> lambda, std::vector<double> phi);

  /// Applies the primal-dual update (7)/(8) for an almost-feasible task, in
  /// normalized units (per-cell capacity 1, unit welfare divided by κ):
  ///   λ_kt <- λ_kt (1 + s̃) + α (b̄/κ) s̃,   s̃ = s_kt/C_kp
  ///   φ_kt <- φ_kt (1 + r̃) + β (b̄/κ) r̃,   r̃ = r_kt/(C_km − r_b)
  /// for every (k, t) the schedule runs on.
  void apply_update(const Task& task, const Schedule& schedule,
                    const Cluster& cluster, double alpha, double beta,
                    double welfare_unit = 1.0);

 private:
  [[nodiscard]] std::size_t index(NodeId k, Slot t) const {
    return static_cast<std::size_t>(k) * static_cast<std::size_t>(horizon_) +
           static_cast<std::size_t>(t);
  }

  [[nodiscard]] static std::uint64_t next_uid() noexcept;

  /// Appends one mutation step's dirty cells to the journal; resets the
  /// journal (empty, based at the current epoch) past kJournalCap.
  void journal_step(const std::uint32_t* cells, std::size_t count);
  void journal_one(std::size_t cell) {
    const auto c = static_cast<std::uint32_t>(cell);
    journal_step(&c, 1);
  }
  void journal_reset() {
    journal_base_epoch_ = epoch_;
    journal_cells_.clear();
    journal_ends_.clear();
  }

  int nodes_;
  Slot horizon_;
  std::uint64_t uid_;
  std::uint64_t epoch_ = 0;
  std::vector<double> lambda_;
  std::vector<double> phi_;

  /// Dirty-cell journal: journal_ends_[i] is the journal_cells_ prefix
  /// length after the mutation that moved the epoch to
  /// journal_base_epoch_ + i + 1. Bounded by kJournalCap (reset on
  /// overflow); eq. 7/8 admissions touch only the schedule's cells, so in
  /// steady state the snapshot cache patches those instead of rebuilding.
  static constexpr std::size_t kJournalCap = 1u << 15;
  std::uint64_t journal_base_epoch_ = 0;
  std::vector<std::uint32_t> journal_cells_;
  std::vector<std::uint32_t> journal_ends_;
};

/// F(il) — equation (10): the schedule's welfare gain minus the posted price
/// of the (normalized) resources it books, at the *current* duals.
[[nodiscard]] double objective_value(const Schedule& schedule,
                                     const DualState& duals);

}  // namespace lorasched
