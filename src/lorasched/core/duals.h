// Dual variables λ_kt (compute price) and φ_kt (memory price) and their
// multiplicative updates — equations (7) and (8) of the paper.
//
// The duals act as posted per-(node, slot) resource prices: they start at
// zero, grow multiplicatively with booked load, and once the cumulative
// booking reaches capacity they exceed Lemma 2's thresholds, making
// F(il) < 0 for every schedule touching that node-slot.
//
// Units. Lemma 2 assumes b̄_il >= 1 ("we can scale the units of b, s, r").
// We implement that scaling explicitly: resources are measured in
// capacity-normalized units (s_kt/C_kp and r_kt/(C_km − r_b), so every cell
// has capacity 1), and the dual update divides b̄ by a money normalization
// `welfare_unit` (κ ≈ the smallest plausible unit welfare in the task
// population) so that b̄/κ >= 1. With this pacing the prices reach the
// blocking thresholds α, β just as the physical capacity fills — the
// behaviour the paper's analysis (and its experiments) rely on.
#pragma once

#include <vector>

#include "lorasched/cluster/cluster.h"
#include "lorasched/core/schedule.h"
#include "lorasched/types.h"
#include "lorasched/workload/task.h"

namespace lorasched {

class DualState {
 public:
  DualState(int nodes, Slot horizon);

  [[nodiscard]] int node_count() const noexcept { return nodes_; }
  [[nodiscard]] Slot horizon() const noexcept { return horizon_; }

  [[nodiscard]] double lambda(NodeId k, Slot t) const {
    return lambda_[index(k, t)];
  }
  [[nodiscard]] double phi(NodeId k, Slot t) const { return phi_[index(k, t)]; }

  /// max_{(k,t) ∈ l} λ_kt over the schedule's run (0 for empty schedules).
  [[nodiscard]] double max_lambda(const Schedule& schedule) const;
  /// max_{(k,t) ∈ l} φ_kt over the schedule's run.
  [[nodiscard]] double max_phi(const Schedule& schedule) const;

  /// Direct assignment — used when lifting LP duals into a DualState for
  /// the offline column-generation pricing subproblem. Values must be in
  /// normalized-resource units ($ per node-slot fraction).
  void set_lambda(NodeId k, Slot t, double value) {
    lambda_[index(k, t)] = value;
  }
  void set_phi(NodeId k, Slot t, double value) { phi_[index(k, t)] = value; }

  // --- Snapshot access (service checkpoint/restore) -----------------------
  // The flat price grids in (node-major, slot-minor) order. load() restores
  // a grid pair previously read through these accessors; sizes must match
  // nodes * horizon exactly.

  [[nodiscard]] const std::vector<double>& lambda_values() const noexcept {
    return lambda_;
  }
  [[nodiscard]] const std::vector<double>& phi_values() const noexcept {
    return phi_;
  }
  /// Overwrites both grids. Throws std::invalid_argument on size mismatch.
  void load(std::vector<double> lambda, std::vector<double> phi);

  /// Applies the primal-dual update (7)/(8) for an almost-feasible task, in
  /// normalized units (per-cell capacity 1, unit welfare divided by κ):
  ///   λ_kt <- λ_kt (1 + s̃) + α (b̄/κ) s̃,   s̃ = s_kt/C_kp
  ///   φ_kt <- φ_kt (1 + r̃) + β (b̄/κ) r̃,   r̃ = r_kt/(C_km − r_b)
  /// for every (k, t) the schedule runs on.
  void apply_update(const Task& task, const Schedule& schedule,
                    const Cluster& cluster, double alpha, double beta,
                    double welfare_unit = 1.0);

 private:
  [[nodiscard]] std::size_t index(NodeId k, Slot t) const {
    return static_cast<std::size_t>(k) * static_cast<std::size_t>(horizon_) +
           static_cast<std::size_t>(t);
  }

  int nodes_;
  Slot horizon_;
  std::vector<double> lambda_;
  std::vector<double> phi_;
};

/// F(il) — equation (10): the schedule's welfare gain minus the posted price
/// of the (normalized) resources it books, at the *current* duals.
[[nodiscard]] double objective_value(const Schedule& schedule,
                                     const DualState& duals);

}  // namespace lorasched
