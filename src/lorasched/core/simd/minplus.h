// SIMD min-plus kernels for the Alg. 2 schedule DP (DESIGN.md §5c).
//
// Two inner loops dominate a cached find (schedule_dp.cpp): the per-slot
// class-member argmin over the price snapshot's SoA lambda/phi rows, and the
// min-plus relaxation of the DP row over the work-level axis. Both are
// replicated here three ways — a scalar reference (kept verbatim from the
// pre-SIMD hot path), an AVX2 arm, and a NEON arm — behind one runtime
// dispatch point. The contract is *bit-identity*: every arm must produce the
// same values, the same argmin/choice indices, and therefore the same
// schedules, payments, and golden fingerprints as the scalar reference.
//
// How the vector arms pin bit-identity:
//  - Lanes carry adjacent elements of the loop axis (work levels w, or
//    member index i); the sequential scan order of the scalar code is kept
//    *within* each lane via strict `<` compare+blend, so the first strict
//    minimum wins per lane exactly as in the scalar scan.
//  - The DP row needs no cross-lane reduction at all: each output cur[w] is
//    one lane, and the class loop runs in the same order as the scalar code.
//  - The argmin's final cross-lane reduction is a pinned-order sequential
//    scan over (value, index) pairs, lexicographic on (value, index), which
//    is exactly "earliest index among the minima" — the scalar tie-break.
//  - All arithmetic is mul-then-add in the scalar source order; the kernel
//    TUs are compiled with -ffp-contract=off (see src/CMakeLists.txt) so no
//    arm can fuse into an FMA the other arms don't perform.
#pragma once

#include <cstddef>
#include <cstdint>

namespace lorasched::simd {

/// Runtime-dispatched kernel identity. Values are a wire/metrics contract:
/// the `lorasched_dp_simd_dispatch` gauge exports them as-is.
enum class Kernel : int {
  kScalar = 0,
  kAvx2 = 1,
  kNeon = 2,
};

/// "No class runs this slot" choice marker (schedule_dp.cpp's kSkip).
inline constexpr std::int16_t kDpSkip = -1;

/// One usable (finite-Δ) class of a DP row: the cost increment of running
/// the slot on the class's best node, the work units it completes, and the
/// class index recorded into the choice table.
struct MinPlusClass {
  double delta = 0.0;
  std::size_t units = 0;
  std::int16_t cls = kDpSkip;
};

/// Best kernel this process can run: compiled-in arm ∩ cpuid, overridable
/// via the LORASCHED_DP_SIMD environment variable ("scalar"/"off" forces the
/// scalar reference; "avx2"/"neon" requests an arm, falling back to scalar
/// when it is not compiled in or the CPU lacks it; "auto"/unset picks the
/// best available). Evaluated once per process.
[[nodiscard]] Kernel active_kernel() noexcept;

/// Human-readable arm name ("scalar", "avx2", "neon") for benches/logs.
[[nodiscard]] const char* kernel_name(Kernel k) noexcept;

/// Min-plus relaxation of one DP row:
///   cur[w]    = min(prev[w], min_e prev[max(w - e.units, 0)] + e.delta)
///   choice[w] = cls of the *first* strict improver in [lo, hi) order, or
///               kDpSkip when carry-over wins.
/// Writes exactly [0, levels) of cur and choice. +inf cells propagate as in
/// the scalar code (inf + finite = inf never compares < anything).
void dp_row(Kernel k, const double* prev, double* cur, std::int16_t* choice,
            std::size_t levels, const MinPlusClass* lo,
            const MinPlusClass* hi) noexcept;

/// First-strict-minimum argmin of s*lam[i] + r*phi[i] + e over i in [0, n).
/// Returns the index (n when nothing beats +inf, i.e. n == 0 or every cost
/// is non-finite) and writes the winning value to *best (+inf when none).
[[nodiscard]] std::size_t cost_argmin(Kernel k, const double* lam,
                                      const double* phi, std::size_t n,
                                      double s, double r, double e,
                                      double* best) noexcept;

/// Sweep form of cost_argmin over `count` consecutive slot rows of one
/// class: row j lives at lam + j*stride / phi + j*stride (the snapshot's
/// class-major layout makes consecutive slots exactly stride = n apart),
/// with the slot's constant term e_j = full_cost[j] * s — the same scalar
/// expression the caller would evaluate, computed here so the per-call
/// broadcast/dispatch setup amortizes over the whole window. Writes
/// best_out[j] and pos_out[j] (pos n when no finite cost) for each row;
/// every (value, index) pair is bit-identical to calling cost_argmin per
/// row.
void cost_argmin_sweep(Kernel k, const double* lam, const double* phi,
                       std::size_t stride, std::size_t count, std::size_t n,
                       double s, double r, const double* full_cost,
                       double* best_out, std::int32_t* pos_out) noexcept;

namespace detail {
// Per-arm entry points. The scalar pair is the reference semantics; the
// vector pairs exist only in builds whose CMake arch matched (they are
// declared unconditionally so the dispatcher can reference them under
// #ifdef without a second header).
void dp_row_scalar(const double* prev, double* cur, std::int16_t* choice,
                   std::size_t levels, const MinPlusClass* lo,
                   const MinPlusClass* hi) noexcept;
std::size_t cost_argmin_scalar(const double* lam, const double* phi,
                               std::size_t n, double s, double r, double e,
                               double* best) noexcept;
void cost_argmin_sweep_scalar(const double* lam, const double* phi,
                              std::size_t stride, std::size_t count,
                              std::size_t n, double s, double r,
                              const double* full_cost, double* best_out,
                              std::int32_t* pos_out) noexcept;
void dp_row_avx2(const double* prev, double* cur, std::int16_t* choice,
                 std::size_t levels, const MinPlusClass* lo,
                 const MinPlusClass* hi) noexcept;
std::size_t cost_argmin_avx2(const double* lam, const double* phi,
                             std::size_t n, double s, double r, double e,
                             double* best) noexcept;
void cost_argmin_sweep_avx2(const double* lam, const double* phi,
                            std::size_t stride, std::size_t count,
                            std::size_t n, double s, double r,
                            const double* full_cost, double* best_out,
                            std::int32_t* pos_out) noexcept;
void dp_row_neon(const double* prev, double* cur, std::int16_t* choice,
                 std::size_t levels, const MinPlusClass* lo,
                 const MinPlusClass* hi) noexcept;
std::size_t cost_argmin_neon(const double* lam, const double* phi,
                             std::size_t n, double s, double r, double e,
                             double* best) noexcept;
void cost_argmin_sweep_neon(const double* lam, const double* phi,
                            std::size_t stride, std::size_t count,
                            std::size_t n, double s, double r,
                            const double* full_cost, double* best_out,
                            std::int32_t* pos_out) noexcept;
}  // namespace detail

}  // namespace lorasched::simd
