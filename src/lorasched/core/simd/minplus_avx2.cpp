// AVX2 arm of the min-plus kernels (DESIGN.md §5c).
//
// This TU is the only one compiled with -mavx2; it is referenced only when
// cpuid reports AVX2 at runtime (simd::active_kernel). It is also compiled
// with -ffp-contract=off: -mavx2 alone does not enable the FMA ISA, but the
// flag pins the "no fusion" contract explicitly so the mul-then-add
// sequences below stay bit-identical to the scalar reference even if the
// toolchain's defaults change.
#include "lorasched/core/simd/minplus.h"

#if defined(LORASCHED_SIMD_AVX2)

#include <immintrin.h>

#include <limits>

namespace lorasched::simd::detail {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

// Scalar-reference body over a sub-range of work levels; used for the
// ragged prologue (w < max units, where the clamped prev[0] load breaks the
// shifted vector load) and the < 4-lane epilogue.
inline void dp_span_scalar(const double* prev, double* cur,
                           std::int16_t* choice, std::size_t begin,
                           std::size_t end, const MinPlusClass* lo,
                           const MinPlusClass* hi) noexcept {
  for (std::size_t w = begin; w < end; ++w) {
    double best = prev[w];
    std::int16_t best_choice = kDpSkip;
    for (const MinPlusClass* e = lo; e != hi; ++e) {
      const std::size_t w_from = w > e->units ? w - e->units : 0;
      if (prev[w_from] == kInf) continue;
      const double cand = prev[w_from] + e->delta;
      if (cand < best) {
        best = cand;
        best_choice = e->cls;
      }
    }
    cur[w] = best;
    choice[w] = best_choice;
  }
}
}  // namespace

void dp_row_avx2(const double* prev, double* cur, std::int16_t* choice,
                 std::size_t levels, const MinPlusClass* lo,
                 const MinPlusClass* hi) noexcept {
  // Below `head` at least one class clamps its predecessor to prev[0]; the
  // scalar reference handles that span, the lanes take over once every
  // class's shifted load prev + (w - units) is in range.
  std::size_t head = 0;
  for (const MinPlusClass* e = lo; e != hi; ++e) {
    if (e->units > head) head = e->units;
  }
  if (head > levels) head = levels;
  dp_span_scalar(prev, cur, choice, 0, head, lo, hi);

  std::size_t w = head;
  const __m256i skip = _mm256_set1_epi64x(static_cast<long long>(kDpSkip));
  for (; w + 4 <= levels; w += 4) {
    // Lanes are adjacent work levels w..w+3. The class loop runs in the
    // same order as the scalar scan with a strict-< compare+blend, so each
    // lane independently keeps the scalar path's first strict minimum —
    // no cross-lane reduction exists to re-order.
    __m256d best = _mm256_loadu_pd(prev + w);
    __m256i cls = skip;
    for (const MinPlusClass* e = lo; e != hi; ++e) {
      const __m256d cand =
          _mm256_add_pd(_mm256_loadu_pd(prev + (w - e->units)),
                        _mm256_set1_pd(e->delta));
      const __m256d lt = _mm256_cmp_pd(cand, best, _CMP_LT_OQ);
      best = _mm256_blendv_pd(best, cand, lt);
      cls = _mm256_blendv_epi8(
          cls, _mm256_set1_epi64x(static_cast<long long>(e->cls)),
          _mm256_castpd_si256(lt));
    }
    _mm256_storeu_pd(cur + w, best);
    alignas(32) long long picked[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(picked), cls);
    choice[w + 0] = static_cast<std::int16_t>(picked[0]);
    choice[w + 1] = static_cast<std::int16_t>(picked[1]);
    choice[w + 2] = static_cast<std::int16_t>(picked[2]);
    choice[w + 3] = static_cast<std::int16_t>(picked[3]);
  }
  dp_span_scalar(prev, cur, choice, w, levels, lo, hi);
}

namespace {
// One strict-< accumulator step over 4 adjacent candidates. The explicit
// mul/add intrinsics keep the scalar source's association
// (s*lam + r*phi) + e — with -ffp-contract=off no FMA can sneak in on
// either side of the differential.
inline void argmin_step(const double* lam, const double* phi, __m256d vs,
                        __m256d vr, __m256d ve, __m256d& vbest, __m256i& vpos,
                        __m256i vidx) noexcept {
  const __m256d cost =
      _mm256_add_pd(_mm256_add_pd(_mm256_mul_pd(vs, _mm256_loadu_pd(lam)),
                                  _mm256_mul_pd(vr, _mm256_loadu_pd(phi))),
                    ve);
  const __m256d lt = _mm256_cmp_pd(cost, vbest, _CMP_LT_OQ);
  vbest = _mm256_blendv_pd(vbest, cost, lt);
  vpos = _mm256_blendv_epi8(vpos, vidx, _mm256_castpd_si256(lt));
}

// Lexicographic (value, index) merge of two accumulator sets, lane-wise.
// Because the index is part of the comparison, the merge is order-
// independent: whichever grouping the reduction tree uses, the survivor of
// a tie is the smaller index — the scalar scan's tie-break. The `==` is
// that deterministic tie test, not a tolerance.
inline void argmin_merge(__m256d& abest, __m256i& apos, __m256d bbest,
                         __m256i bpos) noexcept {
  const __m256d lt = _mm256_cmp_pd(bbest, abest, _CMP_LT_OQ);
  const __m256d eq = _mm256_cmp_pd(bbest, abest, _CMP_EQ_OQ);
  const __m256i pos_lt = _mm256_cmpgt_epi64(apos, bpos);  // bpos < apos
  const __m256i take = _mm256_or_si256(
      _mm256_castpd_si256(lt),
      _mm256_and_si256(_mm256_castpd_si256(eq), pos_lt));
  abest = _mm256_blendv_pd(abest, bbest, _mm256_castsi256_pd(take));
  apos = _mm256_blendv_epi8(apos, bpos, take);
}
}  // namespace

std::size_t cost_argmin_avx2(const double* lam, const double* phi,
                             std::size_t n, double s, double r, double e,
                             double* best) noexcept {
  double b = kInf;
  std::size_t pos = n;
  std::size_t i = 0;
  if (n >= 4) {
    const __m256d vs = _mm256_set1_pd(s);
    const __m256d vr = _mm256_set1_pd(r);
    const __m256d ve = _mm256_set1_pd(e);
    // Four independent accumulator pairs (16 candidates per iteration):
    // the strict-< compare+blend chain is the loop-carried dependency, so
    // splitting it four ways hides most of its latency. Index sentinel n:
    // a lane that never improves reduces as (inf, n), which loses to every
    // real candidate under the lexicographic merge.
    const __m256i sent = _mm256_set1_epi64x(static_cast<long long>(n));
    __m256d vb0 = _mm256_set1_pd(kInf), vb1 = vb0, vb2 = vb0, vb3 = vb0;
    __m256i vp0 = sent, vp1 = sent, vp2 = sent, vp3 = sent;
    __m256i vidx = _mm256_setr_epi64x(0, 1, 2, 3);
    const __m256i four = _mm256_set1_epi64x(4);
    const __m256i sixteen = _mm256_set1_epi64x(16);
    for (; i + 16 <= n; i += 16) {
      const __m256i vi1 = _mm256_add_epi64(vidx, four);
      const __m256i vi2 = _mm256_add_epi64(vi1, four);
      const __m256i vi3 = _mm256_add_epi64(vi2, four);
      argmin_step(lam + i, phi + i, vs, vr, ve, vb0, vp0, vidx);
      argmin_step(lam + i + 4, phi + i + 4, vs, vr, ve, vb1, vp1, vi1);
      argmin_step(lam + i + 8, phi + i + 8, vs, vr, ve, vb2, vp2, vi2);
      argmin_step(lam + i + 12, phi + i + 12, vs, vr, ve, vb3, vp3, vi3);
      vidx = _mm256_add_epi64(vidx, sixteen);
    }
    for (; i + 4 <= n; i += 4) {
      argmin_step(lam + i, phi + i, vs, vr, ve, vb0, vp0, vidx);
      vidx = _mm256_add_epi64(vidx, four);
    }
    // Reduce: lexicographic pairwise merges (order-independent, see
    // argmin_merge), then a pinned lane-order scan of the final four
    // (value, index) pairs. Each lane holds the first strict minimum of
    // its index subsequence, so the merged result is the earliest index
    // among the global minima — exactly the scalar tie-break.
    argmin_merge(vb0, vp0, vb1, vp1);
    argmin_merge(vb2, vp2, vb3, vp3);
    argmin_merge(vb0, vp0, vb2, vp2);
    alignas(32) double lane_val[4];
    alignas(32) long long lane_pos[4];
    _mm256_store_pd(lane_val, vb0);
    _mm256_store_si256(reinterpret_cast<__m256i*>(lane_pos), vp0);
    for (int lane = 0; lane < 4; ++lane) {
      const auto cand_pos = static_cast<std::size_t>(lane_pos[lane]);
      if (lane_val[lane] < b || (lane_val[lane] == b && cand_pos < pos)) {
        b = lane_val[lane];
        pos = cand_pos;
      }
    }
  }
  for (; i < n; ++i) {
    // Tail indices all exceed the vector span's, so strict < alone keeps
    // the earlier winner on ties.
    const double cost = s * lam[i] + r * phi[i] + e;
    if (cost < b) {
      b = cost;
      pos = i;
    }
  }
  *best = b;
  return pos;
}

void cost_argmin_sweep_avx2(const double* lam, const double* phi,
                            std::size_t stride, std::size_t count,
                            std::size_t n, double s, double r,
                            const double* full_cost, double* best_out,
                            std::int32_t* pos_out) noexcept {
  // One dispatch + broadcast setup for the whole window; each row replays
  // cost_argmin_avx2 exactly (same accumulator split, same merge), with the
  // slot constant e_j = full_cost[j] * s computed by the same scalar
  // expression as the sweep's scalar reference.
  const __m256d vs = _mm256_set1_pd(s);
  const __m256d vr = _mm256_set1_pd(r);
  const __m256i sent = _mm256_set1_epi64x(static_cast<long long>(n));
  const __m256i idx0 = _mm256_setr_epi64x(0, 1, 2, 3);
  const __m256i four = _mm256_set1_epi64x(4);
  const __m256i sixteen = _mm256_set1_epi64x(16);
  for (std::size_t j = 0; j < count; ++j) {
    const double e = full_cost[j] * s;
    const double* lj = lam + j * stride;
    const double* pj = phi + j * stride;
    double b = kInf;
    std::size_t pos = n;
    std::size_t i = 0;
    if (n >= 4) {
      const __m256d ve = _mm256_set1_pd(e);
      __m256d vb0 = _mm256_set1_pd(kInf), vb1 = vb0, vb2 = vb0, vb3 = vb0;
      __m256i vp0 = sent, vp1 = sent, vp2 = sent, vp3 = sent;
      __m256i vidx = idx0;
      for (; i + 16 <= n; i += 16) {
        const __m256i vi1 = _mm256_add_epi64(vidx, four);
        const __m256i vi2 = _mm256_add_epi64(vi1, four);
        const __m256i vi3 = _mm256_add_epi64(vi2, four);
        argmin_step(lj + i, pj + i, vs, vr, ve, vb0, vp0, vidx);
        argmin_step(lj + i + 4, pj + i + 4, vs, vr, ve, vb1, vp1, vi1);
        argmin_step(lj + i + 8, pj + i + 8, vs, vr, ve, vb2, vp2, vi2);
        argmin_step(lj + i + 12, pj + i + 12, vs, vr, ve, vb3, vp3, vi3);
        vidx = _mm256_add_epi64(vidx, sixteen);
      }
      for (; i + 4 <= n; i += 4) {
        argmin_step(lj + i, pj + i, vs, vr, ve, vb0, vp0, vidx);
        vidx = _mm256_add_epi64(vidx, four);
      }
      argmin_merge(vb0, vp0, vb1, vp1);
      argmin_merge(vb2, vp2, vb3, vp3);
      argmin_merge(vb0, vp0, vb2, vp2);
      alignas(32) double lane_val[4];
      alignas(32) long long lane_pos[4];
      _mm256_store_pd(lane_val, vb0);
      _mm256_store_si256(reinterpret_cast<__m256i*>(lane_pos), vp0);
      for (int lane = 0; lane < 4; ++lane) {
        const auto cand_pos = static_cast<std::size_t>(lane_pos[lane]);
        if (lane_val[lane] < b || (lane_val[lane] == b && cand_pos < pos)) {
          b = lane_val[lane];
          pos = cand_pos;
        }
      }
    }
    for (; i < n; ++i) {
      const double cost = s * lj[i] + r * pj[i] + e;
      if (cost < b) {
        b = cost;
        pos = i;
      }
    }
    best_out[j] = b;
    pos_out[j] = static_cast<std::int32_t>(pos);
  }
}

}  // namespace lorasched::simd::detail

#endif  // LORASCHED_SIMD_AVX2
