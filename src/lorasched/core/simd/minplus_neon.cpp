// NEON (aarch64) arm of the min-plus kernels — 2 × f64 lanes, same lane
// discipline as the AVX2 arm (see minplus_avx2.cpp and DESIGN.md §5c).
//
// Compiled with -ffp-contract=off: unlike x86's baseline, FMA is part of
// the aarch64 baseline ISA, so without the flag the compiler could fuse
// the mul-then-add sequences here (or in the scalar reference) and break
// the bit-identity contract between the arms.
#include "lorasched/core/simd/minplus.h"

#if defined(LORASCHED_SIMD_NEON)

#include <arm_neon.h>

#include <limits>

namespace lorasched::simd::detail {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

inline void dp_span_scalar(const double* prev, double* cur,
                           std::int16_t* choice, std::size_t begin,
                           std::size_t end, const MinPlusClass* lo,
                           const MinPlusClass* hi) noexcept {
  for (std::size_t w = begin; w < end; ++w) {
    double best = prev[w];
    std::int16_t best_choice = kDpSkip;
    for (const MinPlusClass* e = lo; e != hi; ++e) {
      const std::size_t w_from = w > e->units ? w - e->units : 0;
      if (prev[w_from] == kInf) continue;
      const double cand = prev[w_from] + e->delta;
      if (cand < best) {
        best = cand;
        best_choice = e->cls;
      }
    }
    cur[w] = best;
    choice[w] = best_choice;
  }
}
}  // namespace

void dp_row_neon(const double* prev, double* cur, std::int16_t* choice,
                 std::size_t levels, const MinPlusClass* lo,
                 const MinPlusClass* hi) noexcept {
  std::size_t head = 0;
  for (const MinPlusClass* e = lo; e != hi; ++e) {
    if (e->units > head) head = e->units;
  }
  if (head > levels) head = levels;
  dp_span_scalar(prev, cur, choice, 0, head, lo, hi);

  std::size_t w = head;
  const int64x2_t skip = vdupq_n_s64(static_cast<std::int64_t>(kDpSkip));
  for (; w + 2 <= levels; w += 2) {
    float64x2_t best = vld1q_f64(prev + w);
    int64x2_t cls = skip;
    for (const MinPlusClass* e = lo; e != hi; ++e) {
      const float64x2_t cand =
          vaddq_f64(vld1q_f64(prev + (w - e->units)), vdupq_n_f64(e->delta));
      const uint64x2_t lt = vcltq_f64(cand, best);
      best = vbslq_f64(lt, cand, best);
      cls = vbslq_s64(lt, vdupq_n_s64(static_cast<std::int64_t>(e->cls)), cls);
    }
    vst1q_f64(cur + w, best);
    choice[w + 0] = static_cast<std::int16_t>(vgetq_lane_s64(cls, 0));
    choice[w + 1] = static_cast<std::int16_t>(vgetq_lane_s64(cls, 1));
  }
  dp_span_scalar(prev, cur, choice, w, levels, lo, hi);
}

std::size_t cost_argmin_neon(const double* lam, const double* phi,
                             std::size_t n, double s, double r, double e,
                             double* best) noexcept {
  double b = kInf;
  std::size_t pos = n;
  std::size_t i = 0;
  if (n >= 2) {
    const float64x2_t vs = vdupq_n_f64(s);
    const float64x2_t vr = vdupq_n_f64(r);
    const float64x2_t ve = vdupq_n_f64(e);
    float64x2_t vbest = vdupq_n_f64(kInf);
    int64x2_t vpos = vdupq_n_s64(static_cast<std::int64_t>(n));
    int64x2_t vidx = {0, 1};
    const int64x2_t step = vdupq_n_s64(2);
    for (; i + 2 <= n; i += 2) {
      const float64x2_t cost =
          vaddq_f64(vaddq_f64(vmulq_f64(vs, vld1q_f64(lam + i)),
                              vmulq_f64(vr, vld1q_f64(phi + i))),
                    ve);
      const uint64x2_t lt = vcltq_f64(cost, vbest);
      vbest = vbslq_f64(lt, cost, vbest);
      vpos = vbslq_s64(lt, vidx, vpos);
      vidx = vaddq_s64(vidx, step);
    }
    // Pinned lexicographic (value, index) reduction in lane order — the
    // `==` is the deterministic tie test, not a tolerance (see the AVX2
    // arm for why this replays the scalar first-minimum tie-break).
    const double lane_val[2] = {vgetq_lane_f64(vbest, 0),
                                vgetq_lane_f64(vbest, 1)};
    const std::size_t lane_pos[2] = {
        static_cast<std::size_t>(vgetq_lane_s64(vpos, 0)),
        static_cast<std::size_t>(vgetq_lane_s64(vpos, 1))};
    for (int lane = 0; lane < 2; ++lane) {
      if (lane_val[lane] < b || (lane_val[lane] == b && lane_pos[lane] < pos)) {
        b = lane_val[lane];
        pos = lane_pos[lane];
      }
    }
  }
  for (; i < n; ++i) {
    const double cost = s * lam[i] + r * phi[i] + e;
    if (cost < b) {
      b = cost;
      pos = i;
    }
  }
  *best = b;
  return pos;
}

void cost_argmin_sweep_neon(const double* lam, const double* phi,
                            std::size_t stride, std::size_t count,
                            std::size_t n, double s, double r,
                            const double* full_cost, double* best_out,
                            std::int32_t* pos_out) noexcept {
  // One call per window: each row replays cost_argmin_neon exactly, with
  // the slot constant e_j = full_cost[j] * s computed by the same scalar
  // expression as the sweep's scalar reference.
  for (std::size_t j = 0; j < count; ++j) {
    const double e = full_cost[j] * s;
    double b = kInf;
    const std::size_t pos = cost_argmin_neon(lam + j * stride,
                                             phi + j * stride, n, s, r, e, &b);
    best_out[j] = b;
    pos_out[j] = static_cast<std::int32_t>(pos);
  }
}

}  // namespace lorasched::simd::detail

#endif  // LORASCHED_SIMD_NEON
