// Scalar reference kernels + the runtime dispatch point (DESIGN.md §5c).
//
// The scalar bodies are the pre-SIMD inner loops of schedule_dp.cpp kept
// verbatim — they ARE the semantics the vector arms must reproduce bit for
// bit, and the arm bench/micro_core labels "scalar".
#include "lorasched/core/simd/minplus.h"

#include <cstdlib>
#include <cstring>
#include <limits>

namespace lorasched::simd {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

Kernel best_compiled_kernel() noexcept {
#if defined(LORASCHED_SIMD_AVX2)
#if defined(__GNUC__) || defined(__clang__)
  if (__builtin_cpu_supports("avx2")) return Kernel::kAvx2;
#endif
#endif
#if defined(LORASCHED_SIMD_NEON)
  return Kernel::kNeon;  // NEON is baseline on aarch64 — no cpuid needed.
#endif
  return Kernel::kScalar;
}

bool env_is(const char* value, const char* want) noexcept {
  return std::strcmp(value, want) == 0;
}

Kernel detect_kernel() noexcept {
  const Kernel best = best_compiled_kernel();
  const char* env = std::getenv("LORASCHED_DP_SIMD");
  if (env == nullptr || env_is(env, "") || env_is(env, "auto") ||
      env_is(env, "on") || env_is(env, "1")) {
    return best;
  }
  if (env_is(env, "scalar") || env_is(env, "off") || env_is(env, "0")) {
    return Kernel::kScalar;
  }
  if (env_is(env, "avx2")) {
    return best == Kernel::kAvx2 ? Kernel::kAvx2 : Kernel::kScalar;
  }
  if (env_is(env, "neon")) {
    return best == Kernel::kNeon ? Kernel::kNeon : Kernel::kScalar;
  }
  return best;  // unknown value: behave as auto
}
}  // namespace

Kernel active_kernel() noexcept {
  static const Kernel kernel = detect_kernel();
  return kernel;
}

const char* kernel_name(Kernel k) noexcept {
  switch (k) {
    case Kernel::kAvx2:
      return "avx2";
    case Kernel::kNeon:
      return "neon";
    case Kernel::kScalar:
      break;
  }
  return "scalar";
}

namespace detail {

void dp_row_scalar(const double* prev, double* cur, std::int16_t* choice,
                   std::size_t levels, const MinPlusClass* lo,
                   const MinPlusClass* hi) noexcept {
  for (std::size_t w = 0; w < levels; ++w) {
    double best = prev[w];
    std::int16_t best_choice = kDpSkip;
    for (const MinPlusClass* e = lo; e != hi; ++e) {
      const std::size_t w_from = w > e->units ? w - e->units : 0;
      if (prev[w_from] == kInf) continue;
      const double cand = prev[w_from] + e->delta;
      if (cand < best) {
        best = cand;
        best_choice = e->cls;
      }
    }
    cur[w] = best;
    choice[w] = best_choice;
  }
}

std::size_t cost_argmin_scalar(const double* lam, const double* phi,
                               std::size_t n, double s, double r, double e,
                               double* best) noexcept {
  double b = kInf;
  std::size_t pos = n;
  for (std::size_t i = 0; i < n; ++i) {
    const double cost = s * lam[i] + r * phi[i] + e;
    if (cost < b) {
      b = cost;
      pos = i;
    }
  }
  *best = b;
  return pos;
}

void cost_argmin_sweep_scalar(const double* lam, const double* phi,
                              std::size_t stride, std::size_t count,
                              std::size_t n, double s, double r,
                              const double* full_cost, double* best_out,
                              std::int32_t* pos_out) noexcept {
  for (std::size_t j = 0; j < count; ++j) {
    const double e = full_cost[j] * s;
    best_out[j] = kInf;
    pos_out[j] = static_cast<std::int32_t>(n);
    const double* lj = lam + j * stride;
    const double* pj = phi + j * stride;
    double b = kInf;
    for (std::size_t i = 0; i < n; ++i) {
      const double cost = s * lj[i] + r * pj[i] + e;
      if (cost < b) {
        b = cost;
        pos_out[j] = static_cast<std::int32_t>(i);
      }
    }
    best_out[j] = b;
  }
}

}  // namespace detail

void dp_row(Kernel k, const double* prev, double* cur, std::int16_t* choice,
            std::size_t levels, const MinPlusClass* lo,
            const MinPlusClass* hi) noexcept {
  switch (k) {
#if defined(LORASCHED_SIMD_AVX2)
    case Kernel::kAvx2:
      detail::dp_row_avx2(prev, cur, choice, levels, lo, hi);
      return;
#endif
#if defined(LORASCHED_SIMD_NEON)
    case Kernel::kNeon:
      detail::dp_row_neon(prev, cur, choice, levels, lo, hi);
      return;
#endif
    default:
      break;
  }
  detail::dp_row_scalar(prev, cur, choice, levels, lo, hi);
}

std::size_t cost_argmin(Kernel k, const double* lam, const double* phi,
                        std::size_t n, double s, double r, double e,
                        double* best) noexcept {
  switch (k) {
#if defined(LORASCHED_SIMD_AVX2)
    case Kernel::kAvx2:
      return detail::cost_argmin_avx2(lam, phi, n, s, r, e, best);
#endif
#if defined(LORASCHED_SIMD_NEON)
    case Kernel::kNeon:
      return detail::cost_argmin_neon(lam, phi, n, s, r, e, best);
#endif
    default:
      break;
  }
  return detail::cost_argmin_scalar(lam, phi, n, s, r, e, best);
}

void cost_argmin_sweep(Kernel k, const double* lam, const double* phi,
                       std::size_t stride, std::size_t count, std::size_t n,
                       double s, double r, const double* full_cost,
                       double* best_out, std::int32_t* pos_out) noexcept {
  switch (k) {
#if defined(LORASCHED_SIMD_AVX2)
    case Kernel::kAvx2:
      detail::cost_argmin_sweep_avx2(lam, phi, stride, count, n, s, r,
                                     full_cost, best_out, pos_out);
      return;
#endif
#if defined(LORASCHED_SIMD_NEON)
    case Kernel::kNeon:
      detail::cost_argmin_sweep_neon(lam, phi, stride, count, n, s, r,
                                     full_cost, best_out, pos_out);
      return;
#endif
    default:
      break;
  }
  detail::cost_argmin_sweep_scalar(lam, phi, stride, count, n, s, r,
                                   full_cost, best_out, pos_out);
}

}  // namespace lorasched::simd
