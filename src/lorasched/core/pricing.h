// Payment rule — equation (14) plus operational-cost pass-through.
//
// A winning bid pays the chosen vendor's price, the schedule's operational
// (energy) cost, and the *pre-update* marginal resource prices max λ^(i−1),
// max φ^(i−1) applied to the (capacity-normalized) resources its schedule
// books — the same units the dual state maintains (see duals.h).
//
// Reproduction note: the paper's eq. (14) omits the Σ e_ikt term, yet the
// proof of Theorem 3 relies on "F(il) is essentially b_i − p_i", which is
// only true when the operational cost is part of the payment (without it a
// rejected bidder can gain up to Σ e_ikt by overbidding — our property
// tests demonstrate this). We therefore include the pass-through; it is
// bid-independent, so truthfulness (Thm. 3) and individual rationality
// (Thm. 4) hold exactly.
#pragma once

#include "lorasched/core/duals.h"
#include "lorasched/core/schedule.h"
#include "lorasched/types.h"

namespace lorasched {

/// p_i for an admitted schedule; `pre_update_duals` must be the dual state
/// *before* apply_update() ran for this task.
[[nodiscard]] Money payment(const Schedule& schedule,
                            const DualState& pre_update_duals);

/// Same, from cached max-dual values (when the dual state has already been
/// advanced past task i).
[[nodiscard]] Money payment_from_prices(const Schedule& schedule,
                                        double max_lambda, double max_phi);

}  // namespace lorasched
