#include "lorasched/core/pdftsp.h"

#include <stdexcept>

#include "lorasched/core/pricing.h"

namespace lorasched {

Pdftsp::Pdftsp(PdftspConfig config, const Cluster& cluster,
               const EnergyModel& energy, Slot horizon)
    : config_(config),
      cluster_(cluster),
      energy_(energy),
      dp_(cluster, energy, config.dp),
      duals_(cluster.node_count(), horizon) {
  if (config_.alpha <= 0.0 || config_.beta <= 0.0 ||
      config_.welfare_unit <= 0.0) {
    throw std::invalid_argument(
        "pdFTSP needs positive alpha, beta, and welfare_unit");
  }
}

void Pdftsp::set_pricing(double alpha, double beta, double welfare_unit) {
  if (alpha <= 0.0 || beta <= 0.0 || welfare_unit <= 0.0) {
    throw std::invalid_argument("pricing parameters must be positive");
  }
  config_.alpha = alpha;
  config_.beta = beta;
  config_.welfare_unit = welfare_unit;
}

std::vector<double> Pdftsp::checkpoint_state() const {
  std::vector<double> state;
  const auto& lambda = duals_.lambda_values();
  const auto& phi = duals_.phi_values();
  state.reserve(3 + lambda.size() + phi.size());
  state.push_back(config_.alpha);
  state.push_back(config_.beta);
  state.push_back(config_.welfare_unit);
  state.insert(state.end(), lambda.begin(), lambda.end());
  state.insert(state.end(), phi.begin(), phi.end());
  return state;
}

void Pdftsp::restore_state(const std::vector<double>& state) {
  const auto cells = duals_.lambda_values().size();
  if (state.size() != 3 + 2 * cells) {
    throw std::invalid_argument("pdFTSP state dump has wrong size");
  }
  set_pricing(state[0], state[1], state[2]);
  duals_.load(std::vector<double>(state.begin() + 3, state.begin() + 3 + cells),
              std::vector<double>(state.begin() + 3 + cells, state.end()));
}

namespace {
bool not_blocked(const void* ctx, NodeId k, Slot t) {
  return !static_cast<const CapacityLedger*>(ctx)->is_blocked(k, t);
}
}  // namespace

Pdftsp::Candidate Pdftsp::select_schedule(const Task& task,
                                          const std::vector<VendorQuote>& quotes,
                                          const CapacityLedger* ledger) const {
  Candidate best;
  best.objective = -std::numeric_limits<double>::infinity();
  const SlotFilter filter = ledger != nullptr ? &not_blocked : nullptr;

  auto consider_at_share = [&](VendorId vendor, Money vendor_price, Slot delay,
                               double share) {
    const Slot start = task.arrival + delay;
    Task effective = task;
    if (share > 0.0) effective.compute_share = share;
    Schedule candidate = dp_.find(effective, start, duals_, ledger, filter);
    if (candidate.empty()) return;
    candidate.vendor = vendor;
    candidate.vendor_price = vendor_price;
    candidate.prep_delay = delay;
    candidate.share_override = share > 0.0 ? share : 0.0;
    finalize_schedule(candidate, task, cluster_, energy_);
    const double objective = objective_value(candidate, duals_);
    if (objective > best.objective) {
      best.schedule = std::move(candidate);
      best.objective = objective;
    }
  };
  auto consider = [&](VendorId vendor, Money vendor_price, Slot delay) {
    consider_at_share(vendor, vendor_price, delay, 0.0);
    for (double share : config_.share_options) {
      if (share > 0.0 && share != task.compute_share) {
        consider_at_share(vendor, vendor_price, delay, share);
      }
    }
  };

  if (task.needs_prep) {
    // Constraint (4a): exactly one vendor must be chosen when f_i = 1.
    for (std::size_t n = 0; n < quotes.size(); ++n) {
      consider(static_cast<VendorId>(n), quotes[n].price, quotes[n].delay);
    }
  } else {
    consider(kNoVendor, 0.0, 0);
  }
  if (best.schedule.empty()) best.objective = 0.0;
  return best;
}

Decision Pdftsp::handle_task(const Task& task,
                             const std::vector<VendorQuote>& quotes,
                             const CapacityLedger& ledger) {
  Decision decision;
  decision.task = task.id;

  const Candidate best = select_schedule(task, quotes, &ledger);
  if (best.schedule.empty() || best.objective <= 0.0) {
    return decision;  // Alg. 1 line 13: reject, duals untouched.
  }

  // Payment must use the pre-update duals (eq. 14).
  const Money price = payment(best.schedule, duals_);

  // Alg. 1 line 7: F(il) > 0 — update the duals even if the capacity check
  // below rejects the task (the competitive analysis depends on this).
  duals_.apply_update(task, best.schedule, cluster_, config_.alpha,
                      config_.beta, config_.welfare_unit);

  // Alg. 1 line 8: enough ground-truth resources on every booked node-slot?
  for (const Assignment& a : best.schedule.run) {
    const double s = schedule_rate(best.schedule, task, cluster_, a.node);
    if (!ledger.fits(a.node, a.slot, s, task.mem_gb)) {
      return decision;  // line 12: reject.
    }
  }

  decision.admit = true;
  decision.schedule = best.schedule;
  decision.payment = price;
  return decision;
}

std::vector<Decision> Pdftsp::on_slot(const SlotContext& ctx) {
  std::vector<Decision> decisions;
  decisions.reserve(ctx.arrivals.size());
  // Tasks within a slot are processed in arrival (id) order; each admitted
  // decision is booked immediately so that Alg. 1's line-8 capacity check is
  // exact for the next task in the batch.
  for (const Task& task : ctx.arrivals) {
    Decision d = handle_task(task, ctx.market.quotes(task), ctx.ledger);
    commit_decision(ctx.ledger, cluster_, task, d);
    decisions.push_back(std::move(d));
  }
  return decisions;
}

}  // namespace lorasched
