#include "lorasched/core/pdftsp.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <utility>

#include "lorasched/core/pricing.h"
#include "lorasched/obs/registry.h"
#include "lorasched/obs/span.h"
#include "lorasched/util/threadpool.h"

#ifdef LORASCHED_AUDIT
#include "lorasched/audit/invariants.h"
#endif

namespace lorasched {

Pdftsp::Pdftsp(PdftspConfig config, const Cluster& cluster,
               const EnergyModel& energy, Slot horizon)
    : config_(config),
      cluster_(cluster),
      energy_(energy),
      dp_(cluster, energy, config.dp),
      duals_(cluster.node_count(), horizon) {
  if (config_.alpha <= 0.0 || config_.beta <= 0.0 ||
      config_.welfare_unit <= 0.0) {
    throw std::invalid_argument(
        "pdFTSP needs positive alpha, beta, and welfare_unit");
  }
  if (config_.parallel_candidates > 1) {
    pool_ = std::make_unique<util::ThreadPool>(
        static_cast<std::size_t>(config_.parallel_candidates));
  }
  if (config_.admission_batch > 1 && config_.batch_workers > 1) {
    batch_pool_ = std::make_unique<util::ThreadPool>(
        static_cast<std::size_t>(config_.batch_workers));
  }
}

Pdftsp::~Pdftsp() = default;

void Pdftsp::register_metrics(obs::MetricsRegistry& registry,
                              std::string_view prefix) const {
  dp_.register_metrics(registry, prefix);
  // Batch sizes are small integers; octave buckets from 1 cover 1..4096
  // with exact low-end resolution.
  batch_hist_.store(
      &registry.histogram(
          "lorasched_admission_batch_size",
          obs::HistogramOptions{.min = 1.0, .max = 4096.0,
                                .buckets_per_octave = 8},
          "Bids decided per price-epoch admission micro-batch (1 = "
          "one-at-a-time processing)"),
      std::memory_order_relaxed);
}

void Pdftsp::set_pricing(double alpha, double beta, double welfare_unit) {
  if (alpha <= 0.0 || beta <= 0.0 || welfare_unit <= 0.0) {
    throw std::invalid_argument("pricing parameters must be positive");
  }
  config_.alpha = alpha;
  config_.beta = beta;
  config_.welfare_unit = welfare_unit;
}

std::vector<double> Pdftsp::checkpoint_state() const {
  std::vector<double> state;
  const auto& lambda = duals_.lambda_values();
  const auto& phi = duals_.phi_values();
  state.reserve(3 + lambda.size() + phi.size());
  state.push_back(config_.alpha);
  state.push_back(config_.beta);
  state.push_back(config_.welfare_unit);
  state.insert(state.end(), lambda.begin(), lambda.end());
  state.insert(state.end(), phi.begin(), phi.end());
  return state;
}

void Pdftsp::restore_state(const std::vector<double>& state) {
  const auto cells = duals_.lambda_values().size();
  if (state.size() != 3 + 2 * cells) {
    throw std::invalid_argument("pdFTSP state dump has wrong size");
  }
  set_pricing(state[0], state[1], state[2]);
  duals_.load(std::vector<double>(state.begin() + 3, state.begin() + 3 + cells),
              std::vector<double>(state.begin() + 3 + cells, state.end()));
}

namespace {
bool not_blocked(const void* ctx, NodeId k, Slot t) {
  return !static_cast<const CapacityLedger*>(ctx)->is_blocked(k, t);
}
}  // namespace

Pdftsp::Candidate Pdftsp::select_schedule(
    const Task& task, const std::vector<VendorQuote>& quotes,
    const CapacityLedger* ledger,
    std::vector<obs::CandidateTrace>* candidates) const {
  return select_schedule_impl(task, quotes, ledger, candidates,
                              /*allow_pool=*/true);
}

Pdftsp::Candidate Pdftsp::select_schedule_impl(
    const Task& task, const std::vector<VendorQuote>& quotes,
    const CapacityLedger* ledger,
    std::vector<obs::CandidateTrace>* candidates, bool allow_pool) const {
  Candidate best;
  best.objective = -std::numeric_limits<double>::infinity();
  // Install the outage filter only when some cell is actually blocked: a
  // filter over a block-free ledger excludes nothing, so the unfiltered DP
  // (which takes the SIMD argmin-sweep fast path) is value- and
  // tie-identical to the filtered one.
  const SlotFilter filter =
      ledger != nullptr && ledger->has_blocks() ? &not_blocked : nullptr;

  // Phase 1 — enumerate the (vendor, delay, share) candidate specs in the
  // canonical order: per vendor, the task's own share first, then each
  // distinct share option. The order is load-bearing — the strict-> best-of
  // below keeps the *earliest* maximizer, and traces index into this list.
  struct Spec {
    VendorId vendor = kNoVendor;
    Money vendor_price = 0.0;
    Slot delay = 0;
    double share = 0.0;  // 0 = the task's own compute share
    Schedule schedule;
    double objective = 0.0;
    bool feasible = false;
  };
  std::vector<Spec> specs;
  auto push_specs = [&](VendorId vendor, Money vendor_price, Slot delay) {
    specs.push_back(Spec{vendor, vendor_price, delay, 0.0, {}, 0.0, false});
    for (double share : config_.share_options) {
      if (share > 0.0 && share != task.compute_share) {
        specs.push_back(
            Spec{vendor, vendor_price, delay, share, {}, 0.0, false});
      }
    }
  };
  if (task.needs_prep) {
    // Constraint (4a): exactly one vendor must be chosen when f_i = 1.
    for (std::size_t n = 0; n < quotes.size(); ++n) {
      push_specs(static_cast<VendorId>(n), quotes[n].price, quotes[n].delay);
    }
  } else {
    push_specs(kNoVendor, 0.0, 0);
  }

  // Phase 2 — run Alg. 2 per spec, concurrently when a pool is configured.
  // Each DP reads the shared price snapshot and a thread_local scratch;
  // finalize/objective are pure functions of the (const) duals, so every
  // spec's result is independent of evaluation order and thread placement.
  auto evaluate = [&](Spec& spec) {
    const Slot start = task.arrival + spec.delay;
    Task effective = task;
    if (spec.share > 0.0) effective.compute_share = spec.share;
    spec.schedule = dp_.find(effective, start, duals_, ledger, filter);
    if (spec.schedule.empty()) return;
    spec.feasible = true;
    spec.schedule.vendor = spec.vendor;
    spec.schedule.vendor_price = spec.vendor_price;
    spec.schedule.prep_delay = spec.delay;
    spec.schedule.share_override = spec.share > 0.0 ? spec.share : 0.0;
    finalize_schedule(spec.schedule, task, cluster_, energy_);
    spec.objective = objective_value(spec.schedule, duals_);
  };
  if (allow_pool && pool_ != nullptr && specs.size() > 1) {
    util::parallel_for(*pool_, 0, specs.size(),
                       [&](std::size_t i) { evaluate(specs[i]); });
  } else {
    for (Spec& spec : specs) evaluate(spec);
  }

  // Phase 3 — sequential reduction in spec order: trace entries (feasible
  // or not — the trace shows every vendor's DP outcome, not just the
  // winner's) and the strict-> comparison replay the serial loop exactly.
  for (Spec& spec : specs) {
    obs::CandidateTrace* traced = nullptr;
    if (candidates != nullptr) {
      traced = &candidates->emplace_back();
      traced->vendor = spec.vendor;
      traced->vendor_price = spec.vendor_price;
      traced->prep_delay = spec.delay;
      traced->share = spec.share;
      traced->feasible = spec.feasible;
    }
    if (!spec.feasible) continue;
    if (traced != nullptr) {
      traced->objective = spec.objective;
      traced->energy_cost = spec.schedule.energy_cost;
      traced->welfare_gain = spec.schedule.welfare_gain;
      traced->norm_compute = spec.schedule.norm_compute;
      traced->norm_mem = spec.schedule.norm_mem;
      traced->start = spec.schedule.run.front().slot;
      traced->completion = spec.schedule.completion_slot();
      traced->slots = static_cast<std::int32_t>(spec.schedule.run.size());
    }
    if (spec.objective > best.objective) {
      best.schedule = std::move(spec.schedule);
      best.objective = spec.objective;
      if (candidates != nullptr) {
        best.trace_index = static_cast<int>(candidates->size()) - 1;
      }
    }
  }
  if (best.schedule.empty()) best.objective = 0.0;
  return best;
}

void Pdftsp::emit_trace(const Task& task, const Candidate& best,
                        std::vector<obs::CandidateTrace>&& candidates,
                        const std::vector<obs::DualCellSample>& cells,
                        double max_lambda, double max_phi, bool admitted,
                        bool capacity_reject) const {
  obs::DecisionTraceRecord record;
  record.task = task.id;
  record.arrival = task.arrival;
  record.bid = task.bid;
  record.needs_prep = task.needs_prep;
  record.candidates = std::move(candidates);
  record.chosen = best.trace_index;
  record.objective = best.schedule.empty() ? 0.0 : best.objective;
  record.admitted = admitted;
  record.capacity_reject = capacity_reject;
  record.duals = cells;
  if (!best.schedule.empty()) {
    record.payment.vendor = best.schedule.vendor_price;
    record.payment.energy = best.schedule.energy_cost;
    record.payment.compute = max_lambda * best.schedule.norm_compute;
    record.payment.memory = max_phi * best.schedule.norm_mem;
    record.payment.total =
        payment_from_prices(best.schedule, max_lambda, max_phi);
    record.payment.charged = admitted ? record.payment.total : 0.0;
    record.payment.max_lambda = max_lambda;
    record.payment.max_phi = max_phi;
  }
  trace_->on_decision(record);
}

Decision Pdftsp::handle_task(const Task& task,
                             const std::vector<VendorQuote>& quotes,
                             const CapacityLedger& ledger) {
  LORASCHED_SPAN("pdftsp/decide");
  const bool tracing = trace_ != nullptr;
  std::vector<obs::CandidateTrace> cand_trace;
  Candidate best =
      select_schedule(task, quotes, &ledger, tracing ? &cand_trace : nullptr);
  return decide_with(task, std::move(best), std::move(cand_trace), ledger);
}

Decision Pdftsp::decide_with(const Task& task, Candidate&& best,
                             std::vector<obs::CandidateTrace>&& cand_trace,
                             const CapacityLedger& ledger) {
  Decision decision;
  decision.task = task.id;

  const bool tracing = trace_ != nullptr;
  if (best.schedule.empty() || best.objective <= 0.0) {
    if (tracing) {
      // The trace's payment decomposition for an F(il) <= 0 reject is the
      // would-be eq. (14) charge of the best candidate (nothing charged).
      const double max_l =
          best.schedule.empty() ? 0.0 : duals_.max_lambda(best.schedule);
      const double max_p =
          best.schedule.empty() ? 0.0 : duals_.max_phi(best.schedule);
      emit_trace(task, best, std::move(cand_trace), {}, max_l, max_p,
                 /*admitted=*/false, /*capacity_reject=*/false);
    }
#ifdef LORASCHED_AUDIT
    // Invariant (e): F(il) <= 0 rejects leave the duals untouched, so the
    // live grids are the pre-update prices the sign test used.
    audit::check_decision(
        audit::DecisionAudit{.task = task,
                             .schedule = best.schedule,
                             .objective =
                                 best.schedule.empty() ? 0.0 : best.objective,
                             .payment = 0.0,
                             .admitted = false,
                             .capacity_reject = false,
                             .pre_lambda = duals_.lambda_values(),
                             .pre_phi = duals_.phi_values(),
                             .ledger = ledger},
        cluster_);
#endif
    return decision;  // Alg. 1 line 13: reject, duals untouched.
  }

  // Payment must use the pre-update duals (eq. 14). payment_from_prices
  // with the explicit maxima is exactly payment(schedule, duals_), spelled
  // out so the trace can reuse the same pre-update prices.
  const double max_lambda = duals_.max_lambda(best.schedule);
  const double max_phi = duals_.max_phi(best.schedule);
  const Money price = payment_from_prices(best.schedule, max_lambda, max_phi);

  // Sample the pre-update duals on the chosen schedule's cells while they
  // are still the prices eq. (14) charged (observation only).
  std::vector<obs::DualCellSample> cells;
  if (tracing) {
    cells.reserve(best.schedule.run.size());
    for (const Assignment& a : best.schedule.run) {
      cells.push_back(obs::DualCellSample{a.node, a.slot,
                                          duals_.lambda(a.node, a.slot),
                                          duals_.phi(a.node, a.slot)});
    }
  }

#ifdef LORASCHED_AUDIT
  // Invariants (d)/(e) need the pre-update prices after the duals move on.
  const std::vector<double> audit_pre_lambda = duals_.lambda_values();
  const std::vector<double> audit_pre_phi = duals_.phi_values();
#endif

  // Alg. 1 line 7: F(il) > 0 — update the duals even if the capacity check
  // below rejects the task (the competitive analysis depends on this).
  duals_.apply_update(task, best.schedule, cluster_, config_.alpha,
                      config_.beta, config_.welfare_unit);

  // Alg. 1 line 8: enough ground-truth resources on every booked node-slot?
  for (const Assignment& a : best.schedule.run) {
    const double s = schedule_rate(best.schedule, task, cluster_, a.node);
    if (!ledger.fits(a.node, a.slot, s, task.mem_gb)) {
      if (tracing) {
        emit_trace(task, best, std::move(cand_trace), cells, max_lambda,
                   max_phi, /*admitted=*/false, /*capacity_reject=*/true);
      }
#ifdef LORASCHED_AUDIT
      audit::check_decision(
          audit::DecisionAudit{.task = task,
                               .schedule = best.schedule,
                               .objective = best.objective,
                               .payment = 0.0,
                               .admitted = false,
                               .capacity_reject = true,
                               .pre_lambda = audit_pre_lambda,
                               .pre_phi = audit_pre_phi,
                               .ledger = ledger},
          cluster_);
#endif
      return decision;  // line 12: reject.
    }
  }

  decision.admit = true;
  decision.schedule = best.schedule;
  decision.payment = price;
  if (tracing) {
    emit_trace(task, best, std::move(cand_trace), cells, max_lambda, max_phi,
               /*admitted=*/true, /*capacity_reject=*/false);
  }
#ifdef LORASCHED_AUDIT
  audit::check_decision(
      audit::DecisionAudit{.task = task,
                           .schedule = best.schedule,
                           .objective = best.objective,
                           .payment = price,
                           .admitted = true,
                           .capacity_reject = false,
                           .pre_lambda = audit_pre_lambda,
                           .pre_phi = audit_pre_phi,
                           .ledger = ledger},
      cluster_);
#endif
  return decision;
}

std::vector<Decision> Pdftsp::on_slot(const SlotContext& ctx) {
  std::vector<Decision> decisions;
  decisions.reserve(ctx.arrivals.size());
  obs::Histogram* hist = batch_hist_.load(std::memory_order_relaxed);
  const std::size_t batch =
      config_.admission_batch > 1
          ? static_cast<std::size_t>(config_.admission_batch)
          : 1;
  if (batch <= 1 || ctx.arrivals.size() <= 1) {
    // Tasks within a slot are processed in arrival (id) order; each
    // admitted decision is booked immediately so that Alg. 1's line-8
    // capacity check is exact for the next task in the batch.
    for (const Task& task : ctx.arrivals) {
      Decision d = handle_task(task, ctx.market.quotes(task), ctx.ledger);
      commit_decision(ctx.ledger, cluster_, task, d);
      decisions.push_back(std::move(d));
      if (hist != nullptr) hist->record(1.0);
    }
    return decisions;
  }

  // Epoch-batched admission: speculate the Alg. 2 searches of a wave of
  // bids against the frozen duals, then commit strictly in arrival order.
  // A speculation is valid iff the dual epoch it ran under is still
  // current at its commit (the epoch moves exactly on F(il) > 0 — eq. 7/8);
  // when a commit moves the epoch, the wave's unconsumed tail is discarded
  // and simply re-speculated as the head of the next wave — so every
  // decide_with sees the same candidate the one-at-a-time loop would have
  // computed, and decisions, duals, and traces are bit-identical by
  // construction (wave boundaries only shift *when* a search runs, never
  // what it reads). The speculative searches only read slot-static inputs
  // besides the duals: the outage blocks of the ledger never change
  // mid-slot, and the line-8 *capacity* check runs at commit time against
  // the live ledger.
  //
  // Wave sizing: with a speculation pool the wave is always the full
  // configured batch — the discarded tail cost is spread across workers,
  // and the commit loop overlaps nothing either way. Speculating *inline*,
  // a discarded tail is pure serial waste, so the depth adapts to the
  // observed admit density: it shrinks to the distance the last wave
  // actually got before an epoch move and doubles after a wave that
  // consumed cleanly, staying near 1 under heavy admission and opening to
  // the full batch through rejection streaks (exactly when the frozen-dual
  // window is long). The adaptation is a pure function of the decision
  // sequence, so runs stay deterministic.
  const bool tracing = trace_ != nullptr;
  struct Speculation {
    std::vector<VendorQuote> quotes;
    Candidate cand;
    std::vector<obs::CandidateTrace> trace;
    std::uint64_t epoch = 0;
  };
  const std::size_t count = ctx.arrivals.size();
  std::vector<Speculation> specs(count);
  // Quotes are collected sequentially in arrival order — identical
  // Marketplace call sequence to the one-at-a-time loop.
  for (std::size_t i = 0; i < count; ++i) {
    specs[i].quotes = ctx.market.quotes(ctx.arrivals[i]);
  }
  auto speculate = [&](std::size_t i, bool allow_pool) {
    specs[i].trace.clear();
    specs[i].cand = select_schedule_impl(
        ctx.arrivals[i], specs[i].quotes, &ctx.ledger,
        tracing ? &specs[i].trace : nullptr, allow_pool);
    specs[i].epoch = duals_.epoch();
  };
  const bool pooled = batch_pool_ != nullptr;
  std::size_t depth = pooled ? batch : 1;
  std::size_t wave_start = 0;  // first index of the wave being consumed
  std::size_t next_spec = 0;   // first index not yet speculated
  bool wave_clean = true;      // no epoch move while consuming this wave
  for (std::size_t i = 0; i < count; ++i) {
    if (i == next_spec) {
      wave_start = i;
      wave_clean = true;
      const std::size_t wave = std::min({depth, batch, count - i});
      if (pooled && wave > 1) {
        util::parallel_for(*batch_pool_, 0, wave, [&](std::size_t j) {
          speculate(i + j, false);
        });
      } else {
        for (std::size_t j = 0; j < wave; ++j) speculate(i + j, true);
      }
      next_spec = i + wave;
      if (hist != nullptr) hist->record(static_cast<double>(wave));
    }
    const Task& task = ctx.arrivals[i];
    Decision d = decide_with(task, std::move(specs[i].cand),
                             std::move(specs[i].trace), ctx.ledger);
    commit_decision(ctx.ledger, cluster_, task, d);
    decisions.push_back(std::move(d));
    if (duals_.epoch() != specs[i].epoch) {
      // This commit moved the prices: every unconsumed speculation is
      // stale. Drop the tail (re-speculated as the next wave) and, when
      // inline, shrink the depth to what this wave proved useful.
      wave_clean = false;
      if (next_spec > i + 1) next_spec = i + 1;
      if (!pooled) depth = std::max<std::size_t>(1, i + 1 - wave_start);
    } else if (!pooled && i + 1 == next_spec && wave_clean) {
      depth = std::min(depth * 2, batch);
    }
  }
  return decisions;
}

}  // namespace lorasched
