#include "lorasched/core/duals.h"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <utility>

#include "lorasched/obs/span.h"

#ifdef LORASCHED_AUDIT
#include "lorasched/audit/invariants.h"
#endif

namespace lorasched {

std::uint64_t DualState::next_uid() noexcept {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

DualState::DualState(int nodes, Slot horizon)
    : nodes_(nodes), horizon_(horizon), uid_(next_uid()) {
  if (nodes <= 0 || horizon <= 0) {
    throw std::invalid_argument("dual state needs positive dimensions");
  }
  const auto cells =
      static_cast<std::size_t>(nodes) * static_cast<std::size_t>(horizon);
  lambda_.assign(cells, 0.0);
  phi_.assign(cells, 0.0);
}

// Copies and moves reset the journal: the fresh uid forces a full snapshot
// rebuild on first use anyway, so carrying the source's dirty history would
// only risk a stale base epoch.
DualState::DualState(const DualState& other)
    : nodes_(other.nodes_),
      horizon_(other.horizon_),
      uid_(next_uid()),
      epoch_(other.epoch_),
      lambda_(other.lambda_),
      phi_(other.phi_),
      journal_base_epoch_(other.epoch_) {}

DualState::DualState(DualState&& other) noexcept
    : nodes_(other.nodes_),
      horizon_(other.horizon_),
      uid_(next_uid()),
      epoch_(other.epoch_),
      lambda_(std::move(other.lambda_)),
      phi_(std::move(other.phi_)),
      journal_base_epoch_(other.epoch_) {}

DualState& DualState::operator=(const DualState& other) {
  if (this != &other) {
    nodes_ = other.nodes_;
    horizon_ = other.horizon_;
    lambda_ = other.lambda_;
    phi_ = other.phi_;
    // The grids changed wholesale: new identity, like load().
    uid_ = next_uid();
    epoch_ = other.epoch_;
    journal_reset();
  }
  return *this;
}

DualState& DualState::operator=(DualState&& other) noexcept {
  if (this != &other) {
    nodes_ = other.nodes_;
    horizon_ = other.horizon_;
    lambda_ = std::move(other.lambda_);
    phi_ = std::move(other.phi_);
    uid_ = next_uid();
    epoch_ = other.epoch_;
    journal_reset();
  }
  return *this;
}

void DualState::journal_step(const std::uint32_t* cells, std::size_t count) {
  if (journal_cells_.size() + count > kJournalCap) {
    journal_reset();
    return;
  }
  journal_cells_.insert(journal_cells_.end(), cells, cells + count);
  journal_ends_.push_back(static_cast<std::uint32_t>(journal_cells_.size()));
}

bool DualState::dirty_cells_since(std::uint64_t since_epoch,
                                  std::vector<std::uint32_t>& out) const {
  if (since_epoch > epoch_) return false;  // not a state we ever had
  if (since_epoch == epoch_) return true;  // nothing changed
  if (since_epoch < journal_base_epoch_) return false;  // predates journal
  const auto steps = static_cast<std::size_t>(epoch_ - journal_base_epoch_);
  if (journal_ends_.size() != steps) return false;  // overflow gap
  const auto skip =
      static_cast<std::size_t>(since_epoch - journal_base_epoch_);
  const std::uint32_t start = skip == 0 ? 0 : journal_ends_[skip - 1];
  out.insert(out.end(), journal_cells_.begin() + start, journal_cells_.end());
  return true;
}

double DualState::max_lambda(const Schedule& schedule) const {
  double best = 0.0;
  for (const Assignment& a : schedule.run) {
    best = std::max(best, lambda_[index(a.node, a.slot)]);
  }
  return best;
}

double DualState::max_phi(const Schedule& schedule) const {
  double best = 0.0;
  for (const Assignment& a : schedule.run) {
    best = std::max(best, phi_[index(a.node, a.slot)]);
  }
  return best;
}

void DualState::load(std::vector<double> lambda, std::vector<double> phi) {
  const auto cells =
      static_cast<std::size_t>(nodes_) * static_cast<std::size_t>(horizon_);
  if (lambda.size() != cells || phi.size() != cells) {
    throw std::invalid_argument("dual snapshot size does not match grid");
  }
  lambda_ = std::move(lambda);
  phi_ = std::move(phi);
  ++epoch_;
  journal_reset();  // wholesale change — every cell is dirty
}

void DualState::apply_update(const Task& task, const Schedule& schedule,
                             const Cluster& cluster, double alpha, double beta,
                             double welfare_unit) {
  LORASCHED_SPAN("duals/update");
#ifdef LORASCHED_AUDIT
  const std::vector<double> audit_pre_lambda = lambda_;
  const std::vector<double> audit_pre_phi = phi_;
#endif
  // Lemma 2 requires b̄ >= 1 (in scaled money units); κ gets typical
  // schedules there and the clamp enforces it for the stragglers, so the
  // capacity-control doubling argument always holds.
  const double b_bar = std::max(1.0, unit_welfare(schedule) / welfare_unit);
  // Journal the touched cells inline (no temporary): an admission only
  // moves prices on its own run, which is what lets the snapshot cache
  // patch instead of rebuild.
  const std::size_t journal_mark = journal_cells_.size();
  const bool journal_fits =
      journal_cells_.size() + schedule.run.size() <= kJournalCap;
  for (const Assignment& a : schedule.run) {
    // Normalized per-slot loads: cell capacity is 1 in these units.
    const double s_norm = schedule_rate(schedule, task, cluster, a.node) /
                          cluster.compute_capacity(a.node);
    const double r_norm =
        task.mem_gb / cluster.adapter_mem_capacity(a.node);
    const std::size_t cell = index(a.node, a.slot);
    lambda_[cell] = lambda_[cell] * (1.0 + s_norm) + alpha * b_bar * s_norm;
    phi_[cell] = phi_[cell] * (1.0 + r_norm) + beta * b_bar * r_norm;
    if (journal_fits) {
      journal_cells_.push_back(static_cast<std::uint32_t>(cell));
    }
  }
  ++epoch_;
  if (journal_fits) {
    journal_ends_.push_back(static_cast<std::uint32_t>(journal_cells_.size()));
  } else {
    journal_cells_.resize(journal_mark);
    journal_reset();
  }
#ifdef LORASCHED_AUDIT
  audit::check_dual_update(task, schedule, cluster, audit_pre_lambda,
                           audit_pre_phi, *this, alpha, beta, welfare_unit);
#endif
}

double objective_value(const Schedule& schedule, const DualState& duals) {
  return schedule.welfare_gain -
         duals.max_lambda(schedule) * schedule.norm_compute -
         duals.max_phi(schedule) * schedule.norm_mem;
}

}  // namespace lorasched
