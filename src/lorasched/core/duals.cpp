#include "lorasched/core/duals.h"

#include <algorithm>
#include <stdexcept>

#include "lorasched/obs/span.h"

#ifdef LORASCHED_AUDIT
#include "lorasched/audit/invariants.h"
#endif

namespace lorasched {

DualState::DualState(int nodes, Slot horizon)
    : nodes_(nodes), horizon_(horizon) {
  if (nodes <= 0 || horizon <= 0) {
    throw std::invalid_argument("dual state needs positive dimensions");
  }
  const auto cells =
      static_cast<std::size_t>(nodes) * static_cast<std::size_t>(horizon);
  lambda_.assign(cells, 0.0);
  phi_.assign(cells, 0.0);
}

double DualState::max_lambda(const Schedule& schedule) const {
  double best = 0.0;
  for (const Assignment& a : schedule.run) {
    best = std::max(best, lambda_[index(a.node, a.slot)]);
  }
  return best;
}

double DualState::max_phi(const Schedule& schedule) const {
  double best = 0.0;
  for (const Assignment& a : schedule.run) {
    best = std::max(best, phi_[index(a.node, a.slot)]);
  }
  return best;
}

void DualState::load(std::vector<double> lambda, std::vector<double> phi) {
  const auto cells =
      static_cast<std::size_t>(nodes_) * static_cast<std::size_t>(horizon_);
  if (lambda.size() != cells || phi.size() != cells) {
    throw std::invalid_argument("dual snapshot size does not match grid");
  }
  lambda_ = std::move(lambda);
  phi_ = std::move(phi);
}

void DualState::apply_update(const Task& task, const Schedule& schedule,
                             const Cluster& cluster, double alpha, double beta,
                             double welfare_unit) {
  LORASCHED_SPAN("duals/update");
#ifdef LORASCHED_AUDIT
  const std::vector<double> audit_pre_lambda = lambda_;
  const std::vector<double> audit_pre_phi = phi_;
#endif
  // Lemma 2 requires b̄ >= 1 (in scaled money units); κ gets typical
  // schedules there and the clamp enforces it for the stragglers, so the
  // capacity-control doubling argument always holds.
  const double b_bar = std::max(1.0, unit_welfare(schedule) / welfare_unit);
  for (const Assignment& a : schedule.run) {
    // Normalized per-slot loads: cell capacity is 1 in these units.
    const double s_norm = schedule_rate(schedule, task, cluster, a.node) /
                          cluster.compute_capacity(a.node);
    const double r_norm =
        task.mem_gb / cluster.adapter_mem_capacity(a.node);
    const std::size_t cell = index(a.node, a.slot);
    lambda_[cell] = lambda_[cell] * (1.0 + s_norm) + alpha * b_bar * s_norm;
    phi_[cell] = phi_[cell] * (1.0 + r_norm) + beta * b_bar * r_norm;
  }
#ifdef LORASCHED_AUDIT
  audit::check_dual_update(task, schedule, cluster, audit_pre_lambda,
                           audit_pre_phi, *this, alpha, beta, welfare_unit);
#endif
}

double objective_value(const Schedule& schedule, const DualState& duals) {
  return schedule.welfare_gain -
         duals.max_lambda(schedule) * schedule.norm_compute -
         duals.max_phi(schedule) * schedule.norm_mem;
}

}  // namespace lorasched
