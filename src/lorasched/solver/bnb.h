// Branch & bound for mixed 0/1 programs over LpProblem relaxations — the
// repo's substitute for the MILP solver (Gurobi) the paper uses for the
// Titan baseline and the offline optimum (DESIGN.md §3).
//
// Nodes fix binary variables by substitution (column removal + rhs
// reduction), keeping every node LP in the b >= 0 canonical form the
// simplex expects; a node whose reduced rhs goes negative is infeasible and
// pruned. Branching fixes the most fractional binary, value 1 first, which
// finds packing incumbents early.
#pragma once

#include <vector>

#include "lorasched/solver/lp.h"

namespace lorasched::solver {

struct MilpProblem {
  LpProblem lp;
  /// Indices of variables constrained to {0, 1}; all of them must also
  /// respect the LP rows. Variables not listed stay continuous in [0, inf).
  std::vector<int> binary_vars;
};

struct BnbOptions {
  int max_nodes = 200000;
  double eps = 1e-6;
};

struct MilpSolution {
  /// True iff the search closed the whole tree (proved optimality).
  bool proved_optimal = false;
  bool found_incumbent = false;
  double objective = 0.0;
  std::vector<double> x;
  int nodes_explored = 0;
  /// Root LP relaxation value — an upper bound on the MILP optimum.
  double root_bound = 0.0;
};

[[nodiscard]] MilpSolution solve_milp(const MilpProblem& problem,
                                      BnbOptions options = {});

}  // namespace lorasched::solver
