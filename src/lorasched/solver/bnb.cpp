#include "lorasched/solver/bnb.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "lorasched/solver/simplex.h"

namespace lorasched::solver {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// Per-variable fixing state.
enum class Fix : char { kFree, kZero, kOne };

struct SearchState {
  const MilpProblem& problem;
  const BnbOptions& options;
  std::vector<char> is_binary;   // per variable
  std::vector<Fix> fix;          // per variable
  double incumbent = kNegInf;
  std::vector<double> incumbent_x;
  bool truncated = false;
  int nodes = 0;
};

/// Builds the node LP with fixed variables substituted out. Returns false
/// when a fixed-to-one bundle already violates a row (infeasible node).
bool build_node_lp(const SearchState& state, LpProblem& node_lp,
                   std::vector<int>& to_original, double& fixed_value) {
  const LpProblem& lp = state.problem.lp;
  const int n = lp.num_vars();
  std::vector<int> to_node(static_cast<std::size_t>(n), -1);
  to_original.clear();
  fixed_value = 0.0;
  for (int j = 0; j < n; ++j) {
    if (state.fix[static_cast<std::size_t>(j)] == Fix::kFree) {
      to_node[static_cast<std::size_t>(j)] =
          static_cast<int>(to_original.size());
      to_original.push_back(j);
    } else if (state.fix[static_cast<std::size_t>(j)] == Fix::kOne) {
      fixed_value += lp.objective[static_cast<std::size_t>(j)];
    }
  }
  node_lp.objective.clear();
  node_lp.objective.reserve(to_original.size());
  for (int j : to_original) {
    node_lp.objective.push_back(lp.objective[static_cast<std::size_t>(j)]);
  }
  node_lp.rows.clear();
  for (const LpProblem::Row& row : lp.rows) {
    LpProblem::Row reduced;
    reduced.rhs = row.rhs;
    for (const auto& [var, coeff] : row.coeffs) {
      switch (state.fix[static_cast<std::size_t>(var)]) {
        case Fix::kFree:
          reduced.coeffs.emplace_back(to_node[static_cast<std::size_t>(var)],
                                      coeff);
          break;
        case Fix::kOne:
          reduced.rhs -= coeff;
          break;
        case Fix::kZero:
          break;
      }
    }
    if (reduced.rhs < -state.options.eps) return false;  // infeasible
    reduced.rhs = std::max(0.0, reduced.rhs);
    node_lp.rows.push_back(std::move(reduced));
  }
  // A binary fixed free still needs its x_j <= 1 row; add them for free
  // binaries only (continuous variables are unbounded above by design).
  for (std::size_t idx = 0; idx < to_original.size(); ++idx) {
    const int j = to_original[idx];
    if (state.is_binary[static_cast<std::size_t>(j)]) {
      node_lp.rows.push_back(
          LpProblem::Row{{{static_cast<int>(idx), 1.0}}, 1.0});
    }
  }
  return true;
}

void search(SearchState& state, double* root_bound) {
  if (state.nodes >= state.options.max_nodes) {
    state.truncated = true;
    return;
  }
  ++state.nodes;

  LpProblem node_lp;
  std::vector<int> to_original;
  double fixed_value = 0.0;
  if (!build_node_lp(state, node_lp, to_original, fixed_value)) return;

  const LpSolution relax = solve_lp(node_lp);
  if (relax.status == LpStatus::kUnbounded) {
    throw std::logic_error("MILP relaxation unbounded: malformed model");
  }
  const double bound = fixed_value + relax.objective;
  if (root_bound != nullptr) *root_bound = bound;
  if (bound <= state.incumbent + state.options.eps) return;  // pruned

  // Most fractional free binary.
  int branch_var = -1;
  double branch_frac = -1.0;
  for (std::size_t idx = 0; idx < to_original.size(); ++idx) {
    const int j = to_original[idx];
    if (!state.is_binary[static_cast<std::size_t>(j)]) continue;
    const double v = relax.x[idx];
    const double frac = std::min(v - std::floor(v), std::ceil(v) - v);
    if (frac > state.options.eps && frac > branch_frac) {
      branch_frac = frac;
      branch_var = j;
    }
  }

  if (branch_var == -1) {
    // Integral on all binaries: candidate incumbent.
    if (bound > state.incumbent) {
      state.incumbent = bound;
      state.incumbent_x.assign(state.fix.size(), 0.0);
      for (std::size_t j = 0; j < state.fix.size(); ++j) {
        if (state.fix[j] == Fix::kOne) state.incumbent_x[j] = 1.0;
      }
      for (std::size_t idx = 0; idx < to_original.size(); ++idx) {
        const int j = to_original[idx];
        double v = relax.x[idx];
        if (state.is_binary[static_cast<std::size_t>(j)]) v = std::round(v);
        state.incumbent_x[static_cast<std::size_t>(j)] = v;
      }
    }
    return;
  }

  // Depth-first, 1-branch first (finds packing incumbents quickly).
  state.fix[static_cast<std::size_t>(branch_var)] = Fix::kOne;
  search(state, nullptr);
  state.fix[static_cast<std::size_t>(branch_var)] = Fix::kZero;
  search(state, nullptr);
  state.fix[static_cast<std::size_t>(branch_var)] = Fix::kFree;
}

}  // namespace

MilpSolution solve_milp(const MilpProblem& problem, BnbOptions options) {
  problem.lp.validate();
  const int n = problem.lp.num_vars();
  SearchState state{problem, options, {}, {}, kNegInf, {}, false, 0};
  state.is_binary.assign(static_cast<std::size_t>(n), 0);
  for (int j : problem.binary_vars) {
    if (j < 0 || j >= n) throw std::invalid_argument("bad binary index");
    state.is_binary[static_cast<std::size_t>(j)] = 1;
  }
  state.fix.assign(static_cast<std::size_t>(n), Fix::kFree);

  MilpSolution solution;
  double root_bound = 0.0;
  search(state, &root_bound);
  solution.root_bound = root_bound;
  solution.nodes_explored = state.nodes;
  solution.proved_optimal = !state.truncated;
  if (state.incumbent > kNegInf) {
    solution.found_incumbent = true;
    solution.objective = state.incumbent;
    solution.x = state.incumbent_x;
  }
  return solution;
}

}  // namespace lorasched::solver
