// Dense primal simplex for LpProblem.
//
// Dantzig pricing with a Bland's-rule fallback once the iteration count
// passes a threshold (guarantees termination under degeneracy). Returns
// both the primal solution and the row duals — the duals drive column
// generation (colgen.h) and the paper's shadow-price interpretation of
// payments.
#pragma once

#include "lorasched/solver/lp.h"

namespace lorasched::solver {

struct SimplexOptions {
  int max_iterations = 200000;
  /// Switch from Dantzig to Bland after this many iterations.
  int bland_after = 20000;
  double eps = 1e-9;
};

/// Solves the LP; the problem is validated first (throws on malformed
/// input). Status kIterationLimit returns the best basis found so far.
[[nodiscard]] LpSolution solve_lp(const LpProblem& problem,
                                  SimplexOptions options = {});

}  // namespace lorasched::solver
