// Linear-program container shared by the simplex solver and branch & bound.
//
// Canonical form: maximize c·x subject to A x <= b, x >= 0, with b >= 0
// (so the all-slack basis is primal feasible — every problem lorasched
// builds is a packing problem and satisfies this naturally).
#pragma once

#include <utility>
#include <vector>

namespace lorasched::solver {

struct LpProblem {
  /// Objective coefficients; size defines the variable count.
  std::vector<double> objective;

  struct Row {
    /// Sparse (variable index, coefficient) pairs.
    std::vector<std::pair<int, double>> coeffs;
    double rhs = 0.0;
  };
  std::vector<Row> rows;

  [[nodiscard]] int num_vars() const noexcept {
    return static_cast<int>(objective.size());
  }
  [[nodiscard]] int num_rows() const noexcept {
    return static_cast<int>(rows.size());
  }

  /// Appends a constraint Σ coeffs · x <= rhs; returns its row index.
  int add_row(std::vector<std::pair<int, double>> coeffs, double rhs);

  /// Throws std::invalid_argument if any rhs is negative, a coefficient
  /// references an unknown variable, or a row repeats a variable.
  void validate() const;
};

enum class LpStatus { kOptimal, kUnbounded, kIterationLimit };

struct LpSolution {
  LpStatus status = LpStatus::kIterationLimit;
  double objective = 0.0;
  /// Primal values per variable.
  std::vector<double> x;
  /// Dual values (shadow prices) per row, >= 0.
  std::vector<double> duals;
};

}  // namespace lorasched::solver
