// Offline bound for the schedule-selection problem P1 (eq. 5) via column
// generation — the repo's substitute for solving the paper's offline
// optimum with Gurobi (used by the Fig. 12 empirical-competitive-ratio
// experiment).
//
// Master LP: max Σ b_il x_il s.t. one schedule per task, per-(node, slot)
// compute and memory capacities. Pricing subproblem: for each task, the
// same DP as Algorithm 2 run under the master's duals — if the best
// schedule's reduced cost is positive it enters the pool. On convergence
// the LP value upper-bounds OPT over the quantized schedule space (the
// identical space the online algorithm optimizes over, so the empirical
// ratio is like-for-like); a branch-and-bound pass over the generated
// columns then yields a feasible integer schedule (a lower bound on OPT).
#pragma once

#include "lorasched/core/schedule_dp.h"
#include "lorasched/sim/instance.h"
#include "lorasched/solver/bnb.h"

namespace lorasched {

struct ColgenOptions {
  int max_iterations = 25;
  double eps = 1e-6;
  /// DP quantization for pricing; matches the online default so the bound
  /// is computed over the same schedule space the online algorithm uses.
  ScheduleDpConfig dp{2.0, 4096};
  /// Node cap for the integer pass — generated-column MILPs are packing
  /// problems whose LP relaxations are near-integral, so a few thousand
  /// nodes almost always close the tree; when they don't, the result is
  /// still a valid feasible lower bound (integer_proved_optimal = false).
  solver::BnbOptions bnb{3000, 1e-6};
};

struct OfflineBound {
  /// Master LP value at the last iteration (upper bound on OPT over the
  /// quantized schedule space iff `converged`).
  double lp_bound = 0.0;
  /// Objective of the best integer solution over generated columns (a
  /// feasible schedule set, hence a lower bound on OPT). 0 if none found.
  double integer_value = 0.0;
  bool converged = false;
  bool integer_proved_optimal = false;
  int columns = 0;
  int iterations = 0;
};

[[nodiscard]] OfflineBound solve_offline(const Instance& instance,
                                         ColgenOptions options = {});

}  // namespace lorasched
