#include "lorasched/solver/lp.h"

#include <stdexcept>
#include <vector>

namespace lorasched::solver {

int LpProblem::add_row(std::vector<std::pair<int, double>> coeffs, double rhs) {
  rows.push_back(Row{std::move(coeffs), rhs});
  return static_cast<int>(rows.size()) - 1;
}

void LpProblem::validate() const {
  const int n = num_vars();
  std::vector<char> seen(static_cast<std::size_t>(n), 0);
  for (const Row& row : rows) {
    if (row.rhs < 0.0) {
      throw std::invalid_argument("LpProblem requires rhs >= 0");
    }
    for (const auto& [var, coeff] : row.coeffs) {
      (void)coeff;
      if (var < 0 || var >= n) {
        throw std::invalid_argument("constraint references unknown variable");
      }
      if (seen[static_cast<std::size_t>(var)]) {
        throw std::invalid_argument("row repeats a variable");
      }
      seen[static_cast<std::size_t>(var)] = 1;
    }
    for (const auto& [var, coeff] : row.coeffs) {
      (void)coeff;
      seen[static_cast<std::size_t>(var)] = 0;
    }
  }
}

}  // namespace lorasched::solver
