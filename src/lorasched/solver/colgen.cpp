#include "lorasched/solver/colgen.h"

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "lorasched/core/duals.h"
#include "lorasched/solver/simplex.h"

namespace lorasched {

namespace {

struct Column {
  std::size_t task_index = 0;
  Schedule schedule;
};

/// Row bookkeeping for the master LP: one row per task plus one compute and
/// one memory row per (node, slot) cell touched by any column.
struct MasterRows {
  std::map<std::pair<NodeId, Slot>, int> compute_row;
  std::map<std::pair<NodeId, Slot>, int> mem_row;
};

solver::LpProblem build_master(const Instance& instance,
                               const std::vector<Column>& columns,
                               MasterRows& rows) {
  solver::LpProblem lp;
  lp.objective.reserve(columns.size());
  for (const Column& col : columns) {
    lp.objective.push_back(col.schedule.welfare_gain);
  }
  const auto task_count = instance.tasks.size();
  // Task convexity rows come first: row i <-> task i.
  std::vector<std::vector<std::pair<int, double>>> task_coeffs(task_count);
  rows.compute_row.clear();
  rows.mem_row.clear();

  // Collect used cells.
  for (std::size_t c = 0; c < columns.size(); ++c) {
    task_coeffs[columns[c].task_index].emplace_back(static_cast<int>(c), 1.0);
    for (const Assignment& a : columns[c].schedule.run) {
      rows.compute_row.try_emplace({a.node, a.slot}, 0);
      rows.mem_row.try_emplace({a.node, a.slot}, 0);
    }
  }
  for (std::size_t i = 0; i < task_count; ++i) {
    lp.add_row(std::move(task_coeffs[i]), 1.0);
  }
  for (auto& [cell, row] : rows.compute_row) {
    row = lp.add_row({}, instance.cluster.compute_capacity(cell.first));
  }
  for (auto& [cell, row] : rows.mem_row) {
    row = lp.add_row({}, instance.cluster.adapter_mem_capacity(cell.first));
  }
  // Fill capacity coefficients.
  for (std::size_t c = 0; c < columns.size(); ++c) {
    const Task& task = instance.tasks[columns[c].task_index];
    for (const Assignment& a : columns[c].schedule.run) {
      const double s = instance.cluster.task_rate(task, a.node);
      lp.rows[static_cast<std::size_t>(
                  rows.compute_row.at({a.node, a.slot}))]
          .coeffs.emplace_back(static_cast<int>(c), s);
      lp.rows[static_cast<std::size_t>(rows.mem_row.at({a.node, a.slot}))]
          .coeffs.emplace_back(static_cast<int>(c), task.mem_gb);
    }
  }
  return lp;
}

/// Cost of a schedule under per-cell duals: Σ (s λ + r φ) over the run.
double dual_load(const Instance& instance, const Task& task,
                 const Schedule& schedule, const DualState& duals) {
  double total = 0.0;
  for (const Assignment& a : schedule.run) {
    total += instance.cluster.task_rate(task, a.node) *
                 duals.lambda(a.node, a.slot) +
             task.mem_gb * duals.phi(a.node, a.slot);
  }
  return total;
}

}  // namespace

OfflineBound solve_offline(const Instance& instance, ColgenOptions options) {
  OfflineBound result;
  if (instance.tasks.empty()) {
    result.converged = true;
    result.integer_proved_optimal = true;
    return result;
  }

  const ScheduleDp dp(instance.cluster, instance.energy, options.dp);
  std::vector<Column> columns;

  // Generates the best-reduced-cost schedule for a task under the given
  // duals (mu is the task row's dual); returns an empty-run schedule when
  // nothing with positive reduced cost exists.
  auto price_task = [&](std::size_t task_index, const DualState& duals,
                        double mu) -> Schedule {
    const Task& task = instance.tasks[task_index];
    Schedule best;
    double best_rc = options.eps;
    auto consider = [&](VendorId vendor, Money price, Slot delay) {
      Schedule cand = dp.find(task, task.arrival + delay, duals);
      if (cand.empty()) return;
      cand.vendor = vendor;
      cand.vendor_price = price;
      cand.prep_delay = delay;
      finalize_schedule(cand, task, instance.cluster, instance.energy);
      const double rc = cand.welfare_gain -
                        dual_load(instance, task, cand, duals) - mu;
      if (rc > best_rc) {
        best_rc = rc;
        best = std::move(cand);
      }
    };
    if (task.needs_prep) {
      const auto quotes = instance.market.quotes(task);
      for (std::size_t n = 0; n < quotes.size(); ++n) {
        consider(static_cast<VendorId>(n), quotes[n].price, quotes[n].delay);
      }
    } else {
      consider(kNoVendor, 0.0, 0);
    }
    return best;
  };

  // Seed: one zero-dual (pure cost-minimal) column per task.
  {
    const DualState zero(instance.cluster.node_count(), instance.horizon);
    for (std::size_t i = 0; i < instance.tasks.size(); ++i) {
      Schedule seed = price_task(i, zero, 0.0);
      if (!seed.empty() && seed.welfare_gain > 0.0) {
        columns.push_back({i, std::move(seed)});
      }
    }
  }

  MasterRows rows;
  solver::LpSolution master;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    ++result.iterations;
    if (columns.empty()) {
      result.converged = true;
      result.integer_proved_optimal = true;
      return result;  // no task is profitably schedulable at all
    }
    const solver::LpProblem lp = build_master(instance, columns, rows);
    master = solver::solve_lp(lp);
    result.lp_bound = master.objective;

    // Lift the master duals into a DualState for the pricing DP.
    DualState duals(instance.cluster.node_count(), instance.horizon);
    // Master rows are in raw units ($ per sample, $ per GB); the DualState
    // and the pricing DP work in capacity-normalized units, so scale by the
    // cell's capacity when lifting.
    for (const auto& [cell, row] : rows.compute_row) {
      duals.set_lambda(cell.first, cell.second,
                       master.duals[static_cast<std::size_t>(row)] *
                           instance.cluster.compute_capacity(cell.first));
    }
    for (const auto& [cell, row] : rows.mem_row) {
      duals.set_phi(cell.first, cell.second,
                    master.duals[static_cast<std::size_t>(row)] *
                        instance.cluster.adapter_mem_capacity(cell.first));
    }

    bool improved = false;
    for (std::size_t i = 0; i < instance.tasks.size(); ++i) {
      const double mu = master.duals[i];
      Schedule priced = price_task(i, duals, mu);
      if (!priced.empty()) {
        columns.push_back({i, std::move(priced)});
        improved = true;
      }
    }
    if (!improved) {
      result.converged = true;
      break;
    }
  }

  result.columns = static_cast<int>(columns.size());

  // Integer pass over the generated columns.
  solver::MilpProblem milp;
  milp.lp = build_master(instance, columns, rows);
  milp.binary_vars.resize(columns.size());
  for (std::size_t c = 0; c < columns.size(); ++c) {
    milp.binary_vars[c] = static_cast<int>(c);
  }
  const solver::MilpSolution integer = solver::solve_milp(milp, options.bnb);
  result.integer_proved_optimal = integer.proved_optimal;
  if (integer.found_incumbent) result.integer_value = integer.objective;
  return result;
}

}  // namespace lorasched
