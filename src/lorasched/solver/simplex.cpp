#include "lorasched/solver/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace lorasched::solver {

namespace {

/// Dense tableau: rows 0..m-1 are constraints, row m is the objective row
/// (reduced costs, z_j - c_j); column n+m is the rhs.
class Tableau {
 public:
  Tableau(const LpProblem& problem)
      : m_(problem.num_rows()), n_(problem.num_vars()), width_(n_ + m_ + 1) {
    cells_.assign(static_cast<std::size_t>(m_ + 1) *
                      static_cast<std::size_t>(width_),
                  0.0);
    basis_.resize(static_cast<std::size_t>(m_));
    for (int i = 0; i < m_; ++i) {
      for (const auto& [var, coeff] : problem.rows[static_cast<std::size_t>(i)].coeffs) {
        at(i, var) = coeff;
      }
      at(i, n_ + i) = 1.0;  // slack
      at(i, n_ + m_) = problem.rows[static_cast<std::size_t>(i)].rhs;
      basis_[static_cast<std::size_t>(i)] = n_ + i;
    }
    for (int j = 0; j < n_; ++j) {
      at(m_, j) = -problem.objective[static_cast<std::size_t>(j)];
    }
  }

  double& at(int row, int col) {
    return cells_[static_cast<std::size_t>(row) *
                      static_cast<std::size_t>(width_) +
                  static_cast<std::size_t>(col)];
  }
  [[nodiscard]] double get(int row, int col) const {
    return cells_[static_cast<std::size_t>(row) *
                      static_cast<std::size_t>(width_) +
                  static_cast<std::size_t>(col)];
  }

  [[nodiscard]] int rows() const noexcept { return m_; }
  [[nodiscard]] int vars() const noexcept { return n_; }
  [[nodiscard]] int rhs_col() const noexcept { return n_ + m_; }
  [[nodiscard]] int total_cols() const noexcept { return n_ + m_; }
  [[nodiscard]] int basis(int row) const {
    return basis_[static_cast<std::size_t>(row)];
  }

  void pivot(int pivot_row, int pivot_col) {
    const double pivot_value = get(pivot_row, pivot_col);
    const double inv = 1.0 / pivot_value;
    for (int j = 0; j <= rhs_col(); ++j) at(pivot_row, j) *= inv;
    for (int i = 0; i <= m_; ++i) {
      if (i == pivot_row) continue;
      const double factor = get(i, pivot_col);
      if (factor == 0.0) continue;
      for (int j = 0; j <= rhs_col(); ++j) {
        at(i, j) -= factor * get(pivot_row, j);
      }
    }
    basis_[static_cast<std::size_t>(pivot_row)] = pivot_col;
  }

 private:
  int m_;
  int n_;
  int width_;
  std::vector<double> cells_;
  std::vector<int> basis_;
};

}  // namespace

LpSolution solve_lp(const LpProblem& problem, SimplexOptions options) {
  problem.validate();
  Tableau tab(problem);
  const int m = tab.rows();
  const int n = tab.vars();
  const double eps = options.eps;

  LpSolution solution;
  int iteration = 0;
  for (; iteration < options.max_iterations; ++iteration) {
    // --- Pricing: pick the entering column. ---
    int entering = -1;
    if (iteration < options.bland_after) {
      double most_negative = -eps;
      for (int j = 0; j < tab.total_cols(); ++j) {
        const double reduced = tab.get(m, j);
        if (reduced < most_negative) {
          most_negative = reduced;
          entering = j;
        }
      }
    } else {
      for (int j = 0; j < tab.total_cols(); ++j) {  // Bland: lowest index
        if (tab.get(m, j) < -eps) {
          entering = j;
          break;
        }
      }
    }
    if (entering == -1) {
      solution.status = LpStatus::kOptimal;
      break;
    }

    // --- Ratio test: pick the leaving row. ---
    int leaving = -1;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (int i = 0; i < m; ++i) {
      const double a = tab.get(i, entering);
      if (a <= eps) continue;
      const double ratio = tab.get(i, tab.rhs_col()) / a;
      if (ratio < best_ratio - eps ||
          (ratio < best_ratio + eps &&
           (leaving == -1 || tab.basis(i) < tab.basis(leaving)))) {
        best_ratio = ratio;
        leaving = i;
      }
    }
    if (leaving == -1) {
      solution.status = LpStatus::kUnbounded;
      return solution;
    }
    tab.pivot(leaving, entering);
  }
  if (iteration >= options.max_iterations) {
    solution.status = LpStatus::kIterationLimit;
  }

  // --- Extract primal values, objective and duals. ---
  solution.x.assign(static_cast<std::size_t>(n), 0.0);
  for (int i = 0; i < m; ++i) {
    const int var = tab.basis(i);
    if (var < n) {
      solution.x[static_cast<std::size_t>(var)] = tab.get(i, tab.rhs_col());
    }
  }
  solution.objective = 0.0;
  for (int j = 0; j < n; ++j) {
    solution.objective +=
        problem.objective[static_cast<std::size_t>(j)] *
        solution.x[static_cast<std::size_t>(j)];
  }
  solution.duals.assign(static_cast<std::size_t>(m), 0.0);
  for (int i = 0; i < m; ++i) {
    // Shadow price of row i = reduced cost of its slack column.
    solution.duals[static_cast<std::size_t>(i)] =
        std::max(0.0, tab.get(m, n + i));
  }
  return solution;
}

}  // namespace lorasched::solver
