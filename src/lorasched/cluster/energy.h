// Operational cost model e_ikt.
//
// The paper assumes an "ever-changing operational cost" per (task, node,
// slot). We model it as the node's amortized hourly cost scaled by a
// diurnal time-of-use multiplier (electricity is cheap at night, expensive
// mid-afternoon), attributed to the task in proportion to the share of node
// throughput it consumes (s_ik / C_kp). Off-peak slots are cheaper, which
// is exactly the signal eq. (12) exploits when placing work in time.
#pragma once

#include "lorasched/cluster/cluster.h"
#include "lorasched/types.h"
#include "lorasched/workload/task.h"

namespace lorasched {

class EnergyModel {
 public:
  struct Config {
    /// Time-of-use multiplier at the daily trough (3am).
    double off_peak_multiplier = 0.6;
    /// Multiplier at the daily peak.
    double peak_multiplier = 1.4;
    /// Slot of the diurnal peak (slot 90 = 15:00 on a 144-slot day).
    Slot peak_slot = 90;
    /// Slots per day (diurnal period).
    Slot slots_per_day = 144;
    /// Wall-clock hours per slot (10 minutes).
    double hours_per_slot = 1.0 / 6.0;
  };

  EnergyModel();
  explicit EnergyModel(Config config);

  /// Time-of-use multiplier at slot t (sinusoid between off-peak and peak).
  [[nodiscard]] double tou_multiplier(Slot t) const noexcept;

  /// e_ikt — operational cost of running task i on node k during slot t.
  [[nodiscard]] Money cost(const Task& task, const Cluster& cluster, NodeId k,
                           Slot t) const noexcept;

  /// Cost per slot of the *fully utilized* node (task costs are shares of
  /// this); also used by capacity-planning examples.
  [[nodiscard]] Money full_node_cost(const Cluster& cluster, NodeId k,
                                     Slot t) const noexcept;

  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  Config config_;
};

}  // namespace lorasched
