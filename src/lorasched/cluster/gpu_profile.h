// GPU node profiles.
//
// The paper calibrates C_kp / C_km / s_ik by profiling GPT-2 + LoRA on
// physical NVIDIA A100(80GB) and A40(48GB) GPUs. We substitute calibrated
// analytic profiles with the same capacity *ratios* (see DESIGN.md §3):
// only relative throughput and memory matter for scheduling dynamics.
#pragma once

#include <string>
#include <vector>

namespace lorasched {

struct GpuProfile {
  std::string name;
  /// C_kp — maximum samples the node can process per time slot.
  double compute_per_slot = 0.0;
  /// C_km — GPU memory capacity in GB.
  double mem_gb = 0.0;
  /// Electrical power draw at full utilization, in kW.
  double power_kw = 0.0;
  /// Amortized operational cost of the fully-utilized node in $/hour
  /// (hardware amortization + energy at the reference price); the
  /// EnergyModel scales this by a diurnal time-of-use multiplier.
  double hourly_cost = 0.0;
};

/// A100 80GB: 72 samples/s * 600 s/slot = 43,200 samples/slot, 0.4 kW,
/// $1.50/hour at reference price.
[[nodiscard]] GpuProfile a100_profile();
/// A40 48GB: ~55% of A100 throughput (24,000 samples/slot), 0.3 kW,
/// $0.80/hour.
[[nodiscard]] GpuProfile a40_profile();

/// Cluster composition presets used by the experiments.
enum class FleetKind { kA100Only, kA40Only, kHybrid };

[[nodiscard]] std::string to_string(FleetKind kind);

/// Builds the per-node profile list for `nodes` nodes of the given fleet
/// kind; kHybrid alternates A100/A40 (half and half).
[[nodiscard]] std::vector<GpuProfile> make_fleet(FleetKind kind, int nodes);

}  // namespace lorasched
