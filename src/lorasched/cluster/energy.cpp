#include "lorasched/cluster/energy.h"

#include <cmath>
#include <stdexcept>

namespace lorasched {

EnergyModel::EnergyModel() : EnergyModel(Config{}) {}

EnergyModel::EnergyModel(Config config) : config_(config) {
  if (config_.off_peak_multiplier < 0.0 ||
      config_.peak_multiplier < config_.off_peak_multiplier) {
    throw std::invalid_argument(
        "time-of-use multipliers must satisfy 0 <= off_peak <= peak");
  }
  if (config_.slots_per_day <= 0 || config_.hours_per_slot <= 0.0) {
    throw std::invalid_argument("energy model needs a positive slot grid");
  }
}

double EnergyModel::tou_multiplier(Slot t) const noexcept {
  const double mid = 0.5 * (config_.peak_multiplier + config_.off_peak_multiplier);
  const double amplitude =
      0.5 * (config_.peak_multiplier - config_.off_peak_multiplier);
  const double phase = 2.0 * 3.14159265358979323846 *
                       static_cast<double>(t - config_.peak_slot) /
                       static_cast<double>(config_.slots_per_day);
  return mid + amplitude * std::cos(phase);
}

Money EnergyModel::cost(const Task& task, const Cluster& cluster, NodeId k,
                        Slot t) const noexcept {
  const double share = cluster.task_rate(task, k) / cluster.compute_capacity(k);
  return full_node_cost(cluster, k, t) * share;
}

Money EnergyModel::full_node_cost(const Cluster& cluster, NodeId k,
                                  Slot t) const noexcept {
  return cluster.profile(k).hourly_cost * tou_multiplier(t) *
         config_.hours_per_slot;
}

}  // namespace lorasched
