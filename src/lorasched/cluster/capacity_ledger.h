// Per-(node, slot) resource accounting — the ground truth for constraints
// (4f) (compute) and (4g) (memory). The simulation engine owns one ledger
// per run; policies read it, only the engine writes it.
#pragma once

#include <vector>

#include "lorasched/cluster/cluster.h"
#include "lorasched/types.h"

namespace lorasched {

class CapacityLedger {
 public:
  CapacityLedger(const Cluster& cluster, Slot horizon);

  [[nodiscard]] Slot horizon() const noexcept { return horizon_; }
  [[nodiscard]] int node_count() const noexcept { return nodes_; }

  /// Samples per slot still unreserved on node k at slot t.
  [[nodiscard]] double remaining_compute(NodeId k, Slot t) const {
    return compute_cap_[static_cast<std::size_t>(k)] - used_compute_[index(k, t)];
  }
  /// Adapter memory (C_km − r_b) still unreserved on node k at slot t.
  [[nodiscard]] double remaining_mem(NodeId k, Slot t) const {
    return mem_cap_[static_cast<std::size_t>(k)] - used_mem_[index(k, t)];
  }
  [[nodiscard]] double used_compute(NodeId k, Slot t) const {
    return used_compute_[index(k, t)];
  }
  [[nodiscard]] double used_mem(NodeId k, Slot t) const {
    return used_mem_[index(k, t)];
  }
  /// Number of distinct task reservations on node k at slot t.
  [[nodiscard]] int tasks_on(NodeId k, Slot t) const {
    return task_count_[index(k, t)];
  }

  /// True iff a reservation of (compute, mem) fits at (k, t). `exclusive`
  /// additionally requires the node-slot to be empty (NTM semantics), and a
  /// cell already booked exclusively admits nothing further.
  [[nodiscard]] bool fits(NodeId k, Slot t, double compute, double mem,
                          bool exclusive = false) const;

  /// Books the reservation. Throws std::logic_error if it does not fit —
  /// the engine treats an over-booking policy as a bug.
  void reserve(NodeId k, Slot t, double compute, double mem,
               bool exclusive = false);

  /// Marks the node-slot unavailable (failure injection: maintenance,
  /// outage). Nothing fits a blocked cell; existing reservations stay.
  void block(NodeId k, Slot t);
  [[nodiscard]] bool is_blocked(NodeId k, Slot t) const {
    return blocked_[index(k, t)] != 0;
  }
  /// True iff any cell is currently blocked. O(1): policies consult this
  /// before installing a per-cell outage filter on the schedule DP — a
  /// filter over a block-free ledger excludes nothing, so skipping it is
  /// value- and tie-identical while keeping the DP on its fast path.
  [[nodiscard]] bool has_blocks() const noexcept { return blocked_cells_ > 0; }

  /// Fraction of total fleet compute reserved over [0, horizon).
  [[nodiscard]] double compute_utilization() const noexcept;

  // --- Snapshot (service checkpoint/restore) ------------------------------

  /// Full mutable booking state, flat in (node-major, slot-minor) order.
  /// Capacities are derived from the cluster and are not part of the
  /// snapshot; restore() must be fed a snapshot taken from a ledger built
  /// over the same cluster and horizon.
  struct Snapshot {
    int nodes = 0;
    Slot horizon = 0;
    std::vector<double> used_compute;
    std::vector<double> used_mem;
    std::vector<int> task_count;
    std::vector<char> exclusive;
    std::vector<char> blocked;
  };

  [[nodiscard]] Snapshot snapshot() const;
  /// Overwrites all bookings/blocks. Throws std::invalid_argument when the
  /// snapshot's dimensions do not match this ledger's grid.
  void restore(const Snapshot& snapshot);

 private:
  [[nodiscard]] std::size_t index(NodeId k, Slot t) const {
    return static_cast<std::size_t>(k) * static_cast<std::size_t>(horizon_) +
           static_cast<std::size_t>(t);
  }

  int nodes_;
  Slot horizon_;
  std::vector<double> compute_cap_;  // per node
  std::vector<double> mem_cap_;      // per node (adapter memory)
  std::vector<double> used_compute_;  // per (node, slot)
  std::vector<double> used_mem_;      // per (node, slot)
  std::vector<int> task_count_;       // per (node, slot)
  std::vector<char> exclusive_;       // per (node, slot)
  std::vector<char> blocked_;         // per (node, slot)
  std::size_t blocked_cells_ = 0;     // count of set cells in blocked_
};

}  // namespace lorasched
