#include "lorasched/cluster/cluster.h"

#include <map>
#include <stdexcept>

namespace lorasched {

Cluster::Cluster(std::vector<GpuProfile> node_profiles, double base_model_gb)
    : profiles_(std::move(node_profiles)), base_model_gb_(base_model_gb) {
  if (profiles_.empty()) throw std::invalid_argument("cluster needs nodes");
  if (base_model_gb_ < 0.0) throw std::invalid_argument("negative base model");
  for (const auto& p : profiles_) {
    if (p.compute_per_slot <= 0.0 || p.mem_gb <= base_model_gb_) {
      throw std::invalid_argument(
          "node profile must have positive compute and room for the base model");
    }
  }
  node_class_.resize(profiles_.size());
  std::map<std::string, int> class_of_name;
  for (std::size_t k = 0; k < profiles_.size(); ++k) {
    const auto [it, inserted] = class_of_name.try_emplace(
        profiles_[k].name, static_cast<int>(class_members_.size()));
    if (inserted) class_members_.emplace_back();
    node_class_[k] = it->second;
    class_members_[static_cast<std::size_t>(it->second)].push_back(
        static_cast<NodeId>(k));
  }
}

double Cluster::total_compute_per_slot() const noexcept {
  double total = 0.0;
  for (const auto& p : profiles_) total += p.compute_per_slot;
  return total;
}

}  // namespace lorasched
