#include "lorasched/cluster/capacity_ledger.h"

#include <stdexcept>

#ifdef LORASCHED_AUDIT
#include "lorasched/audit/invariants.h"
#endif

namespace lorasched {

namespace {
// Tolerance for floating-point capacity comparisons: reservations are sums
// of products of well-scaled doubles, so a relative epsilon suffices.
constexpr double kSlack = 1e-9;
}  // namespace

CapacityLedger::CapacityLedger(const Cluster& cluster, Slot horizon)
    : nodes_(cluster.node_count()), horizon_(horizon) {
  if (horizon <= 0) throw std::invalid_argument("ledger horizon must be > 0");
  compute_cap_.reserve(static_cast<std::size_t>(nodes_));
  mem_cap_.reserve(static_cast<std::size_t>(nodes_));
  for (NodeId k = 0; k < nodes_; ++k) {
    compute_cap_.push_back(cluster.compute_capacity(k));
    mem_cap_.push_back(cluster.adapter_mem_capacity(k));
  }
  const auto cells =
      static_cast<std::size_t>(nodes_) * static_cast<std::size_t>(horizon_);
  used_compute_.assign(cells, 0.0);
  used_mem_.assign(cells, 0.0);
  task_count_.assign(cells, 0);
  exclusive_.assign(cells, 0);
  blocked_.assign(cells, 0);
}

void CapacityLedger::block(NodeId k, Slot t) {
  if (k < 0 || k >= nodes_ || t < 0 || t >= horizon_) {
    throw std::invalid_argument("block() outside the ledger grid");
  }
  char& cell = blocked_[index(k, t)];
  if (cell == 0) {
    cell = 1;
    ++blocked_cells_;
  }
}

bool CapacityLedger::fits(NodeId k, Slot t, double compute, double mem,
                          bool exclusive) const {
  if (k < 0 || k >= nodes_ || t < 0 || t >= horizon_) return false;
  const std::size_t cell = index(k, t);
  if (blocked_[cell] != 0) return false;
  if (exclusive_[cell] != 0) return false;
  if (exclusive && task_count_[cell] != 0) return false;
  const double comp_cap = compute_cap_[static_cast<std::size_t>(k)];
  const double mem_cap = mem_cap_[static_cast<std::size_t>(k)];
  return used_compute_[cell] + compute <= comp_cap * (1.0 + kSlack) &&
         used_mem_[cell] + mem <= mem_cap * (1.0 + kSlack);
}

void CapacityLedger::reserve(NodeId k, Slot t, double compute, double mem,
                             bool exclusive) {
  if (!fits(k, t, compute, mem, exclusive)) {
    throw std::logic_error("capacity ledger over-booked: policy bug");
  }
  const std::size_t cell = index(k, t);
#ifdef LORASCHED_AUDIT
  const double audit_pre_compute = used_compute_[cell];
  const double audit_pre_mem = used_mem_[cell];
#endif
  used_compute_[cell] += compute;
  used_mem_[cell] += mem;
  ++task_count_[cell];
  if (exclusive) exclusive_[cell] = 1;
#ifdef LORASCHED_AUDIT
  audit::check_ledger_reserve(*this, k, t, audit_pre_compute, audit_pre_mem,
                              compute, mem);
#endif
}

CapacityLedger::Snapshot CapacityLedger::snapshot() const {
  Snapshot snap;
  snap.nodes = nodes_;
  snap.horizon = horizon_;
  snap.used_compute = used_compute_;
  snap.used_mem = used_mem_;
  snap.task_count = task_count_;
  snap.exclusive = exclusive_;
  snap.blocked = blocked_;
  return snap;
}

void CapacityLedger::restore(const Snapshot& snapshot) {
  const auto cells =
      static_cast<std::size_t>(nodes_) * static_cast<std::size_t>(horizon_);
  if (snapshot.nodes != nodes_ || snapshot.horizon != horizon_ ||
      snapshot.used_compute.size() != cells ||
      snapshot.used_mem.size() != cells ||
      snapshot.task_count.size() != cells ||
      snapshot.exclusive.size() != cells || snapshot.blocked.size() != cells) {
    throw std::invalid_argument("ledger snapshot does not match this grid");
  }
  used_compute_ = snapshot.used_compute;
  used_mem_ = snapshot.used_mem;
  task_count_ = snapshot.task_count;
  exclusive_ = snapshot.exclusive;
  blocked_ = snapshot.blocked;
  blocked_cells_ = 0;
  for (const char cell : blocked_) {
    if (cell != 0) ++blocked_cells_;
  }
#ifdef LORASCHED_AUDIT
  audit::check_ledger_restore(*this, snapshot);
#endif
}

double CapacityLedger::compute_utilization() const noexcept {
  double used = 0.0;
  double cap = 0.0;
  for (NodeId k = 0; k < nodes_; ++k) {
    cap += compute_cap_[static_cast<std::size_t>(k)] *
           static_cast<double>(horizon_);
    for (Slot t = 0; t < horizon_; ++t) used += used_compute_[index(k, t)];
  }
  return cap > 0.0 ? used / cap : 0.0;
}

}  // namespace lorasched
