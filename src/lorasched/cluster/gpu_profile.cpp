#include "lorasched/cluster/gpu_profile.h"

#include <stdexcept>

namespace lorasched {

GpuProfile a100_profile() {
  return GpuProfile{"A100-80GB", 43200.0, 80.0, 0.4, 1.50};
}

GpuProfile a40_profile() {
  return GpuProfile{"A40-48GB", 24000.0, 48.0, 0.3, 0.80};
}

std::string to_string(FleetKind kind) {
  switch (kind) {
    case FleetKind::kA100Only: return "A100";
    case FleetKind::kA40Only: return "A40";
    case FleetKind::kHybrid: return "hybrid";
  }
  throw std::logic_error("unknown FleetKind");
}

std::vector<GpuProfile> make_fleet(FleetKind kind, int nodes) {
  if (nodes <= 0) throw std::invalid_argument("fleet needs at least one node");
  std::vector<GpuProfile> fleet;
  fleet.reserve(static_cast<std::size_t>(nodes));
  for (int i = 0; i < nodes; ++i) {
    switch (kind) {
      case FleetKind::kA100Only:
        fleet.push_back(a100_profile());
        break;
      case FleetKind::kA40Only:
        fleet.push_back(a40_profile());
        break;
      case FleetKind::kHybrid:
        fleet.push_back(i % 2 == 0 ? a100_profile() : a40_profile());
        break;
    }
  }
  return fleet;
}

}  // namespace lorasched
