// The GPU cluster: K heterogeneous compute nodes plus the multi-LoRA
// base-model sharing rule (one replica of the pre-trained model of size r_b
// per node, shared by all adapters on that node — paper constraint (4g)).
#pragma once

#include <string>
#include <vector>

#include "lorasched/cluster/gpu_profile.h"
#include "lorasched/types.h"
#include "lorasched/workload/task.h"

namespace lorasched {

class Cluster {
 public:
  /// `base_model_gb` is r_b; every node permanently reserves it.
  Cluster(std::vector<GpuProfile> node_profiles, double base_model_gb);

  [[nodiscard]] int node_count() const noexcept {
    return static_cast<int>(profiles_.size());
  }
  [[nodiscard]] const GpuProfile& profile(NodeId k) const {
    return profiles_.at(static_cast<std::size_t>(k));
  }
  [[nodiscard]] double base_model_gb() const noexcept { return base_model_gb_; }

  /// C_kp — samples per slot the node can process across all resident tasks.
  [[nodiscard]] double compute_capacity(NodeId k) const {
    return profile(k).compute_per_slot;
  }
  /// C_km — raw GPU memory in GB.
  [[nodiscard]] double mem_capacity(NodeId k) const { return profile(k).mem_gb; }
  /// C_km − r_b — memory available to task adapters under LoRA sharing.
  [[nodiscard]] double adapter_mem_capacity(NodeId k) const {
    return profile(k).mem_gb - base_model_gb_;
  }

  /// s_ik — samples per slot task i processes when running on node k.
  [[nodiscard]] double task_rate(const Task& task, NodeId k) const {
    return task.compute_share * compute_capacity(k);
  }

  // --- Node classes -------------------------------------------------------
  // Nodes with identical profiles form a class; the per-task schedule DP
  // only needs one representative node per class per slot (see DESIGN.md §5).

  [[nodiscard]] int class_count() const noexcept {
    return static_cast<int>(class_members_.size());
  }
  [[nodiscard]] int node_class(NodeId k) const {
    return node_class_.at(static_cast<std::size_t>(k));
  }
  [[nodiscard]] const std::vector<NodeId>& class_nodes(int cls) const {
    return class_members_.at(static_cast<std::size_t>(cls));
  }
  /// Any node of the class (its profile represents the whole class).
  [[nodiscard]] NodeId class_representative(int cls) const {
    return class_members_.at(static_cast<std::size_t>(cls)).front();
  }

  /// Total fleet compute per slot (sum of C_kp) — used for sizing workloads.
  [[nodiscard]] double total_compute_per_slot() const noexcept;

 private:
  std::vector<GpuProfile> profiles_;
  double base_model_gb_;
  std::vector<int> node_class_;
  std::vector<std::vector<NodeId>> class_members_;
};

}  // namespace lorasched
