// MetricsRegistry — named counters, gauges, and log-bucketed histograms
// with lock-free recording on the hot path.
//
// Design:
//  * Metric handles (Counter&, Gauge&, Histogram&) are created once through
//    the registry (get-or-create under a mutex, re-requesting a name of the
//    same kind returns the same object) and then recorded into with plain
//    relaxed atomics — no lock, no allocation, safe from any thread.
//  * Histograms bucket on a logarithmic grid: `buckets_per_octave` buckets
//    per power of two between `min` and `max`, plus underflow/overflow
//    buckets. Memory is fixed at registration time (a few hundred 8-byte
//    slots), so a histogram can absorb an unbounded sample stream — the
//    fix for ServiceMetrics' former per-sample vector. The price is that
//    quantile queries interpolate within a bucket and are therefore
//    approximate: with the default 8 buckets/octave the relative error is
//    bounded by 2^(1/8) − 1 ≈ 9.05% (mean and count stay exact).
//  * snapshot() returns a point-in-time copy of every metric; exposition
//    via write_prometheus() follows the Prometheus text format (counters
//    with `_total`-style names, cumulative `_bucket{le="..."}` series).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "lorasched/util/mutex.h"
#include "lorasched/util/thread_annotations.h"

namespace lorasched::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  void add(double delta) noexcept;
  /// Raises the gauge to `value` if larger (running maximum).
  void set_max(double value) noexcept;
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

struct HistogramOptions {
  /// Lower edge of the first finite bucket; samples below land in the
  /// underflow bucket.
  double min = 1e-9;
  /// Upper edge of the last finite bucket; samples at or above land in the
  /// overflow bucket.
  double max = 1e3;
  /// Buckets per power of two. 8 bounds quantile error at ~9% relative.
  int buckets_per_octave = 8;
};

/// Point-in-time histogram state plus the derived queries. `counts` holds
/// [underflow, finite buckets..., overflow].
struct HistogramSnapshot {
  HistogramOptions options;
  std::vector<std::uint64_t> counts;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min_seen = 0.0;
  double max_seen = 0.0;

  [[nodiscard]] std::size_t finite_buckets() const noexcept {
    return counts.size() >= 2 ? counts.size() - 2 : 0;
  }
  /// Lower/upper edge of finite bucket `i` (0-based within the finite range).
  [[nodiscard]] double bucket_lower(std::size_t i) const;
  [[nodiscard]] double bucket_upper(std::size_t i) const;
  /// Linear-interpolation quantile estimate, p in [0, 100] — the same
  /// convention as util::percentile, but log-bucket approximate (see the
  /// accuracy note in the header comment). 0 with no samples; clamped to
  /// the observed [min_seen, max_seen].
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double mean() const noexcept {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

class Histogram {
 public:
  explicit Histogram(HistogramOptions options);

  /// Lock-free; NaN samples are dropped.
  void record(double value) noexcept;
  [[nodiscard]] HistogramSnapshot snapshot() const;
  [[nodiscard]] const HistogramOptions& options() const noexcept {
    return options_;
  }

 private:
  HistogramOptions options_;
  double bucket_scale_ = 1.0;  // buckets per log2 unit
  std::deque<std::atomic<std::uint64_t>> counts_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  // Seeded to +/-inf so every record() runs the min/max CAS loops — a
  // first-sample "seed" store would race concurrent first records (the
  // CAS loser could compare against the pre-seed value and lose its
  // sample). snapshot() masks the seeds for empty histograms.
  std::atomic<double> min_seen_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_seen_{-std::numeric_limits<double>::infinity()};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// One metric in a registry snapshot; `value` is used by counters (exact
/// integer) and gauges, `histogram` by histograms.
struct MetricSnapshot {
  std::string name;
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;
  HistogramSnapshot histogram;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create. Names must match [a-zA-Z_:][a-zA-Z0-9_:]* (Prometheus);
  /// re-registering a name with a different kind throws
  /// std::invalid_argument. Returned references stay valid for the
  /// registry's lifetime.
  Counter& counter(std::string_view name, std::string_view help = "")
      EXCLUDES(mutex_);
  Gauge& gauge(std::string_view name, std::string_view help = "")
      EXCLUDES(mutex_);
  Histogram& histogram(std::string_view name, HistogramOptions options = {},
                       std::string_view help = "") EXCLUDES(mutex_);

  [[nodiscard]] std::vector<MetricSnapshot> snapshot() const
      EXCLUDES(mutex_);

  /// Prometheus text exposition (HELP/TYPE lines, cumulative histogram
  /// buckets with `le` labels, `_sum`/`_count` series).
  void write_prometheus(std::ostream& out) const EXCLUDES(mutex_);

 private:
  struct Entry {
    std::string name;
    std::string help;
    MetricKind kind;
    // Exactly one of these is non-null, matching `kind`.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& find_or_insert(std::string_view name, std::string_view help,
                        MetricKind kind) REQUIRES(mutex_);

  mutable util::Mutex mutex_;
  std::deque<Entry> entries_ GUARDED_BY(mutex_);  // stable addresses
  std::map<std::string, Entry*, std::less<>> index_ GUARDED_BY(mutex_);
};

}  // namespace lorasched::obs
