// Minimal JSON value type with a compact writer and a strict
// recursive-descent parser — the backbone of the observability layer's
// interchange formats (decision-trace JSONL, Chrome trace-event files,
// BENCH_*.json) and of the parse-back helpers the tests and the CI
// validator use to read them again.
//
// Scope is deliberately small: one number type (double, serialized with 17
// significant digits so values round-trip bit-exactly), ordered objects
// (std::map, so serialization is deterministic), UTF-8 passed through
// verbatim with only the mandatory escapes. Not a general-purpose JSON
// library — no comments, no trailing commas, no \u escapes beyond BMP
// code points.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace lorasched::obs {

class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  Json() = default;  // null
  Json(bool value) : kind_(Kind::kBool), bool_(value) {}
  Json(double value) : kind_(Kind::kNumber), number_(value) {}
  Json(int value) : Json(static_cast<double>(value)) {}
  Json(long value) : Json(static_cast<double>(value)) {}
  Json(long long value) : Json(static_cast<double>(value)) {}
  Json(unsigned value) : Json(static_cast<double>(value)) {}
  Json(unsigned long value) : Json(static_cast<double>(value)) {}
  Json(unsigned long long value) : Json(static_cast<double>(value)) {}
  Json(const char* value) : kind_(Kind::kString), string_(value) {}
  Json(std::string value) : kind_(Kind::kString), string_(std::move(value)) {}
  Json(Array value) : kind_(Kind::kArray), array_(std::move(value)) {}
  Json(Object value) : kind_(Kind::kObject), object_(std::move(value)) {}

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }

  /// Typed accessors; throw std::invalid_argument on kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;
  [[nodiscard]] Array& as_array();
  [[nodiscard]] Object& as_object();

  /// Object member lookup: nullptr when absent (or not an object) / throwing.
  [[nodiscard]] const Json* find(const std::string& key) const;
  [[nodiscard]] const Json& at(const std::string& key) const;

  /// Compact serialization (no whitespace); deterministic member order.
  void write(std::ostream& out) const;
  [[nodiscard]] std::string dump() const;

  /// Parses exactly one JSON document (trailing whitespace allowed; any
  /// other trailing content throws). Throws std::invalid_argument with a
  /// byte offset on malformed input.
  [[nodiscard]] static Json parse(std::string_view text);

  friend bool operator==(const Json&, const Json&) = default;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Writes `text` as a quoted JSON string with the mandatory escapes.
void write_json_string(std::ostream& out, std::string_view text);

}  // namespace lorasched::obs
