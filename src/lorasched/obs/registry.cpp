#include "lorasched/obs/registry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace lorasched::obs {

namespace {

void atomic_add_double(std::atomic<double>& target, double delta) noexcept {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_max_double(std::atomic<double>& target, double value) noexcept {
  double current = target.load(std::memory_order_relaxed);
  while (current < value &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_min_double(std::atomic<double>& target, double value) noexcept {
  double current = target.load(std::memory_order_relaxed);
  while (current > value &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

bool valid_metric_name(std::string_view name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name.front())) return false;
  return std::all_of(name.begin() + 1, name.end(), [&](char c) {
    return head(c) || (c >= '0' && c <= '9');
  });
}

const char* kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "unknown";
}

void write_number(std::ostream& out, double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out << buf;
}

}  // namespace

void Gauge::add(double delta) noexcept { atomic_add_double(value_, delta); }

void Gauge::set_max(double value) noexcept { atomic_max_double(value_, value); }

Histogram::Histogram(HistogramOptions options) : options_(options) {
  if (!(options_.min > 0.0) || !(options_.max > options_.min) ||
      options_.buckets_per_octave < 1) {
    throw std::invalid_argument(
        "histogram needs 0 < min < max and buckets_per_octave >= 1");
  }
  bucket_scale_ = static_cast<double>(options_.buckets_per_octave);
  const double octaves = std::log2(options_.max / options_.min);
  const auto finite = static_cast<std::size_t>(
      std::ceil(octaves * options_.buckets_per_octave));
  counts_.resize(finite + 2);  // + underflow and overflow
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
}

void Histogram::record(double value) noexcept {
  if (std::isnan(value)) return;
  std::size_t slot;
  if (value < options_.min) {
    slot = 0;
  } else if (value >= options_.max) {
    slot = counts_.size() - 1;
  } else {
    const double pos = std::log2(value / options_.min) * bucket_scale_;
    auto idx = static_cast<std::size_t>(pos);
    // log2 rounding can land one past the last finite bucket for values
    // just under max; clamp into the finite range.
    idx = std::min(idx, counts_.size() - 3);
    slot = idx + 1;
  }
  counts_[slot].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add_double(sum_, value);
  atomic_min_double(min_seen_, value);
  atomic_max_double(max_seen_, value);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.options = options_;
  snap.counts.reserve(counts_.size());
  for (const auto& c : counts_) {
    snap.counts.push_back(c.load(std::memory_order_relaxed));
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  // lo <= hi excludes the +/-inf construction seeds and the transient
  // where a racing record() has updated one edge but not the other yet;
  // either way the snapshot keeps its 0.0 defaults.
  const double lo = min_seen_.load(std::memory_order_relaxed);
  const double hi = max_seen_.load(std::memory_order_relaxed);
  if (snap.count > 0 && lo <= hi) {
    snap.min_seen = lo;
    snap.max_seen = hi;
  }
  return snap;
}

double HistogramSnapshot::bucket_lower(std::size_t i) const {
  return options.min *
         std::exp2(static_cast<double>(i) /
                   static_cast<double>(options.buckets_per_octave));
}

double HistogramSnapshot::bucket_upper(std::size_t i) const {
  return bucket_lower(i + 1);
}

double HistogramSnapshot::percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // util::percentile's convention: rank h = (n-1) * p/100 over the sorted
  // samples; here we locate the bucket containing that rank and
  // interpolate linearly across it.
  const double target = static_cast<double>(count - 1) * p / 100.0;
  std::uint64_t before = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const std::uint64_t in_bucket = counts[i];
    if (in_bucket == 0) continue;
    if (target < static_cast<double>(before + in_bucket)) {
      double lower;
      double upper;
      if (i == 0) {  // underflow: everything below options.min
        lower = min_seen;
        upper = std::min(options.min, max_seen);
      } else if (i + 1 == counts.size()) {  // overflow
        lower = std::max(options.max, min_seen);
        upper = max_seen;
      } else {
        lower = bucket_lower(i - 1);
        upper = bucket_upper(i - 1);
      }
      const double frac =
          in_bucket == 1
              ? 0.0
              : (target - static_cast<double>(before)) /
                    static_cast<double>(in_bucket - 1);
      const double value = lower + frac * (upper - lower);
      return std::clamp(value, min_seen, max_seen);
    }
    before += in_bucket;
  }
  return max_seen;
}

MetricsRegistry::Entry& MetricsRegistry::find_or_insert(std::string_view name,
                                                        std::string_view help,
                                                        MetricKind kind) {
  if (!valid_metric_name(name)) {
    throw std::invalid_argument("invalid metric name: " + std::string(name));
  }
  util::MutexLock lock(mutex_);
  const auto it = index_.find(name);
  if (it != index_.end()) {
    if (it->second->kind != kind) {
      throw std::invalid_argument("metric '" + std::string(name) +
                                  "' already registered as " +
                                  kind_name(it->second->kind));
    }
    return *it->second;
  }
  Entry& entry = entries_.emplace_back();
  entry.name = std::string(name);
  entry.help = std::string(help);
  entry.kind = kind;
  index_.emplace(entry.name, &entry);
  return entry;
}

Counter& MetricsRegistry::counter(std::string_view name,
                                  std::string_view help) {
  Entry& entry = find_or_insert(name, help, MetricKind::kCounter);
  if (!entry.counter) entry.counter = std::make_unique<Counter>();
  return *entry.counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view help) {
  Entry& entry = find_or_insert(name, help, MetricKind::kGauge);
  if (!entry.gauge) entry.gauge = std::make_unique<Gauge>();
  return *entry.gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      HistogramOptions options,
                                      std::string_view help) {
  Entry& entry = find_or_insert(name, help, MetricKind::kHistogram);
  if (!entry.histogram) entry.histogram = std::make_unique<Histogram>(options);
  return *entry.histogram;
}

std::vector<MetricSnapshot> MetricsRegistry::snapshot() const {
  util::MutexLock lock(mutex_);
  std::vector<MetricSnapshot> out;
  out.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    MetricSnapshot snap;
    snap.name = entry.name;
    snap.help = entry.help;
    snap.kind = entry.kind;
    switch (entry.kind) {
      case MetricKind::kCounter:
        snap.value = static_cast<double>(entry.counter->value());
        break;
      case MetricKind::kGauge: snap.value = entry.gauge->value(); break;
      case MetricKind::kHistogram:
        snap.histogram = entry.histogram->snapshot();
        break;
    }
    out.push_back(std::move(snap));
  }
  return out;
}

void MetricsRegistry::write_prometheus(std::ostream& out) const {
  for (const MetricSnapshot& metric : snapshot()) {
    if (!metric.help.empty()) {
      out << "# HELP " << metric.name << ' ' << metric.help << '\n';
    }
    out << "# TYPE " << metric.name << ' ' << kind_name(metric.kind) << '\n';
    switch (metric.kind) {
      case MetricKind::kCounter:
      case MetricKind::kGauge:
        out << metric.name << ' ';
        write_number(out, metric.value);
        out << '\n';
        break;
      case MetricKind::kHistogram: {
        const HistogramSnapshot& h = metric.histogram;
        // Prometheus `le` is inclusive, but record() places a sample equal
        // to options.min in the first finite bucket, so an le="min" series
        // for the underflow bucket would exclude boundary samples it
        // claims to cover. Fold the underflow count into the first finite
        // bucket's cumulative instead — placement and exposition then
        // agree at the min edge.
        std::uint64_t cumulative = h.counts.empty() ? 0 : h.counts.front();
        if (!h.counts.empty()) {
          for (std::size_t i = 0; i < h.finite_buckets(); ++i) {
            cumulative += h.counts[i + 1];
            out << metric.name << "_bucket{le=\"";
            write_number(out, h.bucket_upper(i));
            out << "\"} " << cumulative << '\n';
          }
          cumulative += h.counts.back();
        }
        out << metric.name << "_bucket{le=\"+Inf\"} " << cumulative << '\n';
        out << metric.name << "_sum ";
        write_number(out, h.sum);
        out << '\n';
        out << metric.name << "_count " << h.count << '\n';
        break;
      }
    }
  }
}

}  // namespace lorasched::obs
