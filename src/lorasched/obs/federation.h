// Metrics federation (DESIGN.md §12): the leader-side registry that merges
// MetricsRegistry snapshots pushed by host-agent processes into one
// labeled Prometheus exposition.
//
// A MetricsRegistry has no label support by design (lock-free handles, one
// series per name); federation layers the `agent`/`shard` labels on top:
// each push carries the agent's name and a list of (shard, snapshot)
// groups, and the FederatedRegistry keys every series by
// (agent, shard, name).
//
// Merge semantics (the part the edge-case tests pin down):
//  * Pushes are cumulative snapshots, not deltas — absorb() REPLACES the
//    series' current window, it never adds. Re-absorbing the same snapshot
//    twice is idempotent, so a reconnect-time re-push can never
//    double-count.
//  * Counters stay monotone across agent restarts: every series keeps a
//    {base, last} pair, and a new value below `last` means the source
//    process restarted — `last` is folded into `base` and the window
//    restarts. The exported value is base + last.
//  * Histograms merge the same way, bucket-wise (bucket counts, count and
//    sum add; min_seen/max_seen take the min/max of the merged parts).
//  * A snapshot from an agent marked dead is dropped (a late push queued
//    behind a failed link must not resurrect its series), as is a
//    duplicate sequence number. A sequence regression is a restarted
//    agent: accepted, with the counter logic above keeping monotonicity.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "lorasched/obs/registry.h"
#include "lorasched/util/mutex.h"
#include "lorasched/util/thread_annotations.h"

namespace lorasched::obs {

/// Escapes a Prometheus label value per the text exposition format:
/// backslash, double quote, and newline become \\, \", and \n. Everything
/// else (UTF-8 included) passes through verbatim.
[[nodiscard]] std::string escape_label_value(std::string_view value);

/// Bucket-wise histogram merge: counts, count, and sum add;
/// min_seen/max_seen take the min/max over the non-empty parts; `into`
/// keeps its options. Layout mismatches (different bucket grids) merge the
/// overlapping bucket prefix and stay exact on count/sum/min/max.
void merge_histogram(HistogramSnapshot& into, const HistogramSnapshot& from);

/// One shard's worth of metrics inside a push; shard < 0 carries the
/// agent-level (process-wide) series, which are exported without a shard
/// label.
struct MetricsGroup {
  std::int32_t shard = -1;
  std::vector<MetricSnapshot> metrics;
};

/// Writes `metrics` in Prometheus text exposition with `labels` attached
/// to every series (values escaped). HELP/TYPE headers are emitted when
/// `headers` is true — suppress them when the same metric name was already
/// typed earlier in the document.
void write_prometheus_labeled(
    std::ostream& out, const std::vector<MetricSnapshot>& metrics,
    const std::vector<std::pair<std::string, std::string>>& labels,
    bool headers = true);

class FederatedRegistry {
 public:
  FederatedRegistry() = default;
  FederatedRegistry(const FederatedRegistry&) = delete;
  FederatedRegistry& operator=(const FederatedRegistry&) = delete;

  /// Merges one push from `agent`. Returns false (and changes nothing)
  /// when the push is dropped: the agent is marked dead, or `seq` repeats
  /// the last accepted sequence number. Thread-safe (reader threads push,
  /// the scrape endpoint reads).
  bool absorb(const std::string& agent, std::uint64_t seq,
              const std::vector<MetricsGroup>& groups) EXCLUDES(mutex_);

  /// Late pushes from `agent` are dropped until mark_alive(). Series
  /// absorbed so far stay exported (last known value).
  void mark_dead(const std::string& agent) EXCLUDES(mutex_);
  /// Re-admits a reconnected agent's pushes.
  void mark_alive(const std::string& agent) EXCLUDES(mutex_);

  /// Exported value of one counter/gauge series; 0 when absent.
  [[nodiscard]] double value(const std::string& agent, std::int32_t shard,
                             std::string_view name) const EXCLUDES(mutex_);
  /// Exported state of one histogram series; empty snapshot when absent.
  [[nodiscard]] HistogramSnapshot histogram(const std::string& agent,
                                            std::int32_t shard,
                                            std::string_view name) const
      EXCLUDES(mutex_);

  /// Sum of a counter/gauge series over every (agent, shard).
  [[nodiscard]] double aggregate_value(std::string_view name) const
      EXCLUDES(mutex_);
  /// Bucket-wise merge of a histogram series over every (agent, shard).
  [[nodiscard]] HistogramSnapshot aggregate_histogram(
      std::string_view name) const EXCLUDES(mutex_);

  [[nodiscard]] std::size_t series_count() const EXCLUDES(mutex_);
  /// Agents that have pushed at least once, with their liveness.
  [[nodiscard]] std::vector<std::pair<std::string, bool>> agents() const
      EXCLUDES(mutex_);

  /// Prometheus text exposition of every federated series:
  /// `name{agent="...",shard="..."} value`, histograms with the usual
  /// _bucket/_sum/_count series. Series are grouped by metric name (one
  /// HELP/TYPE header per name) and ordered (name, agent, shard) — the
  /// output is deterministic for a fixed state.
  void write_prometheus(std::ostream& out) const EXCLUDES(mutex_);

 private:
  struct SeriesKey {
    std::string name;
    std::string agent;
    std::int32_t shard = -1;
    auto operator<=>(const SeriesKey&) const = default;
  };

  struct Series {
    MetricKind kind = MetricKind::kCounter;
    std::string help;
    // Counter/gauge window: exported = base + last (base absorbs each
    // detected source restart).
    double base = 0.0;
    double last = 0.0;
    // Histogram window, same scheme.
    HistogramSnapshot hist_base;
    HistogramSnapshot hist_last;
  };

  struct AgentState {
    bool dead = false;
    bool have_seq = false;
    std::uint64_t last_seq = 0;
  };

  [[nodiscard]] static double exported(const Series& s) noexcept {
    return s.base + s.last;
  }
  [[nodiscard]] static HistogramSnapshot exported_histogram(const Series& s);

  mutable util::Mutex mutex_;
  std::map<std::string, AgentState> agents_ GUARDED_BY(mutex_);
  std::map<SeriesKey, Series> series_ GUARDED_BY(mutex_);
};

}  // namespace lorasched::obs
