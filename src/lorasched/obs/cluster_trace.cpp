#include "lorasched/obs/cluster_trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <ostream>

#include "lorasched/obs/json.h"

namespace lorasched::obs {

namespace {

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void write_hex_id(std::ostream& out, std::uint64_t id) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(id));
  out << buf;
}

}  // namespace

RoundTraceCtx ClusterTraceCollector::begin_round(int shard, Slot slot) {
  util::MutexLock lock(mutex_);
  RoundState& state = rounds_[shard];
  ++state.rounds;
  RoundTraceCtx ctx;
  ctx.trace_id = trace_mix(kTraceSeed, static_cast<std::uint64_t>(slot) + 1);
  ctx.span_id = trace_mix(
      trace_mix(ctx.trace_id, static_cast<std::uint64_t>(shard) + 1),
      state.rounds);
  state.ctx = ctx;
  state.slot = slot;
  state.anchor_ns = steady_now_ns();
  state.open = true;
  return ctx;
}

void ClusterTraceCollector::end_round(int shard) {
  util::MutexLock lock(mutex_);
  const auto it = rounds_.find(shard);
  if (it == rounds_.end() || !it->second.open) return;
  RoundState& state = it->second;
  state.open = false;  // anchor_ns survives for a late absorb()
  Event event;
  event.pid = 1;
  event.tid = shard;
  event.name = "leader_round";
  event.trace_id = state.ctx.trace_id;
  event.span_id = state.ctx.span_id;
  event.start_ns = state.anchor_ns;
  event.duration_ns = std::max<std::int64_t>(
      steady_now_ns() - state.anchor_ns, 0);
  push_event(std::move(event));
}

void ClusterTraceCollector::absorb(const std::string& agent, int shard,
                                   Slot /*slot*/,
                                   const std::vector<RemoteSpan>& spans) {
  if (spans.empty()) return;
  util::MutexLock lock(mutex_);
  const auto it = rounds_.find(shard);
  // Unsolicited spans (no round ever begun on this shard) have no anchor;
  // anchor them at absorb time rather than dropping them.
  const std::int64_t anchor =
      it == rounds_.end() ? steady_now_ns() : it->second.anchor_ns;
  const int pid = agent_pid(agent);
  for (const RemoteSpan& span : spans) {
    Event event;
    event.pid = pid;
    event.tid = shard;
    event.name = span.name;
    event.task = span.task;
    event.trace_id = span.trace_id;
    event.span_id = span.span_id;
    event.parent_span = span.parent_span;
    event.start_ns = anchor + span.start_offset_ns;
    event.duration_ns = std::max<std::int64_t>(span.duration_ns, 0);
    push_event(std::move(event));
  }
}

std::vector<ClusterTraceCollector::SpanSummary>
ClusterTraceCollector::summaries() const {
  util::MutexLock lock(mutex_);
  std::map<std::string, SpanSummary> by_name;
  for (const Event& event : events_) {
    SpanSummary& s = by_name[event.name];
    if (s.count == 0) s.name = event.name;
    ++s.count;
    s.total_ns += event.duration_ns;
    s.max_ns = std::max(s.max_ns, event.duration_ns);
  }
  std::vector<SpanSummary> out;
  out.reserve(by_name.size());
  for (auto& [name, summary] : by_name) out.push_back(std::move(summary));
  return out;
}

std::size_t ClusterTraceCollector::events() const {
  util::MutexLock lock(mutex_);
  return events_.size();
}

std::uint64_t ClusterTraceCollector::dropped() const {
  util::MutexLock lock(mutex_);
  return dropped_;
}

void ClusterTraceCollector::write_chrome_trace(std::ostream& out) const {
  util::MutexLock lock(mutex_);
  std::int64_t base = 0;
  for (const Event& event : events_) {
    if (base == 0 || event.start_ns < base) base = event.start_ns;
  }
  out << "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) out << ',';
    first = false;
  };
  sep();
  out << R"({"ph":"M","pid":1,"name":"process_name","args":{"name":"leader"}})";
  for (const auto& [agent, pid] : agent_pids_) {
    sep();
    out << "{\"ph\":\"M\",\"pid\":" << pid
        << ",\"name\":\"process_name\",\"args\":{\"name\":";
    write_json_string(out, "agent:" + agent);
    out << "}}";
  }
  char buf[32];
  for (const Event& event : events_) {
    sep();
    out << "{\"ph\":\"X\",\"pid\":" << event.pid << ",\"tid\":" << event.tid
        << ",\"name\":";
    write_json_string(out, event.name);
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(event.start_ns - base) / 1000.0);
    out << ",\"ts\":" << buf;
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(event.duration_ns) / 1000.0);
    out << ",\"dur\":" << buf << ",\"args\":{\"trace_id\":\"";
    write_hex_id(out, event.trace_id);
    out << "\",\"span_id\":\"";
    write_hex_id(out, event.span_id);
    out << "\",\"parent_span\":\"";
    write_hex_id(out, event.parent_span);
    out << '"';
    if (event.task >= 0) out << ",\"task\":" << event.task;
    out << "}}";
  }
  out << "]}\n";
}

void ClusterTraceCollector::push_event(Event&& event) {
  if (events_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(event));
}

int ClusterTraceCollector::agent_pid(const std::string& agent) {
  const auto it = agent_pids_.find(agent);
  if (it != agent_pids_.end()) return it->second;
  const int pid = 2 + static_cast<int>(agent_pids_.size());
  agent_pids_.emplace(agent, pid);
  return pid;
}

}  // namespace lorasched::obs
