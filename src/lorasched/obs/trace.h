// Structured decision tracing for the pdFTSP auction (Alg. 1/2).
//
// Every decided bid produces one DecisionTraceRecord capturing the full
// "why" of the verdict, tied to the paper's quantities:
//  * candidates — Alg. 2's outer loop: one entry per (vendor, share)
//    candidate with the DP's outcome (feasible?), the candidate's cost
//    components (vendor quote q_in, energy Σ e_ikt), its welfare gain
//    b_il = b_i − q_in − Σ e_ikt, and its objective F(il) (eq. 10) under
//    the duals the DP saw.
//  * duals — the λ_kt/φ_kt prices sampled on the *chosen* schedule's
//    (node, slot) cells, pre-update: exactly the prices eq. (14) charges.
//  * objective / admitted / capacity_reject — the eq. (10) admission
//    comparison F(il) vs 0 and, when F(il) > 0, whether Alg. 1's line-8
//    ground-truth capacity check overturned it.
//  * payment — eq. (14) decomposed: vendor + energy + max λ · s̃ +
//    max φ · r̃; `charged` is what the user actually pays (0 on reject).
//
// Tracing is observation-only by contract: a policy with a sink attached
// makes bit-identical decisions to one without (tests/test_trace.cpp pins
// this down). Records serialize to JSONL (one compact object per line,
// schema documented in DESIGN.md §8) with an exact-round-trip parse-back
// helper, plus Chrome trace-event instants for Perfetto timelines.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <string>
#include <vector>

#include "lorasched/obs/json.h"
#include "lorasched/types.h"
#include "lorasched/util/mutex.h"
#include "lorasched/util/thread_annotations.h"

namespace lorasched::obs {

/// One (vendor, share) candidate from Alg. 2's outer loop.
struct CandidateTrace {
  VendorId vendor = kNoVendor;
  Money vendor_price = 0.0;  ///< q_in (0 when no vendor).
  Slot prep_delay = 0;       ///< h_in.
  double share = 0.0;        ///< Share override; 0 = the task's own batch.
  bool feasible = false;     ///< DP found a schedule inside the window.
  double objective = 0.0;    ///< F(il), eq. (10); 0 when infeasible.
  Money energy_cost = 0.0;   ///< Σ e_ikt over the candidate's run.
  double welfare_gain = 0.0; ///< b_il = b_i − q_in − Σ e_ikt.
  double norm_compute = 0.0; ///< s̃ — capacity-normalized compute volume.
  double norm_mem = 0.0;     ///< r̃ — normalized adapter-memory volume.
  Slot start = -1;           ///< First executing slot (-1 when infeasible).
  Slot completion = -1;      ///< Last executing slot.
  std::int32_t slots = 0;    ///< |run|.
};

/// λ/φ sampled at one (node, slot) cell of the chosen schedule, pre-update.
struct DualCellSample {
  NodeId node = -1;
  Slot slot = -1;
  double lambda = 0.0;
  double phi = 0.0;
};

/// Eq. (14) decomposed. For rejected bids the decomposition is the
/// would-be payment of the best candidate (hypothetical) and charged is 0.
struct PaymentTrace {
  Money vendor = 0.0;
  Money energy = 0.0;
  Money compute = 0.0;  ///< max λ^(i−1) · s̃.
  Money memory = 0.0;   ///< max φ^(i−1) · r̃.
  Money total = 0.0;    ///< Sum of the four components.
  Money charged = 0.0;  ///< What the user pays: total if admitted, else 0.
  double max_lambda = 0.0;
  double max_phi = 0.0;
};

struct DecisionTraceRecord {
  TaskId task = -1;
  Slot arrival = 0;
  Money bid = 0.0;
  bool needs_prep = false;
  std::vector<CandidateTrace> candidates;
  /// Index into `candidates` of the F(il)-maximizing feasible candidate;
  /// -1 when no candidate was feasible.
  std::int32_t chosen = -1;
  /// F(il) of the best candidate — the eq. (10) admission comparison is
  /// `objective > 0`.
  double objective = 0.0;
  bool admitted = false;
  /// F(il) > 0 but Alg. 1 line 8 (ground-truth capacity) rejected.
  bool capacity_reject = false;
  std::vector<DualCellSample> duals;
  PaymentTrace payment;
};

/// Receives one record per decided bid, synchronously, on the deciding
/// thread. Implementations must not mutate scheduler state.
class DecisionTraceSink {
 public:
  virtual ~DecisionTraceSink() = default;
  virtual void on_decision(const DecisionTraceRecord& record) = 0;
};

/// Implemented by policies that can emit decision traces (Pdftsp and
/// AdaptivePdftsp). Passing nullptr detaches.
class Traceable {
 public:
  virtual ~Traceable() = default;
  virtual void set_trace_sink(DecisionTraceSink* sink) noexcept = 0;
};

// --- JSONL serialization ----------------------------------------------------

[[nodiscard]] Json decision_to_json(const DecisionTraceRecord& record);
/// Inverse of decision_to_json; throws std::invalid_argument on schema
/// mismatch (missing members, wrong types).
[[nodiscard]] DecisionTraceRecord decision_from_json(const Json& json);
/// Parses one JSONL line (convenience: Json::parse + decision_from_json).
[[nodiscard]] DecisionTraceRecord parse_decision_line(const std::string& line);

/// Chrome trace-event instant for one decision (merged with profiler span
/// events into the exported timeline).
struct DecisionInstant {
  std::uint64_t ts_ns = 0;
  TaskId task = -1;
  bool admitted = false;
  double objective = 0.0;
  Money charged = 0.0;
};

/// The standard sink: streams each record as one JSONL line to `out`
/// (skipped when null) and keeps bounded aggregates plus Chrome-trace
/// instants. Thread-safe (the service decides on one thread, but tests and
/// multi-zone setups may not).
class DecisionTracer final : public DecisionTraceSink {
 public:
  /// `out` is borrowed, not owned; may be null for aggregation-only use.
  explicit DecisionTracer(std::ostream* out = nullptr,
                          std::size_t max_instants = 1 << 20)
      : out_(out), max_instants_(max_instants) {}

  void on_decision(const DecisionTraceRecord& record) override
      EXCLUDES(mutex_);

  [[nodiscard]] std::uint64_t records() const EXCLUDES(mutex_);
  [[nodiscard]] std::uint64_t admitted() const EXCLUDES(mutex_);
  [[nodiscard]] std::uint64_t instants_dropped() const EXCLUDES(mutex_);
  [[nodiscard]] std::vector<DecisionInstant> instants() const
      EXCLUDES(mutex_);
  void flush() EXCLUDES(mutex_);

 private:
  mutable util::Mutex mutex_;
  std::ostream* out_ GUARDED_BY(mutex_);
  const std::size_t max_instants_;
  std::uint64_t records_ GUARDED_BY(mutex_) = 0;
  std::uint64_t admitted_ GUARDED_BY(mutex_) = 0;
  std::uint64_t dropped_ GUARDED_BY(mutex_) = 0;
  std::vector<DecisionInstant> instants_ GUARDED_BY(mutex_);
};

/// Writes span timeline events and decision instants as one Chrome
/// trace-event JSON document (Perfetto-loadable): spans as "X" duration
/// events (from Profiler::timeline_events()), decisions as "i" instants on
/// their own track.
void write_chrome_trace(std::ostream& out,
                        const std::vector<DecisionInstant>& decisions);

}  // namespace lorasched::obs
