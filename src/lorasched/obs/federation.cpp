#include "lorasched/obs/federation.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <set>

namespace lorasched::obs {

namespace {

const char* kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "unknown";
}

void write_number(std::ostream& out, double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out << buf;
}

void write_labels(
    std::ostream& out,
    const std::vector<std::pair<std::string, std::string>>& labels,
    const char* le = nullptr, double le_value = 0.0, bool le_inf = false) {
  if (labels.empty() && le == nullptr) return;
  out << '{';
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out << ',';
    first = false;
    out << key << "=\"" << escape_label_value(value) << '"';
  }
  if (le != nullptr) {
    if (!first) out << ',';
    out << le << "=\"";
    if (le_inf) {
      out << "+Inf";
    } else {
      write_number(out, le_value);
    }
    out << '"';
  }
  out << '}';
}

/// One labeled metric line set (value line for counters/gauges, the
/// bucket/sum/count family for histograms). Shared by the standalone
/// labeled writer and the federated exposition.
void write_series(std::ostream& out, const std::string& name, MetricKind kind,
                  double value, const HistogramSnapshot& hist,
                  const std::vector<std::pair<std::string, std::string>>&
                      labels) {
  switch (kind) {
    case MetricKind::kCounter:
    case MetricKind::kGauge:
      out << name;
      write_labels(out, labels);
      out << ' ';
      write_number(out, value);
      out << '\n';
      break;
    case MetricKind::kHistogram: {
      // Same underflow-folding convention as
      // MetricsRegistry::write_prometheus: the underflow bucket joins the
      // first finite bucket's cumulative so placement and exposition agree
      // at the min edge.
      std::uint64_t cumulative = hist.counts.empty() ? 0 : hist.counts.front();
      if (!hist.counts.empty()) {
        for (std::size_t i = 0; i < hist.finite_buckets(); ++i) {
          cumulative += hist.counts[i + 1];
          out << name << "_bucket";
          write_labels(out, labels, "le", hist.bucket_upper(i));
          out << ' ' << cumulative << '\n';
        }
        cumulative += hist.counts.back();
      }
      out << name << "_bucket";
      write_labels(out, labels, "le", 0.0, /*le_inf=*/true);
      out << ' ' << cumulative << '\n';
      out << name << "_sum";
      write_labels(out, labels);
      out << ' ';
      write_number(out, hist.sum);
      out << '\n';
      out << name << "_count";
      write_labels(out, labels);
      out << ' ' << hist.count << '\n';
      break;
    }
  }
}

void write_headers(std::ostream& out, const std::string& name,
                   const std::string& help, MetricKind kind) {
  if (!help.empty()) out << "# HELP " << name << ' ' << help << '\n';
  out << "# TYPE " << name << ' ' << kind_name(kind) << '\n';
}

}  // namespace

std::string escape_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c; break;
    }
  }
  return out;
}

void merge_histogram(HistogramSnapshot& into, const HistogramSnapshot& from) {
  if (from.count == 0 && from.counts.empty()) return;
  if (into.count == 0 && into.counts.empty()) {
    into = from;
    return;
  }
  const std::size_t shared = std::min(into.counts.size(), from.counts.size());
  for (std::size_t i = 0; i < shared; ++i) into.counts[i] += from.counts[i];
  // Buckets past the shared prefix (mismatched grids) have nowhere exact
  // to land; fold them into the overflow bucket so the total is preserved.
  if (!into.counts.empty()) {
    for (std::size_t i = shared; i < from.counts.size(); ++i) {
      into.counts.back() += from.counts[i];
    }
  }
  into.sum += from.sum;
  if (from.count > 0) {
    if (into.count == 0) {
      into.min_seen = from.min_seen;
      into.max_seen = from.max_seen;
    } else {
      into.min_seen = std::min(into.min_seen, from.min_seen);
      into.max_seen = std::max(into.max_seen, from.max_seen);
    }
  }
  into.count += from.count;
}

void write_prometheus_labeled(
    std::ostream& out, const std::vector<MetricSnapshot>& metrics,
    const std::vector<std::pair<std::string, std::string>>& labels,
    bool headers) {
  for (const MetricSnapshot& metric : metrics) {
    if (headers) write_headers(out, metric.name, metric.help, metric.kind);
    write_series(out, metric.name, metric.kind, metric.value,
                 metric.histogram, labels);
  }
}

HistogramSnapshot FederatedRegistry::exported_histogram(const Series& s) {
  HistogramSnapshot merged = s.hist_base;
  merge_histogram(merged, s.hist_last);
  return merged;
}

bool FederatedRegistry::absorb(const std::string& agent, std::uint64_t seq,
                               const std::vector<MetricsGroup>& groups) {
  util::MutexLock lock(mutex_);
  AgentState& state = agents_[agent];
  if (state.dead) return false;
  if (state.have_seq && seq == state.last_seq) return false;  // duplicate
  state.have_seq = true;
  state.last_seq = seq;
  for (const MetricsGroup& group : groups) {
    for (const MetricSnapshot& metric : group.metrics) {
      Series& series = series_[SeriesKey{metric.name, agent, group.shard}];
      series.kind = metric.kind;
      if (series.help.empty()) series.help = metric.help;
      switch (metric.kind) {
        case MetricKind::kCounter:
          // Monotonicity across source restarts: a value below the last
          // seen one means the counter restarted from (near) zero — the
          // old window is banked into the base.
          if (metric.value < series.last) series.base += series.last;
          series.last = metric.value;
          break;
        case MetricKind::kGauge:
          series.base = 0.0;
          series.last = metric.value;
          break;
        case MetricKind::kHistogram:
          if (metric.histogram.count < series.hist_last.count) {
            merge_histogram(series.hist_base, series.hist_last);
          }
          series.hist_last = metric.histogram;
          break;
      }
    }
  }
  return true;
}

void FederatedRegistry::mark_dead(const std::string& agent) {
  util::MutexLock lock(mutex_);
  agents_[agent].dead = true;
}

void FederatedRegistry::mark_alive(const std::string& agent) {
  util::MutexLock lock(mutex_);
  agents_[agent].dead = false;
}

double FederatedRegistry::value(const std::string& agent, std::int32_t shard,
                                std::string_view name) const {
  util::MutexLock lock(mutex_);
  const auto it = series_.find(SeriesKey{std::string(name), agent, shard});
  return it == series_.end() ? 0.0 : exported(it->second);
}

HistogramSnapshot FederatedRegistry::histogram(const std::string& agent,
                                               std::int32_t shard,
                                               std::string_view name) const {
  util::MutexLock lock(mutex_);
  const auto it = series_.find(SeriesKey{std::string(name), agent, shard});
  return it == series_.end() ? HistogramSnapshot{}
                             : exported_histogram(it->second);
}

double FederatedRegistry::aggregate_value(std::string_view name) const {
  util::MutexLock lock(mutex_);
  double total = 0.0;
  for (const auto& [key, series] : series_) {
    if (key.name == name) total += exported(series);
  }
  return total;
}

HistogramSnapshot FederatedRegistry::aggregate_histogram(
    std::string_view name) const {
  util::MutexLock lock(mutex_);
  HistogramSnapshot merged;
  for (const auto& [key, series] : series_) {
    if (key.name != name) continue;
    merge_histogram(merged, series.hist_base);
    merge_histogram(merged, series.hist_last);
  }
  return merged;
}

std::size_t FederatedRegistry::series_count() const {
  util::MutexLock lock(mutex_);
  return series_.size();
}

std::vector<std::pair<std::string, bool>> FederatedRegistry::agents() const {
  util::MutexLock lock(mutex_);
  std::vector<std::pair<std::string, bool>> out;
  out.reserve(agents_.size());
  for (const auto& [name, state] : agents_) {
    out.emplace_back(name, !state.dead);
  }
  return out;
}

void FederatedRegistry::write_prometheus(std::ostream& out) const {
  util::MutexLock lock(mutex_);
  // series_ is ordered by (name, agent, shard), so one pass emits each
  // name's header once followed by its labeled series.
  const std::string* current = nullptr;
  for (const auto& [key, series] : series_) {
    if (current == nullptr || *current != key.name) {
      write_headers(out, key.name, series.help, series.kind);
      current = &key.name;
    }
    std::vector<std::pair<std::string, std::string>> labels;
    labels.emplace_back("agent", key.agent);
    if (key.shard >= 0) labels.emplace_back("shard", std::to_string(key.shard));
    write_series(out, key.name, series.kind, exported(series),
                 exported_histogram(series), labels);
  }
}

}  // namespace lorasched::obs
