// RAII profiling spans for the scheduler's hot paths.
//
// Usage at a call site:
//
//     void ScheduleDp::find(...) {
//       LORASCHED_SPAN("dp/find");
//       ...
//     }
//
// The macro declares a function-local static Site (interned once, on first
// execution) and an RAII ScopedSpan. Cost model:
//  * Profiling disabled (the default): the span constructor is one relaxed
//    atomic load and a branch — no clock call, no allocation. This is the
//    state production binaries run in unless --trace-out / profiling is
//    requested, so instrumented hot paths stay at their uninstrumented
//    speed.
//  * Profiling enabled: two steady_clock reads plus a handful of relaxed
//    atomic adds per span. Aggregates (count, total/self nanoseconds) are
//    kept per site in fixed atomics; no per-event allocation.
//  * Timeline recording additionally enabled: each completed span appends
//    one event (site, thread, start, duration) to a bounded buffer for
//    Chrome trace-event export (Perfetto); events beyond the cap are
//    dropped and counted.
//
// Self time: a thread-local span stack attributes each span's duration to
// itself minus its children, so snapshot() can answer "where does decision
// time actually go" without double counting nested spans.
//
// The profiler is a process-wide singleton — spans fire from arbitrary
// layers (DP, duals, queue, service loop) and threads, and a global toggle
// is what lets the disabled path stay branch-cheap. It is observation-only
// state: nothing in the scheduler reads it back, so toggling it can never
// change a decision.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "lorasched/util/mutex.h"
#include "lorasched/util/thread_annotations.h"

namespace lorasched::obs {

/// Aggregated statistics for one instrumented site.
struct SpanStats {
  std::string name;
  std::uint64_t count = 0;
  double total_seconds = 0.0;  ///< Inclusive of nested spans.
  double self_seconds = 0.0;   ///< Exclusive of nested spans.
};

/// One timeline event (Chrome trace "X" phase): a completed span instance.
struct SpanEvent {
  std::uint32_t site = 0;    ///< Index into Profiler's site table.
  std::uint32_t thread = 0;  ///< Dense per-process thread number.
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
};

namespace detail {
struct SiteSlot;
}

class Profiler {
 public:
  static Profiler& instance() noexcept;

  /// Toggles span aggregation at runtime (observation-only; spans created
  /// while disabled cost one atomic load).
  void set_enabled(bool on) noexcept;
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Toggles timeline (Chrome trace) recording on top of aggregation;
  /// `max_events` bounds memory (events past the cap are dropped and
  /// counted). Implies nothing about set_enabled — enable both for a
  /// timeline.
  void set_timeline(bool on, std::size_t max_events = 1 << 20)
      EXCLUDES(mutex_);
  [[nodiscard]] bool timeline_enabled() const noexcept {
    return timeline_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::vector<SpanStats> snapshot() const EXCLUDES(mutex_);
  [[nodiscard]] std::vector<SpanEvent> timeline_events() const
      EXCLUDES(mutex_);
  [[nodiscard]] std::string site_name(std::uint32_t site) const
      EXCLUDES(mutex_);
  [[nodiscard]] std::uint64_t timeline_dropped() const noexcept;

  /// Zeroes every site aggregate and clears the timeline buffer. Sites
  /// themselves (the interned names) persist for the process lifetime.
  void reset() EXCLUDES(mutex_);

 private:
  friend struct detail::SiteSlot;
  friend class ScopedSpan;

  Profiler() = default;

  std::uint32_t register_site(const char* name, detail::SiteSlot* slot)
      EXCLUDES(mutex_);
  void append_event(const SpanEvent& event) EXCLUDES(mutex_);

  std::atomic<bool> enabled_{false};
  std::atomic<bool> timeline_{false};

  mutable util::Mutex mutex_;  // guards sites_ growth and the timeline buffer
  std::vector<detail::SiteSlot*> sites_ GUARDED_BY(mutex_);
  std::vector<SpanEvent> events_ GUARDED_BY(mutex_);
  std::size_t max_events_ GUARDED_BY(mutex_) = 0;
  std::atomic<std::uint64_t> dropped_{0};
};

namespace detail {

/// Per-site accumulator; one static instance per LORASCHED_SPAN call site.
struct SiteSlot {
  explicit SiteSlot(const char* site_name)
      : name(site_name),
        index(Profiler::instance().register_site(site_name, this)) {}

  const char* name;
  std::uint32_t index;
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> total_ns{0};
  std::atomic<std::uint64_t> child_ns{0};
};

}  // namespace detail

class ScopedSpan {
 public:
  explicit ScopedSpan(detail::SiteSlot& site) noexcept;
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  detail::SiteSlot* site_ = nullptr;  // null when profiling was disabled
  std::uint64_t start_ns_ = 0;
  std::uint64_t child_ns_ = 0;
  ScopedSpan* parent_ = nullptr;
};

// Two-level expansion so __LINE__ stringizes into unique identifiers even
// when several spans share a scope.
#define LORASCHED_SPAN_CONCAT_INNER(a, b) a##b
#define LORASCHED_SPAN_CONCAT(a, b) LORASCHED_SPAN_CONCAT_INNER(a, b)
#define LORASCHED_SPAN(name_literal)                                     \
  static ::lorasched::obs::detail::SiteSlot LORASCHED_SPAN_CONCAT(       \
      lorasched_span_site_, __LINE__){name_literal};                     \
  const ::lorasched::obs::ScopedSpan LORASCHED_SPAN_CONCAT(              \
      lorasched_span_, __LINE__){LORASCHED_SPAN_CONCAT(                  \
      lorasched_span_site_, __LINE__)}

}  // namespace lorasched::obs
