#include "lorasched/obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <ostream>

#include "lorasched/obs/span.h"
#include "lorasched/util/timing.h"

namespace lorasched::obs {

namespace {

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          util::MonoClock::now().time_since_epoch())
          .count());
}

Json candidate_to_json(const CandidateTrace& c) {
  Json::Object o;
  o.emplace("vendor", Json(c.vendor));
  o.emplace("vendor_price", Json(c.vendor_price));
  o.emplace("prep_delay", Json(c.prep_delay));
  o.emplace("share", Json(c.share));
  o.emplace("feasible", Json(c.feasible));
  o.emplace("objective", Json(c.objective));
  o.emplace("energy_cost", Json(c.energy_cost));
  o.emplace("welfare_gain", Json(c.welfare_gain));
  o.emplace("norm_compute", Json(c.norm_compute));
  o.emplace("norm_mem", Json(c.norm_mem));
  o.emplace("start", Json(c.start));
  o.emplace("completion", Json(c.completion));
  o.emplace("slots", Json(c.slots));
  return Json(std::move(o));
}

CandidateTrace candidate_from_json(const Json& json) {
  CandidateTrace c;
  c.vendor = static_cast<VendorId>(json.at("vendor").as_number());
  c.vendor_price = json.at("vendor_price").as_number();
  c.prep_delay = static_cast<Slot>(json.at("prep_delay").as_number());
  c.share = json.at("share").as_number();
  c.feasible = json.at("feasible").as_bool();
  c.objective = json.at("objective").as_number();
  c.energy_cost = json.at("energy_cost").as_number();
  c.welfare_gain = json.at("welfare_gain").as_number();
  c.norm_compute = json.at("norm_compute").as_number();
  c.norm_mem = json.at("norm_mem").as_number();
  c.start = static_cast<Slot>(json.at("start").as_number());
  c.completion = static_cast<Slot>(json.at("completion").as_number());
  c.slots = static_cast<std::int32_t>(json.at("slots").as_number());
  return c;
}

}  // namespace

Json decision_to_json(const DecisionTraceRecord& record) {
  Json::Object o;
  o.emplace("type", Json("decision"));
  o.emplace("task", Json(record.task));
  o.emplace("arrival", Json(record.arrival));
  o.emplace("bid", Json(record.bid));
  o.emplace("needs_prep", Json(record.needs_prep));
  Json::Array candidates;
  candidates.reserve(record.candidates.size());
  for (const CandidateTrace& c : record.candidates) {
    candidates.push_back(candidate_to_json(c));
  }
  o.emplace("candidates", Json(std::move(candidates)));
  o.emplace("chosen", Json(record.chosen));
  o.emplace("objective", Json(record.objective));
  o.emplace("admitted", Json(record.admitted));
  o.emplace("capacity_reject", Json(record.capacity_reject));
  Json::Array duals;
  duals.reserve(record.duals.size());
  for (const DualCellSample& cell : record.duals) {
    Json::Object d;
    d.emplace("node", Json(cell.node));
    d.emplace("slot", Json(cell.slot));
    d.emplace("lambda", Json(cell.lambda));
    d.emplace("phi", Json(cell.phi));
    duals.push_back(Json(std::move(d)));
  }
  o.emplace("duals", Json(std::move(duals)));
  Json::Object payment;
  payment.emplace("vendor", Json(record.payment.vendor));
  payment.emplace("energy", Json(record.payment.energy));
  payment.emplace("compute", Json(record.payment.compute));
  payment.emplace("memory", Json(record.payment.memory));
  payment.emplace("total", Json(record.payment.total));
  payment.emplace("charged", Json(record.payment.charged));
  payment.emplace("max_lambda", Json(record.payment.max_lambda));
  payment.emplace("max_phi", Json(record.payment.max_phi));
  o.emplace("payment", Json(std::move(payment)));
  return Json(std::move(o));
}

DecisionTraceRecord decision_from_json(const Json& json) {
  DecisionTraceRecord record;
  record.task = static_cast<TaskId>(json.at("task").as_number());
  record.arrival = static_cast<Slot>(json.at("arrival").as_number());
  record.bid = json.at("bid").as_number();
  record.needs_prep = json.at("needs_prep").as_bool();
  for (const Json& c : json.at("candidates").as_array()) {
    record.candidates.push_back(candidate_from_json(c));
  }
  record.chosen = static_cast<std::int32_t>(json.at("chosen").as_number());
  record.objective = json.at("objective").as_number();
  record.admitted = json.at("admitted").as_bool();
  record.capacity_reject = json.at("capacity_reject").as_bool();
  for (const Json& d : json.at("duals").as_array()) {
    DualCellSample cell;
    cell.node = static_cast<NodeId>(d.at("node").as_number());
    cell.slot = static_cast<Slot>(d.at("slot").as_number());
    cell.lambda = d.at("lambda").as_number();
    cell.phi = d.at("phi").as_number();
    record.duals.push_back(cell);
  }
  const Json& payment = json.at("payment");
  record.payment.vendor = payment.at("vendor").as_number();
  record.payment.energy = payment.at("energy").as_number();
  record.payment.compute = payment.at("compute").as_number();
  record.payment.memory = payment.at("memory").as_number();
  record.payment.total = payment.at("total").as_number();
  record.payment.charged = payment.at("charged").as_number();
  record.payment.max_lambda = payment.at("max_lambda").as_number();
  record.payment.max_phi = payment.at("max_phi").as_number();
  return record;
}

DecisionTraceRecord parse_decision_line(const std::string& line) {
  return decision_from_json(Json::parse(line));
}

void DecisionTracer::on_decision(const DecisionTraceRecord& record) {
  const std::uint64_t ts = now_ns();
  util::MutexLock lock(mutex_);
  ++records_;
  if (record.admitted) ++admitted_;
  if (out_ != nullptr) {
    decision_to_json(record).write(*out_);
    *out_ << '\n';
  }
  if (instants_.size() < max_instants_) {
    instants_.push_back(DecisionInstant{ts, record.task, record.admitted,
                                        record.objective,
                                        record.payment.charged});
  } else {
    ++dropped_;
  }
}

std::uint64_t DecisionTracer::records() const {
  util::MutexLock lock(mutex_);
  return records_;
}

std::uint64_t DecisionTracer::admitted() const {
  util::MutexLock lock(mutex_);
  return admitted_;
}

std::uint64_t DecisionTracer::instants_dropped() const {
  util::MutexLock lock(mutex_);
  return dropped_;
}

std::vector<DecisionInstant> DecisionTracer::instants() const {
  util::MutexLock lock(mutex_);
  return instants_;
}

void DecisionTracer::flush() {
  util::MutexLock lock(mutex_);
  if (out_ != nullptr) out_->flush();
}

void write_chrome_trace(std::ostream& out,
                        const std::vector<DecisionInstant>& decisions) {
  const Profiler& profiler = Profiler::instance();
  const std::vector<SpanEvent> spans = profiler.timeline_events();

  std::uint64_t base = std::numeric_limits<std::uint64_t>::max();
  for (const SpanEvent& event : spans) base = std::min(base, event.start_ns);
  for (const DecisionInstant& d : decisions) base = std::min(base, d.ts_ns);
  if (base == std::numeric_limits<std::uint64_t>::max()) base = 0;

  out << "{\"traceEvents\":[";
  bool first = true;
  char buf[96];
  for (const SpanEvent& event : spans) {
    if (!first) out << ',';
    first = false;
    out << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << event.thread << ",\"name\":";
    write_json_string(out, profiler.site_name(event.site));
    std::snprintf(buf, sizeof(buf), ",\"ts\":%.3f,\"dur\":%.3f}",
                  static_cast<double>(event.start_ns - base) * 1e-3,
                  static_cast<double>(event.duration_ns) * 1e-3);
    out << buf;
  }
  for (const DecisionInstant& d : decisions) {
    if (!first) out << ',';
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"i\",\"pid\":1,\"tid\":0,\"s\":\"p\",\"ts\":%.3f",
                  static_cast<double>(d.ts_ns - base) * 1e-3);
    out << buf << ",\"name\":";
    write_json_string(out, (d.admitted ? "admit task " : "reject task ") +
                               std::to_string(d.task));
    std::snprintf(buf, sizeof(buf),
                  ",\"args\":{\"objective\":%.17g,\"charged\":%.17g}}",
                  d.objective, d.charged);
    out << buf;
  }
  out << "]}";
}

}  // namespace lorasched::obs
