#include "lorasched/obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace lorasched::obs {

namespace {

[[noreturn]] void kind_error(const char* wanted) {
  throw std::invalid_argument(std::string("json value is not a ") + wanted);
}

}  // namespace

bool Json::as_bool() const {
  if (kind_ != Kind::kBool) kind_error("bool");
  return bool_;
}

double Json::as_number() const {
  if (kind_ != Kind::kNumber) kind_error("number");
  return number_;
}

const std::string& Json::as_string() const {
  if (kind_ != Kind::kString) kind_error("string");
  return string_;
}

const Json::Array& Json::as_array() const {
  if (kind_ != Kind::kArray) kind_error("array");
  return array_;
}

const Json::Object& Json::as_object() const {
  if (kind_ != Kind::kObject) kind_error("object");
  return object_;
}

Json::Array& Json::as_array() {
  if (kind_ != Kind::kArray) kind_error("array");
  return array_;
}

Json::Object& Json::as_object() {
  if (kind_ != Kind::kObject) kind_error("object");
  return object_;
}

const Json* Json::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

const Json& Json::at(const std::string& key) const {
  const Json* value = find(key);
  if (value == nullptr) {
    throw std::invalid_argument("json object has no member '" + key + "'");
  }
  return *value;
}

void write_json_string(std::ostream& out, std::string_view text) {
  out << '"';
  for (const char c : text) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\b': out << "\\b"; break;
      case '\f': out << "\\f"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

void Json::write(std::ostream& out) const {
  switch (kind_) {
    case Kind::kNull: out << "null"; break;
    case Kind::kBool: out << (bool_ ? "true" : "false"); break;
    case Kind::kNumber: {
      if (!std::isfinite(number_)) {
        // JSON has no Inf/NaN; null is the conventional stand-in.
        out << "null";
        break;
      }
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", number_);
      out << buf;
      break;
    }
    case Kind::kString: write_json_string(out, string_); break;
    case Kind::kArray: {
      out << '[';
      bool first = true;
      for (const Json& item : array_) {
        if (!first) out << ',';
        first = false;
        item.write(out);
      }
      out << ']';
      break;
    }
    case Kind::kObject: {
      out << '{';
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out << ',';
        first = false;
        write_json_string(out, key);
        out << ':';
        value.write(out);
      }
      out << '}';
      break;
    }
  }
}

std::string Json::dump() const {
  std::ostringstream out;
  write(out);
  return out.str();
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing content after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw std::invalid_argument("json parse error at byte " +
                                std::to_string(pos_) + ": " + what);
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Json parse_value() {
    skip_whitespace();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Json(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Json(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Json();
      default: return parse_number();
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("malformed number");
    return Json(value);
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // UTF-8 encode a BMP code point (surrogate pairs unsupported).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Json parse_array() {
    expect('[');
    Json::Array items;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(items));
    }
    while (true) {
      items.push_back(parse_value());
      skip_whitespace();
      const char c = peek();
      ++pos_;
      if (c == ']') return Json(std::move(items));
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  Json parse_object() {
    expect('{');
    Json::Object members;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(members));
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      members.insert_or_assign(std::move(key), parse_value());
      skip_whitespace();
      const char c = peek();
      ++pos_;
      if (c == '}') return Json(std::move(members));
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace lorasched::obs
