#include "lorasched/obs/span.h"

#include <algorithm>

#include "lorasched/util/timing.h"

namespace lorasched::obs {

namespace {

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          util::MonoClock::now().time_since_epoch())
          .count());
}

std::uint32_t this_thread_number() noexcept {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t number =
      next.fetch_add(1, std::memory_order_relaxed);
  return number;
}

// The innermost open span on this thread (for self-time attribution).
thread_local ScopedSpan* t_current_span = nullptr;

}  // namespace

Profiler& Profiler::instance() noexcept {
  static Profiler profiler;
  return profiler;
}

void Profiler::set_enabled(bool on) noexcept {
  enabled_.store(on, std::memory_order_relaxed);
}

void Profiler::set_timeline(bool on, std::size_t max_events) {
  util::MutexLock lock(mutex_);
  timeline_.store(on, std::memory_order_relaxed);
  max_events_ = on ? max_events : 0;
  if (on) events_.reserve(std::min<std::size_t>(max_events, 4096));
}

std::uint32_t Profiler::register_site(const char* name,
                                      detail::SiteSlot* slot) {
  (void)name;
  util::MutexLock lock(mutex_);
  sites_.push_back(slot);
  return static_cast<std::uint32_t>(sites_.size() - 1);
}

void Profiler::append_event(const SpanEvent& event) {
  util::MutexLock lock(mutex_);
  if (!timeline_.load(std::memory_order_relaxed)) return;
  if (events_.size() >= max_events_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  events_.push_back(event);
}

std::vector<SpanStats> Profiler::snapshot() const {
  util::MutexLock lock(mutex_);
  std::vector<SpanStats> out;
  out.reserve(sites_.size());
  for (const detail::SiteSlot* site : sites_) {
    SpanStats stats;
    stats.name = site->name;
    stats.count = site->count.load(std::memory_order_relaxed);
    const auto total = site->total_ns.load(std::memory_order_relaxed);
    const auto child = site->child_ns.load(std::memory_order_relaxed);
    stats.total_seconds = static_cast<double>(total) * 1e-9;
    stats.self_seconds =
        static_cast<double>(total > child ? total - child : 0) * 1e-9;
    out.push_back(std::move(stats));
  }
  return out;
}

std::vector<SpanEvent> Profiler::timeline_events() const {
  util::MutexLock lock(mutex_);
  return events_;
}

std::string Profiler::site_name(std::uint32_t site) const {
  util::MutexLock lock(mutex_);
  if (site >= sites_.size()) return "?";
  return sites_[site]->name;
}

std::uint64_t Profiler::timeline_dropped() const noexcept {
  return dropped_.load(std::memory_order_relaxed);
}

void Profiler::reset() {
  util::MutexLock lock(mutex_);
  for (detail::SiteSlot* site : sites_) {
    site->count.store(0, std::memory_order_relaxed);
    site->total_ns.store(0, std::memory_order_relaxed);
    site->child_ns.store(0, std::memory_order_relaxed);
  }
  events_.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

ScopedSpan::ScopedSpan(detail::SiteSlot& site) noexcept {
  Profiler& profiler = Profiler::instance();
  if (!profiler.enabled()) return;  // disabled: one relaxed load, done
  site_ = &site;
  parent_ = t_current_span;
  t_current_span = this;
  start_ns_ = now_ns();
}

ScopedSpan::~ScopedSpan() {
  if (site_ == nullptr) return;
  const std::uint64_t duration = now_ns() - start_ns_;
  site_->count.fetch_add(1, std::memory_order_relaxed);
  site_->total_ns.fetch_add(duration, std::memory_order_relaxed);
  site_->child_ns.fetch_add(child_ns_, std::memory_order_relaxed);
  t_current_span = parent_;
  if (parent_ != nullptr) parent_->child_ns_ += duration;
  Profiler& profiler = Profiler::instance();
  if (profiler.timeline_enabled()) {
    profiler.append_event(SpanEvent{site_->index, this_thread_number(),
                                    start_ns_, duration});
  }
}

}  // namespace lorasched::obs
