// Cross-process bid tracing (DESIGN.md §12).
//
// A decision round that travels leader→agent→leader used to leave two
// disjoint trace fragments: the leader's round span and the agent's DP
// spans, each on its own process clock with no shared ids. This module
// stitches them:
//
//  * The leader's ClusterTraceCollector mints a RoundTraceCtx per
//    (shard, round) — a trace id shared by every shard of the slot and a
//    span id for the leader's bid span. The context rides on each Offer
//    frame (trace_id, parent_span).
//  * The agent measures its round and per-decision DP work as RemoteSpans
//    whose parent ids chain back to the leader's span, with start offsets
//    relative to the agent's round start (no cross-host clock needed),
//    and ships them home inside RoundResults.
//  * absorb() re-anchors the offsets on the leader's steady clock at the
//    moment the leader armed that round, producing one merged Chrome
//    trace where agent DP spans nest under leader bid spans.
//
// Ids are derived deterministically (FNV-1a over logical coordinates:
// slot, shard, round index, task id) — never from the wall clock — so two
// runs of the same scenario produce the same span graph. Timestamps are
// steady-clock and observation-only: with the collector detached the
// Offer trace fields are zero and decisions are bit-identical
// (tests pin this).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "lorasched/types.h"
#include "lorasched/util/mutex.h"
#include "lorasched/util/thread_annotations.h"

namespace lorasched::obs {

/// One FNV-1a absorption step. Chain from kTraceSeed (or a parent id) to
/// derive child ids from logical coordinates.
[[nodiscard]] constexpr std::uint64_t trace_mix(std::uint64_t seed,
                                                std::uint64_t value) noexcept {
  // FNV-1a, one 64-bit input absorbed bytewise.
  std::uint64_t h = seed;
  for (int i = 0; i < 8; ++i) {
    h ^= (value >> (8 * i)) & 0xffU;
    h *= 1099511628211ULL;
  }
  return h == 0 ? 1 : h;  // 0 is the "tracing off" sentinel on the wire
}

inline constexpr std::uint64_t kTraceSeed = 14695981039346656037ULL;

/// One span measured on a remote process, shipped inside RoundResults.
/// `start_offset_ns` is relative to the remote round start; the collector
/// re-anchors it on the leader's clock.
struct RemoteSpan {
  std::string name;
  std::int64_t task = -1;  ///< TaskId when the span covers one bid; -1 else.
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span = 0;
  std::int64_t start_offset_ns = 0;
  std::int64_t duration_ns = 0;
};

/// Trace context for one (shard, round): zero-initialized means tracing is
/// off and the Offer frames carry zeros.
struct RoundTraceCtx {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  [[nodiscard]] bool active() const noexcept { return trace_id != 0; }
};

/// Leader-side collector: mints round contexts, records the leader's bid
/// spans, re-anchors agent spans, and writes the merged Chrome trace.
/// Thread-safe (shards round concurrently).
class ClusterTraceCollector {
 public:
  explicit ClusterTraceCollector(std::size_t max_events = 1 << 20)
      : max_events_(max_events) {}
  ClusterTraceCollector(const ClusterTraceCollector&) = delete;
  ClusterTraceCollector& operator=(const ClusterTraceCollector&) = delete;

  /// Opens the leader's bid span for this shard's next round of `slot` and
  /// returns the context to stamp on the round's Offer frames.
  RoundTraceCtx begin_round(int shard, Slot slot) EXCLUDES(mutex_);
  /// Closes the shard's open bid span (duration = begin→now).
  void end_round(int shard) EXCLUDES(mutex_);

  /// Re-anchors `spans` from `agent` (pid-mapped in first-seen order) at
  /// the leader-side start of the shard's current round.
  void absorb(const std::string& agent, int shard, Slot slot,
              const std::vector<RemoteSpan>& spans) EXCLUDES(mutex_);

  struct SpanSummary {
    std::string name;
    std::uint64_t count = 0;
    std::int64_t total_ns = 0;
    std::int64_t max_ns = 0;
  };
  /// Per-name aggregates over every recorded span (name-sorted) — the
  /// /tracez payload.
  [[nodiscard]] std::vector<SpanSummary> summaries() const
      EXCLUDES(mutex_);

  [[nodiscard]] std::size_t events() const EXCLUDES(mutex_);
  [[nodiscard]] std::uint64_t dropped() const EXCLUDES(mutex_);

  /// One merged Chrome trace-event JSON document: pid 1 is the leader,
  /// agents get pids 2+ in first-seen order, tid is the shard id, and
  /// every X event carries trace/span/parent ids in args.
  void write_chrome_trace(std::ostream& out) const EXCLUDES(mutex_);

 private:
  struct Event {
    int pid = 1;
    int tid = 0;
    std::string name;
    std::int64_t task = -1;
    std::uint64_t trace_id = 0;
    std::uint64_t span_id = 0;
    std::uint64_t parent_span = 0;
    std::int64_t start_ns = 0;
    std::int64_t duration_ns = 0;
  };

  struct RoundState {
    RoundTraceCtx ctx;
    Slot slot = -1;
    std::int64_t anchor_ns = 0;  ///< Leader steady clock at begin_round.
    bool open = false;
    std::uint64_t rounds = 0;  ///< Rounds begun on this shard (id salt).
  };

  void push_event(Event&& event) REQUIRES(mutex_);
  int agent_pid(const std::string& agent) REQUIRES(mutex_);

  const std::size_t max_events_;
  mutable util::Mutex mutex_;
  std::map<int, RoundState> rounds_ GUARDED_BY(mutex_);
  std::map<std::string, int> agent_pids_ GUARDED_BY(mutex_);
  std::vector<Event> events_ GUARDED_BY(mutex_);
  std::uint64_t dropped_ GUARDED_BY(mutex_) = 0;
};

}  // namespace lorasched::obs
