// Decision-subscriber interface: downstream consumers of the admission
// service's irrevocable outcomes (billing, the executor that actually
// launches fine-tuning jobs, dashboards). Callbacks fire on the service's
// consumer thread, synchronously, in decision order — a slow subscriber
// stalls the slot loop, so heavy work belongs on the subscriber's own
// queue.
#pragma once

#include "lorasched/core/schedule.h"
#include "lorasched/sim/metrics.h"
#include "lorasched/types.h"

namespace lorasched::service {

/// Per-slot service telemetry, emitted after each slot is decided.
struct SlotReport {
  Slot slot = 0;
  /// Bids moved out of the ingest queue while assembling this slot.
  std::size_t drained = 0;
  /// Bids decided at this slot (drained-now + previously pending).
  std::size_t batch = 0;
  /// Bids still waiting for a future slot after this one was decided.
  std::size_t pending = 0;
  /// Ingest-queue depth right after the drain (bids racing in mid-slot).
  std::size_t queue_depth = 0;
  /// Wall-clock seconds the policy spent deciding the whole batch.
  double decide_seconds = 0.0;
};

class DecisionSubscriber {
 public:
  virtual ~DecisionSubscriber() = default;

  /// An admitted bid: the outcome (payment, completion, costs) plus the
  /// committed execution plan.
  virtual void on_admitted(const TaskOutcome& outcome,
                           const Schedule& schedule) {
    (void)outcome;
    (void)schedule;
  }

  /// A rejected bid (by the policy, or shed at ingestion for lateness).
  virtual void on_rejected(const TaskOutcome& outcome) { (void)outcome; }

  /// Payment event for an admitted bid — fires after on_admitted, carrying
  /// the charge of eq. (14). Billing pipelines subscribe here.
  virtual void on_payment(TaskId task, Money payment) {
    (void)task;
    (void)payment;
  }

  /// End-of-slot telemetry.
  virtual void on_slot_end(const SlotReport& report) { (void)report; }
};

}  // namespace lorasched::service
