#include "lorasched/service/service_metrics.h"

namespace lorasched::service {

namespace {

// Decision latencies: 100ns .. 100s covers everything from a cache-warm
// greedy decision to a pathological DP on a huge cluster.
obs::HistogramOptions decide_histogram_options() {
  obs::HistogramOptions options;
  options.min = 1e-7;
  options.max = 100.0;
  options.buckets_per_octave = 8;
  return options;
}

}  // namespace

ServiceMetrics::ServiceMetrics()
    : ingested_(registry_.counter("service_bids_ingested_total",
                                  "Bids accepted into the ingest queue")),
      decided_(registry_.counter("service_bids_decided_total",
                                 "Bids the policy decided (admit or reject)")),
      admitted_(registry_.counter("service_bids_admitted_total",
                                  "Bids admitted by the policy")),
      rejected_(registry_.counter("service_bids_rejected_total",
                                  "Bids rejected by the policy")),
      rejected_late_(registry_.counter(
          "service_bids_rejected_late_total",
          "Bids shed at ingestion because their arrival slot had passed")),
      slots_(registry_.counter("service_slots_processed_total",
                               "Slots the consumer loop has decided")),
      queue_depth_(registry_.gauge(
          "service_queue_depth",
          "Ingest-queue depth observed at the most recent drain")),
      max_queue_depth_(registry_.gauge(
          "service_queue_depth_max",
          "Largest ingest-queue depth observed at any drain")),
      decide_seconds_(registry_.histogram(
          "service_decide_seconds", decide_histogram_options(),
          "Per-task decision latency (policy time / batch size)")) {}

void ServiceMetrics::record_ingest() {
  const auto now = util::MonoClock::now();
  ingested_.add();
  util::MutexLock lock(mutex_);
  if (!saw_first_ingest_) {
    saw_first_ingest_ = true;
    first_ingest_ = now;
  }
  last_ingest_ = now;
}

void ServiceMetrics::record_slot(const SlotReport& report,
                                 double per_task_seconds) {
  slots_.add();
  decided_.add(report.batch);
  queue_depth_.set(static_cast<double>(report.queue_depth));
  max_queue_depth_.set_max(static_cast<double>(report.queue_depth));
  for (std::size_t i = 0; i < report.batch; ++i) {
    decide_seconds_.record(per_task_seconds);
  }
}

void ServiceMetrics::record_admitted() { admitted_.add(); }

void ServiceMetrics::record_rejected() { rejected_.add(); }

void ServiceMetrics::record_rejected_late() { rejected_late_.add(); }

MetricsSnapshot ServiceMetrics::snapshot() const {
  MetricsSnapshot snap;
  snap.bids_ingested = ingested_.value();
  snap.bids_decided = decided_.value();
  snap.admitted = admitted_.value();
  snap.rejected = rejected_.value();
  snap.rejected_late = rejected_late_.value();
  snap.queue_depth = static_cast<std::size_t>(queue_depth_.value());
  snap.max_queue_depth = static_cast<std::size_t>(max_queue_depth_.value());
  snap.slots_processed = static_cast<std::size_t>(slots_.value());
  {
    util::MutexLock lock(mutex_);
    if (saw_first_ingest_ && snap.bids_ingested >= 2) {
      const double span = util::seconds_between(first_ingest_, last_ingest_);
      if (span > 0.0) {
        snap.ingest_rate = static_cast<double>(snap.bids_ingested) / span;
      }
    }
  }
  const obs::HistogramSnapshot decide = decide_seconds_.snapshot();
  if (decide.count > 0) {
    snap.decide_p50 = decide.percentile(50.0);
    snap.decide_p99 = decide.percentile(99.0);
    snap.decide_mean = decide.mean();
  }
  return snap;
}

}  // namespace lorasched::service
