#include "lorasched/service/service_metrics.h"

#include <algorithm>

#include "lorasched/util/stats.h"

namespace lorasched::service {

void ServiceMetrics::record_ingest() {
  const auto now = util::MonoClock::now();
  std::lock_guard<std::mutex> lock(mutex_);
  ++ingested_;
  if (!saw_first_ingest_) {
    saw_first_ingest_ = true;
    first_ingest_ = now;
  }
  last_ingest_ = now;
}

void ServiceMetrics::record_slot(const SlotReport& report,
                                 double per_task_seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++slots_;
  decided_ += report.batch;
  max_queue_depth_ = std::max(max_queue_depth_, report.queue_depth);
  for (std::size_t i = 0; i < report.batch; ++i) {
    decide_samples_.push_back(per_task_seconds);
  }
}

void ServiceMetrics::record_admitted() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++admitted_;
}

void ServiceMetrics::record_rejected() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++rejected_;
}

void ServiceMetrics::record_rejected_late() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++rejected_late_;
}

MetricsSnapshot ServiceMetrics::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  snap.bids_ingested = ingested_;
  snap.bids_decided = decided_;
  snap.admitted = admitted_;
  snap.rejected = rejected_;
  snap.rejected_late = rejected_late_;
  snap.max_queue_depth = max_queue_depth_;
  snap.slots_processed = slots_;
  if (ingested_ >= 2) {
    const double span = util::seconds_between(first_ingest_, last_ingest_);
    if (span > 0.0) {
      snap.ingest_rate = static_cast<double>(ingested_) / span;
    }
  }
  if (!decide_samples_.empty()) {
    snap.decide_p50 = util::percentile(decide_samples_, 50.0);
    snap.decide_p99 = util::percentile(decide_samples_, 99.0);
    snap.decide_mean = util::mean(decide_samples_);
  }
  return snap;
}

}  // namespace lorasched::service
