// Bounded multi-producer bid queue — the ingestion edge of the admission
// service. Any number of producer threads submit() bids; one consumer (the
// service's slot loop) drains them in batches. A full queue either blocks
// the producer until space frees up or rejects the bid with a reason,
// depending on the configured backpressure mode — the same choice serving
// frontends expose as "queue or shed".
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "lorasched/workload/task.h"

namespace lorasched::service {

enum class BackpressureMode {
  /// submit() blocks until the consumer drains space (lossless ingestion).
  kBlock,
  /// submit() returns kRejectedFull immediately (load shedding).
  kReject,
};

enum class SubmitResult {
  kAccepted,
  /// Queue at capacity under BackpressureMode::kReject.
  kRejectedFull,
  /// close() was called; no further bids are accepted.
  kRejectedClosed,
  /// The bid's arrival slot already passed (AdmissionService, kReject mode).
  kRejectedLate,
};

[[nodiscard]] const char* to_string(SubmitResult result) noexcept;

class BidQueue {
 public:
  /// `capacity` must be positive; it bounds the number of undrained bids.
  BidQueue(std::size_t capacity, BackpressureMode mode);

  /// Thread-safe. Never returns kRejectedLate (that is service policy).
  SubmitResult submit(Task bid);

  /// Consumer side: moves out every queued bid (possibly none) and wakes
  /// blocked producers. Thread-safe, but intended for a single consumer.
  [[nodiscard]] std::vector<Task> drain();

  /// Copy of the queued bids without consuming them — checkpointing reads
  /// the in-flight bids through this.
  [[nodiscard]] std::vector<Task> peek() const;

  /// Consumer side: blocks until at least one bid is queued or the queue
  /// is closed (returns immediately if either already holds). Lets a
  /// consumer pump an ingestion stream without spinning on drain().
  void wait_available() const;

  /// Rejects all future submits and wakes producers blocked on a full
  /// queue (they return kRejectedClosed). Queued bids remain drainable.
  void close();
  [[nodiscard]] bool closed() const;

  [[nodiscard]] std::size_t depth() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Lifetime counters (monotone, thread-safe).
  [[nodiscard]] std::uint64_t accepted_total() const;
  [[nodiscard]] std::uint64_t rejected_full_total() const;

 private:
  const std::size_t capacity_;
  const BackpressureMode mode_;
  mutable std::mutex mutex_;
  std::condition_variable space_free_;
  mutable std::condition_variable bid_ready_;
  std::deque<Task> bids_;
  bool closed_ = false;
  std::uint64_t accepted_ = 0;
  std::uint64_t rejected_full_ = 0;
};

}  // namespace lorasched::service
