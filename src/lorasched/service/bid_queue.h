// Bounded multi-producer bid queue — the ingestion edge of the admission
// service. Any number of producer threads submit() bids; one consumer (the
// service's slot loop) drains them in batches. A full queue either blocks
// the producer until space frees up or rejects the bid with a reason,
// depending on the configured backpressure mode — the same choice serving
// frontends expose as "queue or shed".
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "lorasched/util/mutex.h"
#include "lorasched/util/thread_annotations.h"
#include "lorasched/workload/task.h"

namespace lorasched::obs {
class Counter;
class Histogram;
class MetricsRegistry;
}  // namespace lorasched::obs

namespace lorasched::service {

enum class BackpressureMode {
  /// submit() blocks until the consumer drains space (lossless ingestion).
  kBlock,
  /// submit() returns kRejectedFull immediately (load shedding).
  kReject,
};

enum class SubmitResult {
  kAccepted,
  /// Queue at capacity under BackpressureMode::kReject.
  kRejectedFull,
  /// close() was called; no further bids are accepted.
  kRejectedClosed,
  /// The bid's arrival slot already passed (AdmissionService, kReject mode).
  kRejectedLate,
};

[[nodiscard]] const char* to_string(SubmitResult result) noexcept;

class BidQueue {
 public:
  /// `capacity` must be positive; it bounds the number of undrained bids.
  BidQueue(std::size_t capacity, BackpressureMode mode);

  /// Thread-safe. Never returns kRejectedLate (that is service policy).
  SubmitResult submit(Task bid) EXCLUDES(mutex_);

  /// Consumer side: moves out every queued bid (possibly none) and wakes
  /// blocked producers. Thread-safe, but intended for a single consumer.
  [[nodiscard]] std::vector<Task> drain() EXCLUDES(mutex_);

  /// Copy of the queued bids without consuming them — checkpointing reads
  /// the in-flight bids through this.
  [[nodiscard]] std::vector<Task> peek() const EXCLUDES(mutex_);

  /// Consumer side: blocks until at least one bid is queued or the queue
  /// is closed (returns immediately if either already holds). Lets a
  /// consumer pump an ingestion stream without spinning on drain().
  void wait_available() const EXCLUDES(mutex_);

  /// Rejects all future submits and wakes producers blocked on a full
  /// queue (they return kRejectedClosed). Queued bids remain drainable.
  void close() EXCLUDES(mutex_);
  [[nodiscard]] bool closed() const EXCLUDES(mutex_);

  [[nodiscard]] std::size_t depth() const EXCLUDES(mutex_);
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Lifetime counters (monotone, thread-safe).
  [[nodiscard]] std::uint64_t accepted_total() const EXCLUDES(mutex_);
  [[nodiscard]] std::uint64_t rejected_full_total() const EXCLUDES(mutex_);

  /// Binds registry instruments to this queue (get-or-create by name):
  ///  * lorasched_bids_rejected_total — submits turned away, full + closed;
  ///  * lorasched_bid_queue_block_seconds — how long kBlock producers
  ///    stalled waiting for the consumer to drain space (only actual waits
  ///    are recorded, so count == number of stalls, not submits).
  /// Call before producers start submitting (service constructors do).
  void register_metrics(obs::MetricsRegistry& registry) EXCLUDES(mutex_);

 private:
  const std::size_t capacity_;
  const BackpressureMode mode_;
  mutable util::Mutex mutex_;
  util::CondVar space_free_;
  mutable util::CondVar bid_ready_;
  std::deque<Task> bids_ GUARDED_BY(mutex_);
  bool closed_ GUARDED_BY(mutex_) = false;
  std::uint64_t accepted_ GUARDED_BY(mutex_) = 0;
  std::uint64_t rejected_full_ GUARDED_BY(mutex_) = 0;
  // Bound once by register_metrics() before producers exist; the metric
  // objects themselves record with relaxed atomics.
  obs::Counter* rejected_metric_ GUARDED_BY(mutex_) = nullptr;
  obs::Histogram* block_metric_ GUARDED_BY(mutex_) = nullptr;
};

}  // namespace lorasched::service
