// Service-side operational metrics: ingest rate, queue depth, and decision
// latency percentiles. Latencies are measured through util::Stopwatch —
// the same steady_clock helper the simulation engine uses for Fig. 13 —
// so the service's p50/p99 and the paper figure report the same quantity.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "lorasched/service/subscriber.h"
#include "lorasched/types.h"
#include "lorasched/util/timing.h"

namespace lorasched::service {

/// A point-in-time copy of the aggregates (safe to read off-thread).
struct MetricsSnapshot {
  std::uint64_t bids_ingested = 0;
  std::uint64_t bids_decided = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t rejected_late = 0;
  std::size_t max_queue_depth = 0;
  std::size_t slots_processed = 0;
  /// Accepted bids per wall-clock second between the first and last ingest
  /// (0 until two bids have arrived).
  double ingest_rate = 0.0;
  /// Per-task decision latency percentiles in seconds (0 with no samples).
  double decide_p50 = 0.0;
  double decide_p99 = 0.0;
  double decide_mean = 0.0;
};

class ServiceMetrics {
 public:
  /// Producer side: one bid accepted into the queue. Thread-safe.
  void record_ingest();

  /// Consumer side: one slot decided. `per_task_seconds` is the batch's
  /// policy time divided by the batch size (exactly the engine's
  /// TaskOutcome::decide_seconds), sampled `batch` times.
  void record_slot(const SlotReport& report, double per_task_seconds);

  void record_admitted();
  void record_rejected();
  void record_rejected_late();

  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::uint64_t ingested_ = 0;
  std::uint64_t decided_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t rejected_late_ = 0;
  std::size_t max_queue_depth_ = 0;
  std::size_t slots_ = 0;
  bool saw_first_ingest_ = false;
  util::MonoClock::time_point first_ingest_{};
  util::MonoClock::time_point last_ingest_{};
  std::vector<double> decide_samples_;
};

}  // namespace lorasched::service
