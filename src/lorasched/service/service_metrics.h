// Service-side operational metrics, rebased onto the obs::MetricsRegistry:
// every aggregate is a named counter/gauge/histogram recorded with relaxed
// atomics, so the registry's Prometheus exposition and the service's
// MetricsSnapshot read the same underlying values. Latencies are measured
// through util::Stopwatch — the same steady_clock helper the simulation
// engine uses for Fig. 13 — so the service's p50/p99 and the paper figure
// report the same quantity.
//
// Memory is bounded by construction: decision latencies land in a
// fixed-size log-bucketed histogram (service_decide_seconds) instead of the
// former one-double-per-bid vector, so a long-running daemon's metrics
// footprint is constant. Tradeoff: p50/p99 are now bucket-interpolated
// estimates with relative error bounded by one bucket width (~9% at the
// default 8 buckets/octave — see obs/registry.h); count and mean remain
// exact.
#pragma once

#include <cstddef>
#include <cstdint>

#include "lorasched/obs/registry.h"
#include "lorasched/service/subscriber.h"
#include "lorasched/types.h"
#include "lorasched/util/mutex.h"
#include "lorasched/util/thread_annotations.h"
#include "lorasched/util/timing.h"

namespace lorasched::service {

/// A point-in-time copy of the aggregates (safe to read off-thread).
struct MetricsSnapshot {
  std::uint64_t bids_ingested = 0;
  std::uint64_t bids_decided = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t rejected_late = 0;
  /// Ingest-queue depth at the most recent drain (bids racing in mid-slot)
  /// and the largest depth any drain has observed.
  std::size_t queue_depth = 0;
  std::size_t max_queue_depth = 0;
  std::size_t slots_processed = 0;
  /// Bids accepted into the ingest queue per wall-clock second, averaged
  /// between the first and last accepted submit (0 until two bids have
  /// arrived). Counts every queued bid — including ones later rejected by
  /// the policy or shed as late — so it measures offered load, not
  /// admissions.
  double ingest_rate = 0.0;
  /// Per-task decision latency in seconds (0 with no samples). p50/p99 are
  /// histogram estimates (~9% relative error); mean is exact.
  double decide_p50 = 0.0;
  double decide_p99 = 0.0;
  double decide_mean = 0.0;
};

class ServiceMetrics {
 public:
  ServiceMetrics();

  /// Producer side: one bid accepted into the queue. Thread-safe.
  void record_ingest() EXCLUDES(mutex_);

  /// Consumer side: one slot decided. `per_task_seconds` is the batch's
  /// policy time divided by the batch size (exactly the engine's
  /// TaskOutcome::decide_seconds), sampled `batch` times.
  void record_slot(const SlotReport& report, double per_task_seconds);

  void record_admitted();
  void record_rejected();
  void record_rejected_late();

  [[nodiscard]] MetricsSnapshot snapshot() const EXCLUDES(mutex_);

  /// The backing registry — for Prometheus exposition (lorasched_serve
  /// --metrics-out) or merging additional metrics alongside the service's.
  [[nodiscard]] obs::MetricsRegistry& registry() noexcept { return registry_; }
  [[nodiscard]] const obs::MetricsRegistry& registry() const noexcept {
    return registry_;
  }

 private:
  obs::MetricsRegistry registry_;  // must precede the metric references
  obs::Counter& ingested_;
  obs::Counter& decided_;
  obs::Counter& admitted_;
  obs::Counter& rejected_;
  obs::Counter& rejected_late_;
  obs::Counter& slots_;
  obs::Gauge& queue_depth_;
  obs::Gauge& max_queue_depth_;
  obs::Histogram& decide_seconds_;

  // First/last ingest timestamps for the offered-load rate; the only state
  // the registry's atomics cannot carry.
  mutable util::Mutex mutex_;
  bool saw_first_ingest_ GUARDED_BY(mutex_) = false;
  util::MonoClock::time_point first_ingest_ GUARDED_BY(mutex_) = {};
  util::MonoClock::time_point last_ingest_ GUARDED_BY(mutex_) = {};
};

}  // namespace lorasched::service
