// The slot clock: maps the service's discrete auction slots onto monotonic
// wall-clock time. Bids are collected *during* a slot and decided at its
// end, so the clock's one job is "sleep until slot t is over" — computed
// from the epoch taken at construction (absolute boundaries, so per-slot
// processing time never accumulates drift). A zero period degenerates to
// as-fast-as-possible replay; tests and deterministic replays drive the
// service manually and never construct one.
#pragma once

#include <chrono>
#include <thread>

#include "lorasched/types.h"
#include "lorasched/util/timing.h"

namespace lorasched::service {

class SlotClock {
 public:
  explicit SlotClock(std::chrono::nanoseconds slot_period)
      : period_(slot_period), epoch_(util::MonoClock::now()) {}

  [[nodiscard]] std::chrono::nanoseconds period() const noexcept {
    return period_;
  }
  [[nodiscard]] util::MonoClock::time_point epoch() const noexcept {
    return epoch_;
  }

  /// The slot the wall clock is currently inside (unbounded; callers clamp
  /// to their horizon). With a zero period every slot is "over" already.
  [[nodiscard]] Slot now() const {
    if (period_.count() <= 0) return 0;
    const auto elapsed = util::MonoClock::now() - epoch_;
    return static_cast<Slot>(elapsed / period_);
  }

  /// Blocks until slot `slot` has ended, i.e. until epoch + (slot+1)*period.
  /// Returns immediately for a zero period or a boundary already passed.
  void wait_slot_end(Slot slot) const {
    if (period_.count() <= 0) return;
    std::this_thread::sleep_until(
        epoch_ + period_ * (static_cast<std::int64_t>(slot) + 1));
  }

 private:
  std::chrono::nanoseconds period_;
  util::MonoClock::time_point epoch_;
};

}  // namespace lorasched::service
