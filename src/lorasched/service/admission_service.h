// AdmissionService — the long-lived serving frontend for the paper's online
// auction. Producer threads stream bids into a bounded BidQueue; a slot
// loop drains the queue once per slot, hands the batch to any Policy
// through the exact SlotContext / ledger / validator path the batch
// simulator uses, notifies decision subscribers, and accumulates the same
// SimResult accounting as run_simulation. Serving a trace through the
// service therefore produces bit-identical decisions, payments, and welfare
// to replaying it through the batch engine — the correctness contract
// tests/test_service.cpp pins down, including across a checkpoint/restore.
//
// Threading model: submit() is safe from any number of threads; step(),
// run(), checkpoint(), and finish() belong to one consumer thread.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <map>
#include <vector>

#include "lorasched/cluster/capacity_ledger.h"
#include "lorasched/cluster/cluster.h"
#include "lorasched/cluster/energy.h"
#include "lorasched/service/bid_queue.h"
#include "lorasched/service/checkpoint.h"
#include "lorasched/service/service_metrics.h"
#include "lorasched/service/subscriber.h"
#include "lorasched/sim/instance.h"
#include "lorasched/sim/metrics.h"
#include "lorasched/sim/policy.h"
#include "lorasched/types.h"
#include "lorasched/workload/vendor.h"

namespace lorasched::service {

/// What to do with a bid whose arrival slot already passed when the
/// consumer drains it (a producer outran by the slot clock).
enum class LateBidMode {
  /// Reject it at ingestion: it gets a rejected TaskOutcome and an
  /// on_rejected callback, but never reaches the policy.
  kReject,
  /// Re-stamp its arrival to the current slot and auction it normally
  /// (deadline unchanged, so hopeless bids still price out).
  kClamp,
};

struct ServiceConfig {
  std::size_t queue_capacity = 1024;
  BackpressureMode backpressure = BackpressureMode::kBlock;
  LateBidMode late_bids = LateBidMode::kReject;
  /// Record per-task wall-clock decision time (mirrors EngineOptions).
  bool time_decisions = true;
};

class AdmissionService {
 public:
  /// Serves the environment of `env` (cluster, energy, marketplace,
  /// horizon, outages — all copied; env.tasks is ignored, bids arrive via
  /// submit()). The policy must outlive the service.
  AdmissionService(const Instance& env, Policy& policy,
                   ServiceConfig config = {});

  AdmissionService(const AdmissionService&) = delete;
  AdmissionService& operator=(const AdmissionService&) = delete;

  // --- Producer side (thread-safe) ---------------------------------------

  /// Enqueues a bid. Blocks when the queue is full under kBlock
  /// backpressure; otherwise returns the rejection reason immediately.
  SubmitResult submit(const Task& bid);

  /// Stops accepting bids (in-flight ones are still decided) and lets
  /// run() fast-forward through the remaining empty slots.
  void close() { queue_.close(); }

  // --- Consumer side (single thread) -------------------------------------

  /// Registers a subscriber (not owned; must outlive the service). Register
  /// before the first step — the slot loop reads the list unlocked.
  void add_subscriber(DecisionSubscriber* subscriber);

  /// Decides the current slot: drains the queue, merges bids due now,
  /// runs the policy, validates and commits, notifies subscribers, then
  /// advances the slot. Throws std::logic_error on any policy contract
  /// violation (exactly the engine's checks) or when already past the
  /// horizon.
  void step();

  /// Absorbs queued bids into the held-bid map without advancing the slot
  /// or running the policy, freeing queue capacity (and waking producers
  /// blocked under kBlock backpressure). Decisions are unchanged: step()
  /// treats a pumped bid exactly like one it drained itself — due bids
  /// join the current batch, future ones wait, stale ones hit the
  /// late-bid policy. Offline replay uses this to ingest a bid stream
  /// longer than the queue capacity before the first step; a plain "join
  /// the feeder, then step" would deadlock there. Pumped bids count as
  /// pending, not drained, in subsequent SlotReports.
  void pump();

  /// Drives step() from the current slot to the horizon, pacing each slot
  /// by `slot_period` on the monotonic clock (zero = as fast as possible).
  /// Once the queue is closed and no bids are in flight the remaining
  /// slots are processed without waiting.
  void run(std::chrono::nanoseconds slot_period);

  [[nodiscard]] Slot current_slot() const noexcept { return next_slot_; }
  [[nodiscard]] Slot horizon() const noexcept { return horizon_; }
  [[nodiscard]] bool done() const noexcept { return next_slot_ >= horizon_; }

  /// True once no further bid can arrive or become due: the queue is closed
  /// and empty and no accepted bid waits for a future slot. run() and
  /// external slot loops use this to fast-forward the remaining empty
  /// slots without waiting out the slot clock. Consumer thread only (reads
  /// the held-bid map).
  [[nodiscard]] bool idle() const noexcept {
    return queue_.closed() && queue_.depth() == 0 && held_.empty();
  }

  /// Terminal accounting: runs the engine's ledger-vs-bookings cross-check,
  /// fills in utilization, and returns the accumulated SimResult. Requires
  /// done(); call once.
  [[nodiscard]] SimResult finish();

  // --- Checkpoint / restore ----------------------------------------------

  /// Snapshot of the full decision state: policy duals (requires the policy
  /// to implement CheckpointableState — throws std::logic_error otherwise),
  /// ledger, undecided bids (queued + future), and all accounting. Take it
  /// between slots on the consumer thread.
  [[nodiscard]] Checkpoint checkpoint() const;

  /// Rewinds a *fresh* service (no submits, no steps) to the checkpointed
  /// state; the policy must be identically configured. Throws
  /// std::logic_error if the service already did work, std::invalid_argument
  /// on environment mismatch.
  void restore(const Checkpoint& checkpoint);

  // --- Introspection ------------------------------------------------------

  [[nodiscard]] const BidQueue& queue() const noexcept { return queue_; }
  [[nodiscard]] MetricsSnapshot metrics() const { return metrics_.snapshot(); }

  /// The metrics registry backing metrics() — counters/gauges/histograms
  /// with Prometheus exposition (lorasched_serve --metrics-out dumps it).
  [[nodiscard]] obs::MetricsRegistry& registry() noexcept {
    return metrics_.registry();
  }
  [[nodiscard]] const obs::MetricsRegistry& registry() const noexcept {
    return metrics_.registry();
  }

 private:
  void decide_batch(Slot now, std::vector<Task>& batch, std::size_t drained,
                    std::size_t queue_depth);
  void reject_late(const Task& bid);

  Cluster cluster_;
  EnergyModel energy_;
  Marketplace market_;
  Slot horizon_;
  Policy& policy_;
  ServiceConfig config_;

  BidQueue queue_;
  ServiceMetrics metrics_;
  std::vector<DecisionSubscriber*> subscribers_;

  // Documented exemption (DESIGN.md §13): everything below is
  // consumer-thread-only — producers touch only queue_ (internally locked)
  // and metrics_; the consumer drives step()/drain()/finish() from one
  // thread. dirty_ is the single cross-thread flag and stays an atomic.
  CapacityLedger ledger_;
  /// Bids accepted for a slot the clock has not reached yet, keyed by
  /// arrival slot. Consumer-thread only.
  std::map<Slot, std::vector<Task>> held_;
  Slot next_slot_ = 0;
  bool finished_ = false;
  std::atomic<bool> dirty_{false};  // any submit/step yet (guards restore())

  // SimResult accumulation, mirroring run_simulation.
  Metrics sim_metrics_;
  std::vector<TaskOutcome> outcomes_;
  std::vector<Schedule> schedules_;
  double booked_compute_ = 0.0;
};

}  // namespace lorasched::service
