// Checkpoint of a running AdmissionService — everything needed to bring a
// freshly constructed service (over the same environment and an identically
// configured policy) back to the exact decision state of the original:
// dual prices (via the policy's CheckpointableState dump), ledger
// commitments, bids accepted but not yet decided, and the accounting of
// every decision already made. io::write_checkpoint / io::read_checkpoint
// round-trip it through a text stream with full double precision, so a
// killed service resumes mid-horizon bit-identically.
#pragma once

#include <vector>

#include "lorasched/cluster/capacity_ledger.h"
#include "lorasched/core/schedule.h"
#include "lorasched/sim/metrics.h"
#include "lorasched/types.h"
#include "lorasched/workload/task.h"

namespace lorasched::service {

struct Checkpoint {
  /// First slot the restored service will process.
  Slot next_slot = 0;
  Slot horizon = 0;
  /// Sum of admitted schedules' compute — the engine-equivalent cross-check
  /// against the ledger at finish().
  double booked_compute = 0.0;
  /// Opaque policy dump (CheckpointableState::checkpoint_state()).
  std::vector<double> policy_state;
  CapacityLedger::Snapshot ledger;
  /// Bids accepted (queued or held for a future slot) but not yet decided.
  std::vector<Task> pending;
  /// Decisions made so far, in decision order, with aligned schedules.
  std::vector<TaskOutcome> outcomes;
  std::vector<Schedule> schedules;
  Metrics metrics;
};

}  // namespace lorasched::service
