#include "lorasched/service/bid_queue.h"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "lorasched/obs/registry.h"
#include "lorasched/obs/span.h"

namespace lorasched::service {

const char* to_string(SubmitResult result) noexcept {
  switch (result) {
    case SubmitResult::kAccepted: return "accepted";
    case SubmitResult::kRejectedFull: return "rejected:queue-full";
    case SubmitResult::kRejectedClosed: return "rejected:closed";
    case SubmitResult::kRejectedLate: return "rejected:late-arrival";
  }
  return "unknown";
}

BidQueue::BidQueue(std::size_t capacity, BackpressureMode mode)
    : capacity_(capacity), mode_(mode) {
  if (capacity == 0) {
    throw std::invalid_argument("bid queue capacity must be positive");
  }
}

SubmitResult BidQueue::submit(Task bid) {
  // Self time here includes any kBlock backpressure wait — by design: the
  // span answers "how long do producers stall", not just lock cost.
  LORASCHED_SPAN("queue/submit");
  util::MutexLock lock(mutex_);
  if (closed_) {
    if (rejected_metric_ != nullptr) rejected_metric_->add();
    return SubmitResult::kRejectedClosed;
  }
  if (bids_.size() >= capacity_) {
    if (mode_ == BackpressureMode::kReject) {
      ++rejected_full_;
      if (rejected_metric_ != nullptr) rejected_metric_->add();
      return SubmitResult::kRejectedFull;
    }
    const auto stall_begin = std::chrono::steady_clock::now();
    while (!closed_ && bids_.size() >= capacity_) space_free_.wait(lock);
    if (block_metric_ != nullptr) {
      block_metric_->record(std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - stall_begin)
                                .count());
    }
    if (closed_) {
      if (rejected_metric_ != nullptr) rejected_metric_->add();
      return SubmitResult::kRejectedClosed;
    }
  }
  bids_.push_back(std::move(bid));
  ++accepted_;
  const bool was_empty = bids_.size() == 1;
  lock.unlock();
  // Only the empty -> nonempty transition can unblock wait_available();
  // the predicate re-check under mutex_ makes the elision race-free.
  if (was_empty) bid_ready_.notify_all();
  return SubmitResult::kAccepted;
}

std::vector<Task> BidQueue::drain() {
  LORASCHED_SPAN("queue/drain");
  std::vector<Task> out;
  {
    util::MutexLock lock(mutex_);
    out.assign(std::make_move_iterator(bids_.begin()),
               std::make_move_iterator(bids_.end()));
    bids_.clear();
  }
  space_free_.notify_all();
  return out;
}

std::vector<Task> BidQueue::peek() const {
  util::MutexLock lock(mutex_);
  return std::vector<Task>(bids_.begin(), bids_.end());
}

void BidQueue::wait_available() const {
  util::MutexLock lock(mutex_);
  while (!closed_ && bids_.empty()) bid_ready_.wait(lock);
}

void BidQueue::close() {
  {
    util::MutexLock lock(mutex_);
    closed_ = true;
  }
  space_free_.notify_all();
  bid_ready_.notify_all();
}

bool BidQueue::closed() const {
  util::MutexLock lock(mutex_);
  return closed_;
}

std::size_t BidQueue::depth() const {
  util::MutexLock lock(mutex_);
  return bids_.size();
}

std::uint64_t BidQueue::accepted_total() const {
  util::MutexLock lock(mutex_);
  return accepted_;
}

std::uint64_t BidQueue::rejected_full_total() const {
  util::MutexLock lock(mutex_);
  return rejected_full_;
}

void BidQueue::register_metrics(obs::MetricsRegistry& registry) {
  obs::Counter& rejected = registry.counter(
      "lorasched_bids_rejected_total",
      "Submits turned away at the bid queue (at capacity under kReject, or "
      "after close())");
  // Stalls range from microseconds (consumer mid-drain) to full slots.
  obs::Histogram& block = registry.histogram(
      "lorasched_bid_queue_block_seconds",
      obs::HistogramOptions{.min = 1e-6, .max = 100.0},
      "Producer stall time under kBlock backpressure, recorded per stall");
  util::MutexLock lock(mutex_);
  rejected_metric_ = &rejected;
  block_metric_ = &block;
}

}  // namespace lorasched::service
