#include "lorasched/service/admission_service.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "lorasched/core/pdftsp.h"
#include "lorasched/obs/span.h"
#include "lorasched/service/slot_clock.h"
#include "lorasched/sim/validator.h"
#include "lorasched/util/timing.h"

#ifdef LORASCHED_AUDIT
#include "lorasched/audit/invariants.h"
#endif

namespace lorasched::service {

AdmissionService::AdmissionService(const Instance& env, Policy& policy,
                                   ServiceConfig config)
    : cluster_(env.cluster),
      energy_(env.energy),
      market_(env.market),
      horizon_(env.horizon),
      policy_(policy),
      config_(config),
      queue_(config.queue_capacity, config.backpressure),
      ledger_(env.cluster, env.horizon) {
  if (horizon_ <= 0) {
    throw std::invalid_argument("service horizon must be positive");
  }
  // Failure calendar, exactly as run_simulation pre-blocks its ledger.
  for (const Outage& outage : env.outages) {
    for (Slot t = std::max<Slot>(0, outage.from);
         t < std::min<Slot>(horizon_, outage.to); ++t) {
      ledger_.block(outage.node, t);
    }
  }
  // Surface the schedule-DP price-cache hit rate in this service's /metrics
  // (no-op for policies without a schedule DP).
  if (const auto* pdftsp = dynamic_cast<const Pdftsp*>(&policy_)) {
    pdftsp->register_metrics(metrics_.registry());
  }
  queue_.register_metrics(metrics_.registry());
}

SubmitResult AdmissionService::submit(const Task& bid) {
  dirty_.store(true, std::memory_order_relaxed);
  const SubmitResult result = queue_.submit(bid);
  if (result == SubmitResult::kAccepted) metrics_.record_ingest();
  return result;
}

void AdmissionService::add_subscriber(DecisionSubscriber* subscriber) {
  if (subscriber != nullptr) subscribers_.push_back(subscriber);
}

void AdmissionService::reject_late(const Task& bid) {
  TaskOutcome outcome;
  outcome.task = bid.id;
  outcome.bid = bid.bid;
  outcome.true_value = bid.true_value;
  outcome.arrival = bid.arrival;
  sim_metrics_.add_rejected();
  metrics_.record_rejected_late();
  outcomes_.push_back(outcome);
  schedules_.push_back(Schedule{});
  for (DecisionSubscriber* sub : subscribers_) sub->on_rejected(outcome);
}

void AdmissionService::pump() {
  dirty_.store(true, std::memory_order_relaxed);
  for (Task& bid : queue_.drain()) {
    // Keyed by arrival even when stale: step()'s merge loop picks up any
    // held entry with slot <= now and routes it through the late-bid
    // policy, the same path restore() relies on for pending bids.
    held_[bid.arrival].push_back(std::move(bid));
  }
}

void AdmissionService::step() {
  if (finished_ || next_slot_ >= horizon_) {
    throw std::logic_error("admission service stepped past its horizon");
  }
  LORASCHED_SPAN("service/step");
  dirty_.store(true, std::memory_order_relaxed);
  const Slot now = next_slot_;

  const std::vector<Task> drained = queue_.drain();
  const std::size_t queue_depth = queue_.depth();

  // Assemble the slot batch: bids held for this slot plus freshly drained
  // ones due now; future bids wait, stale ones hit the late-bid policy.
  std::vector<Task> batch;
  for (auto it = held_.begin(); it != held_.end() && it->first <= now;
       it = held_.erase(it)) {
    for (Task& bid : it->second) batch.push_back(std::move(bid));
  }
  for (const Task& bid : drained) {
    if (bid.arrival > now) {
      held_[bid.arrival].push_back(bid);
    } else {
      batch.push_back(bid);
    }
  }
  std::erase_if(batch, [&](const Task& bid) {
    if (bid.arrival >= now) return false;
    if (config_.late_bids == LateBidMode::kReject) {
      reject_late(bid);
      return true;
    }
    return false;
  });
  for (Task& bid : batch) bid.arrival = now;  // no-op except clamped bids

  // The engine's arrival order: within a slot, ties break by task id.
  std::stable_sort(batch.begin(), batch.end(),
                   [](const Task& a, const Task& b) { return a.id < b.id; });

  decide_batch(now, batch, drained.size(), queue_depth);
  ++next_slot_;
}

void AdmissionService::decide_batch(Slot now, std::vector<Task>& batch,
                                    std::size_t drained,
                                    std::size_t queue_depth) {
  double batch_seconds = 0.0;
  if (!batch.empty()) {
    const SlotContext ctx{now,     batch,   cluster_,
                          energy_, market_, ledger_};
    const util::Stopwatch watch;
    const std::vector<Decision> decisions = policy_.on_slot(ctx);
    batch_seconds = watch.seconds();
    const double per_task_seconds =
        config_.time_decisions
            ? batch_seconds / static_cast<double>(batch.size())
            : 0.0;

    if (decisions.size() != batch.size()) {
      throw std::logic_error("policy returned wrong number of decisions");
    }
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const Task& task = batch[i];
      const Decision& d = decisions[i];
      if (d.task != task.id) {
        throw std::logic_error("policy decisions out of order");
      }
#ifdef LORASCHED_AUDIT
      audit::check_outcome_accounting(task, d);
#endif
      TaskOutcome outcome;
      outcome.task = task.id;
      outcome.bid = task.bid;
      outcome.true_value = task.true_value;
      outcome.arrival = task.arrival;
      outcome.decide_seconds = per_task_seconds;
      if (d.admit) {
        require_valid_schedule(task, d.schedule, cluster_, horizon_);
        if (d.payment < -1e-9) {
          throw std::logic_error("negative payment");
        }
        outcome.admitted = true;
        outcome.payment = d.payment;
        outcome.vendor = d.schedule.vendor;
        outcome.vendor_cost = d.schedule.vendor_price;
        outcome.energy_cost = d.schedule.energy_cost;
        outcome.completion = d.schedule.completion_slot();
        outcome.slots_used = static_cast<int>(d.schedule.run.size());
        for (std::size_t r = 1; r < d.schedule.run.size(); ++r) {
          if (d.schedule.run[r].slot != d.schedule.run[r - 1].slot + 1) {
            ++outcome.preemptions;
          }
        }
        booked_compute_ += d.schedule.total_compute;
        sim_metrics_.add_admitted(outcome);
        metrics_.record_admitted();
        for (DecisionSubscriber* sub : subscribers_) {
          sub->on_admitted(outcome, d.schedule);
          sub->on_payment(task.id, d.payment);
        }
      } else {
        sim_metrics_.add_rejected();
        metrics_.record_rejected();
        for (DecisionSubscriber* sub : subscribers_) {
          sub->on_rejected(outcome);
        }
      }
      outcomes_.push_back(outcome);
      schedules_.push_back(d.admit ? d.schedule : Schedule{});
    }
#ifdef LORASCHED_AUDIT
    // Same per-slot conservation cross-check the engine runs (invariant b).
    audit::check_ledger_totals(ledger_, booked_compute_);
#endif
  }

  SlotReport report;
  report.slot = now;
  report.drained = drained;
  report.batch = batch.size();
  std::size_t held = 0;
  for (const auto& [slot, bids] : held_) held += bids.size();
  report.pending = held;
  report.queue_depth = queue_depth;
  report.decide_seconds = batch_seconds;
  metrics_.record_slot(report, batch.empty() || !config_.time_decisions
                                   ? 0.0
                                   : batch_seconds /
                                         static_cast<double>(batch.size()));
  for (DecisionSubscriber* sub : subscribers_) sub->on_slot_end(report);
}

void AdmissionService::run(std::chrono::nanoseconds slot_period) {
  const SlotClock clock(slot_period);
  while (next_slot_ < horizon_) {
    if (!idle()) clock.wait_slot_end(next_slot_);
    step();
  }
}

SimResult AdmissionService::finish() {
  if (!done()) {
    throw std::logic_error("finish() before the horizon completed");
  }
  if (finished_) {
    throw std::logic_error("finish() called twice");
  }
  finished_ = true;

  // The engine's final cross-check: ledger bookings must equal the sum over
  // admitted schedules.
  double ledger_compute = 0.0;
  for (NodeId k = 0; k < cluster_.node_count(); ++k) {
    for (Slot t = 0; t < horizon_; ++t) {
      ledger_compute += ledger_.used_compute(k, t);
    }
  }
  if (std::abs(ledger_compute - booked_compute_) >
      1e-6 * std::max(1.0, booked_compute_)) {
    throw std::logic_error(
        "ledger bookings do not match admitted schedules (policy bug)");
  }

  SimResult result;
  result.metrics = sim_metrics_;
  result.metrics.utilization = ledger_.compute_utilization();
  result.outcomes = std::move(outcomes_);
  result.schedules = std::move(schedules_);
  return result;
}

Checkpoint AdmissionService::checkpoint() const {
  const auto* state = dynamic_cast<const CheckpointableState*>(&policy_);
  if (state == nullptr) {
    throw std::logic_error("policy does not implement CheckpointableState");
  }
  Checkpoint cp;
  cp.next_slot = next_slot_;
  cp.horizon = horizon_;
  cp.booked_compute = booked_compute_;
  cp.policy_state = state->checkpoint_state();
  cp.ledger = ledger_.snapshot();
  for (const auto& [slot, bids] : held_) {
    cp.pending.insert(cp.pending.end(), bids.begin(), bids.end());
  }
  const std::vector<Task> queued = queue_.peek();
  cp.pending.insert(cp.pending.end(), queued.begin(), queued.end());
  cp.outcomes = outcomes_;
  cp.schedules = schedules_;
  cp.metrics = sim_metrics_;
  return cp;
}

void AdmissionService::restore(const Checkpoint& checkpoint) {
  if (dirty_.load(std::memory_order_relaxed) || finished_) {
    throw std::logic_error("restore() requires a fresh service");
  }
  if (checkpoint.horizon != horizon_) {
    throw std::invalid_argument("checkpoint horizon mismatch");
  }
  if (checkpoint.next_slot < 0 || checkpoint.next_slot > horizon_) {
    throw std::invalid_argument("checkpoint slot out of range");
  }
  auto* state = dynamic_cast<CheckpointableState*>(&policy_);
  if (state == nullptr) {
    throw std::logic_error("policy does not implement CheckpointableState");
  }
  state->restore_state(checkpoint.policy_state);
  ledger_.restore(checkpoint.ledger);
  next_slot_ = checkpoint.next_slot;
  booked_compute_ = checkpoint.booked_compute;
  sim_metrics_ = checkpoint.metrics;
  outcomes_ = checkpoint.outcomes;
  schedules_ = checkpoint.schedules;
  held_.clear();
  for (const Task& bid : checkpoint.pending) {
    // Stale bids (arrival before the resume slot) re-enter through the
    // late-bid policy at the next step.
    held_[bid.arrival].push_back(bid);
  }
}

}  // namespace lorasched::service
