file(REMOVE_RECURSE
  "CMakeFiles/test_schedule_dp.dir/test_schedule_dp.cpp.o"
  "CMakeFiles/test_schedule_dp.dir/test_schedule_dp.cpp.o.d"
  "test_schedule_dp"
  "test_schedule_dp.pdb"
  "test_schedule_dp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_schedule_dp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
