# Empty compiler generated dependencies file for test_schedule_dp.
# This may be replaced when dependencies are built.
