# Empty compiler generated dependencies file for test_taskgen.
# This may be replaced when dependencies are built.
