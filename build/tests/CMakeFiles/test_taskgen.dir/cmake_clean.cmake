file(REMOVE_RECURSE
  "CMakeFiles/test_taskgen.dir/test_taskgen.cpp.o"
  "CMakeFiles/test_taskgen.dir/test_taskgen.cpp.o.d"
  "test_taskgen"
  "test_taskgen.pdb"
  "test_taskgen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_taskgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
