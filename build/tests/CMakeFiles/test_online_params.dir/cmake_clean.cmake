file(REMOVE_RECURSE
  "CMakeFiles/test_online_params.dir/test_online_params.cpp.o"
  "CMakeFiles/test_online_params.dir/test_online_params.cpp.o.d"
  "test_online_params"
  "test_online_params.pdb"
  "test_online_params[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_online_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
