# Empty compiler generated dependencies file for test_online_params.
# This may be replaced when dependencies are built.
