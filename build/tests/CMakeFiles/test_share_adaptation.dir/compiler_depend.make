# Empty compiler generated dependencies file for test_share_adaptation.
# This may be replaced when dependencies are built.
