file(REMOVE_RECURSE
  "CMakeFiles/test_share_adaptation.dir/test_share_adaptation.cpp.o"
  "CMakeFiles/test_share_adaptation.dir/test_share_adaptation.cpp.o.d"
  "test_share_adaptation"
  "test_share_adaptation.pdb"
  "test_share_adaptation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_share_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
