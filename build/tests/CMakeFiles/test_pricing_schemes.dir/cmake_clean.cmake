file(REMOVE_RECURSE
  "CMakeFiles/test_pricing_schemes.dir/test_pricing_schemes.cpp.o"
  "CMakeFiles/test_pricing_schemes.dir/test_pricing_schemes.cpp.o.d"
  "test_pricing_schemes"
  "test_pricing_schemes.pdb"
  "test_pricing_schemes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pricing_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
