file(REMOVE_RECURSE
  "CMakeFiles/test_duals.dir/test_duals.cpp.o"
  "CMakeFiles/test_duals.dir/test_duals.cpp.o.d"
  "test_duals"
  "test_duals.pdb"
  "test_duals[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_duals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
