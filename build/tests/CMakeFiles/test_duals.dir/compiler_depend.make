# Empty compiler generated dependencies file for test_duals.
# This may be replaced when dependencies are built.
