# Empty dependencies file for test_colgen.
# This may be replaced when dependencies are built.
