file(REMOVE_RECURSE
  "CMakeFiles/test_colgen.dir/test_colgen.cpp.o"
  "CMakeFiles/test_colgen.dir/test_colgen.cpp.o.d"
  "test_colgen"
  "test_colgen.pdb"
  "test_colgen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_colgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
