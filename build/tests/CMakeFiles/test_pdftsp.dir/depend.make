# Empty dependencies file for test_pdftsp.
# This may be replaced when dependencies are built.
