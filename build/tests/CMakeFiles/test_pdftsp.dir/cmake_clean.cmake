file(REMOVE_RECURSE
  "CMakeFiles/test_pdftsp.dir/test_pdftsp.cpp.o"
  "CMakeFiles/test_pdftsp.dir/test_pdftsp.cpp.o.d"
  "test_pdftsp"
  "test_pdftsp.pdb"
  "test_pdftsp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pdftsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
