file(REMOVE_RECURSE
  "CMakeFiles/fig04_cluster_scale.dir/fig04_cluster_scale.cpp.o"
  "CMakeFiles/fig04_cluster_scale.dir/fig04_cluster_scale.cpp.o.d"
  "fig04_cluster_scale"
  "fig04_cluster_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_cluster_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
