# Empty compiler generated dependencies file for fig04_cluster_scale.
# This may be replaced when dependencies are built.
