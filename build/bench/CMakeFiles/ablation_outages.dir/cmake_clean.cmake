file(REMOVE_RECURSE
  "CMakeFiles/ablation_outages.dir/ablation_outages.cpp.o"
  "CMakeFiles/ablation_outages.dir/ablation_outages.cpp.o.d"
  "ablation_outages"
  "ablation_outages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_outages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
