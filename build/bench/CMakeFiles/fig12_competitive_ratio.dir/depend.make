# Empty dependencies file for fig12_competitive_ratio.
# This may be replaced when dependencies are built.
