file(REMOVE_RECURSE
  "CMakeFiles/fig12_competitive_ratio.dir/fig12_competitive_ratio.cpp.o"
  "CMakeFiles/fig12_competitive_ratio.dir/fig12_competitive_ratio.cpp.o.d"
  "fig12_competitive_ratio"
  "fig12_competitive_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_competitive_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
