# Empty compiler generated dependencies file for fig05_vendors.
# This may be replaced when dependencies are built.
