file(REMOVE_RECURSE
  "CMakeFiles/fig05_vendors.dir/fig05_vendors.cpp.o"
  "CMakeFiles/fig05_vendors.dir/fig05_vendors.cpp.o.d"
  "fig05_vendors"
  "fig05_vendors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_vendors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
