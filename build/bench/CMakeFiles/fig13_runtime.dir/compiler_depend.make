# Empty compiler generated dependencies file for fig13_runtime.
# This may be replaced when dependencies are built.
