file(REMOVE_RECURSE
  "CMakeFiles/fig13_runtime.dir/fig13_runtime.cpp.o"
  "CMakeFiles/fig13_runtime.dir/fig13_runtime.cpp.o.d"
  "fig13_runtime"
  "fig13_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
