file(REMOVE_RECURSE
  "CMakeFiles/fig07_traces.dir/fig07_traces.cpp.o"
  "CMakeFiles/fig07_traces.dir/fig07_traces.cpp.o.d"
  "fig07_traces"
  "fig07_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
