# Empty compiler generated dependencies file for fig06_gpu_type.
# This may be replaced when dependencies are built.
