file(REMOVE_RECURSE
  "CMakeFiles/fig06_gpu_type.dir/fig06_gpu_type.cpp.o"
  "CMakeFiles/fig06_gpu_type.dir/fig06_gpu_type.cpp.o.d"
  "fig06_gpu_type"
  "fig06_gpu_type.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_gpu_type.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
