# Empty dependencies file for fig09_deadlines.
# This may be replaced when dependencies are built.
