file(REMOVE_RECURSE
  "CMakeFiles/fig09_deadlines.dir/fig09_deadlines.cpp.o"
  "CMakeFiles/fig09_deadlines.dir/fig09_deadlines.cpp.o.d"
  "fig09_deadlines"
  "fig09_deadlines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_deadlines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
