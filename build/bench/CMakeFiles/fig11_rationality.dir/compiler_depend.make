# Empty compiler generated dependencies file for fig11_rationality.
# This may be replaced when dependencies are built.
