file(REMOVE_RECURSE
  "CMakeFiles/fig11_rationality.dir/fig11_rationality.cpp.o"
  "CMakeFiles/fig11_rationality.dir/fig11_rationality.cpp.o.d"
  "fig11_rationality"
  "fig11_rationality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_rationality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
