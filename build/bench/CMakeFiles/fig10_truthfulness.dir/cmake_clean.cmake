file(REMOVE_RECURSE
  "CMakeFiles/fig10_truthfulness.dir/fig10_truthfulness.cpp.o"
  "CMakeFiles/fig10_truthfulness.dir/fig10_truthfulness.cpp.o.d"
  "fig10_truthfulness"
  "fig10_truthfulness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_truthfulness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
