# Empty dependencies file for fig10_truthfulness.
# This may be replaced when dependencies are built.
