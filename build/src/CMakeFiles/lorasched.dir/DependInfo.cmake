
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lorasched/baselines/eft.cpp" "src/CMakeFiles/lorasched.dir/lorasched/baselines/eft.cpp.o" "gcc" "src/CMakeFiles/lorasched.dir/lorasched/baselines/eft.cpp.o.d"
  "/root/repo/src/lorasched/baselines/greedy_common.cpp" "src/CMakeFiles/lorasched.dir/lorasched/baselines/greedy_common.cpp.o" "gcc" "src/CMakeFiles/lorasched.dir/lorasched/baselines/greedy_common.cpp.o.d"
  "/root/repo/src/lorasched/baselines/ntm.cpp" "src/CMakeFiles/lorasched.dir/lorasched/baselines/ntm.cpp.o" "gcc" "src/CMakeFiles/lorasched.dir/lorasched/baselines/ntm.cpp.o.d"
  "/root/repo/src/lorasched/baselines/offline.cpp" "src/CMakeFiles/lorasched.dir/lorasched/baselines/offline.cpp.o" "gcc" "src/CMakeFiles/lorasched.dir/lorasched/baselines/offline.cpp.o.d"
  "/root/repo/src/lorasched/baselines/pricing_schemes.cpp" "src/CMakeFiles/lorasched.dir/lorasched/baselines/pricing_schemes.cpp.o" "gcc" "src/CMakeFiles/lorasched.dir/lorasched/baselines/pricing_schemes.cpp.o.d"
  "/root/repo/src/lorasched/baselines/titan.cpp" "src/CMakeFiles/lorasched.dir/lorasched/baselines/titan.cpp.o" "gcc" "src/CMakeFiles/lorasched.dir/lorasched/baselines/titan.cpp.o.d"
  "/root/repo/src/lorasched/cluster/capacity_ledger.cpp" "src/CMakeFiles/lorasched.dir/lorasched/cluster/capacity_ledger.cpp.o" "gcc" "src/CMakeFiles/lorasched.dir/lorasched/cluster/capacity_ledger.cpp.o.d"
  "/root/repo/src/lorasched/cluster/cluster.cpp" "src/CMakeFiles/lorasched.dir/lorasched/cluster/cluster.cpp.o" "gcc" "src/CMakeFiles/lorasched.dir/lorasched/cluster/cluster.cpp.o.d"
  "/root/repo/src/lorasched/cluster/energy.cpp" "src/CMakeFiles/lorasched.dir/lorasched/cluster/energy.cpp.o" "gcc" "src/CMakeFiles/lorasched.dir/lorasched/cluster/energy.cpp.o.d"
  "/root/repo/src/lorasched/cluster/gpu_profile.cpp" "src/CMakeFiles/lorasched.dir/lorasched/cluster/gpu_profile.cpp.o" "gcc" "src/CMakeFiles/lorasched.dir/lorasched/cluster/gpu_profile.cpp.o.d"
  "/root/repo/src/lorasched/core/duals.cpp" "src/CMakeFiles/lorasched.dir/lorasched/core/duals.cpp.o" "gcc" "src/CMakeFiles/lorasched.dir/lorasched/core/duals.cpp.o.d"
  "/root/repo/src/lorasched/core/multizone.cpp" "src/CMakeFiles/lorasched.dir/lorasched/core/multizone.cpp.o" "gcc" "src/CMakeFiles/lorasched.dir/lorasched/core/multizone.cpp.o.d"
  "/root/repo/src/lorasched/core/online_params.cpp" "src/CMakeFiles/lorasched.dir/lorasched/core/online_params.cpp.o" "gcc" "src/CMakeFiles/lorasched.dir/lorasched/core/online_params.cpp.o.d"
  "/root/repo/src/lorasched/core/pdftsp.cpp" "src/CMakeFiles/lorasched.dir/lorasched/core/pdftsp.cpp.o" "gcc" "src/CMakeFiles/lorasched.dir/lorasched/core/pdftsp.cpp.o.d"
  "/root/repo/src/lorasched/core/pricing.cpp" "src/CMakeFiles/lorasched.dir/lorasched/core/pricing.cpp.o" "gcc" "src/CMakeFiles/lorasched.dir/lorasched/core/pricing.cpp.o.d"
  "/root/repo/src/lorasched/core/schedule.cpp" "src/CMakeFiles/lorasched.dir/lorasched/core/schedule.cpp.o" "gcc" "src/CMakeFiles/lorasched.dir/lorasched/core/schedule.cpp.o.d"
  "/root/repo/src/lorasched/core/schedule_dp.cpp" "src/CMakeFiles/lorasched.dir/lorasched/core/schedule_dp.cpp.o" "gcc" "src/CMakeFiles/lorasched.dir/lorasched/core/schedule_dp.cpp.o.d"
  "/root/repo/src/lorasched/core/theory.cpp" "src/CMakeFiles/lorasched.dir/lorasched/core/theory.cpp.o" "gcc" "src/CMakeFiles/lorasched.dir/lorasched/core/theory.cpp.o.d"
  "/root/repo/src/lorasched/experiments/runner.cpp" "src/CMakeFiles/lorasched.dir/lorasched/experiments/runner.cpp.o" "gcc" "src/CMakeFiles/lorasched.dir/lorasched/experiments/runner.cpp.o.d"
  "/root/repo/src/lorasched/experiments/scenario.cpp" "src/CMakeFiles/lorasched.dir/lorasched/experiments/scenario.cpp.o" "gcc" "src/CMakeFiles/lorasched.dir/lorasched/experiments/scenario.cpp.o.d"
  "/root/repo/src/lorasched/io/csv.cpp" "src/CMakeFiles/lorasched.dir/lorasched/io/csv.cpp.o" "gcc" "src/CMakeFiles/lorasched.dir/lorasched/io/csv.cpp.o.d"
  "/root/repo/src/lorasched/io/serialize.cpp" "src/CMakeFiles/lorasched.dir/lorasched/io/serialize.cpp.o" "gcc" "src/CMakeFiles/lorasched.dir/lorasched/io/serialize.cpp.o.d"
  "/root/repo/src/lorasched/model/lora.cpp" "src/CMakeFiles/lorasched.dir/lorasched/model/lora.cpp.o" "gcc" "src/CMakeFiles/lorasched.dir/lorasched/model/lora.cpp.o.d"
  "/root/repo/src/lorasched/model/perf_model.cpp" "src/CMakeFiles/lorasched.dir/lorasched/model/perf_model.cpp.o" "gcc" "src/CMakeFiles/lorasched.dir/lorasched/model/perf_model.cpp.o.d"
  "/root/repo/src/lorasched/model/transformer.cpp" "src/CMakeFiles/lorasched.dir/lorasched/model/transformer.cpp.o" "gcc" "src/CMakeFiles/lorasched.dir/lorasched/model/transformer.cpp.o.d"
  "/root/repo/src/lorasched/sim/engine.cpp" "src/CMakeFiles/lorasched.dir/lorasched/sim/engine.cpp.o" "gcc" "src/CMakeFiles/lorasched.dir/lorasched/sim/engine.cpp.o.d"
  "/root/repo/src/lorasched/sim/gantt.cpp" "src/CMakeFiles/lorasched.dir/lorasched/sim/gantt.cpp.o" "gcc" "src/CMakeFiles/lorasched.dir/lorasched/sim/gantt.cpp.o.d"
  "/root/repo/src/lorasched/sim/metrics.cpp" "src/CMakeFiles/lorasched.dir/lorasched/sim/metrics.cpp.o" "gcc" "src/CMakeFiles/lorasched.dir/lorasched/sim/metrics.cpp.o.d"
  "/root/repo/src/lorasched/sim/timeseries.cpp" "src/CMakeFiles/lorasched.dir/lorasched/sim/timeseries.cpp.o" "gcc" "src/CMakeFiles/lorasched.dir/lorasched/sim/timeseries.cpp.o.d"
  "/root/repo/src/lorasched/sim/validator.cpp" "src/CMakeFiles/lorasched.dir/lorasched/sim/validator.cpp.o" "gcc" "src/CMakeFiles/lorasched.dir/lorasched/sim/validator.cpp.o.d"
  "/root/repo/src/lorasched/solver/bnb.cpp" "src/CMakeFiles/lorasched.dir/lorasched/solver/bnb.cpp.o" "gcc" "src/CMakeFiles/lorasched.dir/lorasched/solver/bnb.cpp.o.d"
  "/root/repo/src/lorasched/solver/colgen.cpp" "src/CMakeFiles/lorasched.dir/lorasched/solver/colgen.cpp.o" "gcc" "src/CMakeFiles/lorasched.dir/lorasched/solver/colgen.cpp.o.d"
  "/root/repo/src/lorasched/solver/lp.cpp" "src/CMakeFiles/lorasched.dir/lorasched/solver/lp.cpp.o" "gcc" "src/CMakeFiles/lorasched.dir/lorasched/solver/lp.cpp.o.d"
  "/root/repo/src/lorasched/solver/simplex.cpp" "src/CMakeFiles/lorasched.dir/lorasched/solver/simplex.cpp.o" "gcc" "src/CMakeFiles/lorasched.dir/lorasched/solver/simplex.cpp.o.d"
  "/root/repo/src/lorasched/util/cli.cpp" "src/CMakeFiles/lorasched.dir/lorasched/util/cli.cpp.o" "gcc" "src/CMakeFiles/lorasched.dir/lorasched/util/cli.cpp.o.d"
  "/root/repo/src/lorasched/util/rng.cpp" "src/CMakeFiles/lorasched.dir/lorasched/util/rng.cpp.o" "gcc" "src/CMakeFiles/lorasched.dir/lorasched/util/rng.cpp.o.d"
  "/root/repo/src/lorasched/util/stats.cpp" "src/CMakeFiles/lorasched.dir/lorasched/util/stats.cpp.o" "gcc" "src/CMakeFiles/lorasched.dir/lorasched/util/stats.cpp.o.d"
  "/root/repo/src/lorasched/util/table.cpp" "src/CMakeFiles/lorasched.dir/lorasched/util/table.cpp.o" "gcc" "src/CMakeFiles/lorasched.dir/lorasched/util/table.cpp.o.d"
  "/root/repo/src/lorasched/util/threadpool.cpp" "src/CMakeFiles/lorasched.dir/lorasched/util/threadpool.cpp.o" "gcc" "src/CMakeFiles/lorasched.dir/lorasched/util/threadpool.cpp.o.d"
  "/root/repo/src/lorasched/workload/deadlines.cpp" "src/CMakeFiles/lorasched.dir/lorasched/workload/deadlines.cpp.o" "gcc" "src/CMakeFiles/lorasched.dir/lorasched/workload/deadlines.cpp.o.d"
  "/root/repo/src/lorasched/workload/taskgen.cpp" "src/CMakeFiles/lorasched.dir/lorasched/workload/taskgen.cpp.o" "gcc" "src/CMakeFiles/lorasched.dir/lorasched/workload/taskgen.cpp.o.d"
  "/root/repo/src/lorasched/workload/traces.cpp" "src/CMakeFiles/lorasched.dir/lorasched/workload/traces.cpp.o" "gcc" "src/CMakeFiles/lorasched.dir/lorasched/workload/traces.cpp.o.d"
  "/root/repo/src/lorasched/workload/vendor.cpp" "src/CMakeFiles/lorasched.dir/lorasched/workload/vendor.cpp.o" "gcc" "src/CMakeFiles/lorasched.dir/lorasched/workload/vendor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
