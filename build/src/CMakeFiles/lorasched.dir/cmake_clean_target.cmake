file(REMOVE_RECURSE
  "liblorasched.a"
)
