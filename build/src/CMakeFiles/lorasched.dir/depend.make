# Empty dependencies file for lorasched.
# This may be replaced when dependencies are built.
