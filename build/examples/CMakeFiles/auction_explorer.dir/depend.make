# Empty dependencies file for auction_explorer.
# This may be replaced when dependencies are built.
