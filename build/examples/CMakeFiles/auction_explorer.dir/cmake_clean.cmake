file(REMOVE_RECURSE
  "CMakeFiles/auction_explorer.dir/auction_explorer.cpp.o"
  "CMakeFiles/auction_explorer.dir/auction_explorer.cpp.o.d"
  "auction_explorer"
  "auction_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auction_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
