# Empty compiler generated dependencies file for price_dynamics.
# This may be replaced when dependencies are built.
