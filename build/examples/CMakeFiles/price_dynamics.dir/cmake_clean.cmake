file(REMOVE_RECURSE
  "CMakeFiles/price_dynamics.dir/price_dynamics.cpp.o"
  "CMakeFiles/price_dynamics.dir/price_dynamics.cpp.o.d"
  "price_dynamics"
  "price_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/price_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
