# Empty compiler generated dependencies file for multizone.
# This may be replaced when dependencies are built.
