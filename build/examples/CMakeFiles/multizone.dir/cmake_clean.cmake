file(REMOVE_RECURSE
  "CMakeFiles/multizone.dir/multizone.cpp.o"
  "CMakeFiles/multizone.dir/multizone.cpp.o.d"
  "multizone"
  "multizone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multizone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
