file(REMOVE_RECURSE
  "CMakeFiles/cloud_day.dir/cloud_day.cpp.o"
  "CMakeFiles/cloud_day.dir/cloud_day.cpp.o.d"
  "cloud_day"
  "cloud_day.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_day.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
