# Empty dependencies file for cloud_day.
# This may be replaced when dependencies are built.
