// Figure 8 — Impact of Task Dynamics: Poisson workloads at light / medium /
// high intensity (paper: mean 30/50/80 tasks per slot on 50-200 nodes;
// default here scaled to the same load ratio on a 16-node fleet). Also
// prints the §5.2 headline numbers: pdFTSP's improvement over each baseline
// in the high-workload cell (paper: 48.99% / 151.57% / 184.94%).
#include "bench_common.h"

using namespace lorasched;
using namespace lorasched::bench;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  cli.allow_only(bar_flags());
  const bool paper = cli.get_bool("paper-scale", false);
  const bool csv = cli.get_bool("csv", false);

  const int nodes = paper ? 100 : 16;
  const std::vector<std::pair<std::string, double>> loads =
      paper ? std::vector<std::pair<std::string, double>>{{"light", 30.0},
                                                          {"medium", 50.0},
                                                          {"high", 80.0}}
            : std::vector<std::pair<std::string, double>>{
                  {"light", 5.0}, {"medium", 8.0}, {"high", 13.0}};

  std::vector<Cell> cells;
  for (const auto& [label, rate] : loads) {
    ScenarioConfig config;
    config.nodes = nodes;
    config.fleet = FleetKind::kHybrid;
    config.horizon = 144;
    config.arrival_rate = rate;
    cells.push_back({label, config});
  }
  const auto seeds = default_seeds(cli);
  run_bar_figure("Fig. 8 — Impact of Task Dynamics (normalized welfare)",
                 "workload", cells, seeds, csv);
  if (csv) return 0;

  // §5.2 headline: improvements in the high-workload cell.
  const auto high = compare_policies_averaged(cells.back().config, seeds);
  std::cout << "\nHigh-workload improvement of pdFTSP (paper: 48.99% vs "
               "Titan, 151.57% vs EFT, 184.94% vs NTM):\n";
  const double pd = high.front().metrics.social_welfare;
  for (std::size_t i = 1; i < high.size(); ++i) {
    const double other = high[i].metrics.social_welfare;
    std::cout << "  vs " << high[i].policy << ": "
              << (other > 0 ? util::Table::pct(pd / other - 1.0) : "n/a (<=0)")
              << "\n";
  }
  return 0;
}
