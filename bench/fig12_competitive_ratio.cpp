// Figure 12 — Empirical Competitive Ratio: offline optimum / online welfare
// for horizons T = 50/100/150 under small/medium/high workloads. The paper
// computes the offline optimum with Gurobi; we use the in-repo column
// generation + branch & bound (solver/colgen.h). Instances are sized so the
// offline solve converges; the paper reports ratios <= 3 throughout.
//
//   ./fig12_competitive_ratio [--seeds N] [--nodes K] [--csv]
#include <iostream>

#include "lorasched/baselines/offline.h"
#include "lorasched/core/pdftsp.h"
#include "lorasched/core/theory.h"
#include "lorasched/experiments/scenario.h"
#include "lorasched/sim/engine.h"
#include "lorasched/util/cli.h"
#include "lorasched/util/table.h"

using namespace lorasched;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  cli.allow_only({"seeds", "nodes", "csv"});
  const long seeds = cli.get_int("seeds", 1);
  const int nodes = static_cast<int>(cli.get_int("nodes", 3));

  util::Table table("Fig. 12 — Empirical competitive ratio (OPT / online)",
                    {"T", "workload", "ratio(int)", "ratio(LP bound)",
                     "online($)", "offline int($)", "LP bound($)",
                     "converged", "Thm-5 γ"});

  for (const Slot horizon : {50, 100, 150}) {
    for (const auto& [label, rate] :
         std::vector<std::pair<std::string, double>>{
             {"small", 0.3}, {"medium", 0.6}, {"high", 1.0}}) {
      double ratio_int = 0.0;
      double ratio_lp = 0.0;
      double online_w = 0.0;
      double off_int = 0.0;
      double off_lp = 0.0;
      double gamma = 0.0;
      bool all_converged = true;
      for (long s = 0; s < seeds; ++s) {
        ScenarioConfig config;
        config.nodes = nodes;
        config.fleet = FleetKind::kHybrid;
        config.horizon = horizon;
        config.arrival_rate = rate;
        config.seed = 500 + static_cast<std::uint64_t>(s);
        const Instance instance = make_instance(config);

        Pdftsp policy(pdftsp_config_for(instance), instance.cluster,
                      instance.energy, instance.horizon);
        const SimResult online = run_simulation(instance, policy);
        const EmpiricalRatio ratio = empirical_ratio(instance, online);
        ratio_int += ratio.vs_integer;
        ratio_lp += ratio.vs_lp_bound;
        online_w += ratio.online_welfare;
        off_int += ratio.offline.integer_value;
        off_lp += ratio.offline.lp_bound;
        gamma += theoretical_bound(instance).gamma;
        all_converged = all_converged && ratio.offline.converged;
      }
      const double inv = 1.0 / static_cast<double>(seeds);
      table.add_row({std::to_string(horizon), label,
                     util::Table::num(ratio_int * inv, 3),
                     util::Table::num(ratio_lp * inv, 3),
                     util::Table::num(online_w * inv, 2),
                     util::Table::num(off_int * inv, 2),
                     util::Table::num(off_lp * inv, 2),
                     all_converged ? "yes" : "no",
                     util::Table::num(gamma * inv, 1)});
    }
  }
  if (cli.get_bool("csv", false)) {
    table.write_csv(std::cout);
  } else {
    table.print(std::cout);
    std::cout << "\nPaper: empirical competitive ratios stay below 3 in all "
                 "settings; ratio(LP bound) is the conservative variant.\n"
                 "Thm-5 γ is the *worst-case* guarantee ρ(1 + max{α, β}); "
                 "its orders-of-magnitude slack over the measured ratio is "
                 "typical of primal-dual competitive analyses.\n";
  }
  return 0;
}
