// Shared scaffolding for the figure-reproduction binaries.
//
// Every bar-figure bench (Figs. 4-9) is a set of labelled scenario cells;
// for each cell we run the four algorithms over a few seeds and print the
// normalized social welfare per algorithm — the series the paper plots.
//
// Default cell sizes are scaled down from the paper's 50-200-node,
// 30-80-tasks-per-slot day so a full bench finishes in seconds on one CPU
// core; pass --paper-scale for the original sizes (minutes). The load
// *ratio* (demand vs. fleet capacity) is preserved, which is what the
// relative welfare shape depends on.
#pragma once

#include <cstdint>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "lorasched/experiments/runner.h"
#include "lorasched/util/cli.h"
#include "lorasched/util/table.h"

namespace lorasched::bench {

struct Cell {
  std::string label;
  ScenarioConfig config;
};

inline std::vector<std::uint64_t> default_seeds(const util::Cli& cli) {
  const long count = cli.get_int("seeds", 3);
  std::vector<std::uint64_t> seeds;
  for (long s = 0; s < count; ++s) {
    seeds.push_back(1000 + static_cast<std::uint64_t>(s));
  }
  return seeds;
}

/// Runs every cell and prints one normalized-welfare row per cell — the
/// bar heights of the corresponding paper figure — plus raw welfare.
inline void run_bar_figure(const std::string& title,
                           const std::string& x_label,
                           const std::vector<Cell>& cells,
                           const std::vector<std::uint64_t>& seeds,
                           bool csv = false) {
  util::Table bars(title, {x_label, "pdFTSP", "Titan", "EFT", "NTM"});
  util::Table raw(title + " — raw social welfare ($)",
                  {x_label, "pdFTSP", "Titan", "EFT", "NTM"});
  // Normalization is global across the whole figure (as in the paper), so
  // both the algorithm ordering within a group and the trend across groups
  // are visible.
  std::vector<std::vector<PolicyResult>> per_cell;
  double best = 0.0;
  for (const Cell& cell : cells) {
    per_cell.push_back(compare_policies_averaged(cell.config, seeds));
    for (const PolicyResult& r : per_cell.back()) {
      best = std::max(best, r.metrics.social_welfare);
    }
  }
  for (std::size_t i = 0; i < cells.size(); ++i) {
    std::vector<std::string> bar_row{cells[i].label};
    std::vector<std::string> raw_row{cells[i].label};
    for (const PolicyResult& r : per_cell[i]) {
      const double bar =
          best > 0.0 ? std::max(0.0, r.metrics.social_welfare) / best : 0.0;
      bar_row.push_back(util::Table::num(bar, 3));
      raw_row.push_back(util::Table::num(r.metrics.social_welfare, 2));
    }
    bars.add_row(std::move(bar_row));
    raw.add_row(std::move(raw_row));
  }
  if (csv) {
    bars.write_csv(std::cout);
  } else {
    bars.print(std::cout);
    std::cout << '\n';
    raw.print(std::cout);
  }
}

/// The flags every bar-figure bench accepts.
inline const std::vector<std::string>& bar_flags() {
  static const std::vector<std::string> flags{"seeds", "paper-scale", "csv"};
  return flags;
}

}  // namespace lorasched::bench
