// micro_loadgen — load-generation subsystem microbenchmark.
//
// Two passes, no service in the loop, so the numbers isolate the loadgen
// side of a soak run (DESIGN.md §14):
//  * generate: per-source BidFirehose stream synthesis throughput — the
//    offered-rate ceiling one firehose process can sustain if sending were
//    free. The soak target (>= 100k bids/s offered) needs this comfortably
//    above that.
//  * account: SoakMetrics offered+response round-trip throughput — the
//    accounting cost per bid on the consumer side (two map touches, two
//    histogram records). This bounds how fast a single soak consumer can
//    keep up with the decision stream.
// The accounting pass replays every generated bid as offered -> admitted,
// so it also re-checks the clean-run invariant end to end.
//
//   ./micro_loadgen --sources 4 --rate 200 --horizon 288 --mix burst
//       --json-out BENCH_micro_loadgen.json
#include <cstddef>
#include <fstream>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "lorasched/experiments/scenario.h"
#include "lorasched/loadgen/firehose.h"
#include "lorasched/loadgen/soak_metrics.h"
#include "lorasched/obs/json.h"
#include "lorasched/util/cli.h"
#include "lorasched/util/timing.h"

using namespace lorasched;

int main(int argc, char** argv) try {
  const util::Cli cli(argc, argv);
  cli.allow_only({"sources", "rate", "horizon", "mix", "seed", "nodes",
                  "json-out"});
  const auto sources = static_cast<std::uint32_t>(cli.get_int("sources", 4));
  const double rate = cli.get_double("rate", 200.0);
  const auto horizon = static_cast<Slot>(cli.get_int("horizon", 288));
  const loadgen::ArrivalMix mix =
      loadgen::parse_arrival_mix(cli.get("mix", "poisson"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));

  ScenarioConfig scenario;
  scenario.nodes = static_cast<int>(cli.get_int("nodes", 20));
  scenario.horizon = horizon;
  scenario.seed = seed;
  const Instance env = make_instance(scenario);

  // Pass 1: stream synthesis. One warm-up source pages everything in.
  {
    loadgen::FirehoseConfig warm;
    warm.seed = seed;
    warm.mix = mix;
    warm.rate_per_slot = rate;
    warm.horizon = horizon;
    warm.taskgen = scenario.taskgen;
    (void)loadgen::BidFirehose(warm, env.cluster, env.energy, env.market)
        .generate();
  }
  std::vector<std::vector<Task>> streams;
  streams.reserve(sources);
  const util::Stopwatch gen_wall;
  for (std::uint32_t s = 0; s < sources; ++s) {
    loadgen::FirehoseConfig config;
    config.source = s;
    config.seed = seed;
    config.mix = mix;
    config.rate_per_slot = rate;
    config.horizon = horizon;
    config.taskgen = scenario.taskgen;
    loadgen::BidFirehose firehose(config, env.cluster, env.energy,
                                  env.market);
    streams.push_back(firehose.generate());
  }
  const double gen_seconds = gen_wall.seconds();
  std::size_t total_bids = 0;
  for (const auto& stream : streams) total_bids += stream.size();
  const double gen_rate =
      gen_seconds > 0.0 ? static_cast<double>(total_bids) / gen_seconds : 0.0;

  // Pass 2: accounting round trips (offered then admitted, per bid).
  auto soak = std::make_unique<loadgen::SoakMetrics>();
  const util::Stopwatch acct_wall;
  for (std::uint32_t s = 0; s < sources; ++s) {
    for (const Task& bid : streams[s]) {
      soak->record_offered(s, loadgen::bid_seq(bid.id),
                           loadgen::SoakMetrics::now_ns());
      soak->record_response(s, loadgen::bid_seq(bid.id),
                            loadgen::SoakStatus::kAdmitted,
                            loadgen::SoakMetrics::now_ns());
    }
  }
  const double acct_seconds = acct_wall.seconds();
  const double acct_rate =
      acct_seconds > 0.0 ? static_cast<double>(total_bids) / acct_seconds
                         : 0.0;
  const loadgen::SoakReport report = soak->report();
  if (!report.clean()) {
    throw std::runtime_error("accounting replay was not clean");
  }

  std::cout << "micro_loadgen: " << sources << " sources x rate " << rate
            << " x horizon " << horizon << " (" << to_string(mix)
            << ") -> " << total_bids << " bids\n";
  std::cout << "  generate    " << gen_rate << " bids/s (" << gen_seconds
            << "s total)\n";
  std::cout << "  account     " << acct_rate
            << " offered+response round trips/s (" << acct_seconds
            << "s total)\n";
  std::cout << "  accounting  clean, latency count "
            << report.latency.count << ", p99 "
            << report.latency.percentile(99.0) * 1e6 << "us\n";

  if (cli.has("json-out")) {
    obs::Json::Object doc;
    doc["bench"] = obs::Json("micro_loadgen");
    obs::Json::Object cfg;
    cfg["sources"] = obs::Json(static_cast<double>(sources));
    cfg["rate_per_slot"] = obs::Json(rate);
    cfg["horizon"] = obs::Json(static_cast<double>(horizon));
    cfg["mix"] = obs::Json(to_string(mix));
    cfg["bids"] = obs::Json(static_cast<double>(total_bids));
    doc["config"] = obs::Json(std::move(cfg));
    doc["generate_bids_per_sec"] = obs::Json(gen_rate);
    doc["account_round_trips_per_sec"] = obs::Json(acct_rate);
    doc["clean"] = obs::Json(report.clean());

    std::ofstream out(cli.get("json-out", ""));
    if (!out) throw std::runtime_error("cannot open json output file");
    out << obs::Json(std::move(doc)).dump() << "\n";
  }
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
