// Figure 10 — Truthfulness: sweep one sampled bid's declared price and plot
// the bidder's utility against it. The paper's instance has true valuation
// 15 and an optimal-schedule expense of 10: utility is 0 while losing, then
// flat at (valuation − payment) once winning — bidding the truth is always
// optimal, and over/under-bidding never helps.
//
//   ./fig10_truthfulness [--seed S] [--points N] [--csv]
#include <iostream>

#include "lorasched/core/pdftsp.h"
#include "lorasched/experiments/scenario.h"
#include "lorasched/sim/engine.h"
#include "lorasched/util/cli.h"
#include "lorasched/util/table.h"

using namespace lorasched;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  cli.allow_only({"seed", "points", "csv"});

  ScenarioConfig config;
  config.nodes = 8;
  config.horizon = 96;
  config.arrival_rate = 3.0;
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const Instance instance = make_instance(config);
  const PdftspConfig pd_config = pdftsp_config_for(instance);

  // Pick a mid-stream task whose admission is contested (like the paper's
  // randomly drawn bid): the first task that is admitted truthfully but
  // pays a nonzero resource price.
  TaskId victim = -1;
  {
    Pdftsp policy(pd_config, instance.cluster, instance.energy,
                  instance.horizon);
    const SimResult base = run_simulation(instance, policy);
    for (const TaskOutcome& o : base.outcomes) {
      if (o.admitted && o.payment > 0.3 * o.bid && o.bid > 0.5) {
        victim = o.task;
        break;
      }
    }
    if (victim < 0) victim = static_cast<TaskId>(instance.tasks.size() / 2);
  }
  const Task& task = instance.tasks[static_cast<std::size_t>(victim)];
  std::cout << "Fig. 10 — Truthfulness. Sampled bid: task " << victim
            << ", true valuation " << util::Table::num(task.true_value, 3)
            << "$\n\n";

  util::Table table("Utility vs. declared bidding price",
                    {"bid($)", "won", "payment($)", "utility($)",
                     "utility@truth($)"});
  auto utility_at = [&](double bid) {
    Instance modified = instance;
    modified.tasks[static_cast<std::size_t>(victim)].bid = bid;
    Pdftsp policy(pd_config, modified.cluster, modified.energy,
                  modified.horizon);
    const SimResult result = run_simulation(modified, policy);
    return result.outcomes[static_cast<std::size_t>(victim)];
  };

  const TaskOutcome truth = utility_at(task.true_value);
  const double truth_utility =
      truth.admitted ? task.true_value - truth.payment : 0.0;

  const long points = cli.get_int("points", 17);
  for (long p = 0; p <= points; ++p) {
    const double factor = 2.0 * static_cast<double>(p) / points;  // 0..2x
    const double bid = task.true_value * factor;
    const TaskOutcome o = utility_at(bid);
    const double utility = o.admitted ? task.true_value - o.payment : 0.0;
    table.add_row({util::Table::num(bid, 3), o.admitted ? "yes" : "no",
                   util::Table::num(o.payment, 3),
                   util::Table::num(utility, 4),
                   util::Table::num(truth_utility, 4)});
  }
  if (cli.get_bool("csv", false)) {
    table.write_csv(std::cout);
  } else {
    table.print(std::cout);
    std::cout << "\nEvery row satisfies utility <= utility@truth: bidding the "
                 "true valuation maximizes utility (Thm. 3).\n";
  }
  return 0;
}
