// Figure 13 — Per-task scheduling runtime CDF, pdFTSP vs Titan on a
// 100-node cluster (the paper's setting; --nodes scales it). Titan solves a
// batch MILP per slot, so its per-task cost grows with the batch; pdFTSP's
// DP stays flat — the same qualitative gap the paper shows.
//
//   ./fig13_runtime [--nodes K] [--rate R] [--csv]
#include <iostream>

#include "lorasched/experiments/runner.h"
#include "lorasched/util/cli.h"
#include "lorasched/util/stats.h"
#include "lorasched/util/table.h"

using namespace lorasched;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  cli.allow_only({"nodes", "rate", "csv"});

  ScenarioConfig config;
  config.nodes = static_cast<int>(cli.get_int("nodes", 100));
  config.fleet = FleetKind::kHybrid;
  config.horizon = 144;
  config.arrival_rate = cli.get_double("rate", 30.0);
  config.seed = 42;
  const Instance instance = make_instance(config);

  RunSet set;
  set.eft = set.ntm = false;  // the paper's Fig. 13 compares pdFTSP vs Titan
  const auto results = compare_policies(instance, set);

  util::Table table("Fig. 13 — per-task scheduling time CDF (seconds)",
                    {"fraction", "pdFTSP", "Titan"});
  const auto pd_cdf = util::empirical_cdf(results[0].decide_seconds, 0);
  const auto ti_cdf = util::empirical_cdf(results[1].decide_seconds, 0);
  for (double q : {0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.00}) {
    table.add_row(
        {util::Table::num(q, 2),
         util::Table::num(util::percentile(results[0].decide_seconds, 100 * q), 6),
         util::Table::num(util::percentile(results[1].decide_seconds, 100 * q), 6)});
  }
  if (cli.get_bool("csv", false)) {
    table.write_csv(std::cout);
    return 0;
  }
  table.print(std::cout);
  std::cout << "\nmean per-task decide time: pdFTSP "
            << util::Table::num(1e3 * util::mean(results[0].decide_seconds), 3)
            << " ms, Titan "
            << util::Table::num(1e3 * util::mean(results[1].decide_seconds), 3)
            << " ms over " << instance.tasks.size() << " tasks on "
            << config.nodes << " nodes\n";
  std::cout << "(CDF points: pdFTSP " << pd_cdf.size() << ", Titan "
            << ti_cdf.size() << " samples)\n";
  return 0;
}
