// Figure 6 — Impact of Per-Node Capacity: A100-only vs A40-only vs a hybrid
// fleet. The stronger A100s process more samples per slot, so the A100
// fleet achieves the highest welfare; pdFTSP leads in every fleet.
#include "bench_common.h"

using namespace lorasched;
using namespace lorasched::bench;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  cli.allow_only(bar_flags());
  const bool paper = cli.get_bool("paper-scale", false);

  std::vector<Cell> cells;
  for (FleetKind fleet :
       {FleetKind::kA100Only, FleetKind::kA40Only, FleetKind::kHybrid}) {
    ScenarioConfig config;
    config.nodes = paper ? 100 : 16;
    config.fleet = fleet;
    config.horizon = 144;
    config.arrival_rate = paper ? 50.0 : 7.0;
    cells.push_back({to_string(fleet), config});
  }
  run_bar_figure("Fig. 6 — Impact of Per-Node Capacity (normalized welfare)",
                 "fleet", cells, default_seeds(cli),
                 cli.get_bool("csv", false));
  return 0;
}
