// micro_shard — monolithic vs. sharded admission throughput A/B.
//
// Replays the Fig. 8 "high" workload (hybrid fleet, Poisson arrivals)
// offline — every bid ingested up front, slots decided back to back — once
// through the monolithic AdmissionService and once through a
// ShardedService at K ∈ {1, 2, 4, 8} shards, and reports per run:
//
//   * wall-clock decision throughput (bids / wall seconds of the slot
//     loop). On a single-core host the K shard threads time-slice one CPU,
//     so this number cannot show the parallel speedup — it is reported for
//     transparency, not as the headline;
//   * critical-path decision throughput: bids / Σ_slots Σ_rounds
//     max-per-shard policy seconds in that round — the slot-loop latency a
//     K-core deployment pays, since shards within a round decide
//     concurrently and only the re-offer rounds serialize. This is the
//     number the K-vs-monolithic speedup claim is evaluated on;
//   * decision-latency p99 and end-of-run auction accounting (welfare,
//     admitted). finish() runs the ledger-vs-bookings cross-check, so a
//     throughput row only prints if no capacity/validator violation
//     occurred.
//
// The per-shard speedup comes from the schedule DP's node-scan term
// scaling with the shard's node count, at the price of partitioned
// capacity; the welfare delta column shows what second-chance re-routing
// recovers of that price.
//
//   ./micro_shard --json-out BENCH_shard.json
//   ./micro_shard --nodes 32 --rate 26 --reroute 2
#include <algorithm>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "lorasched/core/online_params.h"
#include "lorasched/core/pdftsp.h"
#include "lorasched/experiments/scenario.h"
#include "lorasched/obs/json.h"
#include "lorasched/service/admission_service.h"
#include "lorasched/shard/sharded_service.h"
#include "lorasched/util/cli.h"
#include "lorasched/util/timing.h"

using namespace lorasched;

namespace {

struct RunResult {
  std::string label;
  int shards = 0;  // 0 = monolithic
  int batch = 1;   // PdftspConfig::admission_batch (1 = one-at-a-time)
  std::uint64_t decided = 0;
  double wall_seconds = 0.0;
  double critical_seconds = 0.0;
  double decide_p99 = 0.0;
  double welfare = 0.0;
  int admitted = 0;
  int rejected = 0;
  double utilization = 0.0;
  std::uint64_t rerouted = 0;
  std::uint64_t reroute_admits = 0;

  [[nodiscard]] double wall_throughput() const {
    return wall_seconds > 0.0 ? static_cast<double>(decided) / wall_seconds
                              : 0.0;
  }
  [[nodiscard]] double critical_throughput() const {
    return critical_seconds > 0.0
               ? static_cast<double>(decided) / critical_seconds
               : 0.0;
  }
};

/// Accumulates the per-slot policy decide seconds — the monolithic
/// service's critical path (one engine, no parallelism).
class DecideSecondsProbe final : public service::DecisionSubscriber {
 public:
  void on_slot_end(const service::SlotReport& report) override {
    total_ += report.decide_seconds;
  }
  [[nodiscard]] double total() const noexcept { return total_; }

 private:
  double total_ = 0.0;
};

template <typename Service>
void replay(Service& server, const Instance& instance) {
  for (const Task& bid : instance.tasks) {
    if (server.submit(bid) != service::SubmitResult::kAccepted) {
      throw std::runtime_error("bench queue rejected a bid (capacity?)");
    }
  }
  server.close();
  while (!server.done()) server.step();
}

RunResult run_monolithic(const Instance& instance, int admission_batch) {
  PdftspConfig policy_config = pdftsp_config_for(instance);
  policy_config.admission_batch = admission_batch;
  Pdftsp policy(policy_config, instance.cluster, instance.energy,
                instance.horizon);
  service::ServiceConfig config;
  config.queue_capacity = instance.tasks.size() + 1;
  service::AdmissionService server(instance, policy, config);
  DecideSecondsProbe probe;
  server.add_subscriber(&probe);

  const util::Stopwatch wall;
  replay(server, instance);
  const double wall_seconds = wall.seconds();

  const auto ops = server.metrics();
  const SimResult result = server.finish();
  RunResult run;
  run.label = admission_batch > 1
                  ? "monolithic-b" + std::to_string(admission_batch)
                  : "monolithic";
  run.batch = admission_batch > 1 ? admission_batch : 1;
  run.decided = ops.bids_decided;
  run.wall_seconds = wall_seconds;
  run.critical_seconds = probe.total();
  run.decide_p99 = ops.decide_p99;
  run.welfare = result.metrics.social_welfare;
  run.admitted = result.metrics.admitted;
  run.rejected = result.metrics.rejected;
  run.utilization = result.metrics.utilization;
  return run;
}

RunResult run_sharded(const Instance& instance, int shards, int reroute,
                      int admission_batch) {
  shard::ShardedConfig config;
  config.shards = shards;
  config.reroute_attempts = reroute;
  config.queue_capacity = instance.tasks.size() + 1;
  PdftspConfig policy_config = pdftsp_config_for(instance);
  policy_config.admission_batch = admission_batch;
  shard::ShardedService server(
      instance, shard::make_pdftsp_factory(policy_config), config);

  const util::Stopwatch wall;
  replay(server, instance);
  const double wall_seconds = wall.seconds();

  const auto ops = server.metrics();
  RunResult run;
  run.label = "K=" + std::to_string(shards);
  if (admission_batch > 1) run.label += "-b" + std::to_string(admission_batch);
  run.shards = shards;
  run.batch = admission_batch > 1 ? admission_batch : 1;
  run.decided = ops.bids_decided;
  run.wall_seconds = wall_seconds;
  run.critical_seconds = server.critical_path_seconds();
  run.decide_p99 = ops.decide_p99;
  run.rerouted = server.rerouted_bids();
  run.reroute_admits = server.reroute_admits();
  const SimResult result = server.finish();
  run.welfare = result.metrics.social_welfare;
  run.admitted = result.metrics.admitted;
  run.rejected = result.metrics.rejected;
  run.utilization = result.metrics.utilization;
  return run;
}

}  // namespace

int main(int argc, char** argv) try {
  const util::Cli cli(argc, argv);
  cli.allow_only({"nodes", "rate", "horizon", "seed", "reroute", "json-out"});

  // Fig. 8 "high" cell at paper scale (bench/fig08_workload.cpp
  // --paper-scale): 100 hybrid nodes, Poisson arrivals at mean 80 bids per
  // slot. Partitioning pays off in the schedule DP's node-scan term, so
  // the speedup grows with nodes-per-shard; the scaled-down 16-node cell
  // (--nodes 16 --rate 13) shards too thin to show the full effect.
  ScenarioConfig config;
  config.nodes = static_cast<int>(cli.get_int("nodes", 100));
  config.fleet = FleetKind::kHybrid;
  config.horizon = static_cast<Slot>(cli.get_int("horizon", 144));
  config.arrival_rate = cli.get_double("rate", 80.0);
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const int reroute = static_cast<int>(cli.get_int("reroute", 1));
  const Instance instance = make_instance(config);

  // Epoch-batch sweep (PdftspConfig::admission_batch ∈ {1, 8, 32}) on the
  // monolithic service, then the shard-count sweep at batch 1, then the
  // widest shard fan-out with batching — decisions are bit-identical across
  // batch sizes (the trace-equality tests pin this), so the sweep isolates
  // the pure throughput effect of deciding bids per price epoch.
  std::vector<RunResult> runs;
  runs.push_back(run_monolithic(instance, 1));
  const RunResult mono = runs.front();  // copy: push_back reallocates
  runs.push_back(run_monolithic(instance, 8));
  runs.push_back(run_monolithic(instance, 32));
  int k_max = 0;
  for (const int k : {1, 2, 4, 8}) {
    if (k > config.nodes) break;
    runs.push_back(run_sharded(instance, k, reroute, 1));
    k_max = k;
  }
  if (k_max > 0) {
    runs.push_back(run_sharded(instance, k_max, reroute, 8));
    runs.push_back(run_sharded(instance, k_max, reroute, 32));
  }

  std::cout << "micro_shard: " << instance.tasks.size() << " bids, "
            << config.nodes << " nodes (hybrid), horizon " << config.horizon
            << ", reroute " << reroute << "\n";
  std::cout << "  run          decided  wall-bids/s  crit-bids/s  speedup  "
               "p99-us    welfare  d-welfare%  rerouted\n";
  for (const RunResult& run : runs) {
    const double speedup =
        mono.critical_throughput() > 0.0
            ? run.critical_throughput() / mono.critical_throughput()
            : 0.0;
    const double delta =
        mono.welfare > 0.0 ? (run.welfare / mono.welfare - 1.0) * 100.0 : 0.0;
    std::printf(
        "  %-12s %7llu %12.0f %12.0f %8.2f %7.1f %10.1f %11.2f %9llu\n",
        run.label.c_str(), static_cast<unsigned long long>(run.decided),
        run.wall_throughput(), run.critical_throughput(), speedup,
        run.decide_p99 * 1e6, run.welfare, delta,
        static_cast<unsigned long long>(run.rerouted));
  }

  if (cli.has("json-out")) {
    obs::Json::Object doc;
    doc["bench"] = obs::Json("micro_shard");
    obs::Json::Object cfg;
    cfg["nodes"] = obs::Json(static_cast<double>(config.nodes));
    cfg["horizon"] = obs::Json(static_cast<double>(config.horizon));
    cfg["rate"] = obs::Json(config.arrival_rate);
    cfg["seed"] = obs::Json(static_cast<double>(config.seed));
    cfg["reroute"] = obs::Json(static_cast<double>(reroute));
    cfg["bids"] = obs::Json(static_cast<double>(instance.tasks.size()));
    doc["config"] = obs::Json(std::move(cfg));
    obs::Json::Array rows;
    for (const RunResult& run : runs) {
      obs::Json::Object row;
      row["label"] = obs::Json(run.label);
      row["shards"] = obs::Json(static_cast<double>(run.shards));
      row["admission_batch"] = obs::Json(static_cast<double>(run.batch));
      row["decided"] = obs::Json(static_cast<double>(run.decided));
      row["wall_seconds"] = obs::Json(run.wall_seconds);
      row["wall_throughput_bids_per_sec"] = obs::Json(run.wall_throughput());
      row["critical_path_seconds"] = obs::Json(run.critical_seconds);
      row["critical_throughput_bids_per_sec"] =
          obs::Json(run.critical_throughput());
      row["critical_speedup_vs_monolithic"] = obs::Json(
          mono.critical_throughput() > 0.0
              ? run.critical_throughput() / mono.critical_throughput()
              : 0.0);
      row["decide_p99_sec"] = obs::Json(run.decide_p99);
      row["welfare"] = obs::Json(run.welfare);
      row["welfare_delta_pct_vs_monolithic"] = obs::Json(
          mono.welfare > 0.0 ? (run.welfare / mono.welfare - 1.0) * 100.0
                             : 0.0);
      row["admitted"] = obs::Json(static_cast<double>(run.admitted));
      row["rejected"] = obs::Json(static_cast<double>(run.rejected));
      row["utilization"] = obs::Json(run.utilization);
      row["rerouted_bids"] = obs::Json(static_cast<double>(run.rerouted));
      row["reroute_admits"] = obs::Json(static_cast<double>(run.reroute_admits));
      rows.push_back(obs::Json(std::move(row)));
    }
    doc["runs"] = obs::Json(std::move(rows));
    std::ofstream out(cli.get("json-out", ""));
    if (!out) throw std::runtime_error("cannot open json output file");
    out << obs::Json(std::move(doc)).dump() << "\n";
  }
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
