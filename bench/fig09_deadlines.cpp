// Figure 9 — Impact of Task Deadlines: tight / medium / slack deadline
// generation (see workload/deadlines.h). pdFTSP leads for every kind;
// slacker deadlines give the schedule DP more room to chase off-peak
// operational prices.
#include "bench_common.h"

using namespace lorasched;
using namespace lorasched::bench;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  cli.allow_only(bar_flags());
  const bool paper = cli.get_bool("paper-scale", false);

  std::vector<Cell> cells;
  for (DeadlineKind kind :
       {DeadlineKind::kTight, DeadlineKind::kMedium, DeadlineKind::kSlack}) {
    ScenarioConfig config;
    config.nodes = paper ? 100 : 16;
    config.fleet = FleetKind::kHybrid;
    config.horizon = 144;
    config.arrival_rate = paper ? 50.0 : 7.0;
    config.deadline = kind;
    cells.push_back({to_string(kind), config});
  }
  run_bar_figure("Fig. 9 — Impact of Task Deadlines (normalized welfare)",
                 "deadline", cells, default_seeds(cli),
                 cli.get_bool("csv", false));
  return 0;
}
