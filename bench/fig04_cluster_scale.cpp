// Figure 4 — Impact of Data Center Scale: normalized social welfare for
// pdFTSP/Titan/EFT/NTM as the number of compute nodes grows (paper:
// 50/100/200 nodes at a fixed workload; default here: 10/20/40 nodes at a
// proportionally scaled workload — pass --paper-scale for the original).
#include "bench_common.h"

using namespace lorasched;
using namespace lorasched::bench;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  cli.allow_only(bar_flags());
  const bool paper = cli.get_bool("paper-scale", false);

  // Fixed workload, growing fleet; the smallest fleet is slightly
  // overloaded (same demand/capacity ratio as the paper's 50-node cell).
  const std::vector<int> node_counts =
      paper ? std::vector<int>{50, 100, 200} : std::vector<int>{10, 20, 40};
  const double rate = paper ? 50.0 : 10.0;

  std::vector<Cell> cells;
  for (int nodes : node_counts) {
    ScenarioConfig config;
    config.nodes = nodes;
    config.fleet = FleetKind::kHybrid;
    config.horizon = 144;
    config.arrival_rate = rate;
    cells.push_back({std::to_string(nodes), config});
  }
  run_bar_figure("Fig. 4 — Impact of Data Center Scale (normalized welfare)",
                 "nodes", cells, default_seeds(cli), cli.get_bool("csv", false));
  return 0;
}
